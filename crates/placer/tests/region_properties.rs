//! Property-based tests for fence-region handling: random fences and
//! random assignments never produce an illegal or fence-violating result.

use mep_netlist::{CellId, Design, NetlistBuilder, Placement, Rect};
use mep_placer::detail::{refine, DetailConfig};
use mep_placer::legalize::{check_legal, legalize, Violation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FencedScenario {
    n_cells: usize,
    positions: Vec<(f64, f64)>,
    fenced: Vec<bool>,
    nets: Vec<(usize, usize)>,
}

fn scenarios() -> impl Strategy<Value = FencedScenario> {
    (6usize..24).prop_flat_map(|n| {
        let positions = prop::collection::vec((0.0f64..30.0, 0.0f64..14.0), n);
        let fenced = prop::collection::vec(prop::bool::weighted(0.3), n);
        let nets = prop::collection::vec((0..n, 0..n), 1..8);
        (positions, fenced, nets).prop_map(move |(positions, fenced, nets)| FencedScenario {
            n_cells: n,
            positions,
            fenced,
            nets: nets.into_iter().filter(|(a, b)| a != b).collect(),
        })
    })
}

fn build(s: &FencedScenario) -> (Design, Placement) {
    let mut b = NetlistBuilder::new();
    for i in 0..s.n_cells {
        b.add_cell(format!("c{i}"), 1.0, 1.0, true).expect("unique");
    }
    for (k, &(a, c)) in s.nets.iter().enumerate() {
        b.add_net(
            format!("n{k}"),
            vec![
                (CellId::from_usize(a), 0.0, 0.0),
                (CellId::from_usize(c), 0.0, 0.0),
            ],
        );
    }
    let nl = b.build();
    let mut design =
        Design::with_uniform_rows("fenced", nl, Rect::new(0.0, 0.0, 32.0, 16.0), 1.0, 1.0, 1.0)
            .expect("valid design");
    // one 8×6 fence, row-aligned, with ≤ 30% of ≤24 unit cells: fits easily
    let fence = design
        .add_region("f", Rect::new(20.0, 8.0, 28.0, 14.0))
        .expect("fence inside die");
    for (i, &f) in s.fenced.iter().enumerate() {
        if f {
            design.assign_region(CellId::from_usize(i), Some(fence));
        }
    }
    let mut pl = Placement::zeros(s.n_cells);
    for (i, &(x, y)) in s.positions.iter().enumerate() {
        pl.x[i] = x;
        pl.y[i] = y;
    }
    (design, pl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Legalization of arbitrary (fence-violating) input always produces a
    /// fully legal, fence-respecting placement.
    #[test]
    fn legalize_respects_fences(s in scenarios()) {
        let (design, gp) = build(&s);
        let (legal, _) = legalize(&design, &gp).expect("legalize");
        let violations = check_legal(&design, &legal);
        prop_assert!(violations.is_empty(), "{violations:?}");
        // exclusivity: unconstrained cells never sit inside the fence
        let fence = design.regions[0].rect;
        for cell in design.netlist.movable_cells() {
            if design.region_of(cell).is_none() {
                let r = legal.cell_rect(&design.netlist, cell);
                prop_assert!(!fence.intersects(&r), "free cell {cell} in fence");
            }
        }
    }

    /// Detailed placement on a fenced design keeps it legal and
    /// fence-respecting while never increasing HPWL.
    #[test]
    fn refine_respects_fences(s in scenarios()) {
        let (design, gp) = build(&s);
        let (legal, _) = legalize(&design, &gp).expect("legalize");
        let before = mep_netlist::total_hpwl(&design.netlist, &legal);
        let mut refined = legal;
        refine(&design, &mut refined, &DetailConfig::default());
        let after = mep_netlist::total_hpwl(&design.netlist, &refined);
        prop_assert!(after <= before + 1e-9);
        let violations = check_legal(&design, &refined);
        let region_bad: Vec<_> = violations
            .iter()
            .filter(|v| matches!(v, Violation::OutsideRegion(_)))
            .collect();
        prop_assert!(region_bad.is_empty(), "{region_bad:?}");
        prop_assert!(violations.is_empty(), "{violations:?}");
    }
}
