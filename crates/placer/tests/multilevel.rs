//! Integration tests of the multilevel flow (DESIGN.md §12): LB/UB
//! warm-start monotonicity, coarsen→prolong conservation laws, and
//! incremental (ECO) re-placement freezing guarantees.

use mep_netlist::bookshelf::BookshelfCircuit;
use mep_netlist::cluster::{coarsen, ClusterConfig};
use mep_netlist::{synth, total_hpwl, Rect};
use mep_placer::flow::{replace_region, run_multilevel, EcoConfig, MultilevelConfig};
use mep_placer::global::{place, GlobalConfig};
use mep_placer::pipeline::PipelineConfig;
use mep_placer::quadratic::{place_b2b, B2bConfig};

fn small_clustered() -> BookshelfCircuit {
    synth::generate(&synth::smoke_clustered_spec())
}

/// The LB/UB warm-start claim at its core: with an equal global-placement
/// iteration budget, starting the guarded density run from the B2B
/// quadratic lower bound must not end at a worse HPWL than the cold
/// (center-pile) start. Checked on two seeded synthetic designs at a
/// budget small enough that neither run fully converges.
#[test]
fn warm_ub_is_never_worse_than_cold_at_equal_budget() {
    for seed in [7u64, 23u64] {
        let spec = synth::SynthSpec {
            seed,
            ..synth::smoke_clustered_spec()
        };
        let circuit = synth::generate(&spec);
        let budget = 120;
        let config = GlobalConfig {
            max_iters: budget,
            threads: 1,
            ..GlobalConfig::default()
        };
        let cold = place(&circuit, &config).expect("cold GP");
        let (qp, _) = place_b2b(&circuit, &B2bConfig::default()).expect("LB solve");
        let warm_circuit = BookshelfCircuit {
            design: circuit.design.clone(),
            placement: qp,
        };
        let warm = place(&warm_circuit, &config).expect("warm GP");
        assert!(
            warm.hpwl <= cold.hpwl * 1.01,
            "seed {seed}: warm UB {:.4e} worse than cold {:.4e} at {budget} iters",
            warm.hpwl,
            cold.hpwl
        );
    }
}

/// Conservation laws of one coarsening level: total movable cell area is
/// preserved bit-exactly, and the coarse pin count equals the number of
/// (net, cluster) incidences of kept nets — no pin is invented.
#[test]
fn coarsen_prolong_round_trip_preserves_area_and_pins() {
    let c = small_clustered();
    let nl = &c.design.netlist;
    let coarse = coarsen(&c.design, &c.placement, &ClusterConfig::default()).expect("coarsen");
    let cnl = &coarse.design.netlist;

    // bit-exact total movable area (clusters fold member areas)
    let fine_area: f64 = nl.total_movable_area();
    let coarse_area: f64 = cnl.total_movable_area();
    assert_eq!(
        fine_area.to_bits(),
        coarse_area.to_bits(),
        "movable area must survive coarsening bit-exactly: {fine_area} vs {coarse_area}"
    );

    // pin conservation: every coarse pin is one (net, cluster) incidence
    // of a kept fine net, and no kept net lost its incidences
    assert_eq!(cnl.num_pins(), coarse.stats.coarse_pins);
    assert!(cnl.num_pins() <= nl.num_pins());
    assert_eq!(
        coarse.stats.nets_kept + coarse.stats.nets_dropped,
        nl.num_nets()
    );

    // prolong lands every fine movable cell inside the die and leaves
    // fixed cells bit-identical
    let mut out = c.placement.clone();
    coarse
        .map
        .prolong(&c.design, &coarse.design, &coarse.placement, &mut out)
        .expect("prolong");
    for cell in nl.cells() {
        if nl.is_movable(cell) {
            let r = out.cell_rect(nl, cell);
            assert!(
                r.xl >= c.design.die.xl - 1e-9 && r.xh <= c.design.die.xh + 1e-9,
                "prolonged cell escapes the die"
            );
        } else {
            assert_eq!(
                out.x[cell.index()].to_bits(),
                c.placement.x[cell.index()].to_bits()
            );
            assert_eq!(
                out.y[cell.index()].to_bits(),
                c.placement.y[cell.index()].to_bits()
            );
        }
    }
}

/// Two-level end-to-end smoke: the multilevel driver must produce a
/// legal, violation-free placement, report its level schedule, and stamp
/// the `ml.*` metrics into the run report.
#[test]
fn two_level_flow_places_smoke_clustered_legally() {
    let c = small_clustered();
    let config = MultilevelConfig {
        levels: 2,
        coarse_iters: 80,
        min_coarse_movable: 16,
        pipeline: PipelineConfig {
            global: GlobalConfig {
                max_iters: 300,
                threads: 1,
                ..GlobalConfig::default()
            },
            ..PipelineConfig::default()
        },
        ..MultilevelConfig::default()
    };
    let r = run_multilevel(&c, &config).expect("multilevel flow");
    assert_eq!(r.levels, 2, "smoke_clustered must support one coarsening");
    assert_eq!(r.level_stats.len(), 2);
    assert!(r.warm_rounds > 0, "warm start must engage");
    assert_eq!(r.result.violations, 0);
    assert!(r.result.dpwl.is_finite() && r.result.dpwl > 0.0);
    // coarsest first, finest last
    assert_eq!(r.level_stats[0].level, 1);
    assert_eq!(r.level_stats.last().unwrap().level, 0);
    assert!(r.level_stats[0].movable < r.level_stats[1].movable);
    // ml.* metrics merged into the final report
    let rep = &r.result.report;
    assert_eq!(rep.counter("ml.levels"), Some(2));
    assert_eq!(rep.counter("ml.warm_rounds"), Some(r.warm_rounds as u64));
    assert!(rep.gauge("ml.level0.hpwl").is_some());
    assert!(rep.gauge("ml.level1.hpwl").is_some());
    // and the flat-flow metrics are still there
    assert!(rep.counter("gp.iterations").is_some());
}

/// ECO contract: cells outside the dirty window keep **bit-identical**
/// coordinates, cells inside get re-placed, and the driver reports the
/// exact frozen/replaced split.
#[test]
fn eco_keeps_frozen_cells_bitwise_unmoved() {
    let c = small_clustered();
    // place once so the ECO starts from a realistic legal placement
    let full = mep_placer::pipeline::run(
        &c,
        &PipelineConfig {
            global: GlobalConfig {
                max_iters: 300,
                threads: 1,
                ..GlobalConfig::default()
            },
            ..PipelineConfig::default()
        },
    )
    .expect("full placement");
    let placed = BookshelfCircuit {
        design: c.design.clone(),
        placement: full.placement.clone(),
    };

    // ~10% dirty window in the lower-left corner of the die
    let die = c.design.die;
    let window = Rect::new(
        die.xl,
        die.yl,
        die.xl + 0.32 * die.width(),
        die.yl + 0.32 * die.height(),
    );
    let eco = replace_region(
        &placed,
        window,
        &EcoConfig {
            pipeline: PipelineConfig {
                global: GlobalConfig {
                    max_iters: 150,
                    threads: 1,
                    ..GlobalConfig::default()
                },
                ..PipelineConfig::default()
            },
        },
    )
    .expect("ECO run");

    let nl = &c.design.netlist;
    let mut frozen_seen = 0;
    for cell in nl.movable_cells() {
        let rect = placed.placement.cell_rect(nl, cell);
        if !rect.intersects(&window) {
            frozen_seen += 1;
            assert_eq!(
                eco.placement.x[cell.index()].to_bits(),
                placed.placement.x[cell.index()].to_bits(),
                "frozen cell moved in x"
            );
            assert_eq!(
                eco.placement.y[cell.index()].to_bits(),
                placed.placement.y[cell.index()].to_bits(),
                "frozen cell moved in y"
            );
        }
    }
    assert_eq!(frozen_seen, eco.frozen);
    assert!(
        eco.replaced > 0 && eco.frozen > 0,
        "window must split cells"
    );
    assert_eq!(eco.replaced + eco.frozen, nl.num_movable());
    assert!(eco.hpwl_after.is_finite());
    assert_eq!(eco.report.counter("eco.frozen"), Some(eco.frozen as u64));
    assert!(
        eco.hpwl_before == total_hpwl(nl, &placed.placement),
        "before-HPWL must describe the input"
    );
}
