//! Scenario tests for the detailed placer: the Hungarian ISM path,
//! window-size clamping, and convergence control.

use mep_netlist::{CellId, Design, NetlistBuilder, Placement, Rect};
use mep_placer::detail::{refine, DetailConfig};
use mep_placer::legalize::check_legal;

/// Builds `k` unit cells, one per row, each wired to an anchor sitting at
/// the *next* cell's slot (a k-cycle rotation). Pairwise swaps are
/// HPWL-neutral (each cell's nearest peer to its optimum is exactly the
/// cell whose slot it wants, and that swap trades 0 for an equal loss),
/// and local reordering never fires (one cell per row) — only an exact
/// set matching can realize the rotation.
fn rotation_instance(k: usize) -> (Design, Placement, Vec<CellId>, Vec<(f64, f64)>) {
    let mut b = NetlistBuilder::new();
    let cells: Vec<CellId> = (0..k)
        .map(|i| b.add_cell(format!("c{i}"), 1.0, 1.0, true).unwrap())
        .collect();
    let anchors: Vec<CellId> = (0..k)
        .map(|i| b.add_cell(format!("t{i}"), 0.0, 0.0, false).unwrap())
        .collect();
    for i in 0..k {
        b.add_net(
            format!("n{i}"),
            vec![(cells[i], 0.0, 0.0), (anchors[i], 0.0, 0.0)],
        );
    }
    let nl = b.build();
    let width = (3 * k) as f64;
    let design = Design::with_uniform_rows(
        "rot",
        nl,
        Rect::new(0.0, 0.0, width, (k + 1) as f64),
        1.0,
        1.0,
        1.0,
    )
    .unwrap();
    let mut pl = Placement::zeros(design.netlist.num_cells());
    let slot = |i: usize| ((2 * i) as f64, i as f64);
    for i in 0..k {
        let (x, y) = slot(i);
        pl.x[cells[i].index()] = x;
        pl.y[cells[i].index()] = y;
        // anchor i sits exactly at the NEXT slot: optimal assignment is the
        // cyclic rotation of all k cells
        let (ax, ay) = slot((i + 1) % k);
        pl.x[anchors[i].index()] = ax + 0.5; // align with the slot's center
        pl.y[anchors[i].index()] = ay + 0.5;
    }
    let slots = (0..k).map(slot).collect();
    (design, pl, cells, slots)
}

#[test]
fn hungarian_ism_solves_an_8_cycle_rotation() {
    // k = 8 > the brute-force cutoff (4): exercises the Hungarian matching
    let (design, mut pl, cells, slots) = rotation_instance(8);
    let before = mep_netlist::total_hpwl(&design.netlist, &pl);
    let config = DetailConfig {
        passes: 3,
        ism_set: 8,
        window: 2,
        converge_rel: 0.0,
    };
    let report = refine(&design, &mut pl, &config);
    assert!(report.matchings > 0, "ISM never fired: {report:?}");
    let after = mep_netlist::total_hpwl(&design.netlist, &pl);
    assert!(
        after < 0.05 * before,
        "rotation not realized: {before} → {after} ({report:?})"
    );
    // every cell landed on the next slot
    for (i, &c) in cells.iter().enumerate() {
        let (wx, wy) = slots[(i + 1) % cells.len()];
        assert!(
            (pl.x[c.index()] - wx).abs() < 1e-9 && (pl.y[c.index()] - wy).abs() < 1e-9,
            "cell {i} at ({}, {}) want ({wx}, {wy})",
            pl.x[c.index()],
            pl.y[c.index()]
        );
    }
    assert!(check_legal(&design, &pl).is_empty());
}

#[test]
fn small_rotation_is_fixed() {
    // k = 3: with the short wrap-around, pairwise swaps are no longer
    // neutral, so either swaps or the brute-force ISM path may win — what
    // matters is that the rotation is fully realized
    let (design, mut pl, _, _) = rotation_instance(3);
    let before = mep_netlist::total_hpwl(&design.netlist, &pl);
    let config = DetailConfig {
        passes: 2,
        ism_set: 3,
        window: 2,
        converge_rel: 0.0,
    };
    let report = refine(&design, &mut pl, &config);
    assert!(report.matchings + report.swaps > 0, "{report:?}");
    let after = mep_netlist::total_hpwl(&design.netlist, &pl);
    assert!(after < 0.2 * before, "{before} → {after}");
}

#[test]
fn window_and_set_sizes_are_clamped() {
    let (design, mut pl, _, _) = rotation_instance(5);
    // absurd configuration values must be clamped, not panic
    let config = DetailConfig {
        passes: 1,
        window: 99,
        ism_set: 99,
        converge_rel: 0.0,
    };
    let report = refine(&design, &mut pl, &config);
    assert!(report.hpwl_after <= report.hpwl_before + 1e-9);
    assert!(check_legal(&design, &pl).is_empty());
}

#[test]
fn converge_rel_one_stops_after_a_single_pass() {
    let (design, mut pl, _, _) = rotation_instance(6);
    let config = DetailConfig {
        passes: 10,
        converge_rel: 2.0, // relative gain is ≤ 1, so every pass "converges"
        ..DetailConfig::default()
    };
    let report = refine(&design, &mut pl, &config);
    assert_eq!(report.passes, 1);
}

#[test]
fn refine_on_a_single_cell_design_is_a_noop() {
    let mut b = NetlistBuilder::new();
    b.add_cell("only", 1.0, 1.0, true).unwrap();
    let design = Design::with_uniform_rows(
        "solo",
        b.build(),
        Rect::new(0.0, 0.0, 8.0, 2.0),
        1.0,
        1.0,
        1.0,
    )
    .unwrap();
    let mut pl = Placement::zeros(1);
    let report = refine(&design, &mut pl, &DetailConfig::default());
    assert_eq!(report.hpwl_before, 0.0);
    assert_eq!(report.hpwl_after, 0.0);
    assert_eq!(report.reorders + report.swaps + report.matchings, 0);
}
