//! Property-based tests for legalization and detailed placement on
//! randomized small designs: the output is always legal, and refinement
//! never increases HPWL.

use mep_netlist::{Design, NetlistBuilder, Placement, Rect};
use mep_placer::detail::{refine, DetailConfig};
use mep_placer::legalize::{check_legal, legalize};
use proptest::prelude::*;

/// A random placement problem: cells with random widths scattered over a
/// die (possibly overlapping — exactly what GP hands the legalizer), with
/// some simple nets for the detailed placer to chew on.
#[derive(Debug, Clone)]
struct Scenario {
    widths: Vec<u8>,
    positions: Vec<(f64, f64)>,
    nets: Vec<Vec<usize>>,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (4usize..40).prop_flat_map(|n| {
        let widths = prop::collection::vec(1u8..4, n);
        let positions = prop::collection::vec((0.0f64..28.0, 0.0f64..14.0), n);
        let nets = prop::collection::vec(prop::collection::btree_set(0..n, 2..n.min(5)), 1..10);
        (widths, positions, nets).prop_map(|(widths, positions, nets)| Scenario {
            widths,
            positions,
            nets: nets.into_iter().map(|s| s.into_iter().collect()).collect(),
        })
    })
}

fn build(s: &Scenario) -> (Design, Placement) {
    let mut b = NetlistBuilder::new();
    for (i, &w) in s.widths.iter().enumerate() {
        b.add_cell(format!("c{i}"), w as f64, 1.0, true)
            .expect("unique");
    }
    for (k, net) in s.nets.iter().enumerate() {
        b.add_net(
            format!("n{k}"),
            net.iter()
                .map(|&i| (mep_netlist::CellId::from_usize(i), 0.0, 0.0)),
        );
    }
    let nl = b.build();
    // die with generous slack so legalization always succeeds
    let design =
        Design::with_uniform_rows("prop", nl, Rect::new(0.0, 0.0, 32.0, 16.0), 1.0, 1.0, 1.0)
            .expect("valid design");
    let mut pl = Placement::zeros(design.netlist.num_cells());
    for (i, &(x, y)) in s.positions.iter().enumerate() {
        pl.x[i] = x;
        pl.y[i] = y;
    }
    (design, pl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Legalization always produces a legal placement from arbitrary
    /// (overlapping) input.
    #[test]
    fn legalize_always_legal(s in scenarios()) {
        let (design, gp) = build(&s);
        let (legal, report) = legalize(&design, &gp);
        let violations = check_legal(&design, &legal);
        prop_assert!(
            violations.is_empty(),
            "violations: {:?} (report {report:?})",
            &violations[..violations.len().min(4)]
        );
    }

    /// Legalization is idempotent in quality: legalizing a legal placement
    /// moves nothing (every cell already sits on a feasible spot).
    #[test]
    fn legalize_is_idempotent(s in scenarios()) {
        let (design, gp) = build(&s);
        let (legal, _) = legalize(&design, &gp);
        let (again, report) = legalize(&design, &legal);
        prop_assert!(check_legal(&design, &again).is_empty());
        // the second pass must not move cells materially
        prop_assert!(
            report.avg_displacement < 1e-6,
            "re-legalization moved cells by {}",
            report.avg_displacement
        );
        let _ = again;
    }

    /// Detailed placement never increases HPWL and preserves legality.
    #[test]
    fn refine_monotone_and_legal(s in scenarios()) {
        let (design, gp) = build(&s);
        let (legal, _) = legalize(&design, &gp);
        let before = mep_netlist::total_hpwl(&design.netlist, &legal);
        let mut refined = legal;
        let report = refine(&design, &mut refined, &DetailConfig::default());
        let after = mep_netlist::total_hpwl(&design.netlist, &refined);
        prop_assert!(after <= before + 1e-9, "{before} → {after} ({report:?})");
        prop_assert!(check_legal(&design, &refined).is_empty());
    }
}
