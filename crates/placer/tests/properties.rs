//! Property-based tests for legalization and detailed placement on
//! randomized small designs: the output is always legal, and refinement
//! never increases HPWL.

use mep_netlist::{Design, NetlistBuilder, Placement, Rect};
use mep_placer::detail::{refine, DetailConfig};
use mep_placer::legalize::{audit_legality, check_legal, legalize};
use proptest::prelude::*;

/// A random placement problem: cells with random widths scattered over a
/// die (possibly overlapping — exactly what GP hands the legalizer), with
/// some simple nets for the detailed placer to chew on.
#[derive(Debug, Clone)]
struct Scenario {
    widths: Vec<u8>,
    positions: Vec<(f64, f64)>,
    nets: Vec<Vec<usize>>,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (4usize..40).prop_flat_map(|n| {
        let widths = prop::collection::vec(1u8..4, n);
        let positions = prop::collection::vec((0.0f64..28.0, 0.0f64..14.0), n);
        let nets = prop::collection::vec(prop::collection::btree_set(0..n, 2..n.min(5)), 1..10);
        (widths, positions, nets).prop_map(|(widths, positions, nets)| Scenario {
            widths,
            positions,
            nets: nets.into_iter().map(|s| s.into_iter().collect()).collect(),
        })
    })
}

fn build(s: &Scenario) -> (Design, Placement) {
    let mut b = NetlistBuilder::new();
    for (i, &w) in s.widths.iter().enumerate() {
        b.add_cell(format!("c{i}"), w as f64, 1.0, true)
            .expect("unique");
    }
    for (k, net) in s.nets.iter().enumerate() {
        b.add_net(
            format!("n{k}"),
            net.iter()
                .map(|&i| (mep_netlist::CellId::from_usize(i), 0.0, 0.0)),
        );
    }
    let nl = b.build();
    // die with generous slack so legalization always succeeds
    let design =
        Design::with_uniform_rows("prop", nl, Rect::new(0.0, 0.0, 32.0, 16.0), 1.0, 1.0, 1.0)
            .expect("valid design");
    let mut pl = Placement::zeros(design.netlist.num_cells());
    for (i, &(x, y)) in s.positions.iter().enumerate() {
        pl.x[i] = x;
        pl.y[i] = y;
    }
    (design, pl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Legalization always produces a legal placement from arbitrary
    /// (overlapping) input.
    #[test]
    fn legalize_always_legal(s in scenarios()) {
        let (design, gp) = build(&s);
        let (legal, report) = legalize(&design, &gp).expect("legalize");
        let violations = check_legal(&design, &legal);
        prop_assert!(
            violations.is_empty(),
            "violations: {:?} (report {report:?})",
            &violations[..violations.len().min(4)]
        );
    }

    /// Legalization is idempotent in quality: legalizing a legal placement
    /// moves nothing (every cell already sits on a feasible spot).
    #[test]
    fn legalize_is_idempotent(s in scenarios()) {
        let (design, gp) = build(&s);
        let (legal, _) = legalize(&design, &gp).expect("legalize");
        let (again, report) = legalize(&design, &legal).expect("legalize");
        prop_assert!(check_legal(&design, &again).is_empty());
        // the second pass must not move cells materially
        prop_assert!(
            report.avg_displacement < 1e-6,
            "re-legalization moved cells by {}",
            report.avg_displacement
        );
        let _ = again;
    }

    /// High-utilization stress: random unit-width cells filling 80–100%
    /// of a small die, scattered arbitrarily (heavy pile-ups force the
    /// spill and site-snapping paths the two ISSUE 9 legalizer bugs
    /// lived in). Every *successful* legalization must be pairwise
    /// overlap-free, in-die, and row/site aligned — measured with the
    /// same audit helper the PEKO harness uses; an over-capacity input
    /// must surface as a typed error, never a panic or an illegal
    /// "success".
    #[test]
    fn high_utilization_legalize_is_audit_clean(
        n in 40usize..81,
        positions in prop::collection::vec((0.0f64..10.0, 0.0f64..8.0), 80),
        seed in 0u64..1024,
    ) {
        // die of 8 rows x 10 sites = 80 unit sites; n cells => 50-100%
        let mut b = NetlistBuilder::new();
        for i in 0..n {
            b.add_cell(format!("c{i}"), 1.0, 1.0, true).expect("unique");
        }
        // a few nets so the workload is not degenerate
        for k in 0..4usize {
            let a = (seed as usize + k) % n;
            let c = (seed as usize + 3 * k + 1) % n;
            if a != c {
                b.add_net(
                    format!("n{k}"),
                    [
                        (mep_netlist::CellId::from_usize(a), 0.0, 0.0),
                        (mep_netlist::CellId::from_usize(c), 0.0, 0.0),
                    ],
                );
            }
        }
        let nl = b.build();
        let design = Design::with_uniform_rows(
            "dense", nl, Rect::new(0.0, 0.0, 10.0, 8.0), 1.0, 1.0, 1.0,
        ).expect("valid design");
        let mut gp = Placement::zeros(n);
        for (i, &(px, py)) in positions.iter().enumerate().take(n) {
            gp.x[i] = px;
            gp.y[i] = py;
        }
        match legalize(&design, &gp) {
            Ok((legal, report)) => {
                let audit = audit_legality(&design, &legal);
                prop_assert!(
                    audit.is_clean(),
                    "audit {audit} at utilization {:.2} (report {report:?})",
                    n as f64 / 80.0
                );
            }
            Err(e) => {
                // capacity can genuinely run out at 100% utilization;
                // the contract is a typed error, not a panic
                prop_assert!(
                    matches!(e, mep_placer::PlacerError::Legalize { .. }),
                    "unexpected error kind: {e}"
                );
            }
        }
    }

    /// Detailed placement never increases HPWL and preserves legality.
    #[test]
    fn refine_monotone_and_legal(s in scenarios()) {
        let (design, gp) = build(&s);
        let (legal, _) = legalize(&design, &gp).expect("legalize");
        let before = mep_netlist::total_hpwl(&design.netlist, &legal);
        let mut refined = legal;
        let report = refine(&design, &mut refined, &DetailConfig::default());
        let after = mep_netlist::total_hpwl(&design.netlist, &refined);
        prop_assert!(after <= before + 1e-9, "{before} → {after} ({report:?})");
        prop_assert!(check_legal(&design, &refined).is_empty());
    }
}
