//! Integration tests for the guarded placement loop: NaN injection and
//! rollback, degradation-ladder escalation, clean-run bit-identity, and
//! degenerate-input rejection.

use mep_netlist::synth;
use mep_optim::Problem;
use mep_placer::global::{place, GlobalConfig};
use mep_placer::guard::{GuardConfig, RecoveryAction, Termination};
use mep_placer::objective::PlacementProblem;
use mep_placer::pipeline::{run, PipelineConfig};
use mep_placer::PlacerError;
use mep_wirelength::ModelKind;

fn base_config() -> GlobalConfig {
    GlobalConfig {
        model: ModelKind::Moreau,
        max_iters: 300,
        threads: 1,
        ..GlobalConfig::default()
    }
}

#[test]
fn clean_run_is_bit_identical_with_guard_enabled() {
    let c = synth::generate(&synth::smoke_spec());
    let mut guarded_cfg = base_config();
    guarded_cfg.max_iters = 120;
    let mut unguarded_cfg = guarded_cfg.clone();
    unguarded_cfg.guard = GuardConfig {
        enabled: false,
        ..GuardConfig::default()
    };
    let guarded = place(&c, &guarded_cfg).expect("placement flow");
    let unguarded = place(&c, &unguarded_cfg).expect("placement flow");
    assert!(guarded.recovery.is_empty());
    assert_eq!(guarded.iterations, unguarded.iterations);
    assert_eq!(guarded.hpwl.to_bits(), unguarded.hpwl.to_bits());
    for i in 0..guarded.placement.len() {
        assert_eq!(
            guarded.placement.x[i].to_bits(),
            unguarded.placement.x[i].to_bits(),
            "x[{i}] diverged"
        );
        assert_eq!(
            guarded.placement.y[i].to_bits(),
            unguarded.placement.y[i].to_bits(),
            "y[{i}] diverged"
        );
    }
}

#[test]
fn injected_nan_rolls_back_to_the_seed_snapshot_bit_identically() {
    // poison the very first main-loop evaluation and stop after one
    // iteration: the guard must restore the seeded pre-loop snapshot, so
    // the returned placement is bit-identical to the projected start
    let c = synth::generate(&synth::smoke_spec());
    let mut cfg = base_config();
    cfg.max_iters = 1;
    cfg.min_iters = 1;
    cfg.fault_injection = Some((0, 1));
    let r = place(&c, &cfg).expect("recoverable fault");
    assert_eq!(r.recovery.len(), 1, "{}", r.recovery);
    assert_eq!(
        r.recovery.events()[0].action,
        RecoveryAction::RollbackBackoff
    );

    // recompute the projected starting point the seed snapshot captured
    let problem = PlacementProblem::with_threads(
        &c.design,
        &c.placement,
        ModelKind::Moreau.instantiate(1.0),
        1,
    );
    let mut params = problem.pack_params(&c.placement);
    problem.project(&mut params);
    let mut expected = c.placement.clone();
    problem.unpack_params(&params, &mut expected);
    for i in 0..expected.len() {
        assert_eq!(
            r.placement.x[i].to_bits(),
            expected.x[i].to_bits(),
            "x[{i}] not restored bitwise"
        );
        assert_eq!(
            r.placement.y[i].to_bits(),
            expected.y[i].to_bits(),
            "y[{i}] not restored bitwise"
        );
    }
}

#[test]
fn nan_at_budget_exhaustion_still_rolls_back_bitwise() {
    // the hostile corner the daemon lives in: a NaN fault fires on the
    // same iteration the wall-clock budget expires. The guard must roll
    // back to the seed snapshot first, and the budget check must then
    // return that rolled-back state as a WallClock partial — never the
    // poisoned coordinates
    let c = synth::generate(&synth::smoke_spec());
    let mut cfg = base_config();
    cfg.max_iters = 1;
    cfg.min_iters = 1;
    cfg.fault_injection = Some((0, 1));
    cfg.time_budget = Some(std::time::Duration::ZERO);
    let r = place(&c, &cfg).expect("recoverable fault under an expired budget");
    assert_eq!(r.termination, Termination::WallClock);
    assert!(r.termination.is_partial());
    assert_eq!(r.iterations, 1, "budget is polled at iteration boundaries");
    assert_eq!(r.recovery.len(), 1, "{}", r.recovery);
    assert_eq!(
        r.recovery.events()[0].action,
        RecoveryAction::RollbackBackoff
    );

    // identical recompute of the projected start the seed snapshot holds
    let problem = PlacementProblem::with_threads(
        &c.design,
        &c.placement,
        ModelKind::Moreau.instantiate(1.0),
        1,
    );
    let mut params = problem.pack_params(&c.placement);
    problem.project(&mut params);
    let mut expected = c.placement.clone();
    problem.unpack_params(&params, &mut expected);
    for i in 0..expected.len() {
        assert_eq!(
            r.placement.x[i].to_bits(),
            expected.x[i].to_bits(),
            "x[{i}] not restored bitwise under budget exhaustion"
        );
        assert_eq!(
            r.placement.y[i].to_bits(),
            expected.y[i].to_bits(),
            "y[{i}] not restored bitwise under budget exhaustion"
        );
    }

    // the CancelToken deadline path must behave identically to time_budget
    let mut cfg2 = base_config();
    cfg2.max_iters = 1;
    cfg2.min_iters = 1;
    cfg2.fault_injection = Some((0, 1));
    cfg2.cancel = mep_placer::CancelToken::with_deadline_in(std::time::Duration::ZERO);
    let r2 = place(&c, &cfg2).expect("recoverable fault under an expired deadline");
    assert_eq!(r2.termination, Termination::WallClock);
    for i in 0..expected.len() {
        assert_eq!(
            r2.placement.x[i].to_bits(),
            expected.x[i].to_bits(),
            "x[{i}]: deadline path diverged from budget path"
        );
    }
}

#[test]
fn pipeline_recovers_from_mid_run_nan_and_stays_legal() {
    // the acceptance scenario: a transient NaN mid-run trips the guard,
    // the loop rolls back + backs off, and the full flow still produces a
    // legal placement with a non-empty recovery log
    let c = synth::generate(&synth::smoke_spec());
    let config = PipelineConfig {
        global: GlobalConfig {
            model: ModelKind::Moreau,
            max_iters: 400,
            threads: 1,
            fault_injection: Some((40, 2)),
            ..GlobalConfig::default()
        },
        ..PipelineConfig::default()
    };
    let r = run(&c, &config).expect("recoverable fault");
    assert!(!r.recovery.is_empty(), "guard must have tripped");
    assert_eq!(r.violations, 0, "final placement must stay legal");
    assert!(r.dpwl.is_finite() && r.dpwl > 0.0);
    assert!(r.overflow.is_finite());
    for i in 0..r.placement.len() {
        assert!(r.placement.x[i].is_finite() && r.placement.y[i].is_finite());
    }
}

#[test]
fn persistent_nan_walks_the_degradation_ladder_to_exhaustion() {
    // an unrecoverable fault source: every eval after the 10th is NaN.
    // strikes escalate Moreau → WA → LSE → unplanned density solver, then
    // the guard halts with the best snapshot
    let c = synth::generate(&synth::smoke_spec());
    let mut cfg = base_config();
    cfg.max_iters = 80;
    cfg.fault_injection = Some((10, u64::MAX));
    let r = place(&c, &cfg).expect("guard must degrade, not error");
    assert_eq!(r.termination, Termination::GuardExhausted);
    assert!(r.termination.is_partial());
    let actions: Vec<RecoveryAction> = r.recovery.events().iter().map(|e| e.action).collect();
    assert!(
        actions.contains(&RecoveryAction::DegradeModel {
            from: ModelKind::Moreau,
            to: ModelKind::Wa,
        }),
        "{}",
        r.recovery
    );
    assert!(
        actions.contains(&RecoveryAction::DegradeModel {
            from: ModelKind::Wa,
            to: ModelKind::Lse,
        }),
        "{}",
        r.recovery
    );
    assert!(actions.contains(&RecoveryAction::DegradeDensitySolver));
    assert_eq!(*actions.last().unwrap(), RecoveryAction::Halt);
    // the best snapshot is still a usable placement
    assert!(r.hpwl.is_finite());
    for i in 0..r.placement.len() {
        assert!(r.placement.x[i].is_finite() && r.placement.y[i].is_finite());
    }
}

#[test]
fn all_fixed_netlist_is_a_typed_degenerate_input_error() {
    // every node is a terminal: nothing to place
    let nodes =
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 2\n  p0 1 1 terminal\n  p1 1 1 terminal\n";
    let nets =
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n  p0 I : 0 0\n  p1 O : 0 0\n";
    let pl = "UCLA pl 1.0\np0 0 0 : N /FIXED\np1 4 0 : N /FIXED\n";
    let scl = "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 1\n Sitewidth : 1 Sitespacing : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\n";
    let c = mep_netlist::bookshelf::read_files("fixed".into(), nodes, nets, pl, scl, 0.9)
        .expect("well-formed files");
    match place(&c, &base_config()) {
        Err(PlacerError::DegenerateInput { reason }) => {
            assert!(reason.contains("no movable cells"), "{reason}");
        }
        other => panic!("expected DegenerateInput, got {other:?}"),
    }
    match run(&c, &PipelineConfig::default()) {
        Err(PlacerError::DegenerateInput { .. }) => {}
        other => panic!("expected DegenerateInput, got {other:?}"),
    }
}

#[test]
fn non_finite_start_is_a_typed_degenerate_input_error() {
    let mut c = synth::generate(&synth::smoke_spec());
    c.placement.x[3] = f64::NAN;
    match place(&c, &base_config()) {
        Err(PlacerError::DegenerateInput { reason }) => {
            assert!(reason.contains("non-finite"), "{reason}");
        }
        other => panic!("expected DegenerateInput, got {other:?}"),
    }
}
