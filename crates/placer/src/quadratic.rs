//! Quadratic (Bound2Bound) wirelength-driven placement — the *other*
//! category of analytical placers the paper's introduction surveys
//! (Kraftwerk2 \[7\], SimPL-style flows \[3\]).
//!
//! The B2B net model \[7, 14\] replaces each net, per axis, with two-pin
//! connections between the boundary pins `b` (max) and `b'` (min) and
//! every other pin, weighted `w = 1/((p−1)·|Δ|)` at the linearization
//! point, so the quadratic form equals exact HPWL there. Minimizing the
//! resulting strictly convex quadratic (fixed pins anchor the system)
//! and re-linearizing a few times is the classic quadratic placement
//! iteration.
//!
//! Used here as (a) the paper-adjacent baseline, (b) the **lower-bound
//! engine** of the LB/UB multilevel flow ([`crate::flow`]): the quadratic
//! solve ignores density and therefore lower-bounds the achievable
//! wirelength, while the guarded Moreau/density loop provides the
//! spread-out upper bound. [`place_b2b_anchored`] adds Coloquinte-style
//! pseudo-net anchors that pull each movable cell toward the last
//! upper-bound solution with a growing force factor, and (c) the home of a
//! small matrix-free Jacobi-preconditioned conjugate-gradient solver for
//! the SPD Laplacian systems.
//!
//! All entry points return typed [`PlacerError`]s on degenerate inputs
//! (fully-fixed designs, netlists whose multi-pin nets touch no movable
//! cell) instead of silently returning the input placement unchanged.

use crate::error::PlacerError;
use mep_netlist::bookshelf::BookshelfCircuit;
use mep_netlist::{Netlist, Placement};

/// Sparse SPD system `A x = b` in CSR-ish adjacency form:
/// `A = diag + Σ_edges w (e_i − e_j)(e_i − e_j)ᵀ` over movable indices.
#[derive(Debug, Clone, Default)]
struct LaplacianSystem {
    /// Diagonal (degree + anchor weights).
    diag: Vec<f64>,
    /// Off-diagonal entries per row: `(col, −w)` pairs, built as triplets.
    offdiag: Vec<Vec<(u32, f64)>>,
    /// Right-hand side.
    rhs: Vec<f64>,
}

impl LaplacianSystem {
    fn new(n: usize) -> Self {
        Self {
            diag: vec![0.0; n],
            offdiag: vec![Vec::new(); n],
            rhs: vec![0.0; n],
        }
    }

    /// Adds `w(x_i − x_j + d)²` between two movable rows.
    fn add_edge(&mut self, i: usize, j: usize, w: f64, d: f64) {
        self.diag[i] += w;
        self.diag[j] += w;
        self.offdiag[i].push((j as u32, w));
        self.offdiag[j].push((i as u32, w));
        self.rhs[i] -= w * d;
        self.rhs[j] += w * d;
    }

    /// Adds `w(x_i − c)²` anchoring a movable row to a constant.
    fn add_anchor(&mut self, i: usize, w: f64, c: f64) {
        self.diag[i] += w;
        self.rhs[i] += w * c;
    }

    /// `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..x.len() {
            let mut acc = self.diag[i] * x[i];
            for &(j, w) in &self.offdiag[i] {
                acc -= w * x[j as usize];
            }
            y[i] = acc;
        }
    }

    /// Solves `A x = rhs` by Jacobi-preconditioned CG from `x0`.
    fn solve_cg(&self, x: &mut [f64], max_iters: usize, tol: f64) -> usize {
        let n = x.len();
        if n == 0 {
            return 0;
        }
        let mut r = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut ap = vec![0.0; n];
        self.apply(x, &mut r);
        for i in 0..n {
            r[i] = self.rhs[i] - r[i];
        }
        let precond = |r: &[f64], z: &mut [f64], diag: &[f64]| {
            for i in 0..r.len() {
                z[i] = r[i] / diag[i].max(1e-30);
            }
        };
        precond(&r, &mut z, &self.diag);
        p.copy_from_slice(&z);
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let rhs_norm: f64 = self
            .rhs
            .iter()
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
            .max(1e-30);
        for it in 0..max_iters {
            let rn: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if rn <= tol * rhs_norm {
                return it;
            }
            self.apply(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                return it; // numerically singular; bail with best iterate
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            precond(&r, &mut z, &self.diag);
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        max_iters
    }
}

/// Configuration for the B2B quadratic placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct B2bConfig {
    /// Re-linearization (reweighting) rounds.
    pub rounds: usize,
    /// CG iteration cap per solve.
    pub cg_iters: usize,
    /// CG relative-residual tolerance.
    pub cg_tol: f64,
    /// Minimum |Δ| used in B2B weights (avoids 1/0 on coincident pins).
    pub min_gap: f64,
    /// Weight of the weak center anchor applied to every movable cell
    /// when a design has no fixed pins at all (keeps the system SPD).
    pub center_anchor: f64,
}

impl Default for B2bConfig {
    fn default() -> Self {
        Self {
            rounds: 8,
            cg_iters: 300,
            cg_tol: 1e-8,
            min_gap: 1e-3,
            center_anchor: 1e-6,
        }
    }
}

/// Exact B2B net-model value of one axis at the linearization point —
/// equals the net span (used by tests and as a sanity invariant).
pub fn b2b_axis_value(coords: &[f64], min_gap: f64) -> f64 {
    let p = coords.len();
    if p < 2 {
        return 0.0;
    }
    let (bi, lo) = coords
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    let (ti, hi) = coords
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    let w = |a: f64, b: f64| {
        let gap = (a - b).abs().max(min_gap);
        1.0 / ((p - 1) as f64 * gap)
    };
    let mut total = w(*hi, *lo) * (hi - lo) * (hi - lo);
    for (i, &x) in coords.iter().enumerate() {
        if i == bi || i == ti {
            continue;
        }
        total += w(*hi, x) * (hi - x) * (hi - x);
        total += w(x, *lo) * (x - lo) * (x - lo);
    }
    total
}

/// One axis of the B2B system build: adds every net's bound-to-bound
/// connections to the Laplacian. `coord_of(cell)` reads the *pin-relevant*
/// coordinate (center + offset handled by the caller through offsets).
fn build_axis(
    netlist: &Netlist,
    positions: &[f64], // pin coordinate per pin
    movable_index: &[Option<u32>],
    pin_offset: impl Fn(mep_netlist::PinId) -> f64,
    system: &mut LaplacianSystem,
    min_gap: f64,
) {
    for net in netlist.nets() {
        let range = netlist.net_pin_range(net);
        let p = range.len();
        if p < 2 {
            continue;
        }
        let weight_scale = netlist.net_weight(net);
        // boundary pins at the current linearization point
        let (mut bi, mut ti) = (range.start, range.start);
        for k in range.clone() {
            if positions[k] < positions[bi] {
                bi = k;
            }
            if positions[k] > positions[ti] {
                ti = k;
            }
        }
        let connect = |a: usize, b: usize, system: &mut LaplacianSystem| {
            if a == b {
                return;
            }
            let gap = (positions[a] - positions[b]).abs().max(min_gap);
            let w = weight_scale / ((p - 1) as f64 * gap);
            let pa = mep_netlist::PinId::from_usize(a);
            let pb = mep_netlist::PinId::from_usize(b);
            let ca = netlist.pin_cell(pa);
            let cb = netlist.pin_cell(pb);
            let (oa, ob) = (pin_offset(pa), pin_offset(pb));
            match (movable_index[ca.index()], movable_index[cb.index()]) {
                (Some(i), Some(j)) => {
                    if i != j {
                        system.add_edge(i as usize, j as usize, w, oa - ob);
                    }
                }
                (Some(i), None) => {
                    // x_i + oa ≈ positions[b] ⇒ anchor at positions[b] − oa
                    system.add_anchor(i as usize, w, positions[b] - oa);
                }
                (None, Some(j)) => {
                    system.add_anchor(j as usize, w, positions[a] - ob);
                }
                (None, None) => {}
            }
        };
        connect(ti, bi, system);
        for k in range {
            if k != bi && k != ti {
                connect(ti, k, system);
                connect(k, bi, system);
            }
        }
    }
}

/// Report of a quadratic placement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct B2bReport {
    /// HPWL after the final round.
    pub hpwl: f64,
    /// Rounds executed.
    pub rounds: usize,
    /// Total CG iterations spent (both axes).
    pub cg_iterations: usize,
}

/// Pseudo-net anchors pulling every movable cell toward a target
/// placement — the mechanism that couples the quadratic lower bound to
/// the density-aware upper bound in the LB/UB alternation (SimPL \[3\],
/// Coloquinte). Each movable cell `i` gets an anchor of weight
/// `force_factor · area_i / mean_movable_area` on both axes, so bigger
/// cells are pulled proportionally harder and the factor is dimensionless
/// across designs. The driver grows `force_factor` geometrically per
/// round to converge the two bounds.
#[derive(Debug, Clone, Copy)]
pub struct AnchorSet<'a> {
    /// Placement to pull toward (lower-left coordinates, same indexing as
    /// the circuit's netlist).
    pub target: &'a Placement,
    /// Dimensionless anchor strength; `0.0` disables the pull.
    pub force_factor: f64,
}

/// Runs iterative B2B quadratic placement (wirelength only, no density —
/// the classic lower-bound placement that overlaps freely). Returns the
/// placement and a report.
///
/// # Errors
/// [`PlacerError::DegenerateInput`] when the design has no movable cells
/// or when no net can constrain a movable cell (e.g. only single-pin
/// nets), instead of silently returning the input unchanged.
pub fn place_b2b(
    circuit: &BookshelfCircuit,
    config: &B2bConfig,
) -> Result<(Placement, B2bReport), PlacerError> {
    place_b2b_anchored(circuit, config, None)
}

/// [`place_b2b`] with optional pseudo-net anchors toward a target
/// placement (the LB half of the LB/UB alternation). With
/// `anchors: None` this is exactly the plain B2B solve.
///
/// # Errors
/// Same degenerate-input contract as [`place_b2b`]; additionally rejects
/// an anchor target whose length does not match the netlist.
pub fn place_b2b_anchored(
    circuit: &BookshelfCircuit,
    config: &B2bConfig,
    anchors: Option<AnchorSet<'_>>,
) -> Result<(Placement, B2bReport), PlacerError> {
    let netlist = &circuit.design.netlist;
    let mut placement = circuit.placement.clone();
    let movable: Vec<mep_netlist::CellId> = netlist.movable_cells().collect();
    let mut movable_index = vec![None; netlist.num_cells()];
    for (i, &c) in movable.iter().enumerate() {
        movable_index[c.index()] = Some(i as u32);
    }
    let m = movable.len();
    if m == 0 {
        return Err(PlacerError::DegenerateInput {
            reason: "quadratic placement on a fully fixed design: no movable cells".to_string(),
        });
    }
    // At least one net must be able to exert force on a movable cell:
    // ≥2 pins (single-pin nets contribute no B2B edges), positive weight,
    // and at least one pin on a movable cell. Otherwise the system is all
    // zero rows and the "solution" would just echo the input placement.
    let constrains_movable = netlist.nets().any(|net| {
        netlist.net_degree(net) >= 2
            && netlist.net_weight(net) > 0.0
            && netlist
                .net_pins(net)
                .any(|p| netlist.is_movable(netlist.pin_cell(p)))
    });
    if !constrains_movable {
        return Err(PlacerError::DegenerateInput {
            reason: "no net constrains a movable cell (only single-pin, zero-weight, or \
                     fixed-only nets): quadratic system has no wirelength term"
                .to_string(),
        });
    }
    if let Some(a) = anchors {
        if a.target.len() != netlist.num_cells() {
            return Err(PlacerError::DegenerateInput {
                reason: format!(
                    "anchor target has {} cells but netlist has {}",
                    a.target.len(),
                    netlist.num_cells()
                ),
            });
        }
    }
    // Per-cell anchor weights: force_factor scaled by relative area so the
    // pull is uniform in *displacement force density* across cell sizes.
    let anchor_weights: Vec<f64> = match anchors {
        Some(a) if a.force_factor > 0.0 => {
            let mean_area = movable.iter().map(|&c| netlist.cell_area(c)).sum::<f64>() / m as f64;
            movable
                .iter()
                .map(|&c| {
                    if mean_area > 0.0 {
                        a.force_factor * netlist.cell_area(c) / mean_area
                    } else {
                        a.force_factor
                    }
                })
                .collect()
        }
        _ => Vec::new(),
    };
    let die = circuit.design.die;
    let has_fixed_pins = netlist
        .fixed_cells()
        .any(|c| !netlist.cell_pins(c).is_empty());

    let mut cg_total = 0;
    let mut rounds = 0;
    for _round in 0..config.rounds {
        rounds += 1;
        for axis in 0..2 {
            // pin coordinates at the current placement
            let positions: Vec<f64> = netlist
                .pins()
                .map(|p| {
                    let pos = placement.pin_position(netlist, p);
                    if axis == 0 {
                        pos.x
                    } else {
                        pos.y
                    }
                })
                .collect();
            let mut system = LaplacianSystem::new(m);
            {
                let offset = |p: mep_netlist::PinId| {
                    let cell = netlist.pin_cell(p);
                    if axis == 0 {
                        0.5 * netlist.cell_width(cell) + netlist.pin_offset_x(p)
                    } else {
                        0.5 * netlist.cell_height(cell) + netlist.pin_offset_y(p)
                    }
                };
                build_axis(
                    netlist,
                    &positions,
                    &movable_index,
                    offset,
                    &mut system,
                    config.min_gap,
                );
            }
            if !has_fixed_pins && anchor_weights.is_empty() {
                // degenerate free-floating system: weak anchor to the die
                // center keeps it SPD (ispd19_test1 has zero fixed cells)
                let center = if axis == 0 {
                    die.center().x
                } else {
                    die.center().y
                };
                for i in 0..m {
                    system.add_anchor(i, config.center_anchor, center);
                }
            }
            if let Some(a) = anchors {
                if !anchor_weights.is_empty() {
                    // pseudo-net pull toward the target placement
                    // (lower-left coordinates, matching the unknowns)
                    for (i, &c) in movable.iter().enumerate() {
                        let tc = if axis == 0 {
                            a.target.x[c.index()]
                        } else {
                            a.target.y[c.index()]
                        };
                        system.add_anchor(i, anchor_weights[i], tc);
                    }
                }
            }
            // unknowns are lower-left coordinates of movable cells
            let mut x: Vec<f64> = movable
                .iter()
                .map(|&c| {
                    if axis == 0 {
                        placement.x[c.index()]
                    } else {
                        placement.y[c.index()]
                    }
                })
                .collect();
            cg_total += system.solve_cg(&mut x, config.cg_iters, config.cg_tol);
            for (i, &c) in movable.iter().enumerate() {
                if axis == 0 {
                    placement.x[c.index()] = x[i].clamp(die.xl, die.xh - netlist.cell_width(c));
                } else {
                    placement.y[c.index()] = x[i].clamp(die.yl, die.yh - netlist.cell_height(c));
                }
            }
        }
    }
    let hpwl = mep_netlist::total_hpwl(netlist, &placement);
    Ok((
        placement,
        B2bReport {
            hpwl,
            rounds,
            cg_iterations: cg_total,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::{synth, NetlistBuilder, Rect};

    #[test]
    fn b2b_value_equals_hpwl_at_linearization_point() {
        // the defining property of the B2B model (Kraftwerk2)
        for coords in [
            vec![0.0, 10.0],
            vec![0.0, 3.0, 10.0],
            vec![1.0, 2.0, 5.0, 9.0, 9.5],
            vec![-4.0, 0.0, 4.0, 8.0, 12.0, 16.0],
        ] {
            let span = coords.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - coords.iter().cloned().fold(f64::INFINITY, f64::min);
            let v = b2b_axis_value(&coords, 1e-9);
            assert!((v - span).abs() < 1e-9, "{coords:?}: {v} vs {span}");
        }
    }

    #[test]
    fn cg_solves_small_spd_system() {
        // 3 unknowns in a chain anchored at both ends:
        // minimize (x0-0)² + (x0-x1)² + (x1-x2)² + (x2-4)²
        let mut sys = LaplacianSystem::new(3);
        sys.add_anchor(0, 1.0, 0.0);
        sys.add_edge(0, 1, 1.0, 0.0);
        sys.add_edge(1, 2, 1.0, 0.0);
        sys.add_anchor(2, 1.0, 4.0);
        let mut x = vec![0.0; 3];
        let iters = sys.solve_cg(&mut x, 100, 1e-12);
        assert!(iters <= 10);
        assert!((x[0] - 1.0).abs() < 1e-8, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-8);
        assert!((x[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn edge_offsets_shift_solution() {
        // single movable connected to an anchor with constant offset d:
        // minimize (x - 5)² with pin offset folded into rhs
        let mut sys = LaplacianSystem::new(2);
        sys.add_anchor(0, 1.0, 5.0);
        sys.add_edge(0, 1, 2.0, 1.5); // (x0 - x1 + 1.5)²
        let mut x = vec![0.0; 2];
        sys.solve_cg(&mut x, 200, 1e-12);
        // optimality: x0 = 5 - ... solve analytically: d/dx0: (x0-5) + 2(x0-x1+1.5)=0;
        // d/dx1: -2(x0-x1+1.5)=0 ⇒ x1 = x0+1.5, then x0 = 5
        assert!((x[0] - 5.0).abs() < 1e-8, "{x:?}");
        assert!((x[1] - 6.5).abs() < 1e-8);
    }

    #[test]
    fn chain_between_fixed_anchors_spreads_monotonically() {
        let mut b = NetlistBuilder::new();
        let left = b.add_cell("l", 0.0, 0.0, false).unwrap();
        let right = b.add_cell("r", 0.0, 0.0, false).unwrap();
        let mids: Vec<_> = (0..5)
            .map(|i| b.add_cell(format!("m{i}"), 0.0, 1.0, true).unwrap())
            .collect();
        let mut chain = vec![left];
        chain.extend(&mids);
        chain.push(right);
        for w in chain.windows(2) {
            b.add_net(
                format!("e{}", w[0].index()),
                vec![(w[0], 0.0, 0.0), (w[1], 0.0, 0.0)],
            );
        }
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "chain",
            nl,
            Rect::new(0.0, 0.0, 24.0, 4.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut pl = Placement::zeros(design.netlist.num_cells());
        pl.x[left.index()] = 0.0;
        pl.x[right.index()] = 24.0;
        for &mcell in &mids {
            pl.x[mcell.index()] = 12.0; // all piled mid-die
            pl.y[mcell.index()] = 1.0;
        }
        let circuit = BookshelfCircuit {
            design,
            placement: pl,
        };
        let (solved, report) = place_b2b(&circuit, &B2bConfig::default()).expect("valid chain");
        // monotone spread between anchors
        let xs: Vec<f64> = mids.iter().map(|&c| solved.x[c.index()]).collect();
        for w in xs.windows(2) {
            assert!(w[1] > w[0], "not monotone: {xs:?}");
        }
        assert!(xs[0] > 0.0 && *xs.last().unwrap() < 24.0);
        assert!(report.hpwl <= 25.0, "chain HPWL {}", report.hpwl);
    }

    #[test]
    fn b2b_reduces_hpwl_on_synthetic_circuit() {
        let c = synth::generate(&synth::smoke_spec());
        // scatter cells randomly (deterministically) so there is slack
        let mut scattered = c.clone();
        for (i, v) in scattered.placement.x.iter_mut().enumerate() {
            if c.design
                .netlist
                .is_movable(mep_netlist::CellId::from_usize(i))
            {
                *v = (i as f64 * 0.61).fract() * c.design.die.width();
            }
        }
        let before = mep_netlist::total_hpwl(&c.design.netlist, &scattered.placement);
        let (solved, report) = place_b2b(&scattered, &B2bConfig::default()).expect("valid synth");
        let after = mep_netlist::total_hpwl(&c.design.netlist, &solved);
        assert!(
            after < 0.7 * before,
            "B2B barely helped: {before} → {after}"
        );
        assert!(report.cg_iterations > 0);
    }

    #[test]
    fn quadratic_init_is_a_usable_gp_start() {
        // run GP from the B2B solution and confirm the flow still works
        use crate::global::{place, GlobalConfig};
        let c = synth::generate(&synth::smoke_spec());
        let (qp, _) = place_b2b(&c, &B2bConfig::default()).expect("valid synth");
        let warm = BookshelfCircuit {
            design: c.design.clone(),
            placement: qp,
        };
        let cfg = GlobalConfig {
            max_iters: 200,
            threads: 1,
            ..GlobalConfig::default()
        };
        let r = place(&warm, &cfg).expect("placement flow");
        assert!(r.overflow < 0.6);
        assert!(r.hpwl.is_finite());
    }

    /// Builds a tiny circuit from a closure over the builder; fixed die.
    fn tiny_circuit(build: impl FnOnce(&mut NetlistBuilder)) -> BookshelfCircuit {
        let mut b = NetlistBuilder::new();
        build(&mut b);
        let nl = b.build();
        let n = nl.num_cells();
        let design = mep_netlist::Design::with_uniform_rows(
            "tiny",
            nl,
            Rect::new(0.0, 0.0, 16.0, 4.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        BookshelfCircuit {
            design,
            placement: Placement::zeros(n),
        }
    }

    #[test]
    fn fully_fixed_design_is_a_typed_error() {
        let c = tiny_circuit(|b| {
            let a = b.add_cell("a", 0.0, 0.0, false).unwrap();
            let z = b.add_cell("z", 4.0, 0.0, false).unwrap();
            b.add_net("n0", vec![(a, 0.0, 0.0), (z, 0.0, 0.0)]);
        });
        let err = place_b2b(&c, &B2bConfig::default()).unwrap_err();
        match err {
            PlacerError::DegenerateInput { reason } => {
                assert!(reason.contains("no movable cells"), "{reason}")
            }
            other => panic!("expected DegenerateInput, got {other}"),
        }
    }

    #[test]
    fn single_pin_nets_only_is_a_typed_error() {
        // movable cells exist, but every net has one pin: the quadratic
        // system has no wirelength term and must not silently return the
        // input placement unchanged.
        let c = tiny_circuit(|b| {
            let a = b.add_cell("a", 0.0, 1.0, true).unwrap();
            let z = b.add_cell("z", 4.0, 1.0, true).unwrap();
            b.add_net("n0", vec![(a, 0.0, 0.0)]);
            b.add_net("n1", vec![(z, 0.0, 0.0)]);
        });
        let err = place_b2b(&c, &B2bConfig::default()).unwrap_err();
        match err {
            PlacerError::DegenerateInput { reason } => {
                assert!(
                    reason.contains("no net constrains a movable cell"),
                    "{reason}"
                )
            }
            other => panic!("expected DegenerateInput, got {other}"),
        }
    }

    #[test]
    fn anchor_target_length_mismatch_is_a_typed_error() {
        let c = synth::generate(&synth::smoke_spec());
        let bad = Placement::zeros(3);
        let err = place_b2b_anchored(
            &c,
            &B2bConfig::default(),
            Some(AnchorSet {
                target: &bad,
                force_factor: 0.1,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, PlacerError::DegenerateInput { .. }), "{err}");
    }

    #[test]
    fn strong_anchors_pull_solution_toward_target() {
        // one movable cell on a net to a fixed pin at x=0; the wirelength
        // optimum is x=0, but a strong anchor at x=10 must win, and a
        // stronger anchor must land closer to the target than a weak one.
        let c = tiny_circuit(|b| {
            let f = b.add_cell("f", 0.0, 0.0, false).unwrap();
            let m = b.add_cell("m", 1.0, 1.0, true).unwrap();
            b.add_net("n0", vec![(f, 0.0, 0.0), (m, 0.0, 0.0)]);
        });
        let mut target = Placement::zeros(c.design.netlist.num_cells());
        target.x[1] = 10.0;
        target.y[1] = 2.0;
        let solve = |force: f64| {
            let (pl, _) = place_b2b_anchored(
                &c,
                &B2bConfig::default(),
                Some(AnchorSet {
                    target: &target,
                    force_factor: force,
                }),
            )
            .expect("valid anchored solve");
            pl.x[1]
        };
        let free = place_b2b(&c, &B2bConfig::default()).expect("valid").0.x[1];
        let weak = solve(0.5);
        let strong = solve(50.0);
        assert!(free < 0.5, "free optimum should hug the fixed pin: {free}");
        assert!(weak > free + 1.0, "anchor must pull toward target: {weak}");
        assert!(
            strong > weak && strong > 9.0,
            "stronger anchor must dominate: weak={weak} strong={strong}"
        );
    }

    #[test]
    fn zero_force_anchored_equals_plain_b2b() {
        let c = synth::generate(&synth::smoke_spec());
        let target = Placement::zeros(c.design.netlist.num_cells());
        let (plain, _) = place_b2b(&c, &B2bConfig::default()).expect("valid");
        let (anchored, _) = place_b2b_anchored(
            &c,
            &B2bConfig::default(),
            Some(AnchorSet {
                target: &target,
                force_factor: 0.0,
            }),
        )
        .expect("valid");
        assert_eq!(plain.x, anchored.x, "zero force must be bit-identical");
        assert_eq!(plain.y, anchored.y);
    }
}
