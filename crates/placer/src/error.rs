//! Typed errors for the placement flow.
//!
//! Every fallible entry point of this crate ([`crate::global::place`],
//! [`crate::pipeline::run`], …) returns [`PlacerError`] instead of
//! panicking: malformed inputs surface as [`PlacerError::Netlist`] with
//! file/line context from the parsers, degenerate-but-well-formed inputs
//! (nothing to place, zero-area die) as [`PlacerError::DegenerateInput`],
//! and unrecoverable numerical faults as
//! [`PlacerError::NumericalFailure`].

use mep_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Error produced by the placement flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacerError {
    /// Netlist construction or parsing failed (carries file/line context).
    Netlist(NetlistError),
    /// The input is well-formed but cannot be placed (e.g. no movable
    /// cells, zero-area die, non-finite initial coordinates).
    DegenerateInput {
        /// What makes the input degenerate.
        reason: String,
    },
    /// A numerical fault that the recovery guard could not handle (e.g. a
    /// non-finite objective before the first iteration).
    NumericalFailure {
        /// Iteration at which the fault surfaced (0 for setup).
        iteration: usize,
        /// What went wrong.
        detail: String,
    },
    /// Legalization could not produce an overlap-free placement — the
    /// design's movable area exceeds its free row capacity (globally or
    /// within one fence region), so some cell has no segment to live in.
    Legalize {
        /// Which cell failed to place and why.
        reason: String,
    },
}

impl fmt::Display for PlacerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacerError::Netlist(e) => write!(f, "{e}"),
            PlacerError::DegenerateInput { reason } => {
                write!(f, "degenerate placement input: {reason}")
            }
            PlacerError::NumericalFailure { iteration, detail } => {
                write!(f, "numerical failure at iteration {iteration}: {detail}")
            }
            PlacerError::Legalize { reason } => {
                write!(f, "legalization failed: {reason}")
            }
        }
    }
}

impl Error for PlacerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlacerError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for PlacerError {
    fn from(e: NetlistError) -> Self {
        PlacerError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = PlacerError::DegenerateInput {
            reason: "no movable cells".into(),
        };
        assert!(e.to_string().contains("no movable cells"));
        let e = PlacerError::NumericalFailure {
            iteration: 7,
            detail: "non-finite objective".into(),
        };
        assert!(e.to_string().contains("iteration 7"));
        let e: PlacerError = NetlistError::Parse {
            file: "nets",
            line: 3,
            message: "bad NetDegree".into(),
        }
        .into();
        assert!(e.to_string().contains("line 3"));
        let e = PlacerError::Legalize {
            reason: "no free row segment can host cell `c7`".into(),
        };
        assert!(e.to_string().contains("legalization failed"));
        assert!(e.to_string().contains("c7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlacerError>();
    }
}
