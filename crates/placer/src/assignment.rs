//! Minimum-cost assignment (Hungarian algorithm, O(n³)).
//!
//! Used by independent-set matching: once a set of cells is net-disjoint,
//! the cost of placing cell `i` on slot `j` is independent of the other
//! choices, so the optimal reassignment is exactly a min-cost perfect
//! matching on the `k × k` cost matrix. Brute force caps at `k ≤ 6`
//! (720 permutations); this solver handles the larger sets.
//!
//! Implementation: the standard potentials/augmenting-path formulation
//! (Jonker–Volgenant style shortest augmenting paths with dual updates).

/// Solves the min-cost assignment for a square `n × n` cost matrix given
/// in row-major order. Returns `(assignment, total_cost)` where
/// `assignment[row] = column`.
///
/// # Panics
///
/// Panics if `cost.len() != n * n` or any cost is not finite.
pub fn solve(cost: &[f64], n: usize) -> (Vec<usize>, f64) {
    assert_eq!(cost.len(), n * n, "cost matrix must be n×n");
    assert!(cost.iter().all(|c| c.is_finite()), "costs must be finite");
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    // 1-indexed internals (the classic formulation); p[j] = row matched to
    // column j, with row 0 / column 0 as virtual elements.
    let mut u = vec![0.0f64; n + 1]; // row potentials
    let mut v = vec![0.0f64; n + 1]; // column potentials
    let mut p = vec![0usize; n + 1]; // p[j]: row assigned to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // augment along the path
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i * n + j])
        .sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[f64], n: usize) -> f64 {
        fn rec(cost: &[f64], n: usize, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == n {
                *best = best.min(acc);
                return;
            }
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    rec(cost, n, row + 1, used, acc + cost[row * n + j], best);
                    used[j] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(cost, n, 0, &mut vec![false; n], 0.0, &mut best);
        best
    }

    #[test]
    fn identity_matrix_prefers_diagonal_of_zeros() {
        // cost 0 on diagonal, 1 elsewhere
        let n = 4;
        let mut cost = vec![1.0; n * n];
        for i in 0..n {
            cost[i * n + i] = 0.0;
        }
        let (assign, total) = solve(&cost, n);
        assert_eq!(total, 0.0);
        for (i, &j) in assign.iter().enumerate() {
            assert_eq!(i, j);
        }
    }

    #[test]
    fn known_small_instance() {
        // classic 3×3 example with optimum 5 (1+3+1? compute: rows pick 2,0,1)
        let cost = [4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0];
        let (_, total) = solve(&cost, 3);
        assert_eq!(total, brute_force(&cost, 3));
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in 1..=7 {
            for _trial in 0..20 {
                let cost: Vec<f64> = (0..n * n).map(|_| (rng() * 100.0).round()).collect();
                let (assign, total) = solve(&cost, n);
                // assignment is a permutation
                let mut seen = vec![false; n];
                for &j in &assign {
                    assert!(!seen[j]);
                    seen[j] = true;
                }
                let want = brute_force(&cost, n);
                assert!(
                    (total - want).abs() < 1e-9,
                    "n={n}: hungarian {total} vs brute {want} ({cost:?})"
                );
            }
        }
    }

    #[test]
    fn handles_negative_costs() {
        let cost = [-5.0, 2.0, 3.0, -1.0];
        let (_, total) = solve(&cost, 2);
        assert_eq!(total, brute_force(&cost, 2));
    }

    #[test]
    fn empty_instance() {
        let (assign, total) = solve(&[], 0);
        assert!(assign.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn large_instance_is_a_permutation_and_beats_identity() {
        let n = 40;
        let mut state = 7u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let cost: Vec<f64> = (0..n * n).map(|_| rng() * 100.0).collect();
        let (assign, total) = solve(&cost, n);
        let mut seen = vec![false; n];
        for &j in &assign {
            assert!(!seen[j]);
            seen[j] = true;
        }
        let identity: f64 = (0..n).map(|i| cost[i * n + i]).sum();
        assert!(total <= identity + 1e-9);
    }
}
