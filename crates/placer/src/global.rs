//! The electrostatic global-placement engine (ePlace loop).
//!
//! Per iteration: one Nesterov step on `Σ W_e + λ D`, then
//!
//! * the wirelength smoothing parameter is re-derived from the current
//!   density overflow `φ` — the paper's tangent schedule Eq. (14) for the
//!   Moreau model, ePlace's decade schedule for the exponential models;
//! * the density weight `λ` is increased per Eq. (15) with
//!   `(α_L, α_H) = (1.01, 1.02)` and `β = 2000`;
//!
//! until the overflow reaches the target (ISPD-style 0.07 default) or the
//! iteration cap. Optionally records the `(HPWL, φ)` trajectory that
//! regenerates Fig. 3.

use crate::objective::PlacementProblem;
use mep_netlist::bookshelf::BookshelfCircuit;
use mep_netlist::Placement;
use mep_optim::nesterov::Nesterov;
use mep_optim::{Optimizer, Problem};
use mep_wirelength::engine::{EngineStats, EvalEngine};
use mep_wirelength::{EplaceGammaSchedule, ModelKind, SmoothingSchedule, TangentTSchedule};
use std::sync::Arc;

/// Which schedule drives the Moreau smoothing parameter `t` (ablation of
/// the paper's Eq. (14) design choice; exponential models always use the
/// decade schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MoreauSchedule {
    /// The paper's tangent schedule, Eq. (14).
    #[default]
    Tangent,
    /// ePlace's decade schedule `10^{kφ+b}` applied to `t` instead of `γ`.
    Decade,
}

/// Which first-order optimizer drives the placement iterations.
///
/// ePlace (and the paper) use Nesterov; the alternatives implement the
/// related-work baselines and the "novel optimizers" the paper's
/// conclusion points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerKind {
    /// Nesterov with Lipschitz steplength prediction (ePlace, default).
    #[default]
    Nesterov,
    /// Adam with a steplength scaled from the bin size.
    Adam,
    /// Polak–Ribière–Polyak conjugate subgradient \[23\] — pairs naturally
    /// with `ModelKind::Hpwl` for non-smooth direct optimization.
    ConjugateSubgradient,
}

/// Configuration of the global placer.
#[derive(Debug, Clone)]
pub struct GlobalConfig {
    /// Wirelength model to optimize with.
    pub model: ModelKind,
    /// Smoothing schedule used when `model == Moreau` (Eq. (14) ablation).
    pub moreau_schedule: MoreauSchedule,
    /// First-order optimizer (ePlace Nesterov by default).
    pub optimizer: OptimizerKind,
    /// ePlace/DREAMPlace Jacobi preconditioner on the gradient (off by
    /// default: at our benchmark scale its effect is within ±0.6% and
    /// model-dependent; see `ablation_optimizer` to measure it).
    pub precondition: bool,
    /// Stop once density overflow falls below this (paper flow: 0.07).
    pub target_overflow: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Minimum iterations before the overflow stop can fire.
    pub min_iters: usize,
    /// Worker threads for the evaluation engine (wirelength + density).
    pub threads: usize,
    /// Record the per-iteration trajectory (Fig. 3).
    pub record_trajectory: bool,
    /// `t0` for the tangent schedule (paper default 4).
    pub t0: f64,
    /// `γ0` for the ePlace schedule.
    pub gamma0: f64,
    /// `(α_L, α_H)` of Eq. (15).
    pub alpha: (f64, f64),
    /// `β` of Eq. (15).
    pub beta: f64,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Moreau,
            moreau_schedule: MoreauSchedule::Tangent,
            optimizer: OptimizerKind::Nesterov,
            precondition: false,
            target_overflow: 0.07,
            max_iters: 600,
            min_iters: 30,
            threads: mep_wirelength::engine::default_threads(),
            record_trajectory: false,
            t0: 4.0,
            gamma0: 0.5,
            alpha: (1.01, 1.02),
            beta: 2000.0,
        }
    }
}

/// One point of the Fig. 3 trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Iteration index.
    pub iter: usize,
    /// Exact HPWL at this iteration.
    pub hpwl: f64,
    /// Density overflow `φ`.
    pub overflow: f64,
    /// Density weight `λ`.
    pub lambda: f64,
    /// Wirelength smoothing parameter in effect.
    pub smoothing: f64,
}

/// Result of global placement.
#[derive(Debug, Clone)]
pub struct GlobalResult {
    /// Final (unlegalized) placement.
    pub placement: Placement,
    /// Exact HPWL of the final placement.
    pub hpwl: f64,
    /// Final density overflow.
    pub overflow: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Per-iteration `(HPWL, φ)` samples when recording was enabled.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Evaluation-engine instrumentation (spawns, eval counts, stage times).
    pub engine_stats: EngineStats,
}

/// Runs ePlace-style global placement on a circuit, creating a persistent
/// evaluation engine with `config.threads` workers for the run.
pub fn place(circuit: &BookshelfCircuit, config: &GlobalConfig) -> GlobalResult {
    place_with_engine(circuit, config, Arc::new(EvalEngine::new(config.threads)))
}

/// Runs global placement on a caller-provided engine (so a pipeline can
/// share one worker pool across stages and aggregate instrumentation).
pub fn place_with_engine(
    circuit: &BookshelfCircuit,
    config: &GlobalConfig,
    engine: Arc<EvalEngine>,
) -> GlobalResult {
    let design = &circuit.design;
    let model = config.model.instantiate(1.0);
    let mut problem = PlacementProblem::new(design, &circuit.placement, model, engine.clone());
    problem.set_preconditioner(config.precondition);
    let mut params = problem.pack_params(&circuit.placement);
    problem.project(&mut params);

    // schedules sized by the bin grid
    let grid = problem.electrostatics().grid();
    let (bw, bh) = (grid.bin_w(), grid.bin_h());
    let tangent = TangentTSchedule::new(bw, bh).with_t0(config.t0);
    let decade = EplaceGammaSchedule::new(config.gamma0, bw, bh);
    let smoothing_for = |phi: f64| -> f64 {
        match config.model {
            ModelKind::Moreau => match config.moreau_schedule {
                MoreauSchedule::Tangent => tangent.value(phi),
                MoreauSchedule::Decade => decade.value(phi).max(1e-6),
            },
            ModelKind::Hpwl => 0.0,
            _ => decade.value(phi),
        }
    };

    // initial overflow & smoothing
    let report0 = problem.density_report(&params);
    let mut phi = report0.overflow;
    let d0 = report0.energy.max(1e-30);
    if config.model != ModelKind::Hpwl {
        problem.set_smoothing(smoothing_for(phi));
    }

    // λ0 per ePlace: ratio of gradient norms (wirelength vs density),
    // measured on the raw (unpreconditioned) gradient
    problem.set_preconditioner(false);
    let mut grad = vec![0.0; problem.dim()];
    problem.lambda = 0.0;
    problem.eval(&params, &mut grad);
    let wl_norm: f64 = grad.iter().map(|g| g.abs()).sum();
    problem.lambda = 1.0;
    problem.eval(&params, &mut grad);
    let both_norm: f64 = grad.iter().map(|g| g.abs()).sum();
    let density_norm = (both_norm - wl_norm).abs().max(1e-30);
    let lambda0 = (wl_norm / density_norm).max(1e-12);
    problem.lambda = lambda0;
    problem.set_preconditioner(config.precondition);

    // Eq. (15) state
    let (alpha_l, alpha_h) = config.alpha;
    let mut alpha_k = (alpha_l - 1.0) * lambda0;

    // initial steplength: first move ~ a couple of bins against ∇f
    let gmax = grad
        .iter()
        .fold(0.0_f64, |acc, g| acc.max(g.abs()))
        .max(1e-30);
    let initial_step = 0.5 * (bw + bh) / gmax;
    let mut optimizer: Box<dyn Optimizer> = match config.optimizer {
        OptimizerKind::Nesterov => Box::new(Nesterov::new(initial_step)),
        OptimizerKind::Adam => Box::new(mep_optim::adam::Adam::new(0.25 * (bw + bh))),
        OptimizerKind::ConjugateSubgradient => Box::new(mep_optim::cg::ConjugateSubgradient::new(
            2.0 * (bw + bh) * (problem.dim() as f64).sqrt(),
        )),
    };

    let mut trajectory = Vec::new();
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        optimizer.step(&mut problem, &mut params);
        let stats = problem.last_stats();
        phi = stats.overflow;

        // schedules
        if config.model != ModelKind::Hpwl {
            problem.set_smoothing(smoothing_for(phi));
        }
        let dk = stats.density_energy.max(0.0);
        let mult = alpha_h - (alpha_h - alpha_l) / (1.0 + (1.0 + config.beta * dk / d0).ln());
        alpha_k *= mult;
        problem.lambda += alpha_k;

        if config.record_trajectory {
            trajectory.push(TrajectoryPoint {
                iter,
                hpwl: problem.exact_hpwl(&params),
                overflow: phi,
                lambda: problem.lambda,
                smoothing: problem.smoothing(),
            });
        }

        if phi <= config.target_overflow && iter + 1 >= config.min_iters {
            break;
        }
    }

    let mut placement = circuit.placement.clone();
    problem.unpack_params(&params, &mut placement);
    let hpwl = mep_netlist::total_hpwl(&design.netlist, &placement);
    let overflow = problem.density_report(&params).overflow;
    GlobalResult {
        placement,
        hpwl,
        overflow,
        iterations,
        trajectory,
        engine_stats: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth;

    fn smoke_config(model: ModelKind) -> GlobalConfig {
        GlobalConfig {
            model,
            max_iters: 250,
            min_iters: 20,
            threads: 1,
            record_trajectory: true,
            ..GlobalConfig::default()
        }
    }

    #[test]
    fn overflow_decreases_substantially() {
        let c = synth::generate(&synth::smoke_spec());
        let r = place(&c, &smoke_config(ModelKind::Moreau));
        let first = r.trajectory.first().unwrap().overflow;
        assert!(
            r.overflow < 0.5 * first,
            "overflow {} from {first} after {} iters",
            r.overflow,
            r.iterations
        );
    }

    #[test]
    fn cells_spread_from_center() {
        let c = synth::generate(&synth::smoke_spec());
        let r = place(&c, &smoke_config(ModelKind::Moreau));
        let nl = &c.design.netlist;
        let die = c.design.die;
        // cells must no longer be piled in the middle 10% of the die
        let center = die.center();
        let spread = nl
            .movable_cells()
            .filter(|&cell| {
                let p = r.placement.center(nl, cell);
                (p.x - center.x).abs() > 0.05 * die.width()
                    || (p.y - center.y).abs() > 0.05 * die.height()
            })
            .count();
        assert!(
            spread > nl.num_movable() / 2,
            "only {spread} of {} cells moved off-center",
            nl.num_movable()
        );
        // and all stay inside the die
        for cell in nl.movable_cells() {
            assert!(die.contains_rect(&r.placement.cell_rect(nl, cell)));
        }
    }

    #[test]
    fn all_models_run_and_spread() {
        let c = synth::generate(&synth::smoke_spec());
        for kind in ModelKind::contestants() {
            let mut cfg = smoke_config(kind);
            cfg.max_iters = 120;
            cfg.record_trajectory = false;
            let r = place(&c, &cfg);
            assert!(r.hpwl.is_finite(), "{kind}");
            assert!(r.overflow < 0.9, "{kind}: overflow {}", r.overflow);
        }
    }

    #[test]
    fn engine_stats_cover_the_whole_run() {
        let c = synth::generate(&synth::smoke_spec());
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.max_iters = 40;
        cfg.record_trajectory = false;
        let r = place(&c, &cfg);
        let s = r.engine_stats;
        // one wirelength-gradient eval per optimizer eval, plus the λ0 probes
        assert!(s.wl_grad.count >= r.iterations as u64, "{s:?}");
        assert_eq!(s.wl_grad.count, s.density.count, "{s:?}");
        assert_eq!(s.spawned_threads, 0, "1-thread config must not spawn");
        assert_eq!(s.workspace_allocs, 1, "workspace built once, then reused");
        assert!(s.wl_grad.nanos > 0 && s.density.nanos > 0);
    }

    #[test]
    fn trajectory_is_recorded_per_iteration() {
        let c = synth::generate(&synth::smoke_spec());
        let r = place(&c, &smoke_config(ModelKind::Wa));
        assert_eq!(r.trajectory.len(), r.iterations);
        // λ increases monotonically per Eq. (15)
        for w in r.trajectory.windows(2) {
            assert!(w[1].lambda >= w[0].lambda);
        }
    }
}
