//! The electrostatic global-placement engine (ePlace loop).
//!
//! Per iteration: one Nesterov step on `Σ W_e + λ D`, then
//!
//! * the wirelength smoothing parameter is re-derived from the current
//!   density overflow `φ` — the paper's tangent schedule Eq. (14) for the
//!   Moreau model, ePlace's decade schedule for the exponential models;
//! * the density weight `λ` is increased per Eq. (15) with
//!   `(α_L, α_H) = (1.01, 1.02)` and `β = 2000`;
//!
//! until the overflow reaches the target (ISPD-style 0.07 default) or the
//! iteration cap. Optionally records the `(HPWL, φ)` trajectory that
//! regenerates Fig. 3.
//!
//! The loop runs under a numerical-health guard (see [`crate::guard`]):
//! each iteration's value/overflow/coordinates are checked for NaN/Inf,
//! divergence, and stagnation, a best-so-far snapshot is kept, and a
//! tripped guard rolls back + backs off the steplength, escalating after
//! repeated strikes down a degradation ladder (Moreau → WA → LSE model,
//! then the unplanned density transform) before giving up. On a clean run
//! the guard is pure observation and the result is bit-identical to the
//! unguarded loop.

use crate::cancel::CancelToken;
use crate::error::PlacerError;
use crate::guard::{
    Fault, GuardConfig, HealthMonitor, RecoveryAction, RecoveryEvent, RecoveryLog, Termination,
};
use crate::objective::PlacementProblem;
use mep_netlist::bookshelf::BookshelfCircuit;
use mep_netlist::Placement;
use mep_obs::{IterationRecord, NoopSink, TraceSink};
use mep_optim::nesterov::Nesterov;
use mep_optim::{Optimizer, Problem};
use mep_wirelength::engine::{EngineStats, EvalEngine};
use mep_wirelength::{EplaceGammaSchedule, ModelKind, SmoothingSchedule, TangentTSchedule};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which schedule drives the Moreau smoothing parameter `t` (ablation of
/// the paper's Eq. (14) design choice; exponential models always use the
/// decade schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MoreauSchedule {
    /// The paper's tangent schedule, Eq. (14).
    #[default]
    Tangent,
    /// ePlace's decade schedule `10^{kφ+b}` applied to `t` instead of `γ`.
    Decade,
}

/// Which first-order optimizer drives the placement iterations.
///
/// ePlace (and the paper) use Nesterov; the alternatives implement the
/// related-work baselines and the "novel optimizers" the paper's
/// conclusion points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerKind {
    /// Nesterov with Lipschitz steplength prediction (ePlace, default).
    #[default]
    Nesterov,
    /// Adam with a steplength scaled from the bin size.
    Adam,
    /// Polak–Ribière–Polyak conjugate subgradient \[23\] — pairs naturally
    /// with `ModelKind::Hpwl` for non-smooth direct optimization.
    ConjugateSubgradient,
}

/// Configuration of the global placer.
#[derive(Debug, Clone)]
pub struct GlobalConfig {
    /// Wirelength model to optimize with.
    pub model: ModelKind,
    /// Smoothing schedule used when `model == Moreau` (Eq. (14) ablation).
    pub moreau_schedule: MoreauSchedule,
    /// First-order optimizer (ePlace Nesterov by default).
    pub optimizer: OptimizerKind,
    /// ePlace/DREAMPlace Jacobi preconditioner on the gradient (off by
    /// default: at our benchmark scale its effect is within ±0.6% and
    /// model-dependent; see `ablation_optimizer` to measure it).
    pub precondition: bool,
    /// Stop once density overflow falls below this (paper flow: 0.07).
    pub target_overflow: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Minimum iterations before the overflow stop can fire.
    pub min_iters: usize,
    /// Worker threads for the evaluation engine (wirelength + density).
    pub threads: usize,
    /// Record the per-iteration trajectory (Fig. 3).
    pub record_trajectory: bool,
    /// `t0` for the tangent schedule (paper default 4).
    pub t0: f64,
    /// `γ0` for the ePlace schedule.
    pub gamma0: f64,
    /// `(α_L, α_H)` of Eq. (15).
    pub alpha: (f64, f64),
    /// `β` of Eq. (15).
    pub beta: f64,
    /// Multiplier on the bootstrapped λ₀ (and therefore on the Eq. (15)
    /// ramp rate). `1.0` is the paper flow; warm-started stages of the
    /// multilevel driver raise it so a placement that is already spread
    /// does not re-walk the whole density ramp from the beginning.
    pub lambda_scale: f64,
    /// Numerical-health guard (rollback, backoff, degradation ladder).
    pub guard: GuardConfig,
    /// Optional wall-clock budget; on expiry the best snapshot so far is
    /// returned as a partial result with [`Termination::WallClock`].
    pub time_budget: Option<Duration>,
    /// Test hook: `(after, count)` poisons `count` consecutive objective
    /// evaluations with NaN once `after` main-loop evaluations have run,
    /// exercising the recovery guard. `None` (the default) in all
    /// production flows.
    pub fault_injection: Option<(u64, u64)>,
    /// Per-iteration trace sink. The default [`NoopSink`] reports
    /// `enabled() == false`, so the loop skips building records (and the
    /// exact-HPWL evaluation feeding them) entirely.
    pub trace: Arc<dyn TraceSink>,
    /// Multilevel hierarchy level this run operates on (0 = the original
    /// finest netlist). Purely observational: stamped into every
    /// [`IterationRecord`] by the loop.
    pub level: u32,
    /// Flow-stage label stamped into trace records (`None` for the flat
    /// flow; the multilevel/ECO drivers set `"warm-ub"`, `"coarse"`,
    /// `"final"`, `"eco"`, …).
    pub stage: Option<String>,
    /// Cooperative cancellation handle, polled once per iteration
    /// alongside `time_budget`. The default token is inert; drivers (the
    /// `mep-serve` daemon, signal handlers) install a shared token to
    /// cancel or deadline a run mid-solve. On trip the loop restores the
    /// best-so-far snapshot and reports [`Termination::Cancelled`]
    /// (explicit cancel) or [`Termination::WallClock`] (deadline expiry).
    pub cancel: CancelToken,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Moreau,
            moreau_schedule: MoreauSchedule::Tangent,
            optimizer: OptimizerKind::Nesterov,
            precondition: false,
            target_overflow: 0.07,
            max_iters: 600,
            min_iters: 30,
            threads: mep_wirelength::engine::default_threads(),
            record_trajectory: false,
            t0: 4.0,
            gamma0: 0.5,
            alpha: (1.01, 1.02),
            beta: 2000.0,
            lambda_scale: 1.0,
            guard: GuardConfig::default(),
            time_budget: None,
            fault_injection: None,
            trace: Arc::new(NoopSink),
            level: 0,
            stage: None,
            cancel: CancelToken::new(),
        }
    }
}

/// One point of the Fig. 3 trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Iteration index.
    pub iter: usize,
    /// Exact HPWL at this iteration.
    pub hpwl: f64,
    /// Density overflow `φ`.
    pub overflow: f64,
    /// Density weight `λ`.
    pub lambda: f64,
    /// Wirelength smoothing parameter in effect.
    pub smoothing: f64,
}

/// Result of global placement.
#[derive(Debug, Clone)]
pub struct GlobalResult {
    /// Final (unlegalized) placement.
    pub placement: Placement,
    /// Exact HPWL of the final placement.
    pub hpwl: f64,
    /// Final density overflow.
    pub overflow: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Per-iteration `(HPWL, φ)` samples when recording was enabled.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Evaluation-engine instrumentation (spawns, eval counts, stage times).
    pub engine_stats: EngineStats,
    /// Spectral-transform kernel instrumentation (which kernels ran: lane
    /// tiles, scalar fallback lines, transposes) for the density solver.
    pub transform_stats: mep_density::TransformStats,
    /// Every recovery the guard performed (empty on a clean run).
    pub recovery: RecoveryLog,
    /// Why the loop stopped.
    pub termination: Termination,
}

/// Rejects inputs the loop cannot meaningfully run on: nothing to place,
/// a degenerate die, or non-finite starting coordinates.
pub(crate) fn validate_circuit(circuit: &BookshelfCircuit) -> Result<(), PlacerError> {
    let design = &circuit.design;
    if design.netlist.num_movable() == 0 {
        return Err(PlacerError::DegenerateInput {
            reason: format!(
                "netlist '{}' has no movable cells (all {} cells fixed)",
                design.name,
                design.netlist.num_cells()
            ),
        });
    }
    let (w, h) = (design.die.width(), design.die.height());
    // NaN dimensions fail the positivity test and land in the error arm
    let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
    if !positive(w) || !positive(h) || !w.is_finite() || !h.is_finite() {
        return Err(PlacerError::DegenerateInput {
            reason: format!("die has degenerate dimensions {w} × {h}"),
        });
    }
    let bad = circuit
        .placement
        .x
        .iter()
        .chain(circuit.placement.y.iter())
        .filter(|v| !v.is_finite())
        .count();
    if bad > 0 {
        return Err(PlacerError::DegenerateInput {
            reason: format!("initial placement has {bad} non-finite coordinate(s)"),
        });
    }
    Ok(())
}

/// Runs ePlace-style global placement on a circuit, creating a persistent
/// evaluation engine with `config.threads` workers for the run.
pub fn place(
    circuit: &BookshelfCircuit,
    config: &GlobalConfig,
) -> Result<GlobalResult, PlacerError> {
    place_with_engine(circuit, config, Arc::new(EvalEngine::new(config.threads)))
}

/// Runs global placement on a caller-provided engine (so a pipeline can
/// share one worker pool across stages and aggregate instrumentation).
pub fn place_with_engine(
    circuit: &BookshelfCircuit,
    config: &GlobalConfig,
    engine: Arc<EvalEngine>,
) -> Result<GlobalResult, PlacerError> {
    validate_circuit(circuit)?;
    // lint:allow(determinism): the wall-clock budget is an explicit opt-in termination criterion (GlobalConfig::time_budget); its nondeterminism is documented
    let start = Instant::now();
    let design = &circuit.design;
    let model = config.model.instantiate(1.0);
    let mut problem = PlacementProblem::new(design, &circuit.placement, model, engine.clone());
    problem.set_preconditioner(config.precondition);
    let mut params = problem.pack_params(&circuit.placement);
    problem.project(&mut params);

    // schedules sized by the bin grid
    let grid = problem.electrostatics().grid();
    let (bw, bh) = (grid.bin_w(), grid.bin_h());
    let tangent = TangentTSchedule::new(bw, bh).with_t0(config.t0);
    let decade = EplaceGammaSchedule::new(config.gamma0, bw, bh);
    let smoothing_for = |kind: ModelKind, phi: f64| -> f64 {
        match kind {
            ModelKind::Moreau => match config.moreau_schedule {
                MoreauSchedule::Tangent => tangent.value(phi),
                MoreauSchedule::Decade => decade.value(phi).max(1e-6),
            },
            ModelKind::Hpwl => 0.0,
            _ => decade.value(phi),
        }
    };

    // initial overflow & smoothing
    let report0 = problem.density_report(&params);
    let mut phi = report0.overflow;
    let d0 = report0.energy.max(1e-30);
    if !phi.is_finite() || !report0.energy.is_finite() {
        return Err(PlacerError::NumericalFailure {
            iteration: 0,
            detail: format!(
                "initial density report is non-finite (overflow {phi}, energy {})",
                report0.energy
            ),
        });
    }
    if config.model != ModelKind::Hpwl {
        problem.set_smoothing(smoothing_for(config.model, phi));
    }

    // λ0 per ePlace: ratio of gradient norms (wirelength vs density),
    // measured on the raw (unpreconditioned) gradient
    problem.set_preconditioner(false);
    let mut grad = vec![0.0; problem.dim()];
    problem.lambda = 0.0;
    problem.eval(&params, &mut grad);
    let wl_norm: f64 = grad.iter().map(|g| g.abs()).sum();
    problem.lambda = 1.0;
    problem.eval(&params, &mut grad);
    let both_norm: f64 = grad.iter().map(|g| g.abs()).sum();
    let density_norm = (both_norm - wl_norm).abs().max(1e-30);
    let lambda0 = (wl_norm / density_norm).max(1e-12) * config.lambda_scale.max(1e-6);
    if !lambda0.is_finite() {
        return Err(PlacerError::NumericalFailure {
            iteration: 0,
            detail: format!(
                "λ₀ bootstrap produced a non-finite weight \
                 (|∇W| {wl_norm}, |∇W + ∇D| {both_norm})"
            ),
        });
    }
    problem.lambda = lambda0;
    problem.set_preconditioner(config.precondition);

    // Eq. (15) state
    let (alpha_l, alpha_h) = config.alpha;
    let mut alpha_k = (alpha_l - 1.0) * lambda0;

    // initial steplength: first move ~ a couple of bins against ∇f
    let gmax = grad
        .iter()
        .fold(0.0_f64, |acc, g| acc.max(g.abs()))
        .max(1e-30);
    let initial_step = 0.5 * (bw + bh) / gmax;
    let mut optimizer: Box<dyn Optimizer> = match config.optimizer {
        OptimizerKind::Nesterov => Box::new(Nesterov::new(initial_step)),
        OptimizerKind::Adam => Box::new(mep_optim::adam::Adam::new(0.25 * (bw + bh))),
        OptimizerKind::ConjugateSubgradient => Box::new(mep_optim::cg::ConjugateSubgradient::new(
            2.0 * (bw + bh) * (problem.dim() as f64).sqrt(),
        )),
    };

    // the guard: seed the rollback snapshot with the pre-loop state so a
    // fault on the very first step has somewhere safe to return to
    let mut monitor = HealthMonitor::new(config.guard.clone());
    monitor.seed(&params, phi, problem.lambda, problem.smoothing());
    if let Some((after, count)) = config.fault_injection {
        problem.inject_nan(after, count);
    }

    let trace = config.trace.as_ref();
    let tracing = trace.enabled();
    let mut trajectory = Vec::new();
    let mut iterations = 0;
    let mut termination = Termination::IterationCap;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let step_report = optimizer.step(&mut problem, &mut params);
        let stats = problem.last_stats();
        let value = stats.wirelength + problem.lambda * stats.density_energy;
        // `None` on a healthy step, `Some("fault -> action")` otherwise.
        let mut guard_verdict: Option<String> = None;
        let mut stop = false;

        match monitor.check(
            value,
            step_report.grad_norm,
            step_report.step,
            stats.overflow,
            &params,
        ) {
            Ok(()) => {
                phi = stats.overflow;
                monitor.observe_healthy(
                    iter,
                    value,
                    phi,
                    &params,
                    problem.lambda,
                    problem.smoothing(),
                );

                // schedules
                if problem.model_kind() != ModelKind::Hpwl {
                    problem.set_smoothing(smoothing_for(problem.model_kind(), phi));
                }
                let dk = stats.density_energy.max(0.0);
                let mult =
                    alpha_h - (alpha_h - alpha_l) / (1.0 + (1.0 + config.beta * dk / d0).ln());
                alpha_k *= mult;
                problem.lambda += alpha_k;

                if config.record_trajectory {
                    trajectory.push(TrajectoryPoint {
                        iter,
                        hpwl: problem.exact_hpwl(&params),
                        overflow: phi,
                        lambda: problem.lambda,
                        smoothing: problem.smoothing(),
                    });
                }

                if phi <= config.target_overflow && iter + 1 >= config.min_iters {
                    termination = Termination::Converged;
                    stop = true;
                }
            }
            Err(fault) => {
                if matches!(fault, Fault::Stagnation { .. }) {
                    // no amount of retrying fixes a flat-lined optimizer:
                    // return the best snapshot as a partial result
                    restore_best(&monitor, &mut params, &mut problem, &mut phi);
                    monitor.record(RecoveryEvent {
                        iteration: iter,
                        fault,
                        action: RecoveryAction::Halt,
                    });
                    guard_verdict = Some(format!("{fault} -> {}", RecoveryAction::Halt));
                    termination = Termination::Stagnated;
                    stop = true;
                } else {
                    // escalate the degradation ladder after repeated strikes
                    let mut action = RecoveryAction::RollbackBackoff;
                    let mut halted = false;
                    if monitor.strike() >= config.guard.max_strikes {
                        let from = problem.model_kind();
                        let to = match from {
                            ModelKind::Moreau | ModelKind::BigChks | ModelKind::BigWa => {
                                Some(ModelKind::Wa)
                            }
                            ModelKind::Wa => Some(ModelKind::Lse),
                            _ => None,
                        };
                        if let Some(to) = to {
                            problem.set_model(to.instantiate(1.0));
                            action = RecoveryAction::DegradeModel { from, to };
                            monitor.clear_strikes();
                        } else if !problem.density_solver_degraded() {
                            problem.degrade_density_solver();
                            action = RecoveryAction::DegradeDensitySolver;
                            monitor.clear_strikes();
                        } else {
                            action = RecoveryAction::Halt;
                            halted = true;
                        }
                    }

                    if halted {
                        restore_best(&monitor, &mut params, &mut problem, &mut phi);
                        monitor.record(RecoveryEvent {
                            iteration: iter,
                            fault,
                            action,
                        });
                        termination = Termination::GuardExhausted;
                        stop = true;
                    } else {
                        // roll back to the best snapshot, re-derive the
                        // smoothing for the (possibly new) model, and shrink
                        // the steplength; the λ ramp and schedules are
                        // skipped for this iteration
                        restore_best(&monitor, &mut params, &mut problem, &mut phi);
                        if problem.model_kind() != ModelKind::Hpwl {
                            problem.set_smoothing(smoothing_for(problem.model_kind(), phi));
                        }
                        optimizer.backoff(config.guard.backoff);
                        monitor.record(RecoveryEvent {
                            iteration: iter,
                            fault,
                            action,
                        });
                        if monitor.exhausted() {
                            termination = Termination::GuardExhausted;
                            stop = true;
                        }
                    }
                    guard_verdict = Some(format!("{fault} -> {action}"));
                }
            }
        }

        if tracing {
            trace.record(&IterationRecord {
                iter: iter as u64,
                level: config.level as u64,
                stage: config.stage.clone(),
                objective: value,
                hpwl: problem.exact_hpwl(&params),
                overflow: phi,
                lambda: problem.lambda,
                smoothing: problem.smoothing(),
                step: step_report.step,
                grad_norm: step_report.grad_norm,
                guard: guard_verdict,
                elapsed_secs: start.elapsed().as_secs_f64(),
            });
        }
        if stop {
            break;
        }

        if let Some(budget) = config.time_budget {
            if start.elapsed() >= budget {
                restore_best(&monitor, &mut params, &mut problem, &mut phi);
                termination = Termination::WallClock;
                break;
            }
        }

        if let Some(t) = config.cancel.termination() {
            restore_best(&monitor, &mut params, &mut problem, &mut phi);
            termination = t;
            break;
        }
    }
    if tracing {
        // best-effort: a sink I/O failure must not fail the placement run;
        // the CLI surfaces flush errors at its own explicit flush
        let _ = trace.flush();
    }

    let mut placement = circuit.placement.clone();
    problem.unpack_params(&params, &mut placement);
    let hpwl = mep_netlist::total_hpwl(&design.netlist, &placement);
    let overflow = problem.density_report(&params).overflow;
    Ok(GlobalResult {
        placement,
        hpwl,
        overflow,
        iterations,
        trajectory,
        engine_stats: engine.stats(),
        transform_stats: problem.electrostatics().transform_stats(),
        recovery: monitor.into_log(),
        termination,
    })
}

/// Restores the monitor's best snapshot into the live loop state (params,
/// `λ`, overflow). No-op when no healthy iterate has been seen and the
/// snapshot was never seeded (disabled guard).
fn restore_best(
    monitor: &HealthMonitor,
    params: &mut [f64],
    problem: &mut PlacementProblem<'_>,
    phi: &mut f64,
) {
    if let Some(best) = monitor.best() {
        params.copy_from_slice(&best.params);
        problem.lambda = best.lambda;
        *phi = best.phi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth;

    fn smoke_config(model: ModelKind) -> GlobalConfig {
        GlobalConfig {
            model,
            max_iters: 250,
            min_iters: 20,
            threads: 1,
            record_trajectory: true,
            ..GlobalConfig::default()
        }
    }

    #[test]
    fn overflow_decreases_substantially() {
        let c = synth::generate(&synth::smoke_spec());
        let r = place(&c, &smoke_config(ModelKind::Moreau)).unwrap();
        let first = r.trajectory.first().unwrap().overflow;
        assert!(
            r.overflow < 0.5 * first,
            "overflow {} from {first} after {} iters",
            r.overflow,
            r.iterations
        );
        assert!(r.recovery.is_empty(), "clean run must not trip the guard");
    }

    #[test]
    fn cells_spread_from_center() {
        let c = synth::generate(&synth::smoke_spec());
        let r = place(&c, &smoke_config(ModelKind::Moreau)).unwrap();
        let nl = &c.design.netlist;
        let die = c.design.die;
        // cells must no longer be piled in the middle 10% of the die
        let center = die.center();
        let spread = nl
            .movable_cells()
            .filter(|&cell| {
                let p = r.placement.center(nl, cell);
                (p.x - center.x).abs() > 0.05 * die.width()
                    || (p.y - center.y).abs() > 0.05 * die.height()
            })
            .count();
        assert!(
            spread > nl.num_movable() / 2,
            "only {spread} of {} cells moved off-center",
            nl.num_movable()
        );
        // and all stay inside the die
        for cell in nl.movable_cells() {
            assert!(die.contains_rect(&r.placement.cell_rect(nl, cell)));
        }
    }

    #[test]
    fn all_models_run_and_spread() {
        let c = synth::generate(&synth::smoke_spec());
        for kind in ModelKind::contestants() {
            let mut cfg = smoke_config(kind);
            cfg.max_iters = 120;
            cfg.record_trajectory = false;
            let r = place(&c, &cfg).unwrap();
            assert!(r.hpwl.is_finite(), "{kind}");
            assert!(r.overflow < 0.9, "{kind}: overflow {}", r.overflow);
        }
    }

    #[test]
    fn engine_stats_cover_the_whole_run() {
        let c = synth::generate(&synth::smoke_spec());
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.max_iters = 40;
        cfg.record_trajectory = false;
        let r = place(&c, &cfg).unwrap();
        let s = r.engine_stats;
        // one wirelength-gradient eval per optimizer eval, plus the λ0 probes
        assert!(s.wl_grad.count >= r.iterations as u64, "{s:?}");
        assert_eq!(s.wl_grad.count, s.density.count, "{s:?}");
        assert_eq!(s.spawned_threads, 0, "1-thread config must not spawn");
        assert_eq!(s.workspace_allocs, 1, "workspace built once, then reused");
        assert!(s.wl_grad.nanos > 0 && s.density.nanos > 0);
    }

    #[test]
    fn trajectory_is_recorded_per_iteration() {
        let c = synth::generate(&synth::smoke_spec());
        let r = place(&c, &smoke_config(ModelKind::Wa)).unwrap();
        assert_eq!(r.trajectory.len(), r.iterations);
        // λ increases monotonically per Eq. (15)
        for w in r.trajectory.windows(2) {
            assert!(w[1].lambda >= w[0].lambda);
        }
    }

    #[test]
    fn termination_reports_cap_and_convergence() {
        let c = synth::generate(&synth::smoke_spec());
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.max_iters = 5;
        cfg.record_trajectory = false;
        let r = place(&c, &cfg).unwrap();
        assert_eq!(r.termination, Termination::IterationCap);
        assert!(!r.termination.is_partial());
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.record_trajectory = false;
        cfg.target_overflow = 0.25; // generous: reached well inside the cap
        let r = place(&c, &cfg).unwrap();
        assert_eq!(r.termination, Termination::Converged);
    }

    #[test]
    fn trace_sink_gets_one_record_per_iteration() {
        use mep_obs::RingSink;
        let c = synth::generate(&synth::smoke_spec());
        let sink = Arc::new(RingSink::new(4096));
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.max_iters = 30;
        cfg.record_trajectory = false;
        cfg.trace = sink.clone();
        let r = place(&c, &cfg).unwrap();
        let recs = sink.records();
        assert_eq!(recs.len(), r.iterations, "one record per Nesterov step");
        for (i, rec) in recs.iter().enumerate() {
            assert_eq!(rec.iter, i as u64);
            assert!(rec.objective.is_finite());
            assert!(rec.hpwl.is_finite() && rec.hpwl > 0.0);
            assert!(rec.overflow.is_finite() && rec.overflow >= 0.0);
            assert!(rec.lambda > 0.0);
            assert!(rec.smoothing > 0.0, "Moreau t-schedule is positive");
            assert!(rec.step > 0.0);
            assert!(rec.grad_norm >= 0.0);
            assert!(rec.guard.is_none(), "clean run has no guard verdicts");
            assert!(rec.elapsed_secs >= 0.0);
        }
    }

    #[test]
    fn trace_records_guard_verdicts_on_faults() {
        use mep_obs::RingSink;
        let c = synth::generate(&synth::smoke_spec());
        let sink = Arc::new(RingSink::new(4096));
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.max_iters = 40;
        cfg.record_trajectory = false;
        cfg.fault_injection = Some((10, 2));
        cfg.trace = sink.clone();
        place(&c, &cfg).unwrap();
        let recs = sink.records();
        let faults: Vec<&IterationRecord> = recs.iter().filter(|r| r.guard.is_some()).collect();
        assert!(
            !faults.is_empty(),
            "injected NaNs must show up in the trace"
        );
        for rec in faults {
            let verdict = rec.guard.as_deref().unwrap();
            assert!(verdict.contains("->"), "verdict {verdict:?}");
        }
    }

    #[test]
    fn cancelled_token_returns_a_partial_result() {
        let c = synth::generate(&synth::smoke_spec());
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.record_trajectory = false;
        let token = crate::cancel::CancelToken::new();
        cfg.cancel = token.clone();
        token.cancel();
        let r = place(&c, &cfg).unwrap();
        assert_eq!(r.termination, Termination::Cancelled);
        assert!(r.termination.is_partial());
        assert_eq!(r.iterations, 1, "token is polled after the first step");
        assert!(r.hpwl.is_finite());
    }

    #[test]
    fn token_deadline_matches_time_budget_semantics() {
        let c = synth::generate(&synth::smoke_spec());
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.record_trajectory = false;
        cfg.cancel = crate::cancel::CancelToken::with_deadline_in(Duration::ZERO);
        let r = place(&c, &cfg).unwrap();
        assert_eq!(r.termination, Termination::WallClock);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn wall_clock_budget_returns_a_partial_result() {
        let c = synth::generate(&synth::smoke_spec());
        let mut cfg = smoke_config(ModelKind::Moreau);
        cfg.record_trajectory = false;
        cfg.time_budget = Some(Duration::ZERO);
        let r = place(&c, &cfg).unwrap();
        assert_eq!(r.termination, Termination::WallClock);
        assert!(r.termination.is_partial());
        assert_eq!(r.iterations, 1, "budget expires after the first step");
        assert!(r.hpwl.is_finite());
    }
}
