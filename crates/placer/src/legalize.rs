//! Legalization: snap the global placement onto rows and sites with
//! minimal movement.
//!
//! Two stages, mirroring the paper's flow (Abacus \[37\] via DREAMPlace):
//!
//! 1. **Macro legalization** — movable macros (taller than one row) are
//!    placed greedily by descending area onto row-aligned, collision-free
//!    positions nearest their global-placement location, then become
//!    obstacles.
//! 2. **Abacus** — standard cells are legalized row by row: each row
//!    segment (row minus obstacles) keeps a list of *clusters* whose
//!    optimal positions minimize total quadratic displacement; inserting a
//!    cell merges clusters until no overlap remains (the classic dynamic
//!    clustering recurrence).

use crate::error::PlacerError;
use crate::telemetry::DispHistogram;
use mep_netlist::{CellId, Design, Placement, Rect};

/// Report of one legalization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalizeReport {
    /// Average displacement of movable cells (Manhattan).
    pub avg_displacement: f64,
    /// Maximum displacement.
    pub max_displacement: f64,
    /// Number of movable macros legalized in stage 1.
    pub macros: usize,
    /// Cells that could not be placed in their best rows and were spilled
    /// to any free segment (0 on healthy runs).
    pub spills: usize,
    /// Histogram of per-cell displacement in row-height multiples.
    pub disp_hist: DispHistogram,
}

/// The half-open range of row indices whose interior a rect `[yl, yh)`
/// overlaps, where row `r` spans `[die_yl + r·row_h, die_yl + (r+1)·row_h)`.
///
/// Written with explicit clamping instead of relying on `as usize`
/// saturation: a zero-height rect, a rect entirely below the bottom row,
/// or one entirely above the top row maps to an empty range, and a rect
/// whose `yh` lands exactly on a row boundary does **not** include the row
/// above it (touching is not overlapping, matching
/// [`Rect::intersects`]). The floor/ceil candidates are tightened by
/// direct boundary comparisons so float noise in the division cannot add
/// a spurious edge row.
pub(crate) fn row_window(
    yl: f64,
    yh: f64,
    die_yl: f64,
    row_h: f64,
    nrows: usize,
) -> std::ops::Range<usize> {
    if row_h <= 0.0
        || row_h.is_nan()
        || nrows == 0
        || !yl.is_finite()
        || !yh.is_finite()
        || yh <= yl
    {
        return 0..0;
    }
    // clamp in f64 *before* the usize cast — huge or negative relative
    // coordinates must not depend on cast saturation semantics
    let clamp_idx = |v: f64| -> usize {
        if v <= 0.0 {
            0
        } else if v >= nrows as f64 {
            nrows
        } else {
            v as usize
        }
    };
    let mut lo = clamp_idx(((yl - die_yl) / row_h).floor());
    let mut hi = clamp_idx(((yh - die_yl) / row_h).ceil());
    // tighten against the actual row boundaries: row r is overlapped iff
    // yl < bottom(r + 1) and yh > bottom(r), up to the codebase-standard
    // relative tolerance — an "overlap" thinner than 1e-9 row heights is
    // float noise from the division, not geometry
    let eps = 1e-9 * row_h;
    let bottom = |r: usize| die_yl + r as f64 * row_h;
    while lo < hi && yl >= bottom(lo + 1) - eps {
        lo += 1;
    }
    while hi > lo && yh <= bottom(hi - 1) + eps {
        hi -= 1;
    }
    if lo >= hi {
        return 0..0;
    }
    lo..hi
}

/// A free interval of one row. Segments inside a fence region are tagged
/// with the region index and accept only that region's cells (DEF FENCE
/// semantics: fences are exclusive).
#[derive(Debug, Clone)]
struct Segment {
    xl: f64,
    xh: f64,
    used: f64,
    region: Option<u16>,
    clusters: Vec<Cluster>,
}

/// Abacus cluster: cells packed shoulder to shoulder at optimal position
/// `x = q / e`.
#[derive(Debug, Clone)]
struct Cluster {
    e: f64,
    q: f64,
    w: f64,
    x: f64,
    cells: Vec<CellId>,
}

impl Cluster {
    fn new(cell: CellId, weight: f64, target: f64, width: f64) -> Self {
        Self {
            e: weight,
            q: weight * target,
            w: width,
            x: target,
            cells: vec![cell],
        }
    }

    fn add_cluster(&mut self, other: &Cluster) {
        self.e += other.e;
        self.q += other.q - other.e * self.w;
        self.w += other.w;
        self.cells.extend_from_slice(&other.cells);
    }

    fn place(&mut self, seg_xl: f64, seg_xh: f64) {
        self.x = (self.q / self.e).clamp(seg_xl, (seg_xh - self.w).max(seg_xl));
    }
}

/// Inserts a cell into the segment's cluster list, collapsing overlaps.
/// Returns the cell's final x.
fn segment_insert(seg: &mut Segment, cell: CellId, weight: f64, target: f64, width: f64) -> f64 {
    let target = target.clamp(seg.xl, (seg.xh - width).max(seg.xl));
    let mut c = Cluster::new(cell, weight, target, width);
    c.place(seg.xl, seg.xh);
    // merge with predecessor while overlapping
    while let Some(last) = seg.clusters.last() {
        if last.x + last.w > c.x {
            let mut merged = seg.clusters.pop().expect("checked non-empty");
            merged.add_cluster(&c);
            merged.place(seg.xl, seg.xh);
            c = merged;
        } else {
            break;
        }
    }
    seg.used += width;
    // the inserted cell sits at the tail of the (possibly merged) cluster
    let x = c.x + c.w - width;
    seg.clusters.push(c);
    x
}

/// Simulates [`segment_insert`] without mutating the segment; returns the
/// cell's would-be x.
fn segment_trial(seg: &Segment, weight: f64, target: f64, width: f64) -> f64 {
    let target = target.clamp(seg.xl, (seg.xh - width).max(seg.xl));
    let mut e = weight;
    let mut q = weight * target;
    let mut w = width;
    let mut x = (q / e).clamp(seg.xl, (seg.xh - w).max(seg.xl));
    for last in seg.clusters.iter().rev() {
        if last.x + last.w > x {
            // merge `last` in front of the trial cluster
            let mut me = last.e;
            let mut mq = last.q;
            let mw = last.w;
            mq += q - e * mw;
            me += e;
            e = me;
            q = mq;
            w += mw;
            x = (q / e).clamp(seg.xl, (seg.xh - w).max(seg.xl));
        } else {
            break;
        }
    }
    x + w - width
}

/// Legalizes `gp` for `design`. Returns the legal placement and a report.
///
/// # Errors
///
/// Returns [`PlacerError::Legalize`] when some cell has no free row
/// segment left to live in — the design's movable area exceeds its free
/// row capacity (globally, within one fence region, or after site
/// snapping shrank a segment's usable span). Such a design cannot be
/// placed overlap-free, so no placement is returned.
///
/// # Panics
///
/// Panics if the design has no rows (checked at [`Design`] construction).
pub fn legalize(
    design: &Design,
    gp: &Placement,
) -> Result<(Placement, LegalizeReport), PlacerError> {
    let netlist = &design.netlist;
    let mut legal = gp.clone();
    let row_h = design.rows.first().expect("design has rows").height;
    let die = design.die;

    // --- obstacles: fixed cells with area -----------------------------------
    let mut obstacles: Vec<Rect> = netlist
        .fixed_cells()
        .map(|c| gp.cell_rect(netlist, c))
        .filter(|r| r.area() > 0.0)
        .collect();

    // --- stage 1: movable macros ---------------------------------------------
    let mut macros: Vec<CellId> = netlist
        .movable_cells()
        .filter(|&c| netlist.cell_height(c) > row_h + 1e-9)
        .collect();
    macros.sort_by(|&a, &b| netlist.cell_area(b).total_cmp(&netlist.cell_area(a)));
    let n_macros = macros.len();
    for &m in &macros {
        let w = netlist.cell_width(m);
        let h = netlist.cell_height(m);
        let tx = gp.x[m.index()];
        let ty = gp.y[m.index()];
        // region-constrained macros are boxed into their fence;
        // unconstrained macros must avoid every fence (fences are exclusive)
        let region = design.region_of(m);
        let bound = region.map(|r| r.rect).unwrap_or(die);
        let forbidden: Vec<Rect> = if region.is_none() {
            design.regions.iter().map(|r| r.rect).collect()
        } else {
            Vec::new()
        };
        let mut best: Option<(f64, f64, f64)> = None; // (cost, x, y)
        for row in &design.rows {
            let y = row.y;
            if y + h > bound.yh + 1e-9 || y < bound.yl - 1e-9 {
                continue;
            }
            let dy = (y - ty).abs();
            if let Some((bc, _, _)) = best {
                if dy >= bc {
                    continue; // rows are scanned fully; dy alone already worse
                }
            }
            // candidate x positions: the target, plus obstacle edges
            let mut candidates = vec![tx.clamp(bound.xl, bound.xh - w)];
            let span = Rect::new(bound.xl, y, bound.xh, y + h);
            for o in &obstacles {
                if o.intersects(&span) {
                    candidates.push((o.xh).clamp(bound.xl, bound.xh - w));
                    candidates.push((o.xl - w).clamp(bound.xl, bound.xh - w));
                }
            }
            for &cx in &candidates {
                let cx = cx.round(); // site-align (site width 1)
                if cx < bound.xl - 1e-9 || cx + w > bound.xh + 1e-9 {
                    continue;
                }
                let rect = Rect::from_origin_size(cx, y, w, h);
                if obstacles.iter().any(|o| o.intersects(&rect))
                    || forbidden.iter().any(|f| f.intersects(&rect))
                {
                    continue;
                }
                let cost = (cx - tx).abs() + dy;
                if best.is_none_or(|(bc, _, _)| cost < bc) {
                    best = Some((cost, cx, y));
                }
            }
        }
        let (_, bx, by) =
            best.unwrap_or((0.0, die.xl, design.rows.last().expect("design has rows").y));
        legal.x[m.index()] = bx;
        legal.y[m.index()] = by;
        obstacles.push(Rect::from_origin_size(bx, by, w, h));
    }

    // --- stage 2: Abacus for standard cells ----------------------------------
    // build per-row segments
    let mut rows: Vec<(f64, Vec<Segment>)> = Vec::with_capacity(design.rows.len());
    for row in &design.rows {
        let band = Rect::new(row.xl, row.y, row.xh, row.y + row.height);
        // gather obstacle x-intervals overlapping this row
        let mut cuts: Vec<(f64, f64)> = obstacles
            .iter()
            .filter(|o| o.intersects(&band))
            .map(|o| (o.xl.max(row.xl), o.xh.min(row.xh)))
            .collect();
        cuts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut segments = Vec::new();
        let mut cursor = row.xl;
        for (cl, ch) in cuts {
            if cl > cursor + 1e-9 {
                segments.push(Segment {
                    xl: cursor,
                    xh: cl,
                    used: 0.0,
                    region: None,
                    clusters: Vec::new(),
                });
            }
            cursor = cursor.max(ch);
        }
        if row.xh > cursor + 1e-9 {
            segments.push(Segment {
                xl: cursor,
                xh: row.xh,
                used: 0.0,
                region: None,
                clusters: Vec::new(),
            });
        }
        // split segments at fence boundaries; tag the fence interior
        for (r_idx, region) in design.regions.iter().enumerate() {
            let fence = region.rect;
            if row.y < fence.yl - 1e-9 || row.y + row.height > fence.yh + 1e-9 {
                continue; // row not (fully) inside the fence's vertical span
            }
            let mut split: Vec<Segment> = Vec::with_capacity(segments.len() + 2);
            for seg in segments.drain(..) {
                let il = seg.xl.max(fence.xl);
                let ih = seg.xh.min(fence.xh);
                if ih <= il + 1e-9 {
                    split.push(seg); // no overlap with this fence
                    continue;
                }
                if il > seg.xl + 1e-9 {
                    split.push(Segment {
                        xl: seg.xl,
                        xh: il,
                        used: 0.0,
                        region: seg.region,
                        clusters: Vec::new(),
                    });
                }
                split.push(Segment {
                    xl: il,
                    xh: ih,
                    used: 0.0,
                    region: Some(r_idx as u16),
                    clusters: Vec::new(),
                });
                if seg.xh > ih + 1e-9 {
                    split.push(Segment {
                        xl: ih,
                        xh: seg.xh,
                        used: 0.0,
                        region: seg.region,
                        clusters: Vec::new(),
                    });
                }
            }
            segments = split;
        }
        rows.push((row.y, segments));
    }

    // standard cells sorted by x (Abacus processing order)
    let mut std_cells: Vec<CellId> = netlist
        .movable_cells()
        .filter(|&c| netlist.cell_height(c) <= row_h + 1e-9)
        .collect();
    std_cells.sort_by(|&a, &b| gp.x[a.index()].total_cmp(&gp.x[b.index()]));

    let mut spills = 0usize;
    for &cell in &std_cells {
        let w = netlist.cell_width(cell).max(1e-9);
        let tx = gp.x[cell.index()];
        let ty = gp.y[cell.index()];
        let cell_region = design.cell_region.get(cell.index()).copied().flatten();
        // candidate rows ordered by |dy|
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| (rows[a].0 - ty).abs().total_cmp(&(rows[b].0 - ty).abs()));
        let mut best: Option<(f64, usize, usize)> = None; // cost, row, segment
        for &ri in &order {
            let dy = (rows[ri].0 - ty).abs();
            if let Some((bc, _, _)) = best {
                if dy * dy >= bc {
                    break; // rows are sorted by |dy|; no later row can win
                }
            }
            for (si, seg) in rows[ri].1.iter().enumerate() {
                if seg.region != cell_region {
                    continue;
                }
                if seg.used + w > seg.xh - seg.xl + 1e-9 {
                    continue;
                }
                let x = segment_trial(seg, w, tx, w);
                let cost = (x - tx) * (x - tx) + dy * dy;
                if best.is_none_or(|(bc, _, _)| cost < bc) {
                    best = Some((cost, ri, si));
                }
            }
        }
        let (ri, si) = match best {
            Some((_, ri, si)) => (ri, si),
            None => {
                // spill: first segment anywhere with room
                spills += 1;
                let mut found = None;
                'outer: for (ri, (_, segs)) in rows.iter().enumerate() {
                    for (si, seg) in segs.iter().enumerate() {
                        if seg.region == cell_region && seg.used + w <= seg.xh - seg.xl + 1e-9 {
                            found = Some((ri, si));
                            break 'outer;
                        }
                    }
                }
                match found {
                    Some(slot) => slot,
                    // dense or degenerate designs (utilization ≈ 1, or an
                    // over-subscribed fence) can leave a cell with no
                    // segment to live in anywhere — a typed error, not a
                    // library panic
                    None => {
                        return Err(PlacerError::Legalize {
                            reason: format!(
                                "no free row segment can host cell `{}` \
                                 (width {w:.3}, region {cell_region:?}): movable \
                                 area exceeds free row capacity",
                                netlist.cell_name(cell)
                            ),
                        })
                    }
                }
            }
        };
        let y = rows[ri].0;
        let x = segment_insert(&mut rows[ri].1[si], cell, w, tx, w);
        legal.x[cell.index()] = x;
        legal.y[cell.index()] = y;
    }

    // --- emit final cluster positions with site snapping ---------------------
    // Site snapping can shrink a segment's usable span (`ceil(xl)` eats up
    // to one site, and rounding cluster starts up can push the packing
    // right), so a segment that fit its clusters exactly during insertion
    // may be *overfull* here. Cells that would be emitted past `seg.xh`
    // (overlapping the neighboring obstacle/segment or leaving the die)
    // are collected and re-placed into remaining free gaps below.
    struct EmittedSeg {
        y: f64,
        xl: f64,
        xh: f64,
        /// End of the occupied prefix after snapping (next free x).
        end: f64,
        region: Option<u16>,
    }
    let mut emitted: Vec<EmittedSeg> = Vec::new();
    let mut snap_overflow: Vec<CellId> = Vec::new();
    for (y, segs) in &rows {
        for seg in segs {
            // walk clusters left to right, snapping to integer sites while
            // keeping order and non-overlap
            let mut cursor = seg.xl.ceil();
            let total: f64 = seg.clusters.iter().map(|c| c.w).sum();
            let mut remaining = total;
            for c in &seg.clusters {
                let snapped = c.x.round().max(cursor);
                let latest = (seg.xh - remaining).floor();
                let start = snapped.min(latest).max(cursor);
                let mut x = start;
                for &cell in &c.cells {
                    let cw = netlist.cell_width(cell);
                    if x + cw > seg.xh + 1e-9 {
                        // overfull after snapping: emitting here would
                        // escape the segment — spill instead
                        snap_overflow.push(cell);
                        continue;
                    }
                    legal.x[cell.index()] = x;
                    legal.y[cell.index()] = *y;
                    x += cw;
                }
                cursor = x;
                remaining -= c.w;
            }
            emitted.push(EmittedSeg {
                y: *y,
                xl: seg.xl,
                xh: seg.xh,
                end: cursor,
                region: seg.region,
            });
        }
    }
    // second-chance placement: first site-aligned gap with room, matching
    // the cell's fence region
    for &cell in &snap_overflow {
        let w = netlist.cell_width(cell).max(1e-9);
        let cell_region = design.cell_region.get(cell.index()).copied().flatten();
        let mut placed = false;
        for es in emitted.iter_mut() {
            if es.region != cell_region {
                continue;
            }
            let x = es.end.max(es.xl).ceil();
            if x + w <= es.xh + 1e-9 {
                legal.x[cell.index()] = x;
                legal.y[cell.index()] = es.y;
                es.end = x + w;
                spills += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(PlacerError::Legalize {
                reason: format!(
                    "site snapping left no segment with room for cell `{}` \
                     (width {w:.3}, region {cell_region:?})",
                    netlist.cell_name(cell)
                ),
            });
        }
    }

    // --- report ---------------------------------------------------------------
    let mut total_disp = 0.0;
    let mut max_disp = 0.0_f64;
    let mut count = 0usize;
    let mut disp_hist = DispHistogram::default();
    for cell in netlist.movable_cells() {
        let d = (legal.x[cell.index()] - gp.x[cell.index()]).abs()
            + (legal.y[cell.index()] - gp.y[cell.index()]).abs();
        total_disp += d;
        max_disp = max_disp.max(d);
        count += 1;
        disp_hist.observe(d / row_h);
    }
    Ok((
        legal,
        LegalizeReport {
            avg_displacement: if count > 0 {
                total_disp / count as f64
            } else {
                0.0
            },
            max_displacement: max_disp,
            macros: n_macros,
            spills,
            disp_hist,
        },
    ))
}

/// A legality violation found by [`check_legal`].
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Cell pokes outside the die.
    OutsideDie(CellId),
    /// Two placed rectangles overlap.
    Overlap(CellId, CellId),
    /// Standard cell not aligned to a row bottom.
    OffRow(CellId),
    /// Region-constrained cell placed outside its fence.
    OutsideRegion(CellId),
}

/// Checks a placement for legality (movable cells only; fixed cells are
/// treated as obstacles). Returns all violations found.
pub fn check_legal(design: &Design, placement: &Placement) -> Vec<Violation> {
    let netlist = &design.netlist;
    let die = design.die;
    let row_h = design.rows.first().map(|r| r.height).unwrap_or(1.0);
    let mut violations = Vec::new();

    // die containment + row alignment + fence containment
    for cell in netlist.movable_cells() {
        let r = placement.cell_rect(netlist, cell);
        if !die.contains_rect(&r) {
            violations.push(Violation::OutsideDie(cell));
        }
        let dy = (r.yl - die.yl) / row_h;
        if (dy - dy.round()).abs() > 1e-6 {
            violations.push(Violation::OffRow(cell));
        }
        if let Some(region) = design.region_of(cell) {
            if !region.rect.contains_rect(&r) {
                violations.push(Violation::OutsideRegion(cell));
            }
        }
    }

    // overlaps via per-row sweep (macros appear in every row they span)
    let nrows = design.rows.len().max(1);
    let mut by_row: Vec<Vec<CellId>> = vec![Vec::new(); nrows];
    let occupied = |c: CellId| -> Rect { placement.cell_rect(netlist, c) };
    for cell in netlist.cells() {
        // lint:allow(float-eq): zero-area pads are exactly zero by construction
        if !netlist.is_movable(cell) && netlist.cell_area(cell) == 0.0 {
            continue;
        }
        let r = occupied(cell);
        // lint:allow(float-eq): zero-area obstacles are exactly zero by construction
        if r.area() == 0.0 {
            continue;
        }
        for row in row_window(r.yl, r.yh, die.yl, row_h, nrows) {
            by_row[row].push(cell);
        }
    }
    // lint:allow(determinism): membership-only dedup of reported overlap pairs; never iterated
    let mut seen = std::collections::HashSet::new();
    for row in &mut by_row {
        row.sort_by(|&a, &b| placement.x[a.index()].total_cmp(&placement.x[b.index()]));
        for pair in row.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (ra, rb) = (occupied(a), occupied(b));
            if ra.intersects(&rb) && seen.insert((a.min(b), a.max(b))) {
                // only movable-involved overlaps are violations
                if netlist.is_movable(a) || netlist.is_movable(b) {
                    violations.push(Violation::Overlap(a.min(b), a.max(b)));
                }
            }
        }
    }
    violations
}

/// Violation counts of one full legality audit — the harness-facing
/// summary [`audit_legality`] produces (the PEKO suboptimality harness
/// and the legalizer property tests both assert on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LegalityAudit {
    /// Pairs of placed rectangles that overlap (movable-involved).
    pub overlaps: usize,
    /// Movable cells poking outside the die.
    pub outside_die: usize,
    /// Standard cells not aligned to a row bottom.
    pub off_row: usize,
    /// Cells whose x is not on the `row.xl + k·site_width` lattice.
    ///
    /// Only meaningful for designs whose cell widths are integer
    /// multiples of the site width (every synthetic generator in this
    /// workspace); fractional-width test designs legitimately pack cells
    /// off-lattice inside a cluster.
    pub off_site: usize,
    /// Region-constrained cells placed outside their fence.
    pub outside_region: usize,
}

impl LegalityAudit {
    /// All invariants hold, including site alignment.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// The geometric invariants every legal placement must satisfy
    /// regardless of cell-width granularity: overlap-free, in-die,
    /// row-aligned, fence-respecting (site alignment excluded).
    pub fn geometry_clean(&self) -> bool {
        self.overlaps + self.outside_die + self.off_row + self.outside_region == 0
    }

    /// Total violation count across all classes.
    pub fn total(&self) -> usize {
        self.overlaps + self.outside_die + self.off_row + self.off_site + self.outside_region
    }
}

impl std::fmt::Display for LegalityAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "overlaps={} outside_die={} off_row={} off_site={} outside_region={}",
            self.overlaps, self.outside_die, self.off_row, self.off_site, self.outside_region
        )
    }
}

/// Audits a placement against every legality invariant and returns the
/// per-class violation counts: pairwise overlap-free, in-die, row-aligned,
/// site-aligned, and fence-respecting.
///
/// This is the mandatory audit the PEKO suboptimality harness runs on
/// every reported placement; [`check_legal`] remains the itemized
/// (per-cell) variant used by tests that need the offending IDs.
pub fn audit_legality(design: &Design, placement: &Placement) -> LegalityAudit {
    let mut audit = LegalityAudit::default();
    for v in check_legal(design, placement) {
        match v {
            Violation::Overlap(_, _) => audit.overlaps += 1,
            Violation::OutsideDie(_) => audit.outside_die += 1,
            Violation::OffRow(_) => audit.off_row += 1,
            Violation::OutsideRegion(_) => audit.outside_region += 1,
        }
    }
    // site alignment: x must land on the nearest row's site lattice
    let netlist = &design.netlist;
    let row_h = design.rows.first().map(|r| r.height).unwrap_or(1.0);
    for cell in netlist.movable_cells() {
        let x = placement.x[cell.index()];
        let y = placement.y[cell.index()];
        if !x.is_finite() || !y.is_finite() {
            audit.off_site += 1;
            continue;
        }
        let ri = if row_h > 0.0 {
            (((y - design.die.yl) / row_h).round().max(0.0) as usize)
                .min(design.rows.len().saturating_sub(1))
        } else {
            0
        };
        let Some(row) = design.rows.get(ri) else {
            continue;
        };
        if row.site_width <= 0.0 {
            continue;
        }
        let k = (x - row.xl) / row.site_width;
        if (k - k.round()).abs() > 1e-6 {
            audit.off_site += 1;
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{place, GlobalConfig};
    use mep_netlist::synth;
    use mep_wirelength::ModelKind;

    fn legalized_smoke() -> (
        mep_netlist::bookshelf::BookshelfCircuit,
        Placement,
        LegalizeReport,
    ) {
        let c = synth::generate(&synth::smoke_spec());
        let cfg = GlobalConfig {
            model: ModelKind::Moreau,
            max_iters: 150,
            threads: 1,
            ..GlobalConfig::default()
        };
        let gp = place(&c, &cfg).expect("placement flow");
        let (legal, report) = legalize(&c.design, &gp.placement).expect("legalize");
        (c, legal, report)
    }

    #[test]
    fn result_is_legal() {
        let (c, legal, report) = legalized_smoke();
        let violations = check_legal(&c.design, &legal);
        assert!(
            violations.is_empty(),
            "{} violations, e.g. {:?} (report {report:?})",
            violations.len(),
            &violations[..violations.len().min(5)]
        );
    }

    #[test]
    fn displacement_is_moderate() {
        let (c, _legal, report) = legalized_smoke();
        // moving cells by more than a few rows on average means the GP
        // density was not respected
        let die_span = c.design.die.width() + c.design.die.height();
        assert!(
            report.avg_displacement < 0.1 * die_span,
            "avg displacement {} vs die span {die_span}",
            report.avg_displacement
        );
        assert_eq!(report.spills, 0);
    }

    #[test]
    fn hpwl_change_is_bounded() {
        let c = synth::generate(&synth::smoke_spec());
        // run GP to its overflow target; only then is legalization cheap
        let cfg = GlobalConfig {
            model: ModelKind::Wa,
            max_iters: 500,
            threads: 1,
            ..GlobalConfig::default()
        };
        let gp = place(&c, &cfg).expect("placement flow");
        let (legal, _) = legalize(&c.design, &gp.placement).expect("legalize");
        let before = mep_netlist::total_hpwl(&c.design.netlist, &gp.placement);
        let after = mep_netlist::total_hpwl(&c.design.netlist, &legal);
        assert!(
            after < 1.3 * before,
            "legalization blew HPWL up: {before} → {after}"
        );
    }

    #[test]
    fn macros_are_placed_without_overlap() {
        let spec = synth::spec_by_name("newblue1").unwrap();
        // shrink for test speed
        let small = synth::SynthSpec {
            movable: 800,
            fixed: 12,
            nets: 900,
            pins: 3200,
            movable_macros: 10,
            name: "nb1_small".into(),
            ..spec
        };
        let c = synth::generate(&small);
        let cfg = GlobalConfig {
            model: ModelKind::Moreau,
            max_iters: 120,
            threads: 1,
            ..GlobalConfig::default()
        };
        let gp = place(&c, &cfg).expect("placement flow");
        let (legal, report) = legalize(&c.design, &gp.placement).expect("legalize");
        assert_eq!(report.macros, 10);
        let violations = check_legal(&c.design, &legal);
        assert!(
            violations.is_empty(),
            "{} violations: {:?}",
            violations.len(),
            &violations[..violations.len().min(5)]
        );
    }

    #[test]
    fn row_window_handles_die_edges_exactly() {
        // 10 rows of height 1 starting at die.yl = 0
        let (die_yl, row_h, nrows) = (0.0, 1.0, 10);
        let win = |yl, yh| row_window(yl, yh, die_yl, row_h, nrows);

        // interior rect spanning rows 2..5
        assert_eq!(win(2.25, 4.75), 2..5);
        // cell touching the top row: yh lands exactly on the die top
        assert_eq!(win(9.0, 10.0), 9..10);
        // yh exactly on an interior row boundary: no spurious extra row
        assert_eq!(win(0.5, 2.0), 0..2);
        // yl exactly on a row boundary belongs to that row only
        assert_eq!(win(3.0, 4.0), 3..4);
        // zero-height rect overlaps nothing
        assert_eq!(win(5.0, 5.0), 0..0);
        assert_eq!(win(5.5, 5.5), 0..0);
        // rect fully above the die: empty, no saturation artifacts
        assert_eq!(win(15.0, 16.0), 0..0);
        // rect fully below the die: empty (the old code forced row 0)
        assert_eq!(win(-5.0, -1.0), 0..0);
        // rect straddling the die bottom / top is clamped, not dropped
        assert_eq!(win(-3.0, 1.5), 0..2);
        assert_eq!(win(8.5, 13.0), 8..10);
        // inverted rect is empty
        assert_eq!(win(4.0, 3.0), 0..0);
        // degenerate grids
        assert_eq!(row_window(0.0, 1.0, 0.0, 0.0, 10), 0..0);
        assert_eq!(row_window(0.0, 1.0, 0.0, 1.0, 0), 0..0);
        assert_eq!(row_window(f64::NAN, 1.0, 0.0, 1.0, 10), 0..0);
    }

    #[test]
    fn row_window_survives_offset_float_noise() {
        // a die origin and row height whose multiples are not exactly
        // representable: boundary-aligned rects must still map to exactly
        // the rows they overlap
        let (die_yl, row_h, nrows) = (0.3, 0.1, 30);
        for r in 0..nrows {
            let yl = die_yl + r as f64 * row_h;
            let yh = yl + row_h;
            let win = row_window(yl, yh, die_yl, row_h, nrows);
            assert_eq!(win.len(), 1, "row {r}: got {win:?}");
        }
    }

    #[test]
    fn below_die_obstacle_does_not_mask_a_real_overlap() {
        // Regression: the old row bucketing forced every rect into at
        // least one row, so a fixed cell below the die landed in row 0,
        // sat between two genuinely overlapping cells in the x-sweep, and
        // masked their overlap from the adjacent-pair check.
        let mut b = mep_netlist::NetlistBuilder::new();
        let a = b.add_cell("a", 2.0, 1.0, true).unwrap();
        let c = b.add_cell("c", 2.0, 1.0, true).unwrap();
        let f = b.add_cell("f", 1.0, 1.0, false).unwrap();
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "t",
            nl,
            Rect::new(0.0, 0.0, 10.0, 2.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut pl = Placement::zeros(3);
        pl.x[a.index()] = 0.0;
        pl.y[a.index()] = 0.0;
        pl.x[c.index()] = 1.0; // overlaps `a` on [1, 2)
        pl.y[c.index()] = 0.0;
        pl.x[f.index()] = 0.5; // sorts between `a` and `c` …
        pl.y[f.index()] = -5.0; // … but lies entirely below the die
        let violations = check_legal(&design, &pl);
        assert!(
            violations.contains(&Violation::Overlap(a.min(c), a.max(c))),
            "overlap of a/c must be reported, got {violations:?}"
        );
    }

    #[test]
    fn top_row_cell_is_checked_in_the_top_row() {
        // two overlapping cells whose tops touch the die top edge
        let mut b = mep_netlist::NetlistBuilder::new();
        let a = b.add_cell("a", 2.0, 1.0, true).unwrap();
        let c = b.add_cell("c", 2.0, 1.0, true).unwrap();
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "t",
            nl,
            Rect::new(0.0, 0.0, 10.0, 3.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut pl = Placement::zeros(2);
        pl.x[a.index()] = 4.0;
        pl.y[a.index()] = 2.0; // top row: [2, 3) with die top at 3
        pl.x[c.index()] = 5.0;
        pl.y[c.index()] = 2.0;
        let violations = check_legal(&design, &pl);
        assert!(
            violations.contains(&Violation::Overlap(a.min(c), a.max(c))),
            "top-row overlap must be reported, got {violations:?}"
        );
    }

    #[test]
    fn nan_coordinates_survive_the_legalizer_cut_path() {
        // Regression for the NaN-unsafe comparators: the legalizer used to
        // sort cells and candidate rows with `partial_cmp(..).expect(..)`,
        // so a single NaN global-placement coordinate panicked mid-sort.
        // With `total_cmp` the sort is NaN-safe (NaN orders after every
        // finite key) and the remaining cells still legalize.
        let mut b = mep_netlist::NetlistBuilder::new();
        for i in 0..3 {
            b.add_cell(format!("c{i}"), 1.0, 1.0, true).unwrap();
        }
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "t",
            nl,
            Rect::new(0.0, 0.0, 10.0, 2.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut gp = Placement::zeros(3);
        for i in 0..2 {
            gp.x[i] = 5.0;
            gp.y[i] = 0.0;
        }
        gp.x[2] = f64::NAN; // poisons both the x-order sort and the
        gp.y[2] = f64::NAN; // candidate-row |dy| sort
        let (legal, _) = legalize(&design, &gp).expect("legalize");
        assert!(
            legal.x.iter().chain(legal.y.iter()).all(|v| v.is_finite()),
            "legalized coordinates must be finite, got x={:?} y={:?}",
            legal.x,
            legal.y
        );
        assert!(check_legal(&design, &legal).is_empty());
    }

    #[test]
    fn abacus_on_trivial_row_matches_expectation() {
        // three unit cells targeting the same spot spread shoulder to
        // shoulder around it
        let mut b = mep_netlist::NetlistBuilder::new();
        for i in 0..3 {
            b.add_cell(format!("c{i}"), 1.0, 1.0, true).unwrap();
        }
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "t",
            nl,
            Rect::new(0.0, 0.0, 10.0, 1.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut gp = Placement::zeros(3);
        for i in 0..3 {
            gp.x[i] = 5.0;
            gp.y[i] = 0.0;
        }
        let (legal, _) = legalize(&design, &gp).expect("legalize");
        let mut xs: Vec<f64> = legal.x.clone();
        xs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(xs, vec![4.0, 5.0, 6.0]);
        assert!(check_legal(&design, &legal).is_empty());
    }

    #[test]
    fn over_capacity_design_is_a_typed_error_not_a_panic() {
        // Regression for the `found.expect(..)` at the spill fallback:
        // utilization ≈ 1.0 (in fact > 1) used to panic inside the
        // library. Six unit cells, one row of five sites.
        let mut b = mep_netlist::NetlistBuilder::new();
        for i in 0..6 {
            b.add_cell(format!("c{i}"), 1.0, 1.0, true).unwrap();
        }
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "t",
            nl,
            Rect::new(0.0, 0.0, 5.0, 1.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut gp = Placement::zeros(6);
        for i in 0..6 {
            gp.x[i] = 2.0;
            gp.y[i] = 0.0;
        }
        let err = legalize(&design, &gp).expect_err("over-capacity must fail");
        assert!(
            matches!(err, PlacerError::Legalize { .. }),
            "expected PlacerError::Legalize, got {err:?}"
        );
        assert!(err.to_string().contains("legalization failed"));
    }

    #[test]
    fn full_utilization_design_legalizes_without_error() {
        // utilization exactly 1.0 must still succeed: five unit cells on
        // five sites, all targeting the center
        let mut b = mep_netlist::NetlistBuilder::new();
        for i in 0..5 {
            b.add_cell(format!("c{i}"), 1.0, 1.0, true).unwrap();
        }
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "t",
            nl,
            Rect::new(0.0, 0.0, 5.0, 1.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut gp = Placement::zeros(5);
        for i in 0..5 {
            gp.x[i] = 2.5;
            gp.y[i] = 0.0;
        }
        let (legal, _) = legalize(&design, &gp).expect("utilization 1.0 fits exactly");
        assert!(check_legal(&design, &legal).is_empty());
        assert!(audit_legality(&design, &legal).is_clean());
    }

    #[test]
    fn snapped_overfull_segment_spills_instead_of_escaping() {
        // Regression for the final site-snapping pass: the segment
        // [0.5, 3.2) fits 3 × 0.9 = 2.7 of cell width during insertion
        // (capacity 2.7), but snapping starts the walk at ceil(0.5) = 1,
        // leaving only 2.2 — the old `start = snapped.min(latest)
        // .max(cursor)` emitted the last cell past seg.xh into the
        // neighboring obstacle. It must spill to the free row above
        // instead.
        let mut b = mep_netlist::NetlistBuilder::new();
        let b0 = b.add_cell("b0", 0.5, 1.0, false).unwrap();
        let b1 = b.add_cell("b1", 1.8, 1.0, false).unwrap();
        let mut movables = Vec::new();
        for i in 0..3 {
            movables.push(b.add_cell(format!("c{i}"), 0.9, 1.0, true).unwrap());
        }
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "t",
            nl,
            Rect::new(0.0, 0.0, 5.0, 2.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut gp = Placement::zeros(5);
        gp.x[b0.index()] = 0.0; // obstacle [0, 0.5) → segment starts at 0.5
        gp.y[b0.index()] = 0.0;
        gp.x[b1.index()] = 3.2; // obstacle [3.2, 5.0) → segment ends at 3.2
        gp.y[b1.index()] = 0.0;
        // three cells in separate clusters inside [0.5, 3.2)
        for (k, &m) in movables.iter().enumerate() {
            gp.x[m.index()] = 0.55 + k as f64 * 1.0;
            gp.y[m.index()] = 0.0;
        }
        let (legal, report) = legalize(&design, &gp).expect("row 1 has room to spill");
        let violations = check_legal(&design, &legal);
        assert!(
            violations.is_empty(),
            "snapped-overfull emission escaped the segment: {violations:?}"
        );
        assert!(
            report.spills >= 1,
            "the overfull cell must be reported as a spill (report {report:?})"
        );
    }

    #[test]
    fn audit_counts_each_violation_class() {
        let mut b = mep_netlist::NetlistBuilder::new();
        let a = b.add_cell("a", 2.0, 1.0, true).unwrap();
        let c = b.add_cell("c", 2.0, 1.0, true).unwrap();
        let d = b.add_cell("d", 1.0, 1.0, true).unwrap();
        let nl = b.build();
        let design = mep_netlist::Design::with_uniform_rows(
            "t",
            nl,
            Rect::new(0.0, 0.0, 10.0, 3.0),
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        let mut pl = Placement::zeros(3);
        pl.x[a.index()] = 1.0; // overlaps `c` on [2, 3)
        pl.y[a.index()] = 0.0;
        pl.x[c.index()] = 2.0;
        pl.y[c.index()] = 0.0;
        pl.x[d.index()] = 4.25; // off-site, and off-row at y = 1.5
        pl.y[d.index()] = 1.5;
        let audit = audit_legality(&design, &pl);
        assert_eq!(audit.overlaps, 1);
        assert_eq!(audit.off_row, 1);
        assert_eq!(audit.off_site, 1);
        assert_eq!(audit.outside_die, 0);
        assert_eq!(audit.outside_region, 0);
        assert_eq!(audit.total(), 3);
        assert!(!audit.is_clean());
        assert!(!audit.geometry_clean());
        assert!(audit.to_string().contains("overlaps=1"));

        // a clean legal placement audits clean
        let mut ok = Placement::zeros(3);
        ok.x[a.index()] = 0.0;
        ok.y[a.index()] = 0.0;
        ok.x[c.index()] = 2.0;
        ok.y[c.index()] = 0.0;
        ok.x[d.index()] = 4.0;
        ok.y[d.index()] = 1.0;
        assert!(audit_legality(&design, &ok).is_clean());
    }
}
