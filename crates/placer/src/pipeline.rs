//! The full placement pipeline: global placement → legalization →
//! detailed placement, with the timing and quality metrics the paper's
//! Tables II/III report (LGWL, DPWL, RT).

use crate::detail::{refine, DetailConfig, DetailReport};
use crate::error::PlacerError;
use crate::global::{place_with_engine, GlobalConfig, GlobalResult, TrajectoryPoint};
use crate::guard::{RecoveryLog, Termination};
use crate::legalize::{check_legal, legalize, LegalizeReport};
use crate::telemetry::{build_run_report, DispHistogram, ReportInputs};
use mep_netlist::bookshelf::BookshelfCircuit;
use mep_netlist::{total_hpwl, Placement};
use mep_obs::RunReport;
use mep_wirelength::engine::{EngineStats, EvalEngine};
use std::sync::Arc;
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Global placement settings (model, iterations, schedules).
    pub global: GlobalConfig,
    /// Detailed placement settings.
    pub detail: DetailConfig,
}

/// Everything the paper's tables need from one run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// HPWL after global placement (unlegalized).
    pub gpwl: f64,
    /// HPWL after legalization (the LGWL column).
    pub lgwl: f64,
    /// HPWL after detailed placement (the DPWL column).
    pub dpwl: f64,
    /// Global placement wall time, seconds.
    pub rt_gp: f64,
    /// Legalization wall time, seconds.
    pub rt_lg: f64,
    /// Detailed placement wall time, seconds.
    pub rt_dp: f64,
    /// GP iterations executed.
    pub iterations: usize,
    /// Final density overflow after GP.
    pub overflow: f64,
    /// Legalization report.
    pub legalize: LegalizeReport,
    /// Detailed-placement report.
    pub detail: DetailReport,
    /// The `(HPWL, φ)` trajectory when recording was enabled (Fig. 3).
    pub trajectory: Vec<TrajectoryPoint>,
    /// Final legal placement.
    pub placement: Placement,
    /// Legality violations in the final placement (must be empty).
    pub violations: usize,
    /// Evaluation-engine instrumentation for the global-placement stage.
    pub engine_stats: EngineStats,
    /// Every recovery the numerical guard performed during GP (empty on a
    /// clean run).
    pub recovery: RecoveryLog,
    /// Why the global-placement loop stopped.
    pub termination: Termination,
    /// Owned end-of-run telemetry snapshot: every quality metric, stage
    /// timing, engine counter, guard event count, and displacement /
    /// acceptance histogram of this run, serializable via
    /// [`RunReport::to_json`] and renderable via
    /// [`RunReport::summary_table`].
    pub report: RunReport,
}

impl PipelineResult {
    /// Total runtime (the RT column), seconds.
    pub fn rt_total(&self) -> f64 {
        self.rt_gp + self.rt_lg + self.rt_dp
    }
}

/// Runs the full GP → LG → DP flow on a circuit.
///
/// The persistent evaluation engine is created once here and lives for the
/// whole flow; its worker pool and workspaces are reused across every
/// global-placement iteration.
///
/// Degenerate inputs (no movable cells, zero-area die, non-finite starting
/// coordinates) and unrecoverable numerical faults surface as
/// [`PlacerError`] instead of panicking; recoverable faults are handled by
/// the guard inside global placement and reported in
/// [`PipelineResult::recovery`].
pub fn run(
    circuit: &BookshelfCircuit,
    config: &PipelineConfig,
) -> Result<PipelineResult, PlacerError> {
    let engine = Arc::new(EvalEngine::new(config.global.threads));
    run_with_engine(circuit, config, engine)
}

/// [`run`] with a caller-supplied evaluation engine.
///
/// Multi-stage drivers (the multilevel flow, ECO re-placement) keep one
/// engine alive across several pipeline invocations so the worker pool and
/// gradient workspaces are spawned exactly once per process, not once per
/// level.
pub fn run_with_engine(
    circuit: &BookshelfCircuit,
    config: &PipelineConfig,
    engine: Arc<EvalEngine>,
) -> Result<PipelineResult, PlacerError> {
    let design = &circuit.design;

    // lint:allow(determinism): stage wall-time telemetry; durations never feed back into results
    let t0 = Instant::now();
    let gp: GlobalResult = place_with_engine(circuit, &config.global, engine)?;
    let rt_gp = t0.elapsed().as_secs_f64();

    // lint:allow(determinism): stage wall-time telemetry; durations never feed back into results
    let t1 = Instant::now();
    let (legal, lg_report) = legalize(design, &gp.placement)?;
    let rt_lg = t1.elapsed().as_secs_f64();
    let lgwl = total_hpwl(&design.netlist, &legal);

    // lint:allow(determinism): stage wall-time telemetry; durations never feed back into results
    let t2 = Instant::now();
    let legal_snapshot = legal.clone();
    let mut refined = legal;
    let dp_report = refine(design, &mut refined, &config.detail);
    let rt_dp = t2.elapsed().as_secs_f64();
    let dpwl = total_hpwl(&design.netlist, &refined);

    let violations = check_legal(design, &refined).len();

    let report = build_run_report(&ReportInputs {
        model: &config.global.model.to_string(),
        gpwl: gp.hpwl,
        lgwl,
        dpwl,
        rt_gp,
        rt_lg,
        rt_dp,
        iterations: gp.iterations,
        overflow: gp.overflow,
        violations,
        termination: gp.termination,
        engine: &gp.engine_stats,
        transform: gp.transform_stats,
        recovery: &gp.recovery,
        legalize: &lg_report,
        detail: &dp_report,
        lg_disp: lg_report.disp_hist,
        dp_disp: DispHistogram::between(design, &legal_snapshot, &refined),
    });

    Ok(PipelineResult {
        gpwl: gp.hpwl,
        lgwl,
        dpwl,
        rt_gp,
        rt_lg,
        rt_dp,
        iterations: gp.iterations,
        overflow: gp.overflow,
        legalize: lg_report,
        detail: dp_report,
        trajectory: gp.trajectory,
        placement: refined,
        violations,
        engine_stats: gp.engine_stats,
        recovery: gp.recovery,
        termination: gp.termination,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth;
    use mep_wirelength::ModelKind;

    #[test]
    fn full_flow_produces_legal_improving_result() {
        let c = synth::generate(&synth::smoke_spec());
        let config = PipelineConfig {
            global: GlobalConfig {
                model: ModelKind::Moreau,
                max_iters: 400,
                threads: 1,
                ..GlobalConfig::default()
            },
            ..PipelineConfig::default()
        };
        let r = run(&c, &config).unwrap();
        assert_eq!(r.violations, 0);
        assert!(r.recovery.is_empty(), "clean run must not trip the guard");
        // DP never worsens the legal placement
        assert!(
            r.dpwl <= r.lgwl + 1e-9,
            "dpwl {} vs lgwl {}",
            r.dpwl,
            r.lgwl
        );
        // legalization stays close to GP quality once converged
        assert!(r.lgwl < 1.3 * r.gpwl, "lgwl {} vs gpwl {}", r.lgwl, r.gpwl);
        assert!(r.rt_total() > 0.0);
        assert!(r.overflow < 0.15);

        // the owned RunReport mirrors the flow metrics
        let rep = &r.report;
        assert_eq!(
            rep.label("flow.model"),
            Some(ModelKind::Moreau.label()),
            "flow.model carries the paper-table label"
        );
        assert_eq!(rep.counter("gp.iterations"), Some(r.iterations as u64));
        assert_eq!(rep.gauge("dp.hpwl"), Some(r.dpwl));
        assert_eq!(rep.counter("flow.violations"), Some(0));
        assert_eq!(rep.counter("guard.recoveries"), Some(0));
        assert!(rep.gauge("gp.rt_seconds").unwrap() > 0.0);
        assert!(
            rep.counter("engine.wl_grad.count").unwrap() >= r.iterations as u64,
            "engine stage counters re-exported into the registry"
        );
        // spectral-kernel counters: the fused lane path must have run and
        // the fused sweeps never transpose (DESIGN.md §13)
        assert!(
            rep.counter("density.transform.calls").unwrap() > 0,
            "density transform counters re-exported into the registry"
        );
        assert!(rep.counter("density.transform.row_lane_tiles").unwrap() > 0);
        assert!(rep.counter("density.transform.col_lane_tiles").unwrap() > 0);
        assert_eq!(rep.counter("density.transform.transposes"), Some(0));
        // displacement histograms cover every movable cell
        let movable = c.design.netlist.num_movable() as u64;
        for name in ["lg.displacement_rows", "dp.displacement_rows"] {
            match rep.get(name) {
                Some(mep_obs::MetricValue::Histogram { count, .. }) => {
                    assert_eq!(*count, movable, "{name}");
                }
                other => panic!("{name} missing or wrong kind: {other:?}"),
            }
        }
        // acceptance counters are consistent
        assert!(r.detail.reorders <= r.detail.reorders_attempted);
        assert!(r.detail.swaps <= r.detail.swaps_attempted);
        assert!(r.detail.matchings <= r.detail.matchings_attempted);
        assert!(r.detail.swap_acceptance() <= 1.0);
        // and the report serializes
        let json = rep.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"flow.termination\""));
        assert!(!rep.summary_table().is_empty());
    }

    #[test]
    fn moreau_beats_wa_on_smoke_design() {
        // the paper's headline claim, on our smoke circuit
        let c = synth::generate(&synth::smoke_spec());
        let mut results = Vec::new();
        for model in [ModelKind::Wa, ModelKind::Moreau] {
            let config = PipelineConfig {
                global: GlobalConfig {
                    model,
                    max_iters: 500,
                    threads: 1,
                    ..GlobalConfig::default()
                },
                ..PipelineConfig::default()
            };
            results.push(run(&c, &config).unwrap().dpwl);
        }
        let (wa, ours) = (results[0], results[1]);
        assert!(
            ours < wa,
            "expected Moreau ({ours}) to beat WA ({wa}) on the smoke design"
        );
    }
}
