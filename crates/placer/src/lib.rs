//! The placement engine: electrostatic global placement, Abacus
//! legalization, and ABCDPlace-style detailed placement.
//!
//! This crate assembles the substrates (`mep-netlist`, `mep-wirelength`,
//! `mep-density`, `mep-optim`) into the paper's evaluation flow:
//!
//! * [`objective`] — the Eq. (1) objective `Σ W_e + λ D` as an
//!   optimizable problem over movable-cell centers;
//! * [`global`] — the ePlace loop with the Eq. (15) density-weight
//!   schedule and the Eq. (14) / decade smoothing schedules;
//! * [`legalize`](mod@legalize) — macro legalization + Abacus row legalization;
//! * [`detail`] — local reordering, global swap, independent-set matching;
//! * [`pipeline`] — GP → LG → DP with the LGWL / DPWL / RT metrics of
//!   Tables II and III;
//! * [`flow`] — the multilevel driver (cluster coarsening + LB/UB
//!   warm-start alternation) and incremental (ECO) re-placement;
//! * [`guard`] + [`error`] — numerical-health monitoring with
//!   best-snapshot rollback and typed, fault-tolerant errors for the whole
//!   flow.
//!
//! # Example
//!
//! ```no_run
//! use mep_netlist::synth;
//! use mep_placer::pipeline::{run, PipelineConfig};
//!
//! let circuit = synth::generate(&synth::smoke_spec());
//! let result = run(&circuit, &PipelineConfig::default()).expect("placeable input");
//! println!("DPWL = {:.3e}, RT = {:.1}s", result.dpwl, result.rt_total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels index several parallel arrays with one counter; the
// iterator rewrites clippy suggests obscure those loops.
#![allow(clippy::needless_range_loop)]

pub mod assignment;
pub mod cancel;
pub mod detail;
pub mod error;
pub mod flow;
pub mod global;
pub mod guard;
pub mod legalize;
pub mod objective;
pub mod pipeline;
pub mod quadratic;
pub mod telemetry;

pub use cancel::{CancelState, CancelToken};
pub use detail::{DetailConfig, DetailReport};
pub use error::PlacerError;
pub use flow::{
    replace_region, run_multilevel, run_multilevel_with_engine, EcoConfig, EcoResult, LevelStats,
    MultilevelConfig, MultilevelResult,
};
pub use global::{
    place_with_engine, GlobalConfig, GlobalResult, MoreauSchedule, OptimizerKind, TrajectoryPoint,
};
pub use guard::{
    Fault, GuardConfig, HealthMonitor, RecoveryAction, RecoveryEvent, RecoveryLog, Termination,
};
pub use legalize::{
    audit_legality, check_legal, legalize, LegalityAudit, LegalizeReport, Violation,
};
pub use pipeline::{run, run_with_engine, PipelineConfig, PipelineResult};
pub use telemetry::DispHistogram;
