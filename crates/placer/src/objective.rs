//! The global-placement objective `Σ_e W_e(x, y) + λ D(x, y)` (Eq. (1))
//! as an optimizable [`Problem`].
//!
//! The parameter vector packs the **centers of movable cells** as
//! `[x_0 … x_{m−1}, y_0 … y_{m−1}]`; fixed cells stay at their input
//! positions. Projection clamps each movable cell inside the die.

use mep_density::electro::{DensityReport, Electrostatics};
use mep_density::exec::ParallelExec;
use mep_netlist::{CellId, Design, Placement};
use mep_optim::Problem;
use mep_wirelength::engine::{EvalEngine, Stage};
use mep_wirelength::{AnyModel, ModelKind, NetModel, NetlistEvaluator, WirelengthGrad};
use std::sync::Arc;

/// Adapter exposing the wirelength crate's [`EvalEngine`] to the density
/// crate's [`ParallelExec`] hook (the density crate must not depend on the
/// wirelength crate).
#[derive(Debug, Clone)]
struct EngineExec(Arc<EvalEngine>);

impl ParallelExec for EngineExec {
    fn run(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        self.0.run(parts, f);
    }
}

/// Statistics of the most recent objective evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalStats {
    /// Smoothed wirelength `Σ W_e`.
    pub wirelength: f64,
    /// Density energy `D`.
    pub density_energy: f64,
    /// Density overflow `φ`.
    pub overflow: f64,
}

/// The placement objective bound to one design.
pub struct PlacementProblem<'a> {
    design: &'a Design,
    movable: Vec<CellId>,
    engine: Arc<EvalEngine>,
    evaluator: NetlistEvaluator,
    wl: WirelengthGrad,
    es: Electrostatics,
    /// Reused density-gradient buffers (zeroed each eval, never reallocated).
    dgx: Vec<f64>,
    dgy: Vec<f64>,
    scratch: Placement,
    /// Current density weight `λ`.
    pub lambda: f64,
    precondition: bool,
    last: EvalStats,
    /// Spectral-transform stats already forwarded to the engine; new
    /// samples are synced as deltas after each density stage.
    tf_synced: mep_density::TransformStats,
    /// Fault-injection hook (tests): skip `nan_after` more evals, then
    /// poison the next `nan_remaining` evaluations with NaN.
    nan_after: u64,
    nan_remaining: u64,
}

impl<'a> std::fmt::Debug for PlacementProblem<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementProblem")
            .field("design", &self.design.name)
            .field("movable", &self.movable.len())
            .field("lambda", &self.lambda)
            .finish()
    }
}

impl<'a> PlacementProblem<'a> {
    /// Builds the problem. `initial` provides fixed-cell positions (and the
    /// starting movable positions extracted by
    /// [`PlacementProblem::pack_params`]); `model` is the wirelength model;
    /// `engine` executes every evaluation stage (wirelength and density)
    /// and collects per-stage instrumentation.
    pub fn new(
        design: &'a Design,
        initial: &Placement,
        model: AnyModel,
        engine: Arc<EvalEngine>,
    ) -> Self {
        let netlist = &design.netlist;
        let movable: Vec<CellId> = netlist.movable_cells().collect();
        let mut es = Electrostatics::new(design, initial);
        es.set_executor(
            Arc::new(EngineExec(Arc::clone(&engine))),
            engine.threads(),
            netlist,
        );
        Self {
            movable,
            evaluator: NetlistEvaluator::new(model, Arc::clone(&engine)),
            engine,
            wl: WirelengthGrad::zeros(netlist.num_cells()),
            es,
            dgx: vec![0.0; netlist.num_cells()],
            dgy: vec![0.0; netlist.num_cells()],
            scratch: initial.clone(),
            lambda: 0.0,
            precondition: false,
            design,
            last: EvalStats::default(),
            tf_synced: mep_density::TransformStats::default(),
            nan_after: 0,
            nan_remaining: 0,
        }
    }

    /// Convenience constructor building a private engine with `threads`
    /// workers (tests and small tools; the pipeline shares one engine).
    pub fn with_threads(
        design: &'a Design,
        initial: &Placement,
        model: AnyModel,
        threads: usize,
    ) -> Self {
        Self::new(design, initial, model, Arc::new(EvalEngine::new(threads)))
    }

    /// The evaluation engine (e.g. for its instrumentation counters).
    pub fn engine(&self) -> &Arc<EvalEngine> {
        &self.engine
    }

    /// Enables the ePlace/DREAMPlace Jacobi preconditioner: the reported
    /// gradient of cell `i` is divided by `max(1, #pins_i + λ·area_i)`
    /// (the diagonal of an approximate Hessian), which equalizes step
    /// scales between tiny cells and huge macros. Off by default so the
    /// raw gradient stays exact for verification.
    pub fn set_preconditioner(&mut self, on: bool) {
        self.precondition = on;
    }

    /// Number of movable cells.
    pub fn num_movable(&self) -> usize {
        self.movable.len()
    }

    /// The movable-cell ids, in parameter order.
    pub fn movable(&self) -> &[CellId] {
        &self.movable
    }

    /// Stats of the last [`Problem::eval`] call.
    pub fn last_stats(&self) -> EvalStats {
        self.last
    }

    /// Sets the wirelength model's smoothing parameter.
    pub fn set_smoothing(&mut self, s: f64) {
        self.evaluator.model_mut().set_smoothing(s);
    }

    /// Current smoothing parameter.
    pub fn smoothing(&self) -> f64 {
        self.evaluator.model().smoothing()
    }

    /// The electrostatic system (e.g. for its bin grid).
    pub fn electrostatics(&self) -> &Electrostatics {
        &self.es
    }

    /// Replaces the wirelength model in place (the recovery guard's
    /// degradation ladder). The evaluator keeps its workspace; only the
    /// model clones are swapped.
    pub fn set_model(&mut self, model: AnyModel) {
        self.evaluator.set_model(model);
    }

    /// Kind of the active wirelength model.
    pub fn model_kind(&self) -> ModelKind {
        self.evaluator.model().kind()
    }

    /// Degrades the density solver to the unplanned transform baseline
    /// (the recovery guard's last ladder rung before halting).
    pub fn degrade_density_solver(&mut self) {
        self.es.degrade_solver();
    }

    /// Whether the density solver has been degraded.
    pub fn density_solver_degraded(&self) -> bool {
        self.es.solver_degraded()
    }

    /// Test hook: after `after` more evaluations, poison the following
    /// `count` evaluations with NaN (value, gradient, and stats). Used to
    /// exercise the recovery guard; never active in production flows.
    pub fn inject_nan(&mut self, after: u64, count: u64) {
        self.nan_after = after;
        self.nan_remaining = count;
    }

    /// Packs the movable-cell centers of `placement` into a parameter
    /// vector.
    pub fn pack_params(&self, placement: &Placement) -> Vec<f64> {
        let m = self.movable.len();
        let netlist = &self.design.netlist;
        let mut p = vec![0.0; 2 * m];
        for (i, &cell) in self.movable.iter().enumerate() {
            let c = placement.center(netlist, cell);
            p[i] = c.x;
            p[m + i] = c.y;
        }
        p
    }

    /// Writes a parameter vector back into `placement` (movable cells
    /// only).
    pub fn unpack_params(&self, params: &[f64], placement: &mut Placement) {
        let m = self.movable.len();
        let netlist = &self.design.netlist;
        for (i, &cell) in self.movable.iter().enumerate() {
            placement.set_center(netlist, cell, (params[i], params[m + i]).into());
        }
    }

    /// Exact HPWL at a parameter vector (reporting metric, not the model).
    pub fn exact_hpwl(&mut self, params: &[f64]) -> f64 {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.unpack_params(params, &mut scratch);
        let h = mep_netlist::total_hpwl(&self.design.netlist, &scratch);
        self.scratch = scratch;
        h
    }

    /// Density report (energy + overflow) at a parameter vector; does not
    /// disturb gradient buffers.
    pub fn density_report(&mut self, params: &[f64]) -> DensityReport {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.unpack_params(params, &mut scratch);
        let report = self.es.update(&self.design.netlist, &scratch);
        self.scratch = scratch;
        report
    }
}

impl<'a> Problem for PlacementProblem<'a> {
    fn dim(&self) -> usize {
        2 * self.movable.len()
    }

    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        let m = self.movable.len();
        assert_eq!(x.len(), 2 * m);
        assert_eq!(grad.len(), 2 * m);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.unpack_params(x, &mut scratch);
        let netlist = &self.design.netlist;

        // wirelength term (engine-timed inside the evaluator)
        self.evaluator.evaluate(netlist, &scratch, &mut self.wl);

        // density term, on reused buffers
        self.dgx.iter_mut().for_each(|g| *g = 0.0);
        self.dgy.iter_mut().for_each(|g| *g = 0.0);
        let es = &mut self.es;
        let (dgx, dgy) = (&mut self.dgx, &mut self.dgy);
        let report = self.engine.time_stage(Stage::Density, || {
            let report = es.update(netlist, &scratch);
            es.accumulate_gradient(netlist, &scratch, dgx, dgy);
            report
        });
        // forward the transform sub-stage clock (kept by the density crate)
        let tf = self.es.transform_stats();
        self.engine.add_stage_sample(
            Stage::DensityTransform,
            tf.calls - self.tf_synced.calls,
            tf.nanos - self.tf_synced.nanos,
        );
        self.tf_synced = tf;

        for (i, &cell) in self.movable.iter().enumerate() {
            let c = cell.index();
            grad[i] = self.wl.grad_x[c] + self.lambda * self.dgx[c];
            grad[m + i] = self.wl.grad_y[c] + self.lambda * self.dgy[c];
            if self.precondition {
                let diag = (netlist.cell_pins(cell).len() as f64
                    + self.lambda * netlist.cell_area(cell))
                .max(1.0);
                grad[i] /= diag;
                grad[m + i] /= diag;
            }
        }

        self.scratch = scratch;
        self.last = EvalStats {
            wirelength: self.wl.value,
            density_energy: report.energy,
            overflow: report.overflow,
        };
        // fault-injection countdown (test hook, see `inject_nan`)
        if self.nan_remaining > 0 {
            if self.nan_after > 0 {
                self.nan_after -= 1;
            } else {
                self.nan_remaining -= 1;
                for g in grad.iter_mut() {
                    *g = f64::NAN;
                }
                self.last = EvalStats {
                    wirelength: f64::NAN,
                    density_energy: f64::NAN,
                    overflow: f64::NAN,
                };
                return f64::NAN;
            }
        }
        self.wl.value + self.lambda * report.energy
    }

    fn project(&self, x: &mut [f64]) {
        let m = self.movable.len();
        let die = self.design.die;
        let netlist = &self.design.netlist;
        for (i, &cell) in self.movable.iter().enumerate() {
            let hw = 0.5 * netlist.cell_width(cell);
            let hh = 0.5 * netlist.cell_height(cell);
            // region-constrained cells are boxed into their fence
            let fence = self.design.region_of(cell).map(|r| r.rect).unwrap_or(die);
            // degenerate box smaller than the cell: pin to the box center
            let (lo_x, hi_x) = (fence.xl + hw, fence.xh - hw);
            let (lo_y, hi_y) = (fence.yl + hh, fence.yh - hh);
            let die = fence;
            x[i] = if lo_x <= hi_x {
                x[i].clamp(lo_x, hi_x)
            } else {
                0.5 * (die.xl + die.xh)
            };
            x[m + i] = if lo_y <= hi_y {
                x[m + i].clamp(lo_y, hi_y)
            } else {
                0.5 * (die.yl + die.yh)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth;
    use mep_wirelength::ModelKind;

    fn problem(c: &mep_netlist::bookshelf::BookshelfCircuit) -> PlacementProblem<'_> {
        PlacementProblem::with_threads(
            &c.design,
            &c.placement,
            ModelKind::Moreau.instantiate(1.0),
            1,
        )
    }

    #[test]
    fn engine_instrumentation_sees_both_stages() {
        let c = synth::generate(&synth::smoke_spec());
        let mut p = problem(&c);
        let params = p.pack_params(&c.placement);
        let mut g = vec![0.0; p.dim()];
        p.eval(&params, &mut g);
        p.eval(&params, &mut g);
        let stats = p.engine().stats();
        assert_eq!(stats.wl_grad.count, 2);
        assert_eq!(stats.density.count, 2);
        // each density update runs 4 spectral sweeps (DCT2, DCT3, ×2 field)
        assert_eq!(stats.density_transform.count, 8);
        assert!(stats.density_transform.nanos <= stats.density.nanos);
        assert_eq!(stats.spawned_threads, 0, "1-thread engine never spawns");
    }

    #[test]
    fn pack_unpack_round_trip() {
        let c = synth::generate(&synth::smoke_spec());
        let p = problem(&c);
        let params = p.pack_params(&c.placement);
        let mut pl = c.placement.clone();
        p.unpack_params(&params, &mut pl);
        for i in 0..pl.len() {
            assert!((pl.x[i] - c.placement.x[i]).abs() < 1e-12);
            assert!((pl.y[i] - c.placement.y[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn objective_combines_terms() {
        let c = synth::generate(&synth::smoke_spec());
        let mut p = problem(&c);
        let params = p.pack_params(&c.placement);
        let mut g = vec![0.0; p.dim()];
        p.lambda = 0.0;
        let f_wl = p.eval(&params, &mut g);
        let stats = p.last_stats();
        assert!((f_wl - stats.wirelength).abs() < 1e-9);
        p.lambda = 2.0;
        let f_both = p.eval(&params, &mut g);
        assert!((f_both - (stats.wirelength + 2.0 * stats.density_energy)).abs() < 1e-6);
    }

    #[test]
    fn wirelength_gradient_matches_finite_difference() {
        // λ = 0 isolates the wirelength path through pack/unpack; the
        // density force is the physical field, which matches the exact
        // derivative of the *rasterized* energy only up to discretization
        // (verified with its own tolerance in mep-density).
        let c = synth::generate(&synth::smoke_spec());
        let mut p = problem(&c);
        p.lambda = 0.0;
        let mut params = p.pack_params(&c.placement);
        let die = c.design.die;
        for (i, v) in params.iter_mut().enumerate() {
            *v += ((i as f64) * 0.7).sin() * 0.2 * die.width();
        }
        p.project(&mut params);
        let mut g = vec![0.0; p.dim()];
        p.eval(&params, &mut g);
        let h = 1e-5 * die.width();
        for idx in [3usize, 77, 200, 555] {
            let mut plus = params.clone();
            plus[idx] += h;
            let mut gg = vec![0.0; p.dim()];
            let fp = p.eval(&plus, &mut gg);
            let mut minus = params.clone();
            minus[idx] -= h;
            let fm = p.eval(&minus, &mut gg);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - g[idx]).abs() < 1e-3 * fd.abs().max(1.0),
                "param {idx}: fd {fd} vs analytic {}",
                g[idx]
            );
        }
    }

    #[test]
    fn combined_gradient_is_a_descent_direction() {
        let c = synth::generate(&synth::smoke_spec());
        let mut p = problem(&c);
        p.lambda = 1.0;
        let mut params = p.pack_params(&c.placement);
        for (i, v) in params.iter_mut().enumerate() {
            *v += ((i as f64) * 1.3).cos() * 0.1 * c.design.die.width();
        }
        p.project(&mut params);
        let mut g = vec![0.0; p.dim()];
        let f0 = p.eval(&params, &mut g);
        let gnorm = g.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        let step = 1e-3 * c.design.die.width() / gnorm * g.len() as f64;
        // a short move along −∇f must reduce the objective
        let trial: Vec<f64> = params
            .iter()
            .zip(&g)
            .map(|(&x, &gi)| x - step.min(1e-2) * gi)
            .collect();
        let mut gg = vec![0.0; p.dim()];
        let f1 = p.eval(&trial, &mut gg);
        assert!(f1 < f0, "f0 {f0} -> f1 {f1}");
    }

    #[test]
    fn projection_keeps_cells_inside_die() {
        let c = synth::generate(&synth::smoke_spec());
        let p = problem(&c);
        let mut params = p.pack_params(&c.placement);
        for v in params.iter_mut() {
            *v += 1e6; // push far outside
        }
        p.project(&mut params);
        let mut pl = c.placement.clone();
        p.unpack_params(&params, &mut pl);
        let nl = &c.design.netlist;
        for cell in nl.movable_cells() {
            let r = pl.cell_rect(nl, cell);
            assert!(
                c.design.die.contains_rect(&r),
                "cell {cell} at {r} outside die"
            );
        }
    }
}
