//! Cooperative cancellation for placement runs.
//!
//! A [`CancelToken`] is a cheaply clonable handle shared between the code
//! driving a placement job (a CLI signal handler, the `mep-serve` daemon's
//! cancel endpoint) and the loops doing the work. The global-placement
//! loop ([`crate::global`]) and the multilevel driver ([`crate::flow`])
//! poll it once per iteration / stage boundary — alongside the existing
//! `time_budget` check — and terminate with a best-so-far partial result
//! when it trips:
//!
//! * an **explicit** [`cancel`](CancelToken::cancel) maps to
//!   [`Termination::Cancelled`];
//! * an **armed deadline** expiring maps to [`Termination::WallClock`],
//!   exactly like `GlobalConfig::time_budget` — a deadline is just a
//!   budget that outlives one `place()` call (it spans every level of the
//!   multilevel flow).
//!
//! The token is lock-free on the polling side: one `AtomicBool` load plus
//! one `AtomicU64` load per poll, so checking it each iteration costs
//! nanoseconds. The default token is inert (never trips) and is what every
//! config embeds unless a driver installs its own.

use crate::guard::Termination;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Nanosecond sentinel meaning "no deadline armed".
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Deadline as nanoseconds after `created`; [`NO_DEADLINE`] when unset.
    deadline_nanos: AtomicU64,
    created: Instant,
}

/// A shared, pollable cancellation flag with an optional deadline.
///
/// Clones share state: cancelling any clone trips every clone.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

/// What a [`CancelToken`] poll observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelState {
    /// Not cancelled, deadline (if any) not reached.
    Live,
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The armed deadline has passed (and no explicit cancel happened).
    DeadlineExpired,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A live token with no deadline.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_nanos: AtomicU64::new(NO_DEADLINE),
                // lint:allow(determinism): cancellation deadlines are wall-clock by definition (mirrors GlobalConfig::time_budget)
                created: Instant::now(),
            }),
        }
    }

    /// A live token that expires `budget` after this call.
    pub fn with_deadline_in(budget: Duration) -> Self {
        let t = Self::new();
        t.arm_deadline_in(budget);
        t
    }

    /// Arms (or re-arms) the deadline to `budget` from now. A daemon
    /// creates the token at submission time so the job is cancellable
    /// while queued, then arms the execution budget when the job actually
    /// starts running.
    pub fn arm_deadline_in(&self, budget: Duration) {
        let elapsed = self.inner.created.elapsed();
        let nanos = elapsed
            .saturating_add(budget)
            .as_nanos()
            .min(NO_DEADLINE as u128 - 1) as u64;
        self.inner.deadline_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Trips the token explicitly. Idempotent.
    ///
    /// Release pairs with the Acquire load in [`state`](Self::state): a
    /// loop that observes the trip also observes everything the
    /// cancelling thread wrote before tripping it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Polls the token. Explicit cancellation wins over an expired
    /// deadline so a client's cancel is reported as such even on a job
    /// whose budget also ran out.
    pub fn state(&self) -> CancelState {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return CancelState::Cancelled;
        }
        let deadline = self.inner.deadline_nanos.load(Ordering::Relaxed);
        if deadline != NO_DEADLINE {
            let elapsed = self.inner.created.elapsed().as_nanos();
            if elapsed >= deadline as u128 {
                return CancelState::DeadlineExpired;
            }
        }
        CancelState::Live
    }

    /// Whether the token has tripped (either way).
    pub fn is_tripped(&self) -> bool {
        self.state() != CancelState::Live
    }

    /// The [`Termination`] a loop should report if it stops now because of
    /// this token; `None` while the token is live.
    pub fn termination(&self) -> Option<Termination> {
        match self.state() {
            CancelState::Live => None,
            CancelState::Cancelled => Some(Termination::Cancelled),
            CancelState::DeadlineExpired => Some(Termination::WallClock),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_trips() {
        let t = CancelToken::default();
        assert_eq!(t.state(), CancelState::Live);
        assert!(!t.is_tripped());
        assert_eq!(t.termination(), None);
    }

    #[test]
    fn cancel_trips_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.state(), CancelState::Cancelled);
        assert_eq!(t.termination(), Some(Termination::Cancelled));
    }

    #[test]
    fn expired_deadline_maps_to_wall_clock() {
        let t = CancelToken::with_deadline_in(Duration::ZERO);
        assert_eq!(t.state(), CancelState::DeadlineExpired);
        assert_eq!(t.termination(), Some(Termination::WallClock));
    }

    #[test]
    fn far_deadline_stays_live_and_rearm_works() {
        let t = CancelToken::with_deadline_in(Duration::from_secs(3600));
        assert_eq!(t.state(), CancelState::Live);
        t.arm_deadline_in(Duration::ZERO);
        assert_eq!(t.state(), CancelState::DeadlineExpired);
    }

    #[test]
    fn explicit_cancel_wins_over_expired_deadline() {
        let t = CancelToken::with_deadline_in(Duration::ZERO);
        t.cancel();
        assert_eq!(t.state(), CancelState::Cancelled);
        assert_eq!(t.termination(), Some(Termination::Cancelled));
    }
}
