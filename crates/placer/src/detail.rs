//! Detailed placement: HPWL refinement of a legal placement.
//!
//! CPU re-implementation of the move classes of ABCDPlace \[38\], the
//! paper's detailed-placement engine:
//!
//! * **local reordering** — permute small windows of consecutive cells in
//!   a row (left-packed, so legality is preserved);
//! * **global swap** — exchange equal-width cells so each moves toward the
//!   median of its nets;
//! * **independent-set matching** — pick mutually net-disjoint equal-width
//!   cells and solve the slot-assignment exactly (their costs are
//!   separable precisely because the set is independent).
//!
//! Every accepted move strictly reduces exact HPWL, so the refinement
//! never degrades the legalized result.

use mep_netlist::{net_hpwl, total_hpwl, CellId, Design, NetId, Netlist, Placement};
// lint:allow(determinism): membership-only net dedup set; never iterated
use std::collections::HashSet;

/// Configuration for the detailed placer.
#[derive(Debug, Clone)]
pub struct DetailConfig {
    /// Refinement passes over the whole design.
    pub passes: usize,
    /// Local-reorder window (cells per permutation group, 2–4).
    pub window: usize,
    /// Relative improvement per pass below which refinement stops early.
    pub converge_rel: f64,
    /// Maximum independent-set size (2–12; ≤4 uses brute-force
    /// permutations, larger sets the Hungarian solver).
    pub ism_set: usize,
}

impl Default for DetailConfig {
    fn default() -> Self {
        Self {
            passes: 3,
            window: 3,
            converge_rel: 1e-4,
            ism_set: 4,
        }
    }
}

/// Report of one refinement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailReport {
    /// Exact HPWL before refinement.
    pub hpwl_before: f64,
    /// Exact HPWL after refinement.
    pub hpwl_after: f64,
    /// Accepted local-reorder moves.
    pub reorders: usize,
    /// Local-reorder windows evaluated (permutations tried).
    pub reorders_attempted: usize,
    /// Accepted global swaps.
    pub swaps: usize,
    /// Trial global swaps evaluated.
    pub swaps_attempted: usize,
    /// Accepted independent-set reassignments.
    pub matchings: usize,
    /// Independent sets solved.
    pub matchings_attempted: usize,
    /// Passes actually executed.
    pub passes: usize,
}

impl DetailReport {
    /// `accepted / attempted` for one move class, `0.0` when nothing was
    /// attempted.
    fn ratio(accepted: usize, attempted: usize) -> f64 {
        if attempted == 0 {
            0.0
        } else {
            accepted as f64 / attempted as f64
        }
    }

    /// Acceptance ratio of local reorders.
    pub fn reorder_acceptance(&self) -> f64 {
        Self::ratio(self.reorders, self.reorders_attempted)
    }

    /// Acceptance ratio of global swaps.
    pub fn swap_acceptance(&self) -> f64 {
        Self::ratio(self.swaps, self.swaps_attempted)
    }

    /// Acceptance ratio of independent-set reassignments.
    pub fn matching_acceptance(&self) -> f64 {
        Self::ratio(self.matchings, self.matchings_attempted)
    }
}

/// Sum of HPWL over a set of nets.
fn hpwl_over(netlist: &Netlist, placement: &Placement, nets: &[NetId]) -> f64 {
    nets.iter().map(|&n| net_hpwl(netlist, placement, n)).sum()
}

/// Dedup'd nets touching any of `cells`.
fn nets_of(netlist: &Netlist, cells: &[CellId], out: &mut Vec<NetId>) {
    out.clear();
    for &c in cells {
        for &p in netlist.cell_pins(c) {
            let n = netlist.pin_net(p);
            if !out.contains(&n) {
                out.push(n);
            }
        }
    }
}

/// Runs detailed placement in place. The placement must be legal; all
/// moves preserve legality.
pub fn refine(design: &Design, placement: &mut Placement, config: &DetailConfig) -> DetailReport {
    let netlist = &design.netlist;
    let row_h = design.rows.first().map(|r| r.height).unwrap_or(1.0);
    let hpwl_before = total_hpwl(netlist, placement);
    let mut report = DetailReport {
        hpwl_before,
        hpwl_after: hpwl_before,
        reorders: 0,
        reorders_attempted: 0,
        swaps: 0,
        swaps_attempted: 0,
        matchings: 0,
        matchings_attempted: 0,
        passes: 0,
    };
    // region context: padded per-cell assignment + fence rectangles
    let cell_region: Vec<Option<u16>> = if design.cell_region.is_empty() {
        vec![None; netlist.num_cells()]
    } else {
        design.cell_region.clone()
    };
    let fences: Vec<mep_netlist::Rect> = design.regions.iter().map(|r| r.rect).collect();
    let mut current = hpwl_before;
    for _pass in 0..config.passes {
        report.passes += 1;
        let mut rows = build_rows(design, placement, row_h);
        let obstacles = row_obstacles(design, placement, row_h);
        let (acc, att) = local_reorder(
            netlist,
            placement,
            &mut rows,
            &obstacles,
            &cell_region,
            &fences,
            config.window,
        );
        report.reorders += acc;
        report.reorders_attempted += att;
        let (acc, att) = global_swap(netlist, placement, &rows, &cell_region, row_h);
        report.swaps += acc;
        report.swaps_attempted += att;
        let (acc, att) =
            independent_set_matching(netlist, placement, &rows, &cell_region, config.ism_set);
        report.matchings += acc;
        report.matchings_attempted += att;
        let now = total_hpwl(netlist, placement);
        let gain = (current - now) / current.max(1e-30);
        current = now;
        if gain < config.converge_rel {
            break;
        }
    }
    report.hpwl_after = current;
    report
}

/// Standard cells per row, sorted by x.
fn build_rows(design: &Design, placement: &Placement, row_h: f64) -> Vec<Vec<CellId>> {
    let netlist = &design.netlist;
    let die = design.die;
    let nrows = design.rows.len().max(1);
    let mut rows: Vec<Vec<CellId>> = vec![Vec::new(); nrows];
    for cell in netlist.movable_cells() {
        if netlist.cell_height(cell) > row_h + 1e-9 {
            continue; // macros are frozen after legalization
        }
        let r = ((placement.y[cell.index()] - die.yl) / row_h).round() as usize;
        if r < nrows {
            rows[r].push(cell);
        }
    }
    for row in &mut rows {
        row.sort_by(|&a, &b| placement.x[a.index()].total_cmp(&placement.x[b.index()]));
    }
    rows
}

/// Per-row x-intervals blocked by fixed cells and frozen movable macros.
fn row_obstacles(design: &Design, placement: &Placement, row_h: f64) -> Vec<Vec<(f64, f64)>> {
    let netlist = &design.netlist;
    let die = design.die;
    let nrows = design.rows.len().max(1);
    let mut per_row: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nrows];
    for cell in netlist.cells() {
        let frozen_macro = netlist.is_movable(cell) && netlist.cell_height(cell) > row_h + 1e-9;
        if netlist.is_movable(cell) && !frozen_macro {
            continue;
        }
        let r = placement.cell_rect(netlist, cell);
        // lint:allow(float-eq): zero-area obstacles are exactly zero by construction
        if r.area() == 0.0 {
            continue;
        }
        for row in crate::legalize::row_window(r.yl, r.yh, die.yl, row_h, nrows) {
            per_row[row].push((r.xl, r.xh));
        }
    }
    per_row
}

/// Permutes windows of consecutive cells (left-packed). Returns
/// `(accepted, attempted)` move counts.
fn local_reorder(
    netlist: &Netlist,
    placement: &mut Placement,
    rows: &mut [Vec<CellId>],
    obstacles: &[Vec<(f64, f64)>],
    cell_region: &[Option<u16>],
    fences: &[mep_netlist::Rect],
    window: usize,
) -> (usize, usize) {
    let window = window.clamp(2, 4);
    let mut accepted = 0;
    let mut attempted = 0;
    let mut nets = Vec::new();
    for (row_idx, row) in rows.iter_mut().enumerate() {
        if row.len() < window {
            continue;
        }
        for start in 0..=(row.len() - window) {
            let cells: Vec<CellId> = row[start..start + window].to_vec();
            let cells = &cells[..];
            // all window cells must share one region assignment
            let region = cell_region[cells[0].index()];
            if cells[1..].iter().any(|&c| cell_region[c.index()] != region) {
                continue;
            }
            let left = placement.x[cells[0].index()];
            // the packed span must not cover a blockage hiding in a gap
            let span_w: f64 = cells.iter().map(|&c| netlist.cell_width(c)).sum();
            if obstacles[row_idx]
                .iter()
                .any(|&(ol, oh)| ol < left + span_w && left < oh)
            {
                continue;
            }
            // unconstrained windows must not pack into a fence interior
            if region.is_none() && fences.iter().any(|f| f.xl < left + span_w && left < f.xh) {
                continue;
            }
            attempted += 1;
            nets_of(netlist, cells, &mut nets);
            let before = hpwl_over(netlist, placement, &nets);
            let orig: Vec<(f64, f64)> = cells
                .iter()
                .map(|&c| (placement.x[c.index()], placement.y[c.index()]))
                .collect();
            let mut best: Option<(f64, Vec<usize>)> = None;
            let mut perm: Vec<usize> = (0..window).collect();
            permute(&mut perm, 0, &mut |p| {
                // left-pack in permuted order
                let mut x = left;
                for &pi in p {
                    let c = cells[pi];
                    placement.x[c.index()] = x;
                    x += netlist.cell_width(c);
                }
                let after = hpwl_over(netlist, placement, &nets);
                if after < before - 1e-9 && best.as_ref().is_none_or(|(b, _)| after < *b) {
                    best = Some((after, p.to_vec()));
                }
            });
            // restore, then apply best if any
            for (&c, &(x, y)) in cells.iter().zip(&orig) {
                placement.x[c.index()] = x;
                placement.y[c.index()] = y;
            }
            if let Some((_, p)) = best {
                let mut x = left;
                for (slot, &pi) in p.iter().enumerate() {
                    let c = cells[pi];
                    placement.x[c.index()] = x;
                    x += netlist.cell_width(c);
                    // keep the row sorted by x so later windows pack from
                    // the true leftmost cell
                    row[start + slot] = c;
                }
                accepted += 1;
            }
        }
    }
    (accepted, attempted)
}

fn permute(perm: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        f(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, f);
        perm.swap(k, i);
    }
}

/// Swaps equal-width cell pairs toward their nets' medians. Returns
/// `(accepted, attempted)` swap counts.
fn global_swap(
    netlist: &Netlist,
    placement: &mut Placement,
    rows: &[Vec<CellId>],
    cell_region: &[Option<u16>],
    row_h: f64,
) -> (usize, usize) {
    // spatial hash of std cells by coarse bins, keyed by width
    let all: Vec<CellId> = rows.iter().flatten().copied().collect();
    if all.is_empty() {
        return (0, 0);
    }
    let mut accepted = 0;
    let mut attempted = 0;
    let mut nets = Vec::new();
    // spatial hash: (width key, coarse bucket) → cells, so the peer search
    // is O(1) per cell instead of scanning the whole width class
    let bucket = (8.0 * row_h).max(1.0);
    // swaps only between equal-width cells with the same region tag
    let key_of = |w: f64, region: Option<u16>, x: f64, y: f64| -> (i64, i32, i64, i64) {
        (
            (w * 16.0).round() as i64,
            region.map(|r| r as i32).unwrap_or(-1),
            (x / bucket).floor() as i64,
            (y / bucket).floor() as i64,
        )
    };
    // lint:allow(determinism): probed by key only; per-bucket Vecs keep deterministic insertion order
    let mut spatial: std::collections::HashMap<(i64, i32, i64, i64), Vec<CellId>> =
        Default::default();
    for &c in &all {
        spatial
            .entry(key_of(
                netlist.cell_width(c),
                cell_region[c.index()],
                placement.x[c.index()],
                placement.y[c.index()],
            ))
            .or_default()
            .push(c);
    }
    for &cell in &all {
        // optimal region: median of the other-pin bounding boxes
        let (ox, oy) = optimal_position(netlist, placement, cell);
        let cur_d = (placement.x[cell.index()] - ox).abs() + (placement.y[cell.index()] - oy).abs();
        if cur_d < row_h {
            continue; // already near optimal
        }
        let w = netlist.cell_width(cell);
        // nearest peer to the optimal point among the 3×3 buckets around it
        let (wk, rk, bx, by) = key_of(w, cell_region[cell.index()], ox, oy);
        let mut best_peer: Option<(f64, CellId)> = None;
        for dy in -1..=1 {
            for dx in -1..=1 {
                let Some(peers) = spatial.get(&(wk, rk, bx + dx, by + dy)) else {
                    continue;
                };
                for &p in peers {
                    if p == cell {
                        continue;
                    }
                    let d =
                        (placement.x[p.index()] - ox).abs() + (placement.y[p.index()] - oy).abs();
                    if best_peer.is_none_or(|(bd, _)| d < bd) {
                        best_peer = Some((d, p));
                    }
                }
            }
        }
        let Some((_, peer)) = best_peer else { continue };
        // trial swap
        attempted += 1;
        nets_of(netlist, &[cell, peer], &mut nets);
        let before = hpwl_over(netlist, placement, &nets);
        swap_positions(placement, cell, peer);
        let after = hpwl_over(netlist, placement, &nets);
        if after < before - 1e-9 {
            accepted += 1;
        } else {
            swap_positions(placement, cell, peer);
        }
    }
    (accepted, attempted)
}

fn swap_positions(placement: &mut Placement, a: CellId, b: CellId) {
    placement.x.swap(a.index(), b.index());
    placement.y.swap(a.index(), b.index());
}

/// Median-of-bounds optimal position of a cell w.r.t. its nets.
fn optimal_position(netlist: &Netlist, placement: &Placement, cell: CellId) -> (f64, f64) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &p in netlist.cell_pins(cell) {
        let net = netlist.pin_net(p);
        let (mut xl, mut xh) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut yl, mut yh) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut others = 0;
        for q in netlist.net_pins(net) {
            if netlist.pin_cell(q) == cell {
                continue;
            }
            others += 1;
            let pos = placement.pin_position(netlist, q);
            xl = xl.min(pos.x);
            xh = xh.max(pos.x);
            yl = yl.min(pos.y);
            yh = yh.max(pos.y);
        }
        if others > 0 {
            xs.push(xl);
            xs.push(xh);
            ys.push(yl);
            ys.push(yh);
        }
    }
    if xs.is_empty() {
        return (placement.x[cell.index()], placement.y[cell.index()]);
    }
    let med = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    (med(&mut xs), med(&mut ys))
}

/// Independent-set matching: finds sets of equal-width, net-disjoint cells
/// and solves the slot assignment exactly. Returns `(accepted, attempted)`
/// set counts.
fn independent_set_matching(
    netlist: &Netlist,
    placement: &mut Placement,
    rows: &[Vec<CellId>],
    cell_region: &[Option<u16>],
    set_size: usize,
) -> (usize, usize) {
    let set_size = set_size.clamp(2, 12);
    let mut accepted = 0;
    let mut attempted = 0;
    // group by (width, region): slot exchanges stay inside one fence
    // lint:allow(determinism): keys are copied out and sorted before iteration (below)
    let mut by_width: std::collections::HashMap<(i64, i32), Vec<CellId>> = Default::default();
    for &c in rows.iter().flatten() {
        let key = (
            (netlist.cell_width(c) * 16.0).round() as i64,
            cell_region[c.index()].map(|r| r as i32).unwrap_or(-1),
        );
        by_width.entry(key).or_default().push(c);
    }
    // lint:allow(determinism): membership-only dedup of shared nets; never iterated
    let mut nets_seen: HashSet<NetId> = HashSet::new();
    let mut keys: Vec<(i64, i32)> = by_width.keys().copied().collect();
    keys.sort_unstable(); // deterministic iteration order
    for key in keys {
        let cells = &by_width[&key];
        let mut i = 0;
        while i < cells.len() {
            // greedily grow an independent set from consecutive candidates
            nets_seen.clear();
            let mut set = Vec::new();
            let mut j = i;
            while j < cells.len() && set.len() < set_size {
                let c = cells[j];
                let mut disjoint = true;
                for &p in netlist.cell_pins(c) {
                    if nets_seen.contains(&netlist.pin_net(p)) {
                        disjoint = false;
                        break;
                    }
                }
                if disjoint {
                    for &p in netlist.cell_pins(c) {
                        nets_seen.insert(netlist.pin_net(p));
                    }
                    set.push(c);
                }
                j += 1;
            }
            i = j;
            if set.len() < 2 {
                continue;
            }
            attempted += 1;
            if reassign_set(netlist, placement, &set) {
                accepted += 1;
            }
        }
    }
    (accepted, attempted)
}

/// Exactly reassigns an independent set over its own slots. Returns whether
/// a strictly better assignment was applied.
fn reassign_set(netlist: &Netlist, placement: &mut Placement, set: &[CellId]) -> bool {
    let k = set.len();
    let slots: Vec<(f64, f64)> = set
        .iter()
        .map(|&c| (placement.x[c.index()], placement.y[c.index()]))
        .collect();
    // separable cost matrix: cost[i][j] = Σ HPWL(nets of cell i | cell i at slot j)
    let mut nets = Vec::new();
    let mut cost = vec![vec![0.0; k]; k];
    for (i, &c) in set.iter().enumerate() {
        nets_of(netlist, &[c], &mut nets);
        let orig = (placement.x[c.index()], placement.y[c.index()]);
        for (j, &(sx, sy)) in slots.iter().enumerate() {
            placement.x[c.index()] = sx;
            placement.y[c.index()] = sy;
            cost[i][j] = hpwl_over(netlist, placement, &nets);
        }
        placement.x[c.index()] = orig.0;
        placement.y[c.index()] = orig.1;
    }
    let identity_cost: f64 = (0..k).map(|i| cost[i][i]).sum();
    let best: Vec<usize> = if k <= 4 {
        // brute force: ≤ 24 permutations
        let mut best_cost = identity_cost;
        let mut best: Vec<usize> = (0..k).collect();
        let mut perm: Vec<usize> = (0..k).collect();
        permute(&mut perm, 0, &mut |p| {
            let c: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if c < best_cost - 1e-9 {
                best_cost = c;
                best = p.to_vec();
            }
        });
        best
    } else {
        // exact min-cost matching for larger sets
        let flat: Vec<f64> = cost.iter().flatten().copied().collect();
        let (assign, total) = crate::assignment::solve(&flat, k);
        if total < identity_cost - 1e-9 {
            assign
        } else {
            (0..k).collect()
        }
    };
    if best.iter().enumerate().all(|(i, &j)| i == j) {
        return false;
    }
    for (i, &j) in best.iter().enumerate() {
        placement.x[set[i].index()] = slots[j].0;
        placement.y[set[i].index()] = slots[j].1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{place, GlobalConfig};
    use crate::legalize::{check_legal, legalize};
    use mep_netlist::synth;
    use mep_wirelength::ModelKind;

    fn legal_smoke() -> (mep_netlist::bookshelf::BookshelfCircuit, Placement) {
        let c = synth::generate(&synth::smoke_spec());
        let cfg = GlobalConfig {
            model: ModelKind::Moreau,
            max_iters: 400,
            threads: 1,
            ..GlobalConfig::default()
        };
        let gp = place(&c, &cfg).expect("placement flow");
        let (legal, _) = legalize(&c.design, &gp.placement).expect("legalize");
        (c, legal)
    }

    #[test]
    fn refinement_reduces_hpwl_and_stays_legal() {
        let (c, mut pl) = legal_smoke();
        let report = refine(&c.design, &mut pl, &DetailConfig::default());
        assert!(
            report.hpwl_after < report.hpwl_before,
            "no improvement: {report:?}"
        );
        assert!(report.reorders + report.swaps + report.matchings > 0);
        let violations = check_legal(&c.design, &pl);
        assert!(
            violations.is_empty(),
            "{} violations after DP: {:?}",
            violations.len(),
            &violations[..violations.len().min(5)]
        );
    }

    #[test]
    fn refinement_is_monotone_across_passes() {
        let (c, mut pl) = legal_smoke();
        let h0 = total_hpwl(&c.design.netlist, &pl);
        let mut prev = h0;
        for _ in 0..3 {
            let r = refine(
                &c.design,
                &mut pl,
                &DetailConfig {
                    passes: 1,
                    ..DetailConfig::default()
                },
            );
            assert!(r.hpwl_after <= prev + 1e-6);
            prev = r.hpwl_after;
        }
    }

    #[test]
    fn optimal_position_is_median_of_other_pins() {
        // cell connected by two 2-pin nets to cells at x = 0 and x = 10:
        // any x in [0,10] is optimal; the median-of-bounds picks inside
        let mut b = mep_netlist::NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, true).unwrap();
        let l = b.add_cell("l", 1.0, 1.0, true).unwrap();
        let r = b.add_cell("r", 1.0, 1.0, true).unwrap();
        b.add_net("n0", vec![(a, 0.0, 0.0), (l, 0.0, 0.0)]);
        b.add_net("n1", vec![(a, 0.0, 0.0), (r, 0.0, 0.0)]);
        let nl = b.build();
        let mut pl = Placement::zeros(3);
        pl.x[l.index()] = 0.0;
        pl.x[r.index()] = 10.0;
        pl.x[a.index()] = 50.0;
        let (ox, _) = optimal_position(&nl, &pl, a);
        assert!((0.0..=11.0).contains(&ox), "ox = {ox}");
    }

    #[test]
    fn permute_visits_all_orderings() {
        let mut count = 0;
        let mut p = vec![0, 1, 2, 3];
        permute(&mut p, 0, &mut |_| count += 1);
        assert_eq!(count, 24);
    }

    #[test]
    fn reassign_set_improves_crossed_pair() {
        // two cells whose nets pull them to each other's slots
        let mut b = mep_netlist::NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, true).unwrap();
        let c = b.add_cell("b", 1.0, 1.0, true).unwrap();
        let ta = b.add_cell("ta", 0.0, 0.0, false).unwrap();
        let tb = b.add_cell("tb", 0.0, 0.0, false).unwrap();
        b.add_net("na", vec![(a, 0.0, 0.0), (ta, 0.0, 0.0)]);
        b.add_net("nb", vec![(c, 0.0, 0.0), (tb, 0.0, 0.0)]);
        let nl = b.build();
        let mut pl = Placement::zeros(4);
        pl.x[ta.index()] = 100.0; // a's anchor on the right
        pl.x[tb.index()] = 0.0; // b's anchor on the left
        pl.x[a.index()] = 10.0; // a currently left (wrong side)
        pl.x[c.index()] = 90.0; // b currently right (wrong side)
        let before = total_hpwl(&nl, &pl);
        let improved = reassign_set(&nl, &mut pl, &[a, c]);
        let after = total_hpwl(&nl, &pl);
        assert!(improved);
        assert!(after < before);
        assert_eq!(pl.x[a.index()], 90.0);
        assert_eq!(pl.x[c.index()], 10.0);
    }
}
