//! Multilevel and incremental placement drivers on top of the flat
//! pipeline (DESIGN.md §12).
//!
//! Three entry points:
//!
//! * [`run_multilevel`] — cluster-based coarsening ([`mep_netlist::cluster`])
//!   builds a stack of progressively smaller placement problems; each level
//!   is solved by the guarded global placer and interpolated one level
//!   finer, so the finest (and most expensive) level starts from a nearly
//!   converged picture instead of everything piled at the die center.
//! * The **LB/UB warm-start alternation** inside it — at the coarsest
//!   level, B2B quadratic solves (the density-free *lower bound* on
//!   wirelength, [`crate::quadratic`]) alternate with short guarded
//!   Moreau/density runs (the legal-leaning *upper bound*); each LB round
//!   is anchored toward the last UB placement with a geometrically growing
//!   force factor, converging the two bounds the way SimPL/Coloquinte
//!   flows do.
//! * [`replace_region`] — incremental (ECO) re-placement: everything
//!   outside a dirty window is frozen in place (bit-identical coordinates)
//!   and only the cells touching the window are re-placed by the full
//!   guarded pipeline.
//!
//! All drivers reuse one persistent [`EvalEngine`] across every level and
//! stage, and stamp `level`/`stage` into the per-iteration trace records
//! so a single JSONL trace tells the whole story of a run.

use crate::error::PlacerError;
use crate::global::{place_with_engine, GlobalConfig};
use crate::guard::Termination;
use crate::pipeline::{run_with_engine, PipelineConfig, PipelineResult};
use crate::quadratic::{place_b2b, place_b2b_anchored, AnchorSet, B2bConfig};
use mep_netlist::bookshelf::BookshelfCircuit;
use mep_netlist::cluster::{coarsen, ClusterConfig, Coarsened};
use mep_netlist::{total_hpwl, Placement, Rect};
use mep_obs::{Registry, RunReport};
use mep_wirelength::engine::EvalEngine;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the multilevel flow.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Number of levels including the finest one (`1` = flat flow; `2`
    /// adds one coarse level; …). Coarsening stops early if a level would
    /// fall below [`min_coarse_movable`](Self::min_coarse_movable) cells
    /// or clustering stops making progress.
    pub levels: usize,
    /// Run the LB/UB quadratic/nonlinear alternation at the coarsest
    /// level before the coarse density run (works at `levels == 1` too,
    /// warm-starting the flat flow).
    pub warm_start: bool,
    /// LB/UB alternation rounds when warm-starting.
    pub lb_rounds: usize,
    /// Anchor force factor of the first anchored LB round.
    pub force_factor0: f64,
    /// Geometric growth of the force factor per round.
    pub force_growth: f64,
    /// Global-placement iteration cap per coarse level (the finest level
    /// uses [`pipeline`](Self::pipeline)'s own cap).
    pub coarse_iters: usize,
    /// Density-overflow target at coarse levels — looser than the finest
    /// target because legality is only decided at the finest level.
    pub coarse_target_overflow: f64,
    /// Stop coarsening once a level has fewer movable cells than this.
    pub min_coarse_movable: usize,
    /// λ₀ multiplier for stages that start from an already-spread
    /// placement (prolonged intermediate levels and the finest level
    /// after a coarse solve) — they skip the early part of the Eq. (15)
    /// density ramp instead of re-walking it.
    pub warm_lambda_scale: f64,
    /// Clustering parameters for each coarsening pass.
    pub cluster: ClusterConfig,
    /// Quadratic-solver parameters for the LB rounds.
    pub b2b: B2bConfig,
    /// The finest-level pipeline configuration (model, schedules,
    /// legalization, detailed placement).
    pub pipeline: PipelineConfig,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            levels: 2,
            warm_start: true,
            lb_rounds: 3,
            force_factor0: 0.02,
            force_growth: 2.0,
            coarse_iters: 90,
            coarse_target_overflow: 0.20,
            min_coarse_movable: 64,
            warm_lambda_scale: 5.0,
            cluster: ClusterConfig::default(),
            // A lower bound only seeds the UB run — looser CG than the
            // standalone quadratic placer is plenty and keeps the LB cost
            // sublinear in the coarse instance size.
            b2b: B2bConfig {
                rounds: 2,
                cg_iters: 150,
                cg_tol: 1e-5,
                ..B2bConfig::default()
            },
            pipeline: PipelineConfig::default(),
        }
    }
}

/// What one level of the multilevel flow did.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Hierarchy level (0 = finest / original netlist).
    pub level: usize,
    /// Movable cells at this level.
    pub movable: usize,
    /// Global-placement iterations spent at this level (for the finest
    /// level: the pipeline's GP iterations).
    pub iterations: usize,
    /// HPWL at the end of this level (coarse netlist HPWL for coarse
    /// levels, final DPWL for the finest).
    pub hpwl: f64,
    /// Density overflow at the end of this level's global placement.
    pub overflow: f64,
    /// Wall-clock seconds spent on this level.
    pub rt_seconds: f64,
}

/// Result of [`run_multilevel`].
#[derive(Debug, Clone)]
pub struct MultilevelResult {
    /// The finest-level pipeline result (legal placement, tables metrics,
    /// recovery log). Its [`report`](PipelineResult::report) additionally
    /// carries the `ml.*` multilevel metrics.
    pub result: PipelineResult,
    /// Levels actually placed (≤ the configured count when coarsening
    /// stopped early).
    pub levels: usize,
    /// LB/UB alternation rounds actually run.
    pub warm_rounds: usize,
    /// Per-level statistics, coarsest first, finest (level 0) last.
    pub level_stats: Vec<LevelStats>,
}

/// Derives the global config used at a coarse level.
fn coarse_global(cfg: &MultilevelConfig, level: usize, stage: &str, iters: usize) -> GlobalConfig {
    GlobalConfig {
        max_iters: iters,
        min_iters: cfg.pipeline.global.min_iters.min(iters),
        target_overflow: cfg.coarse_target_overflow,
        record_trajectory: false,
        level: level as u32,
        stage: Some(stage.to_string()),
        ..cfg.pipeline.global.clone()
    }
}

/// Runs the multilevel flow: coarsen, solve coarse→fine with warm-started
/// LB/UB alternation at the coarsest level, finish with the full flat
/// pipeline on the original netlist.
///
/// # Errors
///
/// [`PlacerError`] on degenerate inputs or unrecoverable numerical faults
/// at any level. A coarsest level whose netlist cannot support a
/// quadratic solve (e.g. every net collapsed) silently skips the LB
/// rounds and falls back to the plain coarse density run.
pub fn run_multilevel(
    circuit: &BookshelfCircuit,
    config: &MultilevelConfig,
) -> Result<MultilevelResult, PlacerError> {
    let engine = Arc::new(EvalEngine::new(config.pipeline.global.threads));
    run_multilevel_with_engine(circuit, config, engine)
}

/// [`run_multilevel`] with a caller-supplied evaluation engine, so a
/// long-lived driver (the `mep-serve` daemon) reuses one worker pool
/// across every job instead of spawning threads per request.
///
/// The cancel token in `config.pipeline.global.cancel` is honored at
/// every stage boundary — before each coarsening pass, each LB/UB round,
/// and each intermediate level — in addition to the per-iteration check
/// inside each global-placement loop. A token that trips during the
/// coarse phase skips the remaining coarse work; the finest pipeline then
/// runs a single checked iteration so the result still carries a legal
/// placement and the mapped termination ([`Termination::WallClock`] for a
/// deadline, [`Termination::Cancelled`] for an explicit cancel).
pub fn run_multilevel_with_engine(
    circuit: &BookshelfCircuit,
    config: &MultilevelConfig,
    engine: Arc<EvalEngine>,
) -> Result<MultilevelResult, PlacerError> {
    if config.levels == 0 {
        return Err(PlacerError::DegenerateInput {
            reason: "multilevel flow needs at least one level".to_string(),
        });
    }
    let cancel = config.pipeline.global.cancel.clone();

    // Build the coarsening stack bottom-up. `stack[k]` is the coarsening
    // that turns level-k geometry into level-(k+1) geometry; the level-k
    // circuit is `stack[k-1].design` (or the input for k = 0).
    let mut stack: Vec<Coarsened> = Vec::new();
    for _ in 1..config.levels {
        // a deadline/cancel during coarsening: stop building levels and
        // let the (checked) finest run wind the flow down
        if cancel.is_tripped() {
            break;
        }
        let (fine_design, fine_placement) = match stack.last() {
            None => (&circuit.design, &circuit.placement),
            Some(c) => (&c.design, &c.placement),
        };
        if fine_design.netlist.num_movable() <= config.min_coarse_movable {
            break;
        }
        let coarse = coarsen(fine_design, fine_placement, &config.cluster)?;
        // no progress ⇒ further passes would loop forever on the same size
        if coarse.stats.coarse_movable >= coarse.stats.fine_movable {
            break;
        }
        stack.push(coarse);
    }
    let levels = stack.len() + 1;

    let mut level_stats: Vec<LevelStats> = Vec::new();
    let metrics = Registry::new();
    metrics.counter("ml.levels").add(levels as u64);

    // ---- coarsest level: LB/UB warm-start alternation + density run ----
    let coarsest = stack.len();
    let mut level_circuit = match stack.last() {
        None => circuit.clone(),
        Some(c) => BookshelfCircuit {
            design: c.design.clone(),
            placement: c.placement.clone(),
        },
    };
    // lint:allow(determinism): stage wall-time telemetry; durations never feed back into results
    let t_coarsest = Instant::now();
    let mut warm_rounds = 0usize;
    let mut coarsest_iters = 0usize;
    let mut coarsest_overflow = f64::NAN;
    if config.warm_start && config.lb_rounds > 0 {
        let ub_budget = (config.coarse_iters / config.lb_rounds).max(20);
        let mut force = config.force_factor0;
        let mut target: Option<Placement> = None;
        for _round in 0..config.lb_rounds {
            // the LB quadratic solve has no token poll of its own: check
            // here so a tripped token skips whole rounds, not just the
            // guarded UB iterations inside them
            if cancel.is_tripped() {
                break;
            }
            let lb = match &target {
                None => place_b2b(&level_circuit, &config.b2b),
                Some(t) => place_b2b_anchored(
                    &level_circuit,
                    &config.b2b,
                    Some(AnchorSet {
                        target: t,
                        force_factor: force,
                    }),
                ),
            };
            let lb_placement = match lb {
                Ok((pl, _)) => pl,
                // a coarse netlist that cannot constrain any movable cell
                // (all nets collapsed) has nothing for the LB engine to
                // do; the density run below still works
                Err(PlacerError::DegenerateInput { .. }) => break,
                Err(e) => return Err(e),
            };
            level_circuit.placement = lb_placement;
            let gcfg = coarse_global(config, coarsest, "warm-ub", ub_budget);
            let ub = place_with_engine(&level_circuit, &gcfg, Arc::clone(&engine))?;
            coarsest_iters += ub.iterations;
            coarsest_overflow = ub.overflow;
            level_circuit.placement = ub.placement;
            target = Some(level_circuit.placement.clone());
            force *= config.force_growth;
            warm_rounds += 1;
        }
    }
    if warm_rounds == 0 {
        // cold coarse run (warm start disabled or LB degenerate)
        let gcfg = coarse_global(config, coarsest, "coarse", config.coarse_iters);
        let gp = place_with_engine(&level_circuit, &gcfg, Arc::clone(&engine))?;
        coarsest_iters = gp.iterations;
        coarsest_overflow = gp.overflow;
        level_circuit.placement = gp.placement;
    }
    metrics.counter("ml.warm_rounds").add(warm_rounds as u64);
    level_stats.push(LevelStats {
        level: coarsest,
        movable: level_circuit.design.netlist.num_movable(),
        iterations: coarsest_iters,
        hpwl: total_hpwl(&level_circuit.design.netlist, &level_circuit.placement),
        overflow: coarsest_overflow,
        rt_seconds: t_coarsest.elapsed().as_secs_f64(),
    });

    // ---- walk down the stack: prolong, refine each intermediate level ----
    for k in (1..stack.len()).rev() {
        // lint:allow(determinism): stage wall-time telemetry; durations never feed back into results
        let t_level = Instant::now();
        let fine = &stack[k - 1]; // level-k problem
        let mut fine_placement = fine.placement.clone();
        stack[k].map.prolong(
            &fine.design,
            &stack[k].design,
            &level_circuit.placement,
            &mut fine_placement,
        )?;
        level_circuit = BookshelfCircuit {
            design: fine.design.clone(),
            placement: fine_placement,
        };
        let mut gcfg = coarse_global(config, k, "coarse", config.coarse_iters);
        gcfg.lambda_scale = config.warm_lambda_scale;
        let gp = place_with_engine(&level_circuit, &gcfg, Arc::clone(&engine))?;
        level_stats.push(LevelStats {
            level: k,
            movable: level_circuit.design.netlist.num_movable(),
            iterations: gp.iterations,
            hpwl: gp.hpwl,
            overflow: gp.overflow,
            rt_seconds: t_level.elapsed().as_secs_f64(),
        });
        level_circuit.placement = gp.placement;
    }

    // ---- finest level: prolong and run the full pipeline ----
    // lint:allow(determinism): stage wall-time telemetry; durations never feed back into results
    let t_finest = Instant::now();
    let mut finest_circuit = circuit.clone();
    if let Some(first) = stack.first() {
        let mut fine_placement = circuit.placement.clone();
        first.map.prolong(
            &circuit.design,
            &first.design,
            &level_circuit.placement,
            &mut fine_placement,
        )?;
        finest_circuit.placement = fine_placement;
    } else {
        // flat flow: the "coarsest" level was the original netlist
        finest_circuit.placement = level_circuit.placement.clone();
    }
    let mut final_config = config.pipeline.clone();
    final_config.global.level = 0;
    final_config.global.stage = Some("final".to_string());
    if !stack.is_empty() {
        // the finest level starts from a prolonged coarse solution, not a
        // center pile: begin the density ramp further along
        final_config.global.lambda_scale = config.warm_lambda_scale;
    }
    let mut result = run_with_engine(&finest_circuit, &final_config, Arc::clone(&engine))?;
    level_stats.push(LevelStats {
        level: 0,
        movable: circuit.design.netlist.num_movable(),
        iterations: result.iterations,
        hpwl: result.dpwl,
        overflow: result.overflow,
        rt_seconds: t_finest.elapsed().as_secs_f64(),
    });

    for s in &level_stats {
        let p = format!("ml.level{}", s.level);
        metrics
            .counter(&format!("{p}.movable"))
            .add(s.movable as u64);
        metrics
            .counter(&format!("{p}.iterations"))
            .add(s.iterations as u64);
        metrics.gauge(&format!("{p}.hpwl")).set(s.hpwl);
        metrics.gauge(&format!("{p}.overflow")).set(s.overflow);
        metrics.gauge(&format!("{p}.rt_seconds")).set(s.rt_seconds);
    }
    result.report.merge_registry(&metrics);

    Ok(MultilevelResult {
        result,
        levels,
        warm_rounds,
        level_stats,
    })
}

/// Configuration of incremental (ECO) re-placement.
#[derive(Debug, Clone, Default)]
pub struct EcoConfig {
    /// Pipeline settings for the re-placement run (model, iteration cap,
    /// detailed placement). The driver overrides the trace `stage` to
    /// `"eco"`.
    pub pipeline: PipelineConfig,
}

/// Result of [`replace_region`].
#[derive(Debug, Clone)]
pub struct EcoResult {
    /// The full placement after the ECO run; frozen cells are
    /// bit-identical to the input.
    pub placement: Placement,
    /// Total HPWL of the input placement.
    pub hpwl_before: f64,
    /// Total HPWL after the ECO run.
    pub hpwl_after: f64,
    /// Movable cells frozen because they do not touch the window.
    pub frozen: usize,
    /// Movable cells re-placed.
    pub replaced: usize,
    /// Global-placement iterations spent.
    pub iterations: usize,
    /// Wall-clock seconds of the whole ECO run.
    pub rt_seconds: f64,
    /// Why the re-placement loop stopped.
    pub termination: Termination,
    /// Legality violations after the run (on the derived netlist, i.e.
    /// counting frozen cells as obstacles).
    pub violations: usize,
    /// End-of-run telemetry of the inner pipeline plus `eco.*` metrics.
    pub report: RunReport,
}

/// Incremental (ECO) re-placement: freezes every movable cell whose
/// bounding box does not intersect `window` and re-runs the guarded
/// pipeline on the remaining cells only. Frozen cells keep bit-identical
/// coordinates and act as fixed obstacles for legalization.
///
/// # Errors
///
/// [`PlacerError::DegenerateInput`] when the window does not overlap the
/// die or selects no movable cell; any inner pipeline error otherwise.
pub fn replace_region(
    circuit: &BookshelfCircuit,
    window: Rect,
    config: &EcoConfig,
) -> Result<EcoResult, PlacerError> {
    // lint:allow(determinism): stage wall-time telemetry; durations never feed back into results
    let t0 = Instant::now();
    let die = circuit.design.die;
    let (xl, yl) = (window.xl.max(die.xl), window.yl.max(die.yl));
    let (xh, yh) = (window.xh.min(die.xh), window.yh.min(die.yh));
    if xh <= xl || yh <= yl {
        return Err(PlacerError::DegenerateInput {
            reason: format!("ECO window {window} does not overlap the die {die}"),
        });
    }
    let dirty = Rect::new(xl, yl, xh, yh);
    let nl = &circuit.design.netlist;
    let mut movable = vec![false; nl.num_cells()];
    let mut replaced = 0usize;
    let mut frozen = 0usize;
    for cell in nl.movable_cells() {
        let rect = circuit.placement.cell_rect(nl, cell);
        if rect.intersects(&dirty) {
            movable[cell.index()] = true;
            replaced += 1;
        } else {
            frozen += 1;
        }
    }
    if replaced == 0 {
        return Err(PlacerError::DegenerateInput {
            reason: format!("ECO window {dirty} selects no movable cell"),
        });
    }
    let mut derived_design = circuit.design.clone();
    derived_design.netlist = nl.with_movability(&movable)?;
    let derived = BookshelfCircuit {
        design: derived_design,
        placement: circuit.placement.clone(),
    };
    let hpwl_before = total_hpwl(nl, &circuit.placement);

    let mut eco_config = config.pipeline.clone();
    eco_config.global.stage = Some("eco".to_string());
    let result = run_with_engine(
        &derived,
        &eco_config,
        Arc::new(EvalEngine::new(eco_config.global.threads)),
    )?;
    let hpwl_after = total_hpwl(nl, &result.placement);

    let metrics = Registry::new();
    metrics.counter("eco.replaced").add(replaced as u64);
    metrics.counter("eco.frozen").add(frozen as u64);
    metrics.gauge("eco.hpwl_before").set(hpwl_before);
    metrics.gauge("eco.hpwl_after").set(hpwl_after);
    metrics
        .gauge("eco.hpwl_delta")
        .set(hpwl_after - hpwl_before);
    let mut report = result.report;
    report.merge_registry(&metrics);

    Ok(EcoResult {
        placement: result.placement,
        hpwl_before,
        hpwl_after,
        frozen,
        replaced,
        iterations: result.iterations,
        rt_seconds: t0.elapsed().as_secs_f64(),
        termination: result.termination,
        violations: result.violations,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth;

    #[test]
    fn zero_levels_is_a_typed_error() {
        let c = synth::generate(&synth::smoke_spec());
        let cfg = MultilevelConfig {
            levels: 0,
            ..MultilevelConfig::default()
        };
        assert!(matches!(
            run_multilevel(&c, &cfg),
            Err(PlacerError::DegenerateInput { .. })
        ));
    }

    #[test]
    fn deadline_during_coarsening_terminates_wall_clock() {
        // an already-expired deadline trips before the first coarsening
        // pass: the flow must skip the coarse phase and return a legal
        // partial result tagged WallClock, not hang or report Converged
        let c = synth::generate(&synth::smoke_clustered_spec());
        let mut cfg = MultilevelConfig {
            levels: 3,
            ..MultilevelConfig::default()
        };
        cfg.pipeline.global.threads = 1;
        cfg.pipeline.global.cancel =
            crate::cancel::CancelToken::with_deadline_in(std::time::Duration::ZERO);
        let r = run_multilevel(&c, &cfg).unwrap();
        assert_eq!(r.result.termination, Termination::WallClock);
        assert!(r.result.termination.is_partial());
        assert_eq!(r.result.violations, 0, "partial result is still legal");
        assert!(
            r.level_stats.iter().all(|s| s.iterations <= 1),
            "tripped token bounds every level to one checked iteration: {:?}",
            r.level_stats
        );
    }

    #[test]
    fn explicit_cancel_mid_coarse_terminates_cancelled() {
        let c = synth::generate(&synth::smoke_clustered_spec());
        let mut cfg = MultilevelConfig {
            levels: 2,
            ..MultilevelConfig::default()
        };
        cfg.pipeline.global.threads = 1;
        let token = crate::cancel::CancelToken::new();
        cfg.pipeline.global.cancel = token.clone();
        token.cancel();
        let r = run_multilevel(&c, &cfg).unwrap();
        assert_eq!(r.result.termination, Termination::Cancelled);
        assert_eq!(r.result.violations, 0);
    }

    #[test]
    fn eco_window_off_die_is_a_typed_error() {
        let c = synth::generate(&synth::smoke_spec());
        let off = Rect::new(-100.0, -100.0, -50.0, -50.0);
        assert!(matches!(
            replace_region(&c, off, &EcoConfig::default()),
            Err(PlacerError::DegenerateInput { .. })
        ));
    }
}
