//! Numerical health guard for the placement loop.
//!
//! The ePlace-style loop is numerically fragile by construction: Nesterov's
//! Lipschitz steplength prediction can explode while the density weight `λ`
//! ramps (Eq. (15)), and a single NaN gradient poisons every downstream
//! metric. This module provides the observation half of the guard — the
//! recovery actions themselves (rollback, steplength backoff, model and
//! solver degradation) are orchestrated by [`crate::global`]:
//!
//! * [`HealthMonitor::check`] inspects each iteration's objective value,
//!   gradient norm, steplength, overflow, and coordinates for NaN/Inf,
//!   detects objective divergence against the first healthy value, and
//!   runs a windowed overflow-trend test for stagnation;
//! * on healthy iterations the monitor keeps a **best-so-far snapshot**
//!   (minimum-overflow placement plus its `λ`/smoothing state) that
//!   rollback and partial-result termination restore from;
//! * every recovery is recorded as a [`RecoveryEvent`] in a
//!   [`RecoveryLog`] surfaced through `GlobalResult`/`PipelineResult` and
//!   the `mep` CLI.
//!
//! On a clean run the guard is pure observation: it performs no extra
//! objective evaluations and never perturbs the iterates, so guarded and
//! unguarded runs are bit-identical.

use mep_wirelength::ModelKind;
use std::fmt;

/// Configuration of the placement-loop guard.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Master switch; `false` turns every check into a no-op.
    pub enabled: bool,
    /// Consecutive tripped iterations before the degradation ladder
    /// advances (each trip below this rolls back and backs off only).
    pub max_strikes: usize,
    /// Steplength shrink factor applied on every rollback.
    pub backoff: f64,
    /// Objective divergence threshold: trip when `|f|` exceeds this factor
    /// times `|f₀| + 1` for the first healthy value `f₀`.
    pub divergence_factor: f64,
    /// Window length (healthy iterations) of the stagnation trend test.
    pub stagnation_window: usize,
    /// Minimum relative overflow improvement between consecutive windows;
    /// below it the run is declared stagnated. Deliberately tiny so only a
    /// truly flat-lined optimizer trips.
    pub stagnation_tol: f64,
    /// Total recovery events tolerated before the guard gives up and
    /// returns the best snapshot with [`Termination::GuardExhausted`].
    pub max_recoveries: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_strikes: 3,
            backoff: 0.5,
            divergence_factor: 1e4,
            stagnation_window: 120,
            stagnation_tol: 1e-6,
            max_recoveries: 24,
        }
    }
}

/// What tripped the guard on one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Objective value was NaN/Inf.
    NonFiniteValue(f64),
    /// Gradient norm (or the predicted steplength) was NaN/Inf.
    NonFiniteGradient,
    /// One or more parameter coordinates were NaN/Inf.
    NonFiniteCoordinates {
        /// How many coordinates were non-finite.
        count: usize,
    },
    /// Density overflow was NaN/Inf.
    NonFiniteOverflow,
    /// Objective blew past the divergence threshold.
    Divergence {
        /// The offending objective value.
        value: f64,
        /// The first healthy objective value it is compared against.
        reference: f64,
    },
    /// Overflow stopped improving over the configured window.
    Stagnation {
        /// Window length of the trend test.
        window: usize,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NonFiniteValue(v) => write!(f, "non-finite objective value ({v})"),
            Fault::NonFiniteGradient => write!(f, "non-finite gradient or steplength"),
            Fault::NonFiniteCoordinates { count } => {
                write!(f, "{count} non-finite coordinate(s)")
            }
            Fault::NonFiniteOverflow => write!(f, "non-finite density overflow"),
            Fault::Divergence { value, reference } => {
                write!(f, "objective diverged ({value:.3e} from {reference:.3e})")
            }
            Fault::Stagnation { window } => {
                write!(f, "overflow stagnated over {window} iterations")
            }
        }
    }
}

/// Recovery action taken in response to a [`Fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Restored the best snapshot and shrank the steplength.
    RollbackBackoff,
    /// Swapped the wirelength model down the degradation ladder.
    DegradeModel {
        /// Model before the swap.
        from: ModelKind,
        /// Model after the swap.
        to: ModelKind,
    },
    /// Degraded the density solver to the unplanned transform baseline.
    DegradeDensitySolver,
    /// Gave up: restored the best snapshot and stopped the loop.
    Halt,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::RollbackBackoff => write!(f, "rollback + steplength backoff"),
            RecoveryAction::DegradeModel { from, to } => {
                write!(f, "degrade wirelength model {from} → {to}")
            }
            RecoveryAction::DegradeDensitySolver => {
                write!(f, "degrade density solver to unplanned transforms")
            }
            RecoveryAction::Halt => write!(f, "halt with best snapshot"),
        }
    }
}

/// One recovery event: which iteration, what tripped, what was done.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Iteration index at which the fault was detected.
    pub iteration: usize,
    /// The tripped check.
    pub fault: Fault,
    /// The recovery action taken.
    pub action: RecoveryAction,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iter {}: {} → {}",
            self.iteration, self.fault, self.action
        )
    }
}

/// Chronological record of every recovery taken during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// Appends an event.
    pub fn push(&mut self, event: RecoveryEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the run needed no recovery at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }
}

impl fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no recovery events");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Why the global-placement loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Termination {
    /// Overflow reached the target (the normal outcome).
    #[default]
    Converged,
    /// The iteration cap was reached (last iterate kept, pre-guard
    /// semantics).
    IterationCap,
    /// The wall-clock budget expired; the best snapshot was returned as a
    /// partial result.
    WallClock,
    /// The stagnation trend test fired; best snapshot returned.
    Stagnated,
    /// The guard ran out of recovery options; best snapshot returned.
    GuardExhausted,
    /// The run's [`CancelToken`](crate::cancel::CancelToken) was cancelled
    /// explicitly; best snapshot returned. Deadline expiry on the same
    /// token reports [`Termination::WallClock`] instead.
    Cancelled,
}

impl Termination {
    /// Whether the result is a best-snapshot partial result rather than
    /// the loop's natural last iterate.
    pub fn is_partial(&self) -> bool {
        matches!(
            self,
            Termination::WallClock
                | Termination::Stagnated
                | Termination::GuardExhausted
                | Termination::Cancelled
        )
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Termination::Converged => write!(f, "converged"),
            Termination::IterationCap => write!(f, "iteration cap"),
            Termination::WallClock => write!(f, "wall-clock budget"),
            Termination::Stagnated => write!(f, "stagnated"),
            Termination::GuardExhausted => write!(f, "guard exhausted"),
            Termination::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Best-so-far placement snapshot (minimum overflow seen), together with
/// the schedule state needed to resume from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Packed parameter vector (movable-cell centers).
    pub params: Vec<f64>,
    /// Density overflow at the snapshot.
    pub phi: f64,
    /// Density weight `λ` at the snapshot.
    pub lambda: f64,
    /// Wirelength smoothing parameter at the snapshot.
    pub smoothing: f64,
    /// Iteration the snapshot was taken at.
    pub iteration: usize,
}

/// Per-iteration health checks plus best-snapshot bookkeeping.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: GuardConfig,
    best: Option<Snapshot>,
    /// First healthy objective value (divergence reference).
    reference_value: Option<f64>,
    /// Overflow of each healthy iteration (stagnation window).
    phi_history: Vec<f64>,
    strikes: usize,
    log: RecoveryLog,
}

impl HealthMonitor {
    /// Creates a monitor with the given configuration.
    pub fn new(cfg: GuardConfig) -> Self {
        Self {
            cfg,
            best: None,
            reference_value: None,
            phi_history: Vec::new(),
            strikes: 0,
            log: RecoveryLog::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.cfg
    }

    /// Seeds the best snapshot with the pre-loop state so a fault on the
    /// very first iteration has something to roll back to. Does not touch
    /// the divergence reference or the stagnation window.
    pub fn seed(&mut self, params: &[f64], phi: f64, lambda: f64, smoothing: f64) {
        self.best = Some(Snapshot {
            params: params.to_vec(),
            phi,
            lambda,
            smoothing,
            iteration: 0,
        });
    }

    /// Inspects one iteration. Returns the first tripped [`Fault`], or
    /// `Ok(())` when the iteration is healthy. Pure observation: no
    /// objective evaluations, no state changes.
    pub fn check(
        &self,
        value: f64,
        grad_norm: f64,
        step: f64,
        phi: f64,
        params: &[f64],
    ) -> Result<(), Fault> {
        if !self.cfg.enabled {
            return Ok(());
        }
        if !value.is_finite() {
            return Err(Fault::NonFiniteValue(value));
        }
        if !grad_norm.is_finite() || !step.is_finite() {
            return Err(Fault::NonFiniteGradient);
        }
        if !phi.is_finite() {
            return Err(Fault::NonFiniteOverflow);
        }
        let bad = params.iter().filter(|v| !v.is_finite()).count();
        if bad > 0 {
            return Err(Fault::NonFiniteCoordinates { count: bad });
        }
        if let Some(reference) = self.reference_value {
            if value.abs() > self.cfg.divergence_factor * (reference.abs() + 1.0) {
                return Err(Fault::Divergence { value, reference });
            }
        }
        let w = self.cfg.stagnation_window;
        if w > 0 && self.phi_history.len() >= 2 * w {
            let n = self.phi_history.len();
            let recent = self.phi_history[n - w..]
                .iter()
                .fold(f64::INFINITY, |m, &v| m.min(v));
            let prior = self.phi_history[n - 2 * w..n - w]
                .iter()
                .fold(f64::INFINITY, |m, &v| m.min(v));
            if recent > prior * (1.0 - self.cfg.stagnation_tol) {
                return Err(Fault::Stagnation { window: w });
            }
        }
        Ok(())
    }

    /// Records a healthy iteration: fixes the divergence reference on first
    /// call, extends the stagnation window, clears the strike counter, and
    /// updates the best snapshot when `phi` matches or beats it (`<=` so
    /// later ties win — the later iterate has had more wirelength descent).
    #[allow(clippy::too_many_arguments)]
    pub fn observe_healthy(
        &mut self,
        iteration: usize,
        value: f64,
        phi: f64,
        params: &[f64],
        lambda: f64,
        smoothing: f64,
    ) {
        if !self.cfg.enabled {
            return;
        }
        self.reference_value.get_or_insert(value);
        self.phi_history.push(phi);
        self.strikes = 0;
        let improved = match &self.best {
            Some(snap) => phi <= snap.phi,
            None => true,
        };
        if improved {
            match &mut self.best {
                Some(snap) => {
                    snap.params.copy_from_slice(params);
                    snap.phi = phi;
                    snap.lambda = lambda;
                    snap.smoothing = smoothing;
                    snap.iteration = iteration;
                }
                None => {
                    self.best = Some(Snapshot {
                        params: params.to_vec(),
                        phi,
                        lambda,
                        smoothing,
                        iteration,
                    });
                }
            }
        }
    }

    /// Registers a tripped iteration; returns the consecutive-strike count.
    pub fn strike(&mut self) -> usize {
        self.strikes += 1;
        self.strikes
    }

    /// Resets the consecutive-strike counter (after a ladder escalation).
    pub fn clear_strikes(&mut self) {
        self.strikes = 0;
    }

    /// Current consecutive-strike count.
    pub fn strikes(&self) -> usize {
        self.strikes
    }

    /// The best snapshot so far, if any healthy state has been seen.
    pub fn best(&self) -> Option<&Snapshot> {
        self.best.as_ref()
    }

    /// Records a recovery event.
    pub fn record(&mut self, event: RecoveryEvent) {
        self.log.push(event);
    }

    /// Whether the recovery budget is spent.
    pub fn exhausted(&self) -> bool {
        self.log.len() >= self.cfg.max_recoveries
    }

    /// The recovery log (borrow).
    pub fn log(&self) -> &RecoveryLog {
        &self.log
    }

    /// Consumes the monitor, returning the recovery log.
    pub fn into_log(self) -> RecoveryLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(GuardConfig::default())
    }

    #[test]
    fn healthy_iterations_pass_and_update_best() {
        let mut m = monitor();
        let p1 = [1.0, 2.0, 3.0];
        let p2 = [1.5, 2.5, 3.5];
        assert!(m.check(10.0, 1.0, 0.1, 0.8, &p1).is_ok());
        m.observe_healthy(0, 10.0, 0.8, &p1, 0.1, 4.0);
        m.observe_healthy(1, 9.0, 0.5, &p2, 0.2, 3.0);
        let best = m.best().unwrap();
        assert_eq!(best.iteration, 1);
        assert_eq!(best.phi, 0.5);
        assert_eq!(best.params, p2);
        // a worse-overflow iteration must not displace the snapshot
        m.observe_healthy(2, 8.0, 0.7, &p1, 0.3, 2.0);
        assert_eq!(m.best().unwrap().iteration, 1);
    }

    #[test]
    fn snapshot_restores_bit_identically() {
        let mut m = monitor();
        let params: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.7361).sin() * 1e3 + f64::EPSILON * i as f64)
            .collect();
        m.observe_healthy(5, 1.0, 0.3, &params, 0.05, 2.5);
        // clobber a copy, then restore from the snapshot
        let mut live = params.clone();
        for v in live.iter_mut() {
            *v = f64::NAN;
        }
        live.copy_from_slice(&m.best().unwrap().params);
        for (a, b) in live.iter().zip(&params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn non_finite_inputs_trip_the_matching_fault() {
        let m = monitor();
        let p = [1.0, 2.0];
        assert!(matches!(
            m.check(f64::NAN, 1.0, 0.1, 0.5, &p),
            Err(Fault::NonFiniteValue(v)) if v.is_nan()
        ));
        assert_eq!(
            m.check(1.0, f64::INFINITY, 0.1, 0.5, &p),
            Err(Fault::NonFiniteGradient)
        );
        assert_eq!(
            m.check(1.0, 1.0, f64::NAN, 0.5, &p),
            Err(Fault::NonFiniteGradient)
        );
        assert_eq!(
            m.check(1.0, 1.0, 0.1, f64::NAN, &p),
            Err(Fault::NonFiniteOverflow)
        );
        assert_eq!(
            m.check(1.0, 1.0, 0.1, 0.5, &[1.0, f64::NAN, f64::INFINITY]),
            Err(Fault::NonFiniteCoordinates { count: 2 })
        );
    }

    #[test]
    fn divergence_is_measured_against_first_healthy_value() {
        let mut m = monitor();
        let p = [0.0];
        // no reference yet: a huge first value is not divergence
        assert!(m.check(1e12, 1.0, 0.1, 0.5, &p).is_ok());
        m.observe_healthy(0, 10.0, 0.5, &p, 0.0, 1.0);
        assert!(m.check(1e4, 1.0, 0.1, 0.5, &p).is_ok());
        assert!(matches!(
            m.check(1e9, 1.0, 0.1, 0.5, &p),
            Err(Fault::Divergence { .. })
        ));
    }

    #[test]
    fn stagnation_trips_only_on_a_flat_window() {
        let cfg = GuardConfig {
            stagnation_window: 5,
            ..GuardConfig::default()
        };
        let mut m = HealthMonitor::new(cfg.clone());
        let p = [0.0];
        // steadily improving overflow: never stagnates
        for i in 0..20 {
            let phi = 1.0 - 0.04 * i as f64;
            assert!(m.check(1.0, 1.0, 0.1, phi, &p).is_ok(), "iter {i}");
            m.observe_healthy(i, 1.0, phi, &p, 0.0, 1.0);
        }
        // perfectly flat overflow: stagnates once two windows fill
        let mut m = HealthMonitor::new(cfg);
        for i in 0..10 {
            m.observe_healthy(i, 1.0, 0.5, &p, 0.0, 1.0);
        }
        assert_eq!(
            m.check(1.0, 1.0, 0.1, 0.5, &p),
            Err(Fault::Stagnation { window: 5 })
        );
    }

    #[test]
    fn strikes_count_consecutively_and_clear_on_health() {
        let mut m = monitor();
        assert_eq!(m.strike(), 1);
        assert_eq!(m.strike(), 2);
        m.observe_healthy(0, 1.0, 0.5, &[0.0], 0.0, 1.0);
        assert_eq!(m.strikes(), 0);
        assert_eq!(m.strike(), 1);
    }

    #[test]
    fn disabled_guard_never_trips() {
        let cfg = GuardConfig {
            enabled: false,
            ..GuardConfig::default()
        };
        let m = HealthMonitor::new(cfg);
        assert!(m
            .check(f64::NAN, f64::NAN, f64::NAN, f64::NAN, &[f64::NAN])
            .is_ok());
    }

    #[test]
    fn recovery_log_formats_chronologically() {
        let mut log = RecoveryLog::default();
        assert!(log.is_empty());
        log.push(RecoveryEvent {
            iteration: 3,
            fault: Fault::NonFiniteValue(f64::NAN),
            action: RecoveryAction::RollbackBackoff,
        });
        log.push(RecoveryEvent {
            iteration: 9,
            fault: Fault::Divergence {
                value: 1e9,
                reference: 10.0,
            },
            action: RecoveryAction::DegradeModel {
                from: ModelKind::Moreau,
                to: ModelKind::Wa,
            },
        });
        let text = log.to_string();
        assert!(text.contains("iter 3"));
        assert!(text.contains("rollback"));
        // ModelKind displays as its paper-table label ("Ours" for Moreau)
        assert!(text.contains(&ModelKind::Moreau.to_string()));
        assert!(text.contains(&ModelKind::Wa.to_string()));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn exhaustion_respects_the_recovery_budget() {
        let cfg = GuardConfig {
            max_recoveries: 2,
            ..GuardConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        assert!(!m.exhausted());
        for i in 0..2 {
            m.record(RecoveryEvent {
                iteration: i,
                fault: Fault::NonFiniteGradient,
                action: RecoveryAction::RollbackBackoff,
            });
        }
        assert!(m.exhausted());
    }
}
