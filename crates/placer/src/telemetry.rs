//! Flow-level telemetry helpers: the `Copy`-able displacement histogram
//! embedded in stage reports, and the registry aggregation that turns one
//! pipeline run into an owned [`mep_obs::RunReport`].

use crate::detail::DetailReport;
use crate::guard::{RecoveryLog, Termination};
use crate::legalize::LegalizeReport;
use mep_netlist::{Design, Placement};
use mep_obs::{Registry, RunReport};
use mep_wirelength::engine::EngineStats;

/// Displacement histogram bucket upper bounds, in row-height multiples.
pub const DISP_BOUNDS: [f64; 8] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// A fixed-bucket histogram of per-cell displacement, in row heights.
///
/// Kept as a plain `Copy` struct (not an [`mep_obs::Histogram`] handle) so
/// stage reports stay `Copy` and stages don't need a registry; the
/// pipeline re-exports it into the run's registry afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DispHistogram {
    /// Bucket counts: one per [`DISP_BOUNDS`] entry, then overflow.
    pub counts: [u64; DISP_BOUNDS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of observed displacements (row heights).
    pub sum: f64,
}

impl DispHistogram {
    /// Records one displacement of `rows` row heights.
    pub fn observe(&mut self, rows: f64) {
        // first bucket whose bound covers `rows`, or the overflow slot
        let idx = DISP_BOUNDS.iter().take_while(|&&b| rows > b).count();
        // idx is always in range (counts has one slot past the last
        // bound), but stay provably panic-free: this runs on daemon
        // worker threads where a stray panic would kill the worker
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.count += 1;
        if rows.is_finite() {
            self.sum += rows;
        }
    }

    /// Mean displacement in row heights (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Builds the histogram of Manhattan displacements between two
    /// placements of the same design, normalized by row height.
    pub fn between(design: &Design, from: &Placement, to: &Placement) -> Self {
        let row_h = design.rows.first().map(|r| r.height).unwrap_or(1.0);
        let mut h = Self::default();
        for cell in design.netlist.movable_cells() {
            let i = cell.index();
            let d = (to.x[i] - from.x[i]).abs() + (to.y[i] - from.y[i]).abs();
            h.observe(d / row_h);
        }
        h
    }

    /// Copies this histogram into `registry` under `name`.
    pub fn export(&self, registry: &Registry, name: &str) {
        let h = registry.histogram(name, &DISP_BOUNDS);
        for (i, &c) in self.counts.iter().enumerate() {
            // replay bucket midpoints so counts land in the right buckets;
            // the sum is restored exactly afterwards via the mean
            let v = if i < DISP_BOUNDS.len() {
                DISP_BOUNDS[i]
            } else {
                DISP_BOUNDS[DISP_BOUNDS.len() - 1] * 2.0
            };
            for _ in 0..c {
                h.observe(v);
            }
        }
    }
}

/// Everything the pipeline knows at the end of one run, funneled into a
/// single registry and frozen as a [`RunReport`].
#[allow(clippy::too_many_arguments)]
pub(crate) struct ReportInputs<'a> {
    pub model: &'a str,
    pub gpwl: f64,
    pub lgwl: f64,
    pub dpwl: f64,
    pub rt_gp: f64,
    pub rt_lg: f64,
    pub rt_dp: f64,
    pub iterations: usize,
    pub overflow: f64,
    pub violations: usize,
    pub termination: Termination,
    pub engine: &'a EngineStats,
    pub transform: mep_density::TransformStats,
    pub recovery: &'a RecoveryLog,
    pub legalize: &'a LegalizeReport,
    pub detail: &'a DetailReport,
    pub lg_disp: DispHistogram,
    pub dp_disp: DispHistogram,
}

/// Builds the end-of-run [`RunReport`] from one pipeline run's stage
/// outputs. Metric names are stable — they are the JSONL/report schema
/// documented in DESIGN.md §10.
pub(crate) fn build_run_report(inputs: &ReportInputs<'_>) -> RunReport {
    let r = Registry::new();

    r.label("flow.model").set(inputs.model);
    r.label("flow.termination")
        .set(&inputs.termination.to_string());
    r.gauge("gp.hpwl").set(inputs.gpwl);
    r.gauge("lg.hpwl").set(inputs.lgwl);
    r.gauge("dp.hpwl").set(inputs.dpwl);
    r.gauge("gp.rt_seconds").set(inputs.rt_gp);
    r.gauge("lg.rt_seconds").set(inputs.rt_lg);
    r.gauge("dp.rt_seconds").set(inputs.rt_dp);
    r.gauge("flow.rt_seconds")
        .set(inputs.rt_gp + inputs.rt_lg + inputs.rt_dp);
    r.counter("gp.iterations").add(inputs.iterations as u64);
    r.gauge("gp.overflow").set(inputs.overflow);
    r.counter("flow.violations").add(inputs.violations as u64);

    // evaluation-engine stage timings (formerly only on EngineStats)
    let e = inputs.engine;
    for (name, stage) in [
        ("engine.wl_grad", &e.wl_grad),
        ("engine.wl_value", &e.wl_value),
        ("engine.density", &e.density),
        ("engine.density_transform", &e.density_transform),
    ] {
        r.counter(&format!("{name}.count")).add(stage.count);
        r.gauge(&format!("{name}.seconds"))
            .set(stage.nanos as f64 * 1e-9);
    }
    r.counter("engine.spawned_threads").add(e.spawned_threads);
    r.counter("engine.workspace_allocs").add(e.workspace_allocs);
    r.counter("engine.parallel_runs").add(e.parallel_runs);
    r.counter("engine.serial_runs").add(e.serial_runs);

    // spectral-kernel counters: which transform kernels actually ran
    // (DESIGN.md §13 — fused lane tiles vs scalar fallback vs transposes)
    let tf = &inputs.transform;
    r.counter("density.transform.calls").add(tf.calls);
    r.counter("density.transform.row_lane_tiles")
        .add(tf.row_lane_tiles);
    r.counter("density.transform.col_lane_tiles")
        .add(tf.col_lane_tiles);
    r.counter("density.transform.scalar_lines")
        .add(tf.scalar_lines);
    r.counter("density.transform.transposes").add(tf.transposes);

    // guard events (formerly only on RecoveryLog)
    r.counter("guard.recoveries")
        .add(inputs.recovery.len() as u64);
    if !inputs.recovery.is_empty() {
        r.label("guard.last_event").set(
            &inputs
                .recovery
                .events()
                .last()
                .expect("non-empty")
                .to_string(),
        );
    }

    // legalization
    r.gauge("lg.avg_displacement_rows")
        .set(inputs.lg_disp.mean());
    r.gauge("lg.avg_displacement")
        .set(inputs.legalize.avg_displacement);
    r.gauge("lg.max_displacement")
        .set(inputs.legalize.max_displacement);
    r.counter("lg.macros").add(inputs.legalize.macros as u64);
    r.counter("lg.spills").add(inputs.legalize.spills as u64);
    inputs.lg_disp.export(&r, "lg.displacement_rows");

    // detailed placement
    let d = inputs.detail;
    r.counter("dp.passes").add(d.passes as u64);
    for (name, accepted, attempted) in [
        ("dp.reorders", d.reorders, d.reorders_attempted),
        ("dp.swaps", d.swaps, d.swaps_attempted),
        ("dp.matchings", d.matchings, d.matchings_attempted),
    ] {
        r.counter(&format!("{name}.accepted")).add(accepted as u64);
        r.counter(&format!("{name}.attempted"))
            .add(attempted as u64);
        let pct = if attempted > 0 {
            100.0 * accepted as f64 / attempted as f64
        } else {
            0.0
        };
        r.histogram(
            "dp.acceptance_pct",
            &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0],
        )
        .observe(pct);
        r.gauge(&format!("{name}.acceptance_pct")).set(pct);
    }
    r.gauge("dp.hpwl_gain").set(d.hpwl_before - d.hpwl_after);
    inputs.dp_disp.export(&r, "dp.displacement_rows");

    RunReport::from_registry(&r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disp_histogram_buckets_by_row_multiples() {
        let mut h = DispHistogram::default();
        for d in [0.25, 0.5, 0.75, 3.0, 100.0] {
            h.observe(d);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.counts[0], 2, "0.25 and 0.5 land in ≤0.5");
        assert_eq!(h.counts[1], 1, "0.75 lands in ≤1");
        assert_eq!(h.counts[3], 1, "3.0 lands in ≤4");
        assert_eq!(h.counts[DISP_BOUNDS.len()], 1, "100 overflows");
        assert!((h.mean() - (0.25 + 0.5 + 0.75 + 3.0 + 100.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn export_preserves_bucket_counts() {
        let mut h = DispHistogram::default();
        h.observe(0.3);
        h.observe(5.0);
        h.observe(1e9);
        let r = Registry::new();
        h.export(&r, "t.disp");
        let exported = r.histogram("t.disp", &DISP_BOUNDS);
        assert_eq!(exported.count(), 3);
        let counts = exported.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[4], 1, "5.0 lands in ≤8");
        assert_eq!(counts[DISP_BOUNDS.len()], 1);
    }
}
