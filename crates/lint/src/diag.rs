//! Diagnostics: what a rule reports and how it renders.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (e.g. `no-panic-lib`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The trimmed source line, shown under the diagnostic.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}\n    {}",
            self.path, self.line, self.col, self.rule, self.message, self.snippet
        )
    }
}
