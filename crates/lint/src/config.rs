//! Per-rule configuration: which crates must be deterministic, which
//! modules are hot, and where wall-clock reads are sanctioned.
//!
//! The defaults encode this workspace's invariants; tests construct
//! custom configs to exercise rules in isolation.

/// Rule configuration consulted by [`crate::rules`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose outputs must be bit-identical run to run (the
    /// determinism rule only fires inside these). Crate names as in
    /// [`crate::workspace::SourceFile::crate_name`].
    pub result_affecting: Vec<String>,
    /// Workspace-relative paths of hot-loop modules where the no-alloc
    /// rule applies.
    pub hot_paths: Vec<String>,
    /// Workspace-relative path prefixes where `Instant::now` /
    /// `SystemTime` are sanctioned (the telemetry layer).
    pub clock_whitelist: Vec<String>,
    /// Workspace-relative paths of individual modules that must be
    /// deterministic even though their crate as a whole is not
    /// result-affecting — e.g. the known-optimum harness plumbing in the
    /// bench crate, whose measured suboptimality ratios feed the CI
    /// quality guard and must reproduce bit-exactly.
    pub deterministic_paths: Vec<String>,
    /// Crates whose lock acquisition orders the `lock-order` rule audits
    /// (the concurrent daemon layers).
    pub lock_order_crates: Vec<String>,
    /// Crates whose atomics the `atomic-ordering` rule audits.
    pub atomic_crates: Vec<String>,
    /// Functions (`crate::fn` or `crate::Type::fn`) from which no panic
    /// site may be transitively reachable outside `catch_unwind` — the
    /// daemon's job-execution prologue, where a panic would take down a
    /// worker thread instead of failing one job.
    pub protected_roots: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            result_affecting: [
                "netlist",
                "wirelength",
                "density",
                "optim",
                "placer",
                "moreau-placer",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            hot_paths: [
                // the Moreau prox / water-filling / evaluation-engine hot
                // loops (paper Alg. 1–2) and the spectral density solver,
                // including the fused lane kernels and the per-net gather
                "crates/wirelength/src/moreau.rs",
                "crates/wirelength/src/waterfill.rs",
                "crates/wirelength/src/engine.rs",
                "crates/wirelength/src/netgrad.rs",
                "crates/density/src/transform.rs",
                "crates/density/src/fft.rs",
                "crates/density/src/poisson.rs",
                // the daemon's admission queue: steady-state scheduling
                // must never allocate (backpressure, not buffer growth)
                "crates/serve/src/queue.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            clock_whitelist: ["crates/obs/", "crates/placer/src/telemetry.rs"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            deterministic_paths: [
                // the PEKO known-optimum harness: its ratios are compared
                // exactly against a committed baseline by the CI guard
                "crates/bench/src/peko.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            // the daemon and its telemetry substrate hold multiple locks
            // across call boundaries; everything else is single-lock
            lock_order_crates: ["serve", "obs"].iter().map(|s| s.to_string()).collect(),
            // cross-thread control flags live here: the cancel token, the
            // scheduler's stop/accepting flags, the metric handles
            atomic_crates: ["serve", "obs", "placer"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            // the worker loop and its claim/finish/recover phases run
            // outside the per-job catch_unwind; a panic there kills the
            // worker thread, not just the job
            protected_roots: [
                "serve::worker_loop",
                "serve::claim_next_job",
                "serve::finish_job",
                "serve::recover_engine",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

impl Config {
    /// True when `crate_name` must produce bit-identical results.
    pub fn is_result_affecting(&self, crate_name: &str) -> bool {
        self.result_affecting.iter().any(|c| c == crate_name)
    }

    /// True when `rel_path` is a declared hot-loop module.
    pub fn is_hot(&self, rel_path: &str) -> bool {
        self.hot_paths.iter().any(|p| p == rel_path)
    }

    /// True when `rel_path` may read wall clocks.
    pub fn clock_allowed(&self, rel_path: &str) -> bool {
        self.clock_whitelist
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }

    /// True when `rel_path` is individually declared deterministic (the
    /// determinism rule fires there regardless of the owning crate).
    pub fn is_deterministic_path(&self, rel_path: &str) -> bool {
        self.deterministic_paths.iter().any(|p| p == rel_path)
    }

    /// True when `crate_name` is audited by the lock-order rule.
    pub fn is_lock_order_crate(&self, crate_name: &str) -> bool {
        self.lock_order_crates.iter().any(|c| c == crate_name)
    }

    /// True when `crate_name` is audited by the atomic-ordering rule.
    pub fn is_atomic_crate(&self, crate_name: &str) -> bool {
        self.atomic_crates.iter().any(|c| c == crate_name)
    }
}
