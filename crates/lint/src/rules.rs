//! The rule set: each rule walks one file's token stream and reports
//! [`Violation`]s. Rules never look at raw text — only at tokens — so
//! strings and comments can never false-positive.
//!
//! | rule            | guards                                              |
//! |-----------------|-----------------------------------------------------|
//! | `no-panic-lib`  | no `unwrap`/`expect`/panic macros in library code   |
//! | `nan-unsafe-cmp`| no `partial_cmp(..).unwrap()` — use `total_cmp`     |
//! | `determinism`   | no `HashMap`/`HashSet`, clocks, or thread-id logic  |
//! |                 | in result-affecting crates                          |
//! | `float-eq`      | no `==`/`!=` against float literals / float consts  |
//! | `no-alloc-hot`  | no allocation in declared hot-loop modules          |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]`  |

use crate::config::Config;
use crate::context::FileCtx;
use crate::diag::Violation;
use crate::lexer::TokenKind;
use crate::workspace::FileKind;

/// A single lint rule.
pub trait Rule {
    /// Stable identifier used in diagnostics, suppressions, and the
    /// baseline (kebab-case).
    fn name(&self) -> &'static str;
    /// One-line description shown by `mep-lint rules`.
    fn summary(&self) -> &'static str;
    /// Reports violations in one file.
    fn check(&self, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>);
}

/// The full rule set, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicLib),
        Box::new(NanUnsafeCmp),
        Box::new(Determinism),
        Box::new(FloatEq),
        Box::new(NoAllocHot),
        Box::new(ForbidUnsafe),
    ]
}

/// Names of all rules (for suppression validation).
pub fn rule_names() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.name()).collect()
}

fn violation(ctx: &FileCtx, rule: &'static str, offset: usize, message: String) -> Violation {
    let (line, col) = ctx.lines.line_col(offset);
    Violation {
        rule,
        path: ctx.file.rel_path.clone(),
        line,
        col,
        message,
        snippet: ctx.line_text(offset).to_string(),
    }
}

/// True for files where panics are an acceptable failure mechanism.
fn panic_tolerant(ctx: &FileCtx) -> bool {
    ctx.file.kind != FileKind::Lib
}

// --- no-panic-lib -----------------------------------------------------------

/// Panic macros caught when followed by `!`.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unreachable", "unimplemented"];

struct NoPanicLib;

impl Rule for NoPanicLib {
    fn name(&self) -> &'static str {
        "no-panic-lib"
    }

    fn summary(&self) -> &'static str {
        "library code must not unwrap/expect/panic!/todo!/unreachable!/unimplemented! outside tests"
    }

    fn check(&self, ctx: &FileCtx, _cfg: &Config, out: &mut Vec<Violation>) {
        if panic_tolerant(ctx) {
            return;
        }
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident || ctx.in_test_code(tok.span.start) {
                continue;
            }
            let text = ctx.text(tok);
            // `.unwrap()` / `.expect(` — the leading dot distinguishes the
            // method call from e.g. a local named `unwrap`
            if (text == "unwrap" || text == "expect")
                && ctx.punct_is(i.wrapping_sub(1), ".")
                && ctx.punct_is(ctx.skip_comments(i + 1), "(")
            {
                out.push(violation(
                    ctx,
                    self.name(),
                    tok.span.start,
                    format!(
                        "`.{text}()` can panic in library code; return a typed error \
                         (see crates/placer/src/error.rs) or restructure so the case \
                         is impossible"
                    ),
                ));
            }
            if PANIC_MACROS.contains(&text)
                && ctx.punct_is(i + 1, "!")
                // `panic::catch_unwind`, `std::panic` paths are fine
                && !ctx.punct_is(i.wrapping_sub(1), "::")
            {
                out.push(violation(
                    ctx,
                    self.name(),
                    tok.span.start,
                    format!("`{text}!` panics in library code; return a typed error instead"),
                ));
            }
        }
    }
}

// --- nan-unsafe-cmp ---------------------------------------------------------

struct NanUnsafeCmp;

impl Rule for NanUnsafeCmp {
    fn name(&self) -> &'static str {
        "nan-unsafe-cmp"
    }

    fn summary(&self) -> &'static str {
        "`partial_cmp(..).unwrap()` panics on NaN and breaks strict-weak-order; use `total_cmp`"
    }

    fn check(&self, ctx: &FileCtx, _cfg: &Config, out: &mut Vec<Violation>) {
        if panic_tolerant(ctx) {
            return;
        }
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident
                || ctx.text(tok) != "partial_cmp"
                || ctx.in_test_code(tok.span.start)
            {
                continue;
            }
            // skip the argument list `( … )`
            let Some(open) = ctx
                .tokens
                .get(ctx.skip_comments(i + 1))
                .filter(|t| t.text(ctx.src) == "(")
                .map(|_| ctx.skip_comments(i + 1))
            else {
                continue;
            };
            let mut depth = 0usize;
            let mut j = open;
            while j < ctx.tokens.len() {
                match ctx.text(&ctx.tokens[j]) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // `.unwrap(` / `.expect(` directly after the call?
            let dot = ctx.skip_comments(j + 1);
            let method = ctx.skip_comments(dot + 1);
            if ctx.punct_is(dot, ".")
                && (ctx.ident_is(method, "unwrap") || ctx.ident_is(method, "expect"))
            {
                out.push(violation(
                    ctx,
                    self.name(),
                    tok.span.start,
                    "`partial_cmp(..).unwrap()` panics on NaN mid-sort; \
                     use `f64::total_cmp` (NaN-safe total order)"
                        .to_string(),
                ));
            }
        }
    }
}

// --- determinism ------------------------------------------------------------

struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn summary(&self) -> &'static str {
        "result-affecting crates: no HashMap/HashSet (iteration order), wall clocks, or thread-id logic"
    }

    fn check(&self, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
        if panic_tolerant(ctx)
            || !(cfg.is_result_affecting(&ctx.file.crate_name)
                || cfg.is_deterministic_path(&ctx.file.rel_path))
        {
            return;
        }
        let clock_ok = cfg.clock_allowed(&ctx.file.rel_path);
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident || ctx.in_test_code(tok.span.start) {
                continue;
            }
            match ctx.text(tok) {
                t @ ("HashMap" | "HashSet") => out.push(violation(
                    ctx,
                    self.name(),
                    tok.span.start,
                    format!(
                        "`{t}` iteration order is nondeterministic; use BTreeMap/BTreeSet \
                         or a sorted Vec, or suppress with a reason if it is provably \
                         never iterated"
                    ),
                )),
                "Instant"
                    if !clock_ok && ctx.punct_is(i + 1, "::") && ctx.ident_is(i + 2, "now") =>
                {
                    out.push(violation(
                        ctx,
                        self.name(),
                        tok.span.start,
                        "`Instant::now` outside the telemetry whitelist: wall-clock reads \
                         in result-affecting code make runs irreproducible"
                            .to_string(),
                    ))
                }
                "SystemTime" if !clock_ok => out.push(violation(
                    ctx,
                    self.name(),
                    tok.span.start,
                    "`SystemTime` outside the telemetry whitelist: wall-clock reads \
                     in result-affecting code make runs irreproducible"
                        .to_string(),
                )),
                "ThreadId" => out.push(violation(
                    ctx,
                    self.name(),
                    tok.span.start,
                    "thread-id-dependent logic breaks bit-identical results across \
                     thread counts; partition work by fixed index instead"
                        .to_string(),
                )),
                "thread" if ctx.punct_is(i + 1, "::") && ctx.ident_is(i + 2, "current") => out
                    .push(violation(
                        ctx,
                        self.name(),
                        tok.span.start,
                        "`thread::current()` (thread-identity logic) breaks bit-identical \
                         results across thread counts"
                            .to_string(),
                    )),
                _ => {}
            }
        }
    }
}

// --- float-eq ---------------------------------------------------------------

struct FloatEq;

/// Float-typed associated constants that make a `==` comparison float-eq
/// even without a literal.
const FLOAT_CONSTS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY", "EPSILON", "MAX", "MIN"];

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn summary(&self) -> &'static str {
        "`==`/`!=` on floats is almost always wrong; compare with a tolerance or use bit patterns"
    }

    fn check(&self, ctx: &FileCtx, _cfg: &Config, out: &mut Vec<Violation>) {
        if panic_tolerant(ctx) {
            return;
        }
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Punct || ctx.in_test_code(tok.span.start) {
                continue;
            }
            let op = ctx.text(tok);
            if op != "==" && op != "!=" {
                continue;
            }
            let prev_float = i
                .checked_sub(1)
                .and_then(|p| ctx.tokens.get(p))
                .is_some_and(|t| is_float_literal(ctx.text(t)));
            // `x == 1.5`, or `x == f64::NAN` (path const)
            let next = ctx.skip_comments(i + 1);
            let next_float = ctx
                .tokens
                .get(next)
                .is_some_and(|t| is_float_literal(ctx.text(t)))
                || ((ctx.ident_is(next, "f64") || ctx.ident_is(next, "f32"))
                    && ctx.punct_is(next + 1, "::")
                    && ctx
                        .tokens
                        .get(next + 2)
                        .is_some_and(|t| FLOAT_CONSTS.contains(&ctx.text(t))));
            if prev_float || next_float {
                let hint = if op == "==" { "==" } else { "!=" };
                out.push(violation(
                    ctx,
                    self.name(),
                    tok.span.start,
                    format!(
                        "float `{hint}` comparison; use an explicit tolerance, \
                         `total_cmp`, or `is_nan()`/bit comparison"
                    ),
                ));
            }
        }
    }
}

/// A number token that denotes a float: has a fraction, an exponent, or
/// an `f32`/`f64` suffix (hex literals excluded).
fn is_float_literal(text: &str) -> bool {
    if !text.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains(['e', 'E'])
}

// --- no-alloc-hot -----------------------------------------------------------

struct NoAllocHot;

impl Rule for NoAllocHot {
    fn name(&self) -> &'static str {
        "no-alloc-hot"
    }

    fn summary(&self) -> &'static str {
        "declared hot-loop modules must not allocate (Vec::new/push/collect/format!/to_string/Box::new)"
    }

    fn check(&self, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
        if !cfg.is_hot(&ctx.file.rel_path) {
            return;
        }
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident || ctx.in_test_code(tok.span.start) {
                continue;
            }
            let text = ctx.text(tok);
            let flagged = match text {
                // `Vec::new`, `Vec::with_capacity`, `Box::new`, `String::new`
                "Vec" | "Box" | "String" if ctx.punct_is(i + 1, "::") => {
                    let m = ctx.skip_comments(i + 2);
                    ctx.ident_is(m, "new") || ctx.ident_is(m, "with_capacity")
                }
                // `vec![…]`, `format!(…)`
                "vec" | "format" => ctx.punct_is(i + 1, "!"),
                // `.push(…)`, `.collect(`/`.collect::<`, `.to_string()`, `.to_vec()`, `.to_owned()`
                "push" | "collect" | "to_string" | "to_vec" | "to_owned" => {
                    ctx.punct_is(i.wrapping_sub(1), ".")
                        && (ctx.punct_is(i + 1, "(") || ctx.punct_is(i + 1, "::"))
                }
                _ => false,
            };
            if flagged {
                out.push(violation(
                    ctx,
                    self.name(),
                    tok.span.start,
                    format!(
                        "`{text}` allocates inside a declared hot module; preallocate in \
                         the workspace/plan (engine arenas, `_in` variants) or move the \
                         allocation out of the hot path"
                    ),
                ));
            }
        }
    }
}

// --- forbid-unsafe ----------------------------------------------------------

struct ForbidUnsafe;

impl Rule for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn summary(&self) -> &'static str {
        "every crate root must carry #![forbid(unsafe_code)]"
    }

    fn check(&self, ctx: &FileCtx, _cfg: &Config, out: &mut Vec<Violation>) {
        if !ctx.file.is_crate_root {
            return;
        }
        // scan inner attributes `#![…(unsafe_code)]` for forbid/deny
        let mut lint_level: Option<(&str, usize)> = None;
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if tok.kind == TokenKind::Ident && ctx.text(tok) == "unsafe_code" {
                // walk back over `(` to the level ident
                let open = i.checked_sub(1);
                let level = i.checked_sub(2);
                if let (Some(o), Some(l)) = (open, level) {
                    if ctx.punct_is(o, "(")
                        && (ctx.ident_is(l, "forbid") || ctx.ident_is(l, "deny"))
                    {
                        lint_level = Some((ctx.text(&ctx.tokens[l]), ctx.tokens[l].span.start));
                        if ctx.ident_is(l, "forbid") {
                            break; // forbid wins
                        }
                    }
                }
            }
        }
        match lint_level {
            Some(("forbid", _)) => {}
            Some(("deny", offset)) => out.push(violation(
                ctx,
                self.name(),
                offset,
                "crate root uses `deny(unsafe_code)` instead of `forbid`; `deny` can be \
                 overridden by inner `#[allow]` — justify with a suppression or upgrade"
                    .to_string(),
            )),
            _ => out.push(violation(
                ctx,
                self.name(),
                0,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_literal_classification() {
        for f in ["1.0", "2.5e-3", "1e9", "3f64", "0.5f32", "10.", "1_000.0"] {
            assert!(is_float_literal(f), "{f} should be float");
        }
        for n in ["1", "0x1f", "0b101", "1_000", "42u64", "0o17"] {
            assert!(!is_float_literal(n), "{n} should not be float");
        }
    }

    #[test]
    fn rule_names_are_unique_and_kebab() {
        let names = rule_names();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
