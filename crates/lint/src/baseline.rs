//! The committed violation baseline: a ratchet, not an amnesty.
//!
//! `lint.baseline` (workspace root) records, per `(rule, file)`, how many
//! violations existed when the baseline was last regenerated. A check run
//! fails only when a file *exceeds* its allowance for a rule — so
//! pre-existing debt does not block unrelated work, but any new violation
//! (or a file sprouting its first) fails immediately. Deleting violations
//! and regenerating shrinks the allowance permanently.
//!
//! Counts are keyed by `(rule, path)` rather than `(rule, path, line)` so
//! ordinary edits that shift line numbers do not invalidate the baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Default baseline filename at the workspace root.
pub const BASELINE_FILE: &str = "lint.baseline";

/// Per-`(rule, path)` violation allowances.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// An empty baseline (everything counts as new).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Allowance for `(rule, path)`; zero when absent.
    pub fn allowance(&self, rule: &str, path: &str) -> usize {
        self.entries
            .get(&(rule.to_string(), path.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Sets an allowance (used by `baseline` regeneration and tests).
    pub fn set(&mut self, rule: &str, path: &str, count: usize) {
        if count == 0 {
            self.entries.remove(&(rule.to_string(), path.to_string()));
        } else {
            self.entries
                .insert((rule.to_string(), path.to_string()), count);
        }
    }

    /// Total allowance across all entries.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Number of `(rule, path)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the baseline format. Unknown or malformed lines are errors:
    /// a silently ignored baseline line would un-baseline violations and
    /// fail CI confusingly far from the cause.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(rule), Some(path), Some(count), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "{BASELINE_FILE}:{}: expected `rule<TAB>path<TAB>count`, got {line:?}",
                    idx + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("{BASELINE_FILE}:{}: bad count {count:?}", idx + 1))?;
            entries.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Self { entries })
    }

    /// Renders the baseline, sorted, with a regeneration hint.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# mep-lint baseline — pre-existing violations allowed per (rule, file).\n\
             # Regenerate with `cargo run -p mep-lint -- baseline` after paying down debt.\n\
             # Format: rule<TAB>path<TAB>count\n",
        );
        for ((rule, path), count) in &self.entries {
            let _ = writeln!(out, "{rule}\t{path}\t{count}");
        }
        out
    }

    /// Loads from `root/lint.baseline`; a missing file is an empty
    /// baseline.
    pub fn load(root: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(root.join(BASELINE_FILE)) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(format!("reading {BASELINE_FILE}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::empty();
        b.set("no-panic-lib", "crates/x/src/a.rs", 3);
        b.set("determinism", "crates/y/src/b.rs", 1);
        let text = b.render();
        let b2 = Baseline::parse(&text).unwrap();
        assert_eq!(b2.allowance("no-panic-lib", "crates/x/src/a.rs"), 3);
        assert_eq!(b2.allowance("determinism", "crates/y/src/b.rs"), 1);
        assert_eq!(b2.allowance("determinism", "crates/x/src/a.rs"), 0);
        assert_eq!(b2.total(), 4);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Baseline::parse("rule only-two-fields").is_err());
        assert!(Baseline::parse("r\tp\tnot-a-number").is_err());
        assert!(Baseline::parse("r\tp\t1\textra").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn zero_count_removes_entry() {
        let mut b = Baseline::empty();
        b.set("r", "p", 2);
        b.set("r", "p", 0);
        assert!(b.is_empty());
    }
}
