//! Machine-readable lint posture: `lint_report.json`, built with the
//! same hand-rolled `obs::json` writer as the bench reports so the whole
//! flow shares one JSON channel.

use mep_obs::json::JsonObject;

use crate::engine::Outcome;

/// Renders the outcome as a single JSON object.
///
/// Schema (stable; additions only):
///
/// ```json
/// {
///   "schema": "mep-lint-report-v1",
///   "files": 57, "new": 0, "baselined": 12, "suppressed": 9,
///   "suppression_errors": 0, "unused_suppressions": 0,
///   "rules": [ {"rule": "...", "new": 0, "baselined": 3, "suppressed": 2} ],
///   "suppressions": [ {"rule": "...", "path": "...", "line": 7, "reason": "..."} ],
///   "violations": [ {"rule": "...", "path": "...", "line": 3, "col": 9, "message": "..."} ]
/// }
/// ```
pub fn render_json(outcome: &Outcome) -> String {
    let mut root = JsonObject::new();
    root.field_str("schema", "mep-lint-report-v1")
        .field_u64("files", outcome.files as u64)
        .field_u64("new", outcome.new.len() as u64)
        .field_u64("baselined", outcome.baselined.len() as u64)
        .field_u64("suppressed", outcome.suppressed.len() as u64)
        .field_u64("suppression_errors", outcome.suppress_errors.len() as u64)
        .field_u64("unused_suppressions", outcome.unused.len() as u64);

    let mut rules = String::from("[");
    for (i, (rule, (new, baselined, suppressed))) in outcome.per_rule().iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let mut o = JsonObject::new();
        o.field_str("rule", rule)
            .field_u64("new", *new as u64)
            .field_u64("baselined", *baselined as u64)
            .field_u64("suppressed", *suppressed as u64);
        rules.push_str(&o.finish());
    }
    rules.push(']');
    root.field_raw("rules", &rules);

    let mut sups = String::from("[");
    for (i, s) in outcome.suppressed.iter().enumerate() {
        if i > 0 {
            sups.push(',');
        }
        let mut o = JsonObject::new();
        o.field_str("rule", s.violation.rule)
            .field_str("path", &s.violation.path)
            .field_u64("line", s.violation.line as u64)
            .field_str("reason", &s.reason);
        sups.push_str(&o.finish());
    }
    sups.push(']');
    root.field_raw("suppressions", &sups);

    let mut viols = String::from("[");
    for (i, v) in outcome.new.iter().enumerate() {
        if i > 0 {
            viols.push(',');
        }
        let mut o = JsonObject::new();
        o.field_str("rule", v.rule)
            .field_str("path", &v.path)
            .field_u64("line", v.line as u64)
            .field_u64("col", v.col as u64)
            .field_str("message", &v.message);
        viols.push_str(&o.finish());
    }
    viols.push(']');
    root.field_raw("violations", &viols);

    root.finish()
}

/// Human summary printed at the end of a check run.
pub fn render_summary(outcome: &Outcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mep-lint: {} files checked — {} new, {} baselined, {} suppressed{}",
        outcome.files,
        outcome.new.len(),
        outcome.baselined.len(),
        outcome.suppressed.len(),
        if outcome.suppress_errors.is_empty() {
            String::new()
        } else {
            format!(
                ", {} malformed suppression(s)",
                outcome.suppress_errors.len()
            )
        }
    );
    for (rule, (new, baselined, suppressed)) in outcome.per_rule() {
        let _ = writeln!(
            out,
            "  {rule:<16} new {new:>3}  baselined {baselined:>3}  suppressed {suppressed:>3}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Violation;
    use crate::engine::{Outcome, SuppressedViolation};

    #[test]
    fn json_shape_is_stable() {
        let mut o = Outcome {
            files: 2,
            ..Default::default()
        };
        o.new.push(Violation {
            rule: "no-panic-lib",
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 9,
            message: "`.unwrap()` can panic".into(),
            snippet: "x.unwrap()".into(),
        });
        o.suppressed.push(SuppressedViolation {
            reason: "poisoned mutex is fatal".into(),
            violation: Violation {
                rule: "no-panic-lib",
                path: "crates/x/src/b.rs".into(),
                line: 7,
                col: 1,
                message: "m".into(),
                snippet: "s".into(),
            },
        });
        let json = render_json(&o);
        assert!(json.starts_with(r#"{"schema":"mep-lint-report-v1""#));
        assert!(json.contains(r#""new":1"#));
        assert!(json.contains(r#""reason":"poisoned mutex is fatal""#));
        assert!(json
            .contains(r#""rules":[{"rule":"no-panic-lib","new":1,"baselined":0,"suppressed":1}]"#));
    }
}
