//! The check engine: runs every rule over every file, applies
//! suppressions, masks against the baseline, and aggregates the outcome.

use std::collections::BTreeMap;
use std::path::Path;

use crate::baseline::Baseline;
use crate::config::Config;
use crate::context::FileCtx;
use crate::diag::Violation;
use crate::lexer::{self, LineIndex};
use crate::rules::{self, Rule};
use crate::suppress::{self, SuppressError, Suppression};
use crate::workspace::{self, SourceFile};

/// A suppression that fired, with what it suppressed.
#[derive(Debug, Clone)]
pub struct SuppressedViolation {
    /// The violation that was silenced.
    pub violation: Violation,
    /// The justification from the `lint:allow` comment.
    pub reason: String,
}

/// Aggregate result of a check run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations that fail the run, in (path, line) order.
    pub new: Vec<Violation>,
    /// Violations masked by the committed baseline.
    pub baselined: Vec<Violation>,
    /// Violations silenced by inline suppressions (with reasons).
    pub suppressed: Vec<SuppressedViolation>,
    /// Malformed / unknown-rule suppression comments (always fail).
    pub suppress_errors: Vec<(String, SuppressError)>,
    /// Well-formed suppressions that silenced nothing (reported as
    /// warnings so stale allowances get cleaned up, but non-fatal: a
    /// suppression may guard a pattern the rule only sometimes catches).
    pub unused: Vec<(String, Suppression)>,
    /// Number of files checked.
    pub files: usize,
}

impl Outcome {
    /// True when the run should exit nonzero.
    pub fn failed(&self) -> bool {
        !self.new.is_empty() || !self.suppress_errors.is_empty()
    }

    /// Per-rule `(new, baselined, suppressed)` counts, sorted by rule.
    pub fn per_rule(&self) -> BTreeMap<&'static str, (usize, usize, usize)> {
        let mut map: BTreeMap<&'static str, (usize, usize, usize)> = BTreeMap::new();
        for v in &self.new {
            map.entry(v.rule).or_default().0 += 1;
        }
        for v in &self.baselined {
            map.entry(v.rule).or_default().1 += 1;
        }
        for s in &self.suppressed {
            map.entry(s.violation.rule).or_default().2 += 1;
        }
        map
    }
}

/// The engine: rule set + configuration + baseline.
pub struct Engine {
    /// Rule configuration.
    pub config: Config,
    /// Violation allowances.
    pub baseline: Baseline,
    rules: Vec<Box<dyn Rule>>,
    rule_names: Vec<&'static str>,
}

impl Engine {
    /// Builds an engine with the full rule set.
    pub fn new(config: Config, baseline: Baseline) -> Self {
        let rules = rules::all_rules();
        let rule_names = rules.iter().map(|r| r.name()).collect();
        Self {
            config,
            baseline,
            rules,
            rule_names,
        }
    }

    /// Checks one in-memory file, folding results into `outcome`.
    pub fn check_source(&self, file: &SourceFile, src: &str, outcome: &mut Outcome) {
        let tokens = lexer::lex(src);
        let lines = LineIndex::new(src);
        let ctx = FileCtx::new(file, src, &tokens, &lines);

        let mut raw = Vec::new();
        for rule in &self.rules {
            rule.check(&ctx, &self.config, &mut raw);
        }

        let (suppressions, errors) = suppress::parse(src, &tokens, &lines, &self.rule_names);
        for e in errors {
            outcome.suppress_errors.push((file.rel_path.clone(), e));
        }

        // suppression pass: a violation is silenced by a suppression with
        // the same rule whose target line matches
        let mut used = vec![false; suppressions.len()];
        let mut remaining: Vec<Violation> = Vec::new();
        for v in raw {
            let hit = suppressions
                .iter()
                .position(|s| s.rule == v.rule && s.target_line == v.line);
            match hit {
                Some(i) => {
                    used[i] = true;
                    outcome.suppressed.push(SuppressedViolation {
                        reason: suppressions[i].reason.clone(),
                        violation: v,
                    });
                }
                None => remaining.push(v),
            }
        }
        for (i, s) in suppressions.into_iter().enumerate() {
            if !used[i] {
                outcome.unused.push((file.rel_path.clone(), s));
            }
        }

        // baseline pass: per rule, a file within its allowance is fully
        // masked; exceeding it reports every instance (the offender is
        // not identifiable once line numbers shift, so show all)
        let mut by_rule: BTreeMap<&'static str, Vec<Violation>> = BTreeMap::new();
        for v in remaining {
            by_rule.entry(v.rule).or_default().push(v);
        }
        for (rule, vs) in by_rule {
            let allowed = self.baseline.allowance(rule, &file.rel_path);
            if vs.len() <= allowed {
                outcome.baselined.extend(vs);
            } else {
                outcome.new.extend(vs.into_iter().map(|mut v| {
                    if allowed > 0 {
                        v.message = format!(
                            "{} [file exceeds its baseline allowance of {allowed} for {rule}]",
                            v.message
                        );
                    }
                    v
                }));
            }
        }
        outcome.files += 1;
    }

    /// Checks every discovered file under `root`.
    pub fn check_workspace(&self, root: &Path) -> Result<Outcome, String> {
        let files = workspace::discover(root)
            .map_err(|e| format!("discovering sources under {}: {e}", root.display()))?;
        let mut outcome = Outcome::default();
        for file in &files {
            let src = std::fs::read_to_string(root.join(&file.rel_path))
                .map_err(|e| format!("reading {}: {e}", file.rel_path))?;
            self.check_source(file, &src, &mut outcome);
        }
        outcome.new.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        Ok(outcome)
    }

    /// Regenerates a baseline that exactly covers the current violations
    /// (suppressed ones stay suppressed, not baselined).
    pub fn regenerate_baseline(&self, root: &Path) -> Result<Baseline, String> {
        // run against an empty baseline so every unsuppressed violation
        // is visible
        let fresh = Engine::new(self.config.clone(), Baseline::empty());
        let outcome = fresh.check_workspace(root)?;
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in &outcome.new {
            *counts
                .entry((v.rule.to_string(), v.path.clone()))
                .or_default() += 1;
        }
        let mut baseline = Baseline::empty();
        for ((rule, path), count) in counts {
            baseline.set(&rule, &path, count);
        }
        Ok(baseline)
    }

    /// Rule list for `mep-lint rules`.
    pub fn describe_rules(&self) -> Vec<(&'static str, &'static str)> {
        self.rules.iter().map(|r| (r.name(), r.summary())).collect()
    }
}
