//! The check engine: lexes and item-parses every file, runs the per-file
//! rules, builds the workspace call graph for the interprocedural rules
//! (lock-order, atomic-ordering, panic-surface), applies suppressions,
//! masks against the baseline, and aggregates the outcome.

use std::collections::BTreeMap;
use std::path::Path;

use crate::baseline::Baseline;
use crate::callgraph::{FileData, WorkspaceCtx};
use crate::config::Config;
use crate::context::FileCtx;
use crate::diag::Violation;
use crate::rules::{self, Rule};
use crate::suppress::{self, SuppressError, Suppression};
use crate::surface::{self, PanicSurface};
use crate::workspace::{self, SourceFile};
use crate::wrules::{self, WorkspaceRule};

/// A suppression that fired, with what it suppressed.
#[derive(Debug, Clone)]
pub struct SuppressedViolation {
    /// The violation that was silenced.
    pub violation: Violation,
    /// The justification from the `lint:allow` comment.
    pub reason: String,
}

/// Aggregate result of a check run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations that fail the run, in (path, line) order.
    pub new: Vec<Violation>,
    /// Violations masked by the committed baseline.
    pub baselined: Vec<Violation>,
    /// Violations silenced by inline suppressions (with reasons).
    pub suppressed: Vec<SuppressedViolation>,
    /// Malformed / unknown-rule suppression comments (always fail).
    pub suppress_errors: Vec<(String, SuppressError)>,
    /// Well-formed suppressions that silenced nothing (reported as
    /// warnings so stale allowances get cleaned up; fatal only under
    /// `--deny-unused-suppressions`).
    pub unused: Vec<(String, Suppression)>,
    /// Number of files checked.
    pub files: usize,
    /// The computed panic surface (the `results/panic_surface.json`
    /// artifact), present after any check.
    pub panic_surface: Option<PanicSurface>,
}

impl Outcome {
    /// True when the run should exit nonzero.
    pub fn failed(&self) -> bool {
        !self.new.is_empty() || !self.suppress_errors.is_empty()
    }

    /// Per-rule `(new, baselined, suppressed)` counts, sorted by rule.
    pub fn per_rule(&self) -> BTreeMap<&'static str, (usize, usize, usize)> {
        let mut map: BTreeMap<&'static str, (usize, usize, usize)> = BTreeMap::new();
        for v in &self.new {
            map.entry(v.rule).or_default().0 += 1;
        }
        for v in &self.baselined {
            map.entry(v.rule).or_default().1 += 1;
        }
        for s in &self.suppressed {
            map.entry(s.violation.rule).or_default().2 += 1;
        }
        map
    }
}

/// The engine: rule set + configuration + baseline + panic ratchet.
pub struct Engine {
    /// Rule configuration.
    pub config: Config,
    /// Violation allowances.
    pub baseline: Baseline,
    /// The committed panic surface; when present, any growth of the
    /// computed surface relative to it is a violation.
    pub panic_ratchet: Option<PanicSurface>,
    rules: Vec<Box<dyn Rule>>,
    workspace_rules: Vec<Box<dyn WorkspaceRule>>,
    rule_names: Vec<&'static str>,
}

impl Engine {
    /// Builds an engine with the full rule set and no panic ratchet.
    pub fn new(config: Config, baseline: Baseline) -> Self {
        let rules = rules::all_rules();
        let workspace_rules = wrules::all_workspace_rules();
        let mut rule_names: Vec<&'static str> = rules.iter().map(|r| r.name()).collect();
        rule_names.extend(workspace_rules.iter().map(|r| r.name()));
        rule_names.push(surface::RULE);
        Self {
            config,
            baseline,
            panic_ratchet: None,
            rules,
            workspace_rules,
            rule_names,
        }
    }

    /// Checks one in-memory file, folding results into `outcome`. The
    /// interprocedural rules see a one-file workspace, which is exactly
    /// what the fixture tests want.
    pub fn check_source(&self, file: &SourceFile, src: &str, outcome: &mut Outcome) {
        self.check_sources(vec![(file.clone(), src.to_string())], outcome);
    }

    /// Checks a set of in-memory files as one workspace.
    pub fn check_sources(&self, sources: Vec<(SourceFile, String)>, outcome: &mut Outcome) {
        let files: Vec<FileData> = sources
            .into_iter()
            .map(|(file, src)| FileData::new(file, src))
            .collect();

        // phase 1: per-file rules
        let mut raw_by_file: Vec<Vec<Violation>> = files
            .iter()
            .map(|fd| {
                let ctx = FileCtx::new(&fd.file, &fd.src, &fd.tokens, &fd.lines);
                let mut raw = Vec::new();
                for rule in &self.rules {
                    rule.check(&ctx, &self.config, &mut raw);
                }
                raw
            })
            .collect();

        // phase 2: workspace-scope rules over the call graph
        let ws = WorkspaceCtx::build(files);
        let mut ws_raw: Vec<Violation> = Vec::new();
        for rule in &self.workspace_rules {
            rule.check(&ws, &self.config, &mut ws_raw);
        }
        let analysis = surface::compute(&ws, &self.config);
        ws_raw.extend(analysis.root_violations);
        if let Some(ratchet) = &self.panic_ratchet {
            for (krate, entry) in analysis.surface.grown_since(ratchet) {
                let (path, line, chain) = analysis.details.get(&entry).cloned().unwrap_or((
                    surface::SURFACE_FILE.to_string(),
                    1,
                    String::new(),
                ));
                ws_raw.push(Violation {
                    rule: surface::RULE,
                    path,
                    line,
                    col: 1,
                    message: format!(
                        "public panic surface grew: [{krate}] {entry} newly reaches a \
                         panic ({chain}); make it panic-free or consciously re-ratchet \
                         with `mep-lint baseline`"
                    ),
                    snippet: String::new(),
                });
            }
        }

        // route workspace violations to their file for the suppression
        // pass; violations with no backing file (missing protected-root
        // specs) fail directly
        let index: BTreeMap<&str, usize> = ws
            .files
            .iter()
            .enumerate()
            .map(|(i, fd)| (fd.file.rel_path.as_str(), i))
            .collect();
        for v in ws_raw {
            match index.get(v.path.as_str()) {
                Some(&i) => raw_by_file[i].push(v),
                None => outcome.new.push(v),
            }
        }

        // phase 3: suppression + baseline passes, per file
        for (fd, raw) in ws.files.iter().zip(raw_by_file) {
            self.apply_filters(fd, raw, outcome);
            outcome.files += 1;
        }
        outcome.panic_surface = Some(analysis.surface);
    }

    /// Applies the suppression and baseline passes to one file's raw
    /// violations.
    fn apply_filters(&self, fd: &FileData, raw: Vec<Violation>, outcome: &mut Outcome) {
        let (suppressions, errors) =
            suppress::parse(&fd.src, &fd.tokens, &fd.lines, &self.rule_names);
        for e in errors {
            outcome.suppress_errors.push((fd.file.rel_path.clone(), e));
        }

        // suppression pass: a violation is silenced by a suppression with
        // the same rule whose target line matches
        let mut used = vec![false; suppressions.len()];
        let mut remaining: Vec<Violation> = Vec::new();
        for v in raw {
            let hit = suppressions
                .iter()
                .position(|s| s.rule == v.rule && s.target_line == v.line);
            match hit {
                Some(i) => {
                    used[i] = true;
                    outcome.suppressed.push(SuppressedViolation {
                        reason: suppressions[i].reason.clone(),
                        violation: v,
                    });
                }
                None => remaining.push(v),
            }
        }
        for (i, s) in suppressions.into_iter().enumerate() {
            if !used[i] {
                outcome.unused.push((fd.file.rel_path.clone(), s));
            }
        }

        // baseline pass: per rule, a file within its allowance is fully
        // masked; exceeding it reports every instance (the offender is
        // not identifiable once line numbers shift, so show all)
        let mut by_rule: BTreeMap<&'static str, Vec<Violation>> = BTreeMap::new();
        for v in remaining {
            by_rule.entry(v.rule).or_default().push(v);
        }
        for (rule, vs) in by_rule {
            let allowed = self.baseline.allowance(rule, &fd.file.rel_path);
            if vs.len() <= allowed {
                outcome.baselined.extend(vs);
            } else {
                outcome.new.extend(vs.into_iter().map(|mut v| {
                    if allowed > 0 {
                        v.message = format!(
                            "{} [file exceeds its baseline allowance of {allowed} for {rule}]",
                            v.message
                        );
                    }
                    v
                }));
            }
        }
    }

    /// Checks every discovered file under `root`.
    pub fn check_workspace(&self, root: &Path) -> Result<Outcome, String> {
        let files = workspace::discover(root)
            .map_err(|e| format!("discovering sources under {}: {e}", root.display()))?;
        let mut sources = Vec::with_capacity(files.len());
        for file in files {
            let src = std::fs::read_to_string(root.join(&file.rel_path))
                .map_err(|e| format!("reading {}: {e}", file.rel_path))?;
            sources.push((file, src));
        }
        let mut outcome = Outcome::default();
        self.check_sources(sources, &mut outcome);
        outcome.new.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        Ok(outcome)
    }

    /// Regenerates a baseline that exactly covers the current violations
    /// (suppressed ones stay suppressed, not baselined), plus the freshly
    /// computed panic surface to commit as the new ratchet.
    /// `panic-surface` violations are never baselined: surface growth is
    /// ratcheted through `results/panic_surface.json` and protected-root
    /// reachability is always a hard error.
    pub fn regenerate_baseline(&self, root: &Path) -> Result<(Baseline, PanicSurface), String> {
        // run against an empty baseline and no ratchet so every
        // unsuppressed violation is visible
        let fresh = Engine::new(self.config.clone(), Baseline::empty());
        let outcome = fresh.check_workspace(root)?;
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in &outcome.new {
            if v.rule == surface::RULE {
                continue;
            }
            *counts
                .entry((v.rule.to_string(), v.path.clone()))
                .or_default() += 1;
        }
        let mut baseline = Baseline::empty();
        for ((rule, path), count) in counts {
            baseline.set(&rule, &path, count);
        }
        Ok((baseline, outcome.panic_surface.unwrap_or_default()))
    }

    /// Rule list for `mep-lint rules`.
    pub fn describe_rules(&self) -> Vec<(&'static str, &'static str)> {
        let mut out: Vec<(&'static str, &'static str)> =
            self.rules.iter().map(|r| (r.name(), r.summary())).collect();
        out.extend(self.workspace_rules.iter().map(|r| (r.name(), r.summary())));
        out.push((
            surface::RULE,
            "the public panic surface may only shrink, and the daemon's protected \
             roots must be panic-free outside catch_unwind",
        ));
        out
    }
}
