//! The `mep-lint` command-line driver.
//!
//! ```text
//! mep-lint check [--root DIR] [--report PATH] [--no-report]
//! mep-lint baseline [--root DIR]
//! mep-lint rules
//! ```
//!
//! `check` exits 0 when no new violations (and no malformed suppressions)
//! exist, 1 on findings, 2 on usage or I/O errors. By default it writes
//! the machine-readable posture to `results/lint_report.json` under the
//! workspace root.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mep_lint::{baseline::BASELINE_FILE, Baseline, Config, Engine};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mep-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    root: PathBuf,
    report: Option<PathBuf>,
    write_report: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut root = None;
    let mut report = None;
    let mut write_report = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root requires a path")?)),
            "--report" => {
                report = Some(PathBuf::from(it.next().ok_or("--report requires a path")?))
            }
            "--no-report" => write_report = false,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            mep_lint::workspace::find_root(&cwd).ok_or(
                "no workspace root found (no Cargo.toml with [workspace] above cwd); pass --root",
            )?
        }
    };
    Ok(Options {
        root,
        report,
        write_report,
    })
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args
        .split_first()
        .map(|(c, r)| (c.as_str(), r))
        .unwrap_or(("check", &[]));
    match cmd {
        "check" => check(&parse_options(rest)?),
        "baseline" => regenerate(&parse_options(rest)?),
        "rules" => {
            let engine = Engine::new(Config::default(), Baseline::empty());
            for (name, summary) in engine.describe_rules() {
                println!("{name:<16} {summary}");
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown command `{other}` (expected `check`, `baseline`, or `rules`)"
        )),
    }
}

fn check(opts: &Options) -> Result<ExitCode, String> {
    let baseline = Baseline::load(&opts.root)?;
    let engine = Engine::new(Config::default(), baseline);
    let outcome = engine.check_workspace(&opts.root)?;

    for (path, err) in &outcome.suppress_errors {
        println!("{path}:{} suppression {}", err.line, err.message);
    }
    for v in &outcome.new {
        println!("{v}");
    }
    for (path, s) in &outcome.unused {
        eprintln!(
            "warning: {path}:{} unused suppression lint:allow({}) — remove it or note why it stays",
            s.comment_line, s.rule
        );
    }
    print!("{}", mep_lint::report::render_summary(&outcome));

    if opts.write_report {
        let path = opts
            .report
            .clone()
            .unwrap_or_else(|| opts.root.join("results").join("lint_report.json"));
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        let json = mep_lint::report::render_json(&outcome);
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("report: {}", path.display());
    }

    Ok(if outcome.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn regenerate(opts: &Options) -> Result<ExitCode, String> {
    let engine = Engine::new(Config::default(), Baseline::empty());
    let baseline = engine.regenerate_baseline(&opts.root)?;
    let path = opts.root.join(BASELINE_FILE);
    std::fs::write(&path, baseline.render())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!(
        "baseline: {} entries covering {} violation(s) written to {}",
        baseline.len(),
        baseline.total(),
        path.display()
    );
    Ok(ExitCode::SUCCESS)
}
