//! The `mep-lint` command-line driver.
//!
//! ```text
//! mep-lint check [--root DIR] [--report PATH] [--no-report]
//!                [--deny-unused-suppressions]
//! mep-lint baseline [--root DIR]
//! mep-lint rules
//! ```
//!
//! `check` exits 0 when no new violations (and no malformed suppressions)
//! exist, 1 on findings, 2 on usage or I/O errors. By default it writes
//! the machine-readable posture to `results/lint_report.json` and the
//! freshly computed panic-surface ratchet to `results/panic_surface.json`
//! under the workspace root; the run fails if the surface *grew* relative
//! to the committed artifact (CI additionally `git diff`s the rewrite so
//! shrinkage must be committed too).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mep_lint::surface::{PanicSurface, SURFACE_FILE};
use mep_lint::{baseline::BASELINE_FILE, Baseline, Config, Engine};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mep-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    root: PathBuf,
    report: Option<PathBuf>,
    write_report: bool,
    deny_unused: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut root = None;
    let mut report = None;
    let mut write_report = true;
    let mut deny_unused = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root requires a path")?)),
            "--report" => {
                report = Some(PathBuf::from(it.next().ok_or("--report requires a path")?))
            }
            "--no-report" => write_report = false,
            "--deny-unused-suppressions" => deny_unused = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            mep_lint::workspace::find_root(&cwd).ok_or(
                "no workspace root found (no Cargo.toml with [workspace] above cwd); pass --root",
            )?
        }
    };
    Ok(Options {
        root,
        report,
        write_report,
        deny_unused,
    })
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args
        .split_first()
        .map(|(c, r)| (c.as_str(), r))
        .unwrap_or(("check", &[]));
    match cmd {
        "check" => check(&parse_options(rest)?),
        "baseline" => regenerate(&parse_options(rest)?),
        "rules" => {
            let engine = Engine::new(Config::default(), Baseline::empty());
            for (name, summary) in engine.describe_rules() {
                println!("{name:<16} {summary}");
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown command `{other}` (expected `check`, `baseline`, or `rules`)"
        )),
    }
}

fn check(opts: &Options) -> Result<ExitCode, String> {
    let baseline = Baseline::load(&opts.root)?;
    let mut engine = Engine::new(Config::default(), baseline);

    // load the committed panic-surface ratchet; a missing file means a
    // first run (no growth check), a malformed one is an error
    let surface_path = opts.root.join(SURFACE_FILE);
    match std::fs::read_to_string(&surface_path) {
        Ok(text) => engine.panic_ratchet = Some(PanicSurface::parse(&text)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("reading {}: {e}", surface_path.display())),
    }

    let outcome = engine.check_workspace(&opts.root)?;

    for (path, err) in &outcome.suppress_errors {
        println!("{path}:{} suppression {}", err.line, err.message);
    }
    for v in &outcome.new {
        println!("{v}");
    }
    for (path, s) in &outcome.unused {
        eprintln!(
            "warning: {path}:{} unused suppression lint:allow({}) — remove it or note why it stays",
            s.comment_line, s.rule
        );
    }
    print!("{}", mep_lint::report::render_summary(&outcome));

    if opts.write_report {
        let path = opts
            .report
            .clone()
            .unwrap_or_else(|| opts.root.join("results").join("lint_report.json"));
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        let json = mep_lint::report::render_json(&outcome);
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("report: {}", path.display());

        // rewrite the ratchet with the freshly computed surface so
        // shrinkage shows up as a committable diff (CI enforces it)
        if let Some(surface) = &outcome.panic_surface {
            if let Some(dir) = surface_path.parent() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
            std::fs::write(&surface_path, surface.render())
                .map_err(|e| format!("writing {}: {e}", surface_path.display()))?;
            println!(
                "panic surface: {} public function(s) across {} crate(s) -> {}",
                surface.len(),
                surface.crates.len(),
                surface_path.display()
            );
        }
    }

    if opts.deny_unused && !outcome.unused.is_empty() {
        eprintln!(
            "error: {} unused suppression(s) with --deny-unused-suppressions",
            outcome.unused.len()
        );
        return Ok(ExitCode::FAILURE);
    }

    Ok(if outcome.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn regenerate(opts: &Options) -> Result<ExitCode, String> {
    let engine = Engine::new(Config::default(), Baseline::empty());
    let (baseline, surface) = engine.regenerate_baseline(&opts.root)?;
    let path = opts.root.join(BASELINE_FILE);
    std::fs::write(&path, baseline.render())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!(
        "baseline: {} entries covering {} violation(s) written to {}",
        baseline.len(),
        baseline.total(),
        path.display()
    );
    let surface_path = opts.root.join(SURFACE_FILE);
    if let Some(dir) = surface_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    std::fs::write(&surface_path, surface.render())
        .map_err(|e| format!("writing {}: {e}", surface_path.display()))?;
    println!(
        "panic surface re-ratcheted: {} public function(s) across {} crate(s) -> {}",
        surface.len(),
        surface.crates.len(),
        surface_path.display()
    );
    Ok(ExitCode::SUCCESS)
}
