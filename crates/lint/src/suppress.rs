//! Inline suppressions: `// lint:allow(rule): reason`.
//!
//! Grammar (inside a line comment, leading `//` or `///` stripped):
//!
//! ```text
//! lint:allow(<rule-name>): <reason>
//! ```
//!
//! The reason is mandatory — a suppression is a recorded decision, and a
//! decision without a rationale is what the lint exists to prevent. A
//! trailing suppression applies to its own line; a standalone comment
//! line applies to the next code line (the line of the next non-comment
//! token, so blank lines and further comments may intervene).
//!
//! Malformed suppressions (missing reason, unknown rule) are themselves
//! diagnostics, and are *not* suppressible.

use crate::lexer::{LineIndex, Token, TokenKind};

/// One parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule this suppression targets.
    pub rule: String,
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// 1-based line the suppression covers.
    pub target_line: usize,
    /// The mandatory justification.
    pub reason: String,
}

/// A malformed suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressError {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Scans the token stream for suppression comments. `known_rules` guards
/// against typos: a suppression naming an unknown rule is an error, not a
/// silent no-op.
pub fn parse(
    src: &str,
    tokens: &[Token],
    lines: &LineIndex,
    known_rules: &[&str],
) -> (Vec<Suppression>, Vec<SuppressError>) {
    let mut out = Vec::new();
    let mut errors = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = tok.text(src);
        let body = text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        let comment_line = lines.line(tok.span.start);
        let parsed = parse_body(rest);
        match parsed {
            Err(msg) => errors.push(SuppressError {
                line: comment_line,
                message: msg,
            }),
            Ok((rule, reason)) => {
                if !known_rules.contains(&rule.as_str()) {
                    errors.push(SuppressError {
                        line: comment_line,
                        message: format!(
                            "lint:allow names unknown rule `{rule}` (known: {})",
                            known_rules.join(", ")
                        ),
                    });
                    continue;
                }
                let target_line = target_line(tokens, lines, i, comment_line);
                out.push(Suppression {
                    rule,
                    comment_line,
                    target_line,
                    reason,
                });
            }
        }
    }
    (out, errors)
}

/// Parses `(<rule>): <reason>` after the `lint:allow` keyword.
fn parse_body(rest: &str) -> Result<(String, String), String> {
    const USAGE: &str = "usage: `// lint:allow(rule-name): reason`";
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err(format!("lint:allow is missing `(rule-name)` — {USAGE}"));
    };
    let Some((rule, after)) = rest.split_once(')') else {
        return Err(format!("lint:allow has an unclosed `(` — {USAGE}"));
    };
    let rule = rule.trim().to_string();
    if rule.is_empty() {
        return Err(format!("lint:allow has an empty rule name — {USAGE}"));
    }
    let after = after.trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err(format!(
            "lint:allow({rule}) is missing the mandatory `: reason` — {USAGE}"
        ));
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        return Err(format!(
            "lint:allow({rule}) has an empty reason — every suppression must say why"
        ));
    }
    Ok((rule, reason))
}

/// A trailing comment covers its own line; a standalone comment covers
/// the line of the next non-comment token.
fn target_line(
    tokens: &[Token],
    lines: &LineIndex,
    comment_idx: usize,
    comment_line: usize,
) -> usize {
    let standalone = !tokens[..comment_idx].iter().rev().any(|t| {
        lines.line(t.span.start) == comment_line
            && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
    });
    if !standalone {
        return comment_line;
    }
    tokens[comment_idx + 1..]
        .iter()
        .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| lines.line(t.span.start))
        .unwrap_or(comment_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn run(src: &str) -> (Vec<Suppression>, Vec<SuppressError>) {
        let tokens = lexer::lex(src);
        let lines = lexer::LineIndex::new(src);
        parse(src, &tokens, &lines, &["no-panic-lib", "determinism"])
    }

    #[test]
    fn trailing_and_standalone_targets() {
        let src = "\
let a = x.unwrap(); // lint:allow(no-panic-lib): poisoned mutex is fatal
// lint:allow(determinism): map is lookup-only

let m = HashMap::new();";
        let (sups, errs) = run(src);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(sups.len(), 2);
        assert_eq!(sups[0].rule, "no-panic-lib");
        assert_eq!(sups[0].target_line, 1);
        assert_eq!(sups[1].rule, "determinism");
        assert_eq!(sups[1].target_line, 4, "skips the blank line");
        assert_eq!(sups[1].reason, "map is lookup-only");
    }

    #[test]
    fn missing_reason_is_an_error() {
        for bad in [
            "// lint:allow(no-panic-lib)",
            "// lint:allow(no-panic-lib):",
            "// lint:allow(no-panic-lib):   ",
            "// lint:allow no-panic-lib: reason",
            "// lint:allow(: reason",
        ] {
            let (sups, errs) = run(bad);
            assert!(sups.is_empty(), "{bad}");
            assert_eq!(errs.len(), 1, "{bad}");
        }
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let (sups, errs) = run("// lint:allow(no-such-rule): because");
        assert!(sups.is_empty());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unknown rule"));
    }

    #[test]
    fn suppressions_inside_strings_are_ignored() {
        let src = "let s = \"// lint:allow(no-panic-lib): fake\";";
        let (sups, errs) = run(src);
        assert!(sups.is_empty() && errs.is_empty());
    }
}
