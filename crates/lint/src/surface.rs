//! The ratcheted panic surface: which *public* library functions can
//! transitively reach a panic site, and whether the daemon's protected
//! roots (configured in [`Config::protected_roots`]) are panic-free.
//!
//! `mep-lint check` computes the surface from the call graph, fails when
//! it *grew* relative to the committed `results/panic_surface.json`, and
//! rewrites the file with the freshly computed surface — so shrinkage
//! shows up as a git diff the author commits (CI runs
//! `git diff --exit-code` on it), and growth is a hard error unless the
//! author consciously re-ratchets with `mep-lint baseline`. Entries are
//! keyed `(crate, path::fn)` with no line numbers, so moving code around
//! never churns the ratchet.
//!
//! A suppressed or baselined `no-panic-lib` diagnostic does NOT remove a
//! panic site from this analysis: the suppression silences the per-file
//! diagnostic, but the fact that the code can panic still propagates —
//! only `catch_unwind` actually contains a panic.

use std::collections::{BTreeMap, BTreeSet};

use mep_obs::json::escape_into;
use mep_obs::parse::{parse_json, JsonValue};

use crate::callgraph::WorkspaceCtx;
use crate::config::Config;
use crate::diag::Violation;
use crate::workspace::FileKind;

/// Rule name used for protected-root and surface-growth violations.
pub const RULE: &str = "panic-surface";

/// Default artifact path, relative to the workspace root.
pub const SURFACE_FILE: &str = "results/panic_surface.json";

/// Schema tag written into the artifact.
pub const SCHEMA: &str = "mep-panic-surface-v1";

/// The computed (or committed) panic surface.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PanicSurface {
    /// Per crate: sorted `"<rel_path>::<Type::>fn"` entries for every
    /// public library function that can transitively reach a panic site.
    pub crates: BTreeMap<String, BTreeSet<String>>,
    /// Per protected root: the (hopefully empty) list of witness chains.
    pub roots: Vec<(String, Vec<String>)>,
}

/// The surface plus the diagnostics derived while computing it.
#[derive(Debug)]
pub struct SurfaceAnalysis {
    /// The artifact to write.
    pub surface: PanicSurface,
    /// Per entry key: definition site and witness chain (for growth
    /// diagnostics).
    pub details: BTreeMap<String, (String, usize, String)>,
    /// Protected-root failures (always hard errors, never ratcheted).
    pub root_violations: Vec<Violation>,
}

/// Computes the panic surface and protected-root status of a workspace.
pub fn compute(ws: &WorkspaceCtx, cfg: &Config) -> SurfaceAnalysis {
    let (reaches, witness) = ws.panic_reachability();

    let mut crates: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut details = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let fd = &ws.files[f.file];
        if !reaches[id] || !f.is_pub || f.is_test || fd.file.kind != FileKind::Lib {
            continue;
        }
        let entry = format!("{}::{}", fd.file.rel_path, ws.fn_display(id));
        crates
            .entry(fd.file.crate_name.clone())
            .or_default()
            .insert(entry.clone());
        let (path, line) = ws.fn_location(id);
        details
            .entry(entry)
            .or_insert_with(|| (path, line, ws.witness_chain(id, &witness)));
    }

    let mut roots = Vec::new();
    let mut root_violations = Vec::new();
    for spec in &cfg.protected_roots {
        // a spec is vacuous when its crate isn't in the analyzed set
        // (single-file fixture runs); within the crate, a non-matching
        // spec is an error so renames can't silently disable the check
        let krate = spec.split("::").next().unwrap_or(spec);
        if !ws.files.iter().any(|fd| fd.file.crate_name == krate) {
            continue;
        }
        let ids = ws.find_roots(spec);
        if ids.is_empty() {
            root_violations.push(Violation {
                rule: RULE,
                path: SURFACE_FILE.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "protected root `{spec}` matches no function; update \
                     Config::protected_roots if it was renamed"
                ),
                snippet: String::new(),
            });
            roots.push((spec.clone(), Vec::new()));
            continue;
        }
        let mut chains = Vec::new();
        for id in ids {
            if reaches[id] {
                let chain = ws.witness_chain(id, &witness);
                let f = &ws.fns[id];
                let fd = &ws.files[f.file];
                let offset = fd.tokens.get(f.name_tok).map_or(0, |t| t.span.start);
                let (line, col) = fd.lines.line_col(offset);
                root_violations.push(Violation {
                    rule: RULE,
                    path: fd.file.rel_path.clone(),
                    line,
                    col,
                    message: format!(
                        "protected root `{spec}` can reach a panic outside catch_unwind: \
                         {chain}; a panic here kills the worker thread, not just the job"
                    ),
                    snippet: fd.line_text(offset).to_string(),
                });
                chains.push(chain);
            }
        }
        chains.sort();
        roots.push((spec.clone(), chains));
    }

    SurfaceAnalysis {
        surface: PanicSurface { crates, roots },
        details,
        root_violations,
    }
}

impl PanicSurface {
    /// Entries present here but absent from `committed` — the surface
    /// growth that fails the run.
    pub fn grown_since(&self, committed: &PanicSurface) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (krate, entries) in &self.crates {
            let old = committed.crates.get(krate);
            for e in entries {
                if !old.is_some_and(|s| s.contains(e)) {
                    out.push((krate.clone(), e.clone()));
                }
            }
        }
        out
    }

    /// Total entry count.
    pub fn len(&self) -> usize {
        self.crates.values().map(BTreeSet::len).sum()
    }

    /// True when no function panics anywhere (unlikely in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the artifact: one entry per line so the ratchet diffs
    /// cleanly in review.
    pub fn render(&self) -> String {
        fn quoted(s: &str) -> String {
            let mut out = String::from("\"");
            escape_into(&mut out, s);
            out.push('"');
            out
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", quoted(SCHEMA)));
        out.push_str("  \"crates\": {");
        for (ci, (krate, entries)) in self.crates.iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: [", quoted(krate)));
            for (ei, e) in entries.iter().enumerate() {
                if ei > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      {}", quoted(e)));
            }
            out.push_str("\n    ]");
        }
        out.push_str("\n  },\n");
        out.push_str("  \"protected_roots\": [");
        for (ri, (root, chains)) in self.roots.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"root\": {}, \"reachable_panics\": [",
                quoted(root)
            ));
            for (ci, c) in chains.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      {}", quoted(c)));
            }
            if chains.is_empty() {
                out.push_str("] }");
            } else {
                out.push_str("\n    ] }");
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a committed artifact (missing fields are tolerated so the
    /// schema can grow).
    pub fn parse(text: &str) -> Result<PanicSurface, String> {
        let v = parse_json(text).map_err(|e| format!("panic_surface.json: {e}"))?;
        if v.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
            return Err(format!(
                "panic_surface.json: unknown schema (expected {SCHEMA:?})"
            ));
        }
        let mut crates: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        if let Some(cs) = v.get("crates").and_then(JsonValue::as_obj) {
            for (krate, arr) in cs {
                let entries = arr
                    .as_arr()
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|e| e.as_str().map(str::to_string))
                    .collect();
                crates.insert(krate.clone(), entries);
            }
        }
        let mut roots = Vec::new();
        if let Some(rs) = v.get("protected_roots").and_then(JsonValue::as_arr) {
            for r in rs {
                let name = r
                    .get("root")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string();
                let chains = r
                    .get("reachable_panics")
                    .and_then(JsonValue::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|e| e.as_str().map(str::to_string))
                    .collect();
                roots.push((name, chains));
            }
        }
        Ok(PanicSurface { crates, roots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PanicSurface {
        let mut crates = BTreeMap::new();
        crates.insert(
            "placer".to_string(),
            ["crates/placer/src/a.rs::f", "crates/placer/src/a.rs::T::g"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        PanicSurface {
            crates,
            roots: vec![("serve::claim_next_job".to_string(), Vec::new())],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let s = sample();
        let parsed = PanicSurface::parse(&s.render()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn growth_is_asymmetric() {
        let s = sample();
        let mut bigger = s.clone();
        bigger
            .crates
            .get_mut("placer")
            .unwrap()
            .insert("crates/placer/src/b.rs::h".to_string());
        bigger
            .crates
            .entry("obs".to_string())
            .or_default()
            .insert("crates/obs/src/m.rs::k".to_string());
        assert!(s.grown_since(&bigger).is_empty(), "shrinking is fine");
        let grown = bigger.grown_since(&s);
        assert_eq!(grown.len(), 2);
        assert_eq!(grown[0].0, "obs");
    }

    #[test]
    fn bad_schema_is_rejected() {
        assert!(PanicSurface::parse("{\"schema\":\"nope\"}").is_err());
        assert!(PanicSurface::parse("not json").is_err());
    }
}
