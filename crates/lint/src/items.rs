//! A lightweight item parser over the lexer's token stream.
//!
//! This is the syntactic half of the interprocedural rules: it recognizes
//! `fn` / `mod` / `impl` / `trait` / `struct` / `enum` / `union` items with
//! their visibility, name, and token extent, recursing into container
//! bodies (`mod { … }`, `impl { … }`, `trait { … }`) but treating function
//! bodies as leaves — a nested `fn` inside a body is part of its enclosing
//! function, which is the granularity the call graph wants.
//!
//! Like the lexer it is total: any token stream (including garbage from
//! the property tests) parses into a forest whose item extents are
//! properly nested and non-overlapping, so every token is owned by exactly
//! one innermost item or by the module root. `verify_item_coverage`
//! checks that tiling invariant, mirroring `lexer::verify_coverage`.
//!
//! Deliberate non-goals (documented in DESIGN.md §16): no expression
//! parsing, no type resolution, no macro expansion. Tokens produced by
//! macro invocations at item position are consumed as opaque statements
//! and owned by the enclosing container.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free, impl method, or trait method).
    Fn,
    /// An inline module (`mod m { … }`; `mod m;` has no body).
    Mod,
    /// An `impl` block; `name` is the self-type's last path segment.
    Impl,
    /// A `trait` definition.
    Trait,
    /// A `struct` / `enum` / `union` definition.
    Struct,
}

/// One parsed item. Token indices are into the stream the parser was
/// given; `start..end` covers the item including its attributes.
#[derive(Debug, Clone)]
pub struct Item {
    /// Classification.
    pub kind: ItemKind,
    /// Declared name; for `impl` blocks the self-type's last path segment
    /// (empty when the type has no usable segment, e.g. `impl [T] …`).
    pub name: String,
    /// True for bare `pub` (restricted `pub(crate)` / `pub(super)` /
    /// `pub(in …)` visibility is not public API and stays `false`).
    pub is_pub: bool,
    /// First token of the item (its first attribute, if any).
    pub start: usize,
    /// One past the last token of the item.
    pub end: usize,
    /// Token indices of the body's `{` and `}` (inclusive), when braced.
    pub body: Option<(usize, usize)>,
    /// Nested items (container kinds only; `Fn` bodies are leaves).
    pub children: Vec<Item>,
}

/// Parses the whole token stream into the module root's item list.
pub fn parse_items(src: &str, tokens: &[Token]) -> Vec<Item> {
    let mut p = Parser { src, tokens };
    p.container(0, tokens.len())
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
}

/// Modifier keywords that may precede an item keyword.
const MODIFIERS: &[&str] = &["const", "async", "unsafe", "default", "extern"];

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text(self.src))
    }

    fn is_ident(&self, i: usize) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == p)
    }

    fn is_comment(&self, i: usize) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// Parses items until `end`, returning them in order.
    fn container(&mut self, mut i: usize, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while i < end {
            if self.is_comment(i) {
                i += 1;
                continue;
            }
            let (next, item) = self.item(i, end);
            debug_assert!(next > i, "item parser must always advance");
            if let Some(it) = item {
                items.push(it);
            }
            i = next.max(i + 1);
        }
        items
    }

    /// Tries to parse one item starting at `i`; returns (index one past
    /// the consumed tokens, the item if one was recognized). Unrecognized
    /// constructs are consumed as one opaque statement and owned by the
    /// container.
    fn item(&mut self, start: usize, end: usize) -> (usize, Option<Item>) {
        let mut i = start;
        // attributes (`#[…]` and `#![…]`) and doc comments belong to the
        // item that follows them
        loop {
            if self.is_comment(i) {
                i += 1;
            } else if self.is_punct(i, "#")
                && (self.is_punct(i + 1, "[")
                    || (self.is_punct(i + 1, "!") && self.is_punct(i + 2, "[")))
            {
                let open = if self.is_punct(i + 1, "[") {
                    i + 1
                } else {
                    i + 2
                };
                i = self.match_delim(open, end, "[", "]");
            } else {
                break;
            }
            if i >= end {
                return (end, None);
            }
        }
        // visibility
        let mut is_pub = false;
        if self.text(i) == "pub" && self.is_ident(i) {
            i += 1;
            if self.is_punct(i, "(") {
                is_pub = false; // pub(crate) / pub(super) / pub(in …)
                i = self.match_delim(i, end, "(", ")");
            } else {
                is_pub = true;
            }
        }
        // modifiers (const fn, unsafe impl, extern "C" fn, …)
        while self.is_ident(i) && MODIFIERS.contains(&self.text(i)) {
            let word = self.text(i).to_string();
            // `const NAME: T = …;` is an item, not a modifier: only treat
            // `const` as a modifier when `fn` follows
            if word == "const" && self.text(i + 1) != "fn" {
                break;
            }
            i += 1;
            if word == "extern" {
                // `extern "C" fn` (skip the ABI string); `extern crate x;`
                // and `extern { … }` blocks fall through as opaque
                if self
                    .tokens
                    .get(i)
                    .is_some_and(|t| matches!(t.kind, TokenKind::Str | TokenKind::RawStr))
                {
                    i += 1;
                }
            }
        }
        if !self.is_ident(i) || i >= end {
            return (self.skip_stmt(i.max(start), end), None);
        }
        match self.text(i) {
            "fn" => self.item_fn(start, i, end, is_pub),
            "mod" => self.item_mod(start, i, end, is_pub),
            "impl" => self.item_block(start, i, end, is_pub, ItemKind::Impl),
            "trait" => self.item_block(start, i, end, is_pub, ItemKind::Trait),
            "struct" | "enum" | "union" => self.item_struct(start, i, end, is_pub),
            _ => (self.skip_stmt(start, end), None),
        }
    }

    /// `fn name … { body }` or `fn name …;` (trait method declaration).
    /// The body is a leaf: nested fns stay part of this one.
    fn item_fn(
        &mut self,
        start: usize,
        kw: usize,
        end: usize,
        is_pub: bool,
    ) -> (usize, Option<Item>) {
        let name_tok = kw + 1;
        if !self.is_ident(name_tok) {
            return (self.skip_stmt(start, end), None);
        }
        let name = self.text(name_tok).to_string();
        let (item_end, body) = self.find_body_or_semi(name_tok + 1, end);
        (
            item_end,
            Some(Item {
                kind: ItemKind::Fn,
                name,
                is_pub,
                start,
                end: item_end,
                body,
                children: Vec::new(),
            }),
        )
    }

    /// `mod name;` or `mod name { items… }`.
    fn item_mod(
        &mut self,
        start: usize,
        kw: usize,
        end: usize,
        is_pub: bool,
    ) -> (usize, Option<Item>) {
        let name_tok = kw + 1;
        if !self.is_ident(name_tok) {
            return (self.skip_stmt(start, end), None);
        }
        let name = self.text(name_tok).to_string();
        let (item_end, body) = self.find_body_or_semi(name_tok + 1, end);
        let children = match body {
            Some((open, close)) if close > open => self.container(open + 1, close),
            _ => Vec::new(),
        };
        (
            item_end,
            Some(Item {
                kind: ItemKind::Mod,
                name,
                is_pub,
                start,
                end: item_end,
                body,
                children,
            }),
        )
    }

    /// `impl … Type { items }` / `trait Name { items }`. For `impl`, the
    /// name is the self-type's last path segment at angle-depth zero (the
    /// segment after `for` in `impl Trait for Type`).
    fn item_block(
        &mut self,
        start: usize,
        kw: usize,
        end: usize,
        is_pub: bool,
        kind: ItemKind,
    ) -> (usize, Option<Item>) {
        // scan the header: remember idents at angle-depth 0, stop at `{`/`;`
        let mut i = kw + 1;
        let mut angle = 0i32;
        let mut last_ident = String::new();
        let mut after_for = String::new();
        let mut saw_for = false;
        let mut saw_where = false;
        while i < end {
            let t = self.text(i);
            match t {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "{" if angle <= 0 => break,
                ";" if angle <= 0 => {
                    // `trait Alias = …;` / degenerate header: brace-less item
                    let name = if kind == ItemKind::Trait {
                        last_ident
                    } else {
                        after_for
                    };
                    return (
                        i + 1,
                        Some(Item {
                            kind,
                            name,
                            is_pub,
                            start,
                            end: i + 1,
                            body: None,
                            children: Vec::new(),
                        }),
                    );
                }
                "for" if angle <= 0 && self.is_ident(i) => saw_for = true,
                "where" if angle <= 0 && self.is_ident(i) => saw_where = true,
                _ if angle <= 0 && !saw_where && self.is_ident(i) => {
                    last_ident = t.to_string();
                    if saw_for {
                        after_for = t.to_string();
                    } else if kind == ItemKind::Trait && after_for.is_empty() {
                        // first header ident is the trait name
                        after_for = t.to_string();
                    }
                }
                _ => {}
            }
            i += 1;
        }
        if i >= end {
            // unterminated header: consume to end, no item
            return (end, None);
        }
        let name = match kind {
            ItemKind::Trait => after_for,
            // `impl Type` → last ident; `impl Trait for Type` → ident after `for`
            _ if saw_for => after_for,
            _ => last_ident,
        };
        let close = self.match_delim(i, end, "{", "}");
        let body_close = close.saturating_sub(1).max(i);
        let children = self.container(i + 1, body_close);
        (
            close,
            Some(Item {
                kind,
                name,
                is_pub,
                start,
                end: close,
                body: Some((i, body_close)),
                children,
            }),
        )
    }

    /// `struct Name …;` / `struct Name(..);` / `struct Name { fields }` /
    /// `enum Name { variants }`. Bodies are leaves (fields, not items).
    fn item_struct(
        &mut self,
        start: usize,
        kw: usize,
        end: usize,
        is_pub: bool,
    ) -> (usize, Option<Item>) {
        let name_tok = kw + 1;
        if !self.is_ident(name_tok) {
            return (self.skip_stmt(start, end), None);
        }
        let name = self.text(name_tok).to_string();
        let (item_end, body) = self.find_body_or_semi(name_tok + 1, end);
        (
            item_end,
            Some(Item {
                kind: ItemKind::Struct,
                name,
                is_pub,
                start,
                end: item_end,
                body,
                children: Vec::new(),
            }),
        )
    }

    /// From `i`, finds the item's extent: the first `{ … }` block at
    /// paren/bracket-depth zero (returning its token range), or the first
    /// `;` if one comes earlier. Unterminated items run to `end`.
    fn find_body_or_semi(&self, mut i: usize, end: usize) -> (usize, Option<(usize, usize)>) {
        let mut depth = 0i32;
        while i < end {
            let t = self.text(i);
            if self.tokens[i].kind == TokenKind::Punct {
                match t {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth <= 0 => return (i + 1, None),
                    "{" if depth <= 0 => {
                        let close = self.match_delim(i, end, "{", "}");
                        return (close, Some((i, close.saturating_sub(1).max(i))));
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        (end, None)
    }

    /// From the opening delimiter at `open`, returns the index one past
    /// its matching closer (or `end` when unterminated). Delimiters inside
    /// strings/comments are already opaque tokens, so this cannot desync.
    fn match_delim(&self, open: usize, end: usize, op: &str, cl: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.tokens[i].kind == TokenKind::Punct {
                let t = self.text(i);
                if t == op {
                    depth += 1;
                } else if t == cl {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
            }
            i += 1;
        }
        end
    }

    /// Consumes one opaque statement: to the first `;` at delimiter-depth
    /// zero, or through the first brace block (covers `use`, `const`,
    /// `static`, `type`, `macro_rules! m { … }`, `extern { … }`). Always
    /// advances at least one token.
    fn skip_stmt(&self, start: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = start;
        while i < end {
            if self.tokens[i].kind == TokenKind::Punct {
                match self.text(i) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth <= 0 => return i + 1,
                    "{" if depth <= 0 => return self.match_delim(i, end, "{", "}"),
                    _ => {}
                }
            }
            i += 1;
        }
        end.max(start + 1)
    }
}

/// Checks the item-tiling invariant, mirroring `lexer::verify_coverage`:
/// item extents are in bounds, strictly ordered and non-overlapping among
/// siblings, children lie inside their parent's extent, and bodies lie
/// inside their item — so every token has exactly one innermost owner (an
/// item, or the module root when no item covers it). Returns a description
/// of the first failure.
pub fn verify_item_coverage(tokens: &[Token], items: &[Item]) -> Result<(), String> {
    verify_level(tokens.len(), items, 0, tokens.len(), "root")
}

fn verify_level(
    n_tokens: usize,
    items: &[Item],
    lo: usize,
    hi: usize,
    parent: &str,
) -> Result<(), String> {
    let mut cursor = lo;
    for (i, it) in items.iter().enumerate() {
        if it.start < cursor {
            return Err(format!(
                "item {i} ({:?} `{}`) in {parent} overlaps its predecessor: starts at token \
                 {} before cursor {cursor}",
                it.kind, it.name, it.start
            ));
        }
        if it.end <= it.start || it.end > hi || it.end > n_tokens {
            return Err(format!(
                "item {i} ({:?} `{}`) in {parent} has bad extent {}..{} (container {lo}..{hi})",
                it.kind, it.name, it.start, it.end
            ));
        }
        if let Some((open, close)) = it.body {
            if open < it.start || close >= it.end || close < open {
                return Err(format!(
                    "item {i} ({:?} `{}`) body {open}..={close} escapes its extent {}..{}",
                    it.kind, it.name, it.start, it.end
                ));
            }
        }
        if it.kind == ItemKind::Fn && !it.children.is_empty() {
            return Err(format!(
                "fn `{}` has children; fn bodies are leaves",
                it.name
            ));
        }
        verify_level(n_tokens, &it.children, it.start, it.end, &it.name)?;
        cursor = it.end;
    }
    Ok(())
}

/// Depth-first walk over an item forest, visiting each item once.
pub fn walk<'a>(items: &'a [Item], visit: &mut dyn FnMut(&'a Item, &[&'a Item])) {
    fn inner<'a>(
        items: &'a [Item],
        stack: &mut Vec<&'a Item>,
        visit: &mut dyn FnMut(&'a Item, &[&'a Item]),
    ) {
        for it in items {
            visit(it, stack);
            stack.push(it);
            inner(&it.children, stack, visit);
            stack.pop();
        }
    }
    inner(items, &mut Vec::new(), visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> (Vec<Token>, Vec<Item>) {
        let tokens = lexer::lex(src);
        let items = parse_items(src, &tokens);
        verify_item_coverage(&tokens, &items).unwrap();
        (tokens, items)
    }

    #[test]
    fn free_fns_and_visibility() {
        let (_, items) =
            parse("pub fn a() -> u32 { 1 }\nfn b() {}\npub(crate) fn c() {}\npub const fn d() {}");
        let names: Vec<_> = items.iter().map(|i| (i.name.as_str(), i.is_pub)).collect();
        assert_eq!(
            names,
            vec![("a", true), ("b", false), ("c", false), ("d", true)]
        );
        assert!(items.iter().all(|i| i.kind == ItemKind::Fn));
    }

    #[test]
    fn impl_blocks_and_methods() {
        let (_, items) = parse(
            "struct Foo;\nimpl Foo { pub fn m(&self) {} fn n() {} }\n\
             impl Clone for Foo { fn clone(&self) -> Self { Foo } }\n\
             impl<T: Ord> Wrapper<T> { fn get(&self) {} }",
        );
        assert_eq!(items[0].kind, ItemKind::Struct);
        assert_eq!(items[1].kind, ItemKind::Impl);
        assert_eq!(items[1].name, "Foo");
        assert_eq!(items[1].children.len(), 2);
        assert!(items[1].children[0].is_pub);
        assert_eq!(items[2].name, "Foo", "impl Trait for Type names the type");
        assert_eq!(items[2].children[0].name, "clone");
        assert_eq!(items[3].name, "Wrapper", "generics skipped");
    }

    #[test]
    fn nested_mods_recurse_but_fn_bodies_are_leaves() {
        let (_, items) =
            parse("mod outer { pub mod inner { fn deep() { fn local() {} } } }\nmod external;");
        assert_eq!(items[0].kind, ItemKind::Mod);
        let inner = &items[0].children[0];
        assert_eq!(inner.name, "inner");
        let deep = &inner.children[0];
        assert_eq!(deep.name, "deep");
        assert!(
            deep.children.is_empty(),
            "nested fn stays inside its parent"
        );
        assert_eq!(items[1].name, "external");
        assert!(items[1].body.is_none());
    }

    #[test]
    fn traits_and_method_decls() {
        let (_, items) =
            parse("pub trait Sink: Send { fn emit(&self, e: &str); fn flush(&self) {} }");
        assert_eq!(items[0].kind, ItemKind::Trait);
        assert_eq!(items[0].name, "Sink");
        let kids: Vec<_> = items[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, vec!["emit", "flush"]);
        assert!(items[0].children[0].body.is_none(), "decl has no body");
        assert!(items[0].children[1].body.is_some());
    }

    #[test]
    fn opaque_statements_do_not_produce_items() {
        let (_, items) = parse(
            "use std::sync::Mutex;\nconst N: usize = 3;\nstatic S: &str = \"fn not_an_item() {}\";\n\
             macro_rules! m { () => { fn macro_fn() {} }; }\nfn real() {}",
        );
        assert_eq!(items.len(), 1, "only the real fn is an item: {items:?}");
        assert_eq!(items[0].name, "real");
    }

    #[test]
    fn where_clauses_and_angle_noise() {
        let (_, items) = parse(
            "impl<T> Pair<T> where T: Clone + Into<Vec<u8>> { fn swap(&mut self) {} }\n\
             fn generic<A: Iterator<Item = Vec<u8>>>(a: A) -> impl Iterator<Item = u8> { a.flatten() }",
        );
        assert_eq!(
            items[0].name, "Pair",
            "where-clause idents are not the name"
        );
        assert_eq!(items[1].name, "generic");
    }

    #[test]
    fn garbage_is_total() {
        for src in [
            "fn",
            "fn {",
            "impl",
            "impl {",
            "pub pub fn",
            "} } {",
            "fn f(",
            "mod m { fn g(",
            "trait",
            "#[",
            "struct",
            "impl < {",
        ] {
            let tokens = lexer::lex(src);
            let items = parse_items(src, &tokens);
            verify_item_coverage(&tokens, &items).unwrap();
        }
    }
}
