//! Workspace-scope (interprocedural) rules, run after the per-file rules
//! over the [`WorkspaceCtx`] call graph:
//!
//! | rule              | guards                                              |
//! |-------------------|-----------------------------------------------------|
//! | `lock-order`      | no two locks acquired in both orders (deadlock)     |
//! | `atomic-ordering` | no `Relaxed` load gating control flow on an atomic  |
//! |                   | that other functions write                          |
//!
//! (`panic-surface`, the third interprocedural analysis, lives in
//! [`crate::surface`] because it produces a ratcheted artifact rather
//! than plain violations.)
//!
//! Both rules model *named struct fields* only: a `Mutex` inside a tuple
//! struct (`Label(Arc<Mutex<String>>)`) is invisible, which is acceptable
//! because such wrappers are leaves that never acquire a second lock.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{FileData, WorkspaceCtx};
use crate::config::Config;
use crate::diag::Violation;
use crate::lexer::TokenKind;

/// A rule that inspects the whole workspace at once.
pub trait WorkspaceRule {
    /// Stable kebab-case identifier (diagnostics, suppressions, baseline).
    fn name(&self) -> &'static str;
    /// One-line description shown by `mep-lint rules`.
    fn summary(&self) -> &'static str;
    /// Reports violations across the workspace.
    fn check(&self, ws: &WorkspaceCtx, cfg: &Config, out: &mut Vec<Violation>);
}

/// The workspace rule set, in reporting order.
pub fn all_workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![Box::new(LockOrder), Box::new(AtomicOrdering)]
}

/// Builds a violation anchored at token `tok` of `fd`.
fn violation_at(fd: &FileData, tok: usize, rule: &'static str, message: String) -> Violation {
    let offset = fd.tokens.get(tok).map_or(0, |t| t.span.start);
    let (line, col) = fd.lines.line_col(offset);
    Violation {
        rule,
        path: fd.file.rel_path.clone(),
        line,
        col,
        message,
        snippet: fd.line_text(offset).to_string(),
    }
}

// --- lock-order -------------------------------------------------------------

/// Potential-deadlock detector: collects `Mutex`/`RwLock` struct fields in
/// the configured crates, tracks per-function acquisition order (guards
/// held from acquisition to `drop(..)`, end of statement for temporaries,
/// or end of the binding's block), propagates transitive acquire-sets
/// along call edges, and reports any pair of locks taken in both orders.
struct LockOrder;

/// How an acquired guard is held.
#[derive(Debug, Clone, PartialEq)]
enum Binding {
    /// `foo.lock()` used as a temporary: held to the end of the statement.
    Temp,
    /// `let g = foo.lock()`: held until `drop(g)` or the block closes.
    Named(String, i32),
}

#[derive(Debug, Clone)]
struct Held {
    lock: String,
    binding: Binding,
}

/// An ordered acquisition: `first` was held when `second` was taken.
type PairSites = BTreeMap<(String, String), (usize, usize)>; // -> (file idx, tok)

impl WorkspaceRule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn summary(&self) -> &'static str {
        "audited crates must acquire any pair of locks in one global order (deadlock freedom)"
    }

    fn check(&self, ws: &WorkspaceCtx, cfg: &Config, out: &mut Vec<Violation>) {
        // lock identity = field name of a Mutex/RwLock-typed named field
        let lock_fields: BTreeSet<&str> = ws
            .fields
            .iter()
            .filter(|f| cfg.is_lock_order_crate(&ws.files[f.file].file.crate_name))
            .filter(|f| f.type_text.contains("Mutex") || f.type_text.contains("RwLock"))
            .map(|f| f.name.as_str())
            .collect();
        if lock_fields.is_empty() {
            return;
        }

        let in_scope: Vec<bool> = ws
            .fns
            .iter()
            .map(|f| cfg.is_lock_order_crate(&ws.files[f.file].file.crate_name) && !f.is_test)
            .collect();

        // per-fn own acquisitions (in order) and guard-returning signatures
        let mut own: Vec<Vec<(usize, String)>> = Vec::with_capacity(ws.fns.len());
        let mut returns_guard: Vec<bool> = Vec::with_capacity(ws.fns.len());
        for (id, f) in ws.fns.iter().enumerate() {
            let fd = &ws.files[f.file];
            own.push(if in_scope[id] {
                f.body
                    .map(|(o, c)| scan_acquisitions(fd, o, c, &lock_fields))
                    .unwrap_or_default()
            } else {
                Vec::new()
            });
            returns_guard.push(signature_returns_guard(fd, f.name_tok, f.body));
        }

        // transitive acquire-sets to a fixpoint
        let mut acquires: Vec<BTreeSet<String>> = own
            .iter()
            .map(|a| a.iter().map(|(_, l)| l.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for id in 0..ws.fns.len() {
                for site in &ws.calls[id] {
                    for &callee in &site.callees {
                        if callee == id {
                            continue;
                        }
                        let add: Vec<String> = acquires[callee]
                            .iter()
                            .filter(|l| !acquires[id].contains(*l))
                            .cloned()
                            .collect();
                        if !add.is_empty() {
                            changed = true;
                            acquires[id].extend(add);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // simulate held-sets per scoped fn, recording ordered pairs
        let mut pairs: PairSites = BTreeMap::new();
        for (id, f) in ws.fns.iter().enumerate() {
            if !in_scope[id] {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let fd = &ws.files[f.file];
            simulate_fn(
                fd,
                f.file,
                open,
                close,
                &lock_fields,
                &ws.calls[id],
                &acquires,
                &returns_guard,
                &mut pairs,
            );
        }

        // inversions: (a, b) and (b, a) both present; report once per
        // unordered pair, anchored at the lexicographically-later
        // direction, citing the earlier one
        for ((a, b), &(fi, tok)) in &pairs {
            if a >= b {
                continue;
            }
            if let Some(&(ofi, otok)) = pairs.get(&(b.clone(), a.clone())) {
                let ofd = &ws.files[ofi];
                let oline = ofd.token_line(otok);
                let fd = &ws.files[fi];
                out.push(violation_at(
                    fd,
                    tok,
                    self.name(),
                    format!(
                        "lock-order inversion: `{b}` is acquired while `{a}` is held here, \
                         but {}:{oline} takes `{a}` while holding `{b}`; pick one global \
                         order or narrow a guard's scope",
                        ofd.file.rel_path
                    ),
                ));
            }
        }
    }
}

/// Lock acquisitions (`field.lock()` / `.read()` / `.write()` with an
/// empty argument list) in one body, in token order.
fn scan_acquisitions(
    fd: &FileData,
    open: usize,
    close: usize,
    lock_fields: &BTreeSet<&str>,
) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in (open + 1)..close {
        if let Some(lock) = acquisition_at(fd, i, lock_fields) {
            out.push((i, lock));
        }
    }
    out
}

/// When token `i` is the method name of `field.lock()` / `field.read()` /
/// `field.write()` over a known lock field, returns the lock name. The
/// empty argument list distinguishes guard acquisition from `io::Read` /
/// `io::Write` calls, which always take a buffer.
fn acquisition_at(fd: &FileData, i: usize, lock_fields: &BTreeSet<&str>) -> Option<String> {
    if fd.tokens.get(i)?.kind != TokenKind::Ident {
        return None;
    }
    let name = fd.tokens[i].text(&fd.src);
    if !matches!(name, "lock" | "read" | "write") {
        return None;
    }
    let o = fd.next_code(i + 1);
    if fd.tokens.get(o).is_none_or(|t| t.text(&fd.src) != "(")
        || fd
            .tokens
            .get(fd.next_code(o + 1))
            .is_none_or(|t| t.text(&fd.src) != ")")
    {
        return None;
    }
    let dot = fd.prev_code(i)?;
    if fd.tokens[dot].text(&fd.src) != "." {
        return None;
    }
    let recv = fd.prev_code(dot)?;
    let recv_text = fd.tokens[recv].text(&fd.src);
    (fd.tokens[recv].kind == TokenKind::Ident && lock_fields.contains(recv_text))
        .then(|| recv_text.to_string())
}

/// True when the fn's return type (tokens between `->` and the body)
/// names a guard type, meaning its acquisitions outlive the call.
fn signature_returns_guard(fd: &FileData, name_tok: usize, body: Option<(usize, usize)>) -> bool {
    let end = body.map_or(fd.tokens.len(), |(o, _)| o);
    let mut saw_arrow = false;
    for i in name_tok..end {
        let t = fd.tokens[i].text(&fd.src);
        if t == "->" {
            saw_arrow = true;
        } else if saw_arrow && fd.tokens[i].kind == TokenKind::Ident && t.ends_with("Guard") {
            return true;
        }
    }
    false
}

/// Walks one body linearly, maintaining the held-lock set, and records
/// every ordered pair (held, newly-acquired) — both for direct
/// acquisitions and through calls into lock-acquiring functions.
#[allow(clippy::too_many_arguments)]
fn simulate_fn(
    fd: &FileData,
    file_idx: usize,
    open: usize,
    close: usize,
    lock_fields: &BTreeSet<&str>,
    calls: &[crate::callgraph::CallSite],
    acquires: &[BTreeSet<String>],
    returns_guard: &[bool],
    pairs: &mut PairSites,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = open + 1;
    let call_at: BTreeMap<usize, &crate::callgraph::CallSite> =
        calls.iter().map(|c| (c.tok, c)).collect();

    // the `let` binding introduced by the current statement, if any
    let binding_of = |fd: &FileData, stmt: usize, depth: i32| -> Binding {
        let s = fd.next_code(stmt);
        if fd.tokens.get(s).is_some_and(|t| t.text(&fd.src) == "let") {
            let mut n = fd.next_code(s + 1);
            while fd
                .tokens
                .get(n)
                .is_some_and(|t| matches!(t.text(&fd.src), "mut" | "ref" | "(" | ","))
            {
                n = fd.next_code(n + 1);
            }
            if fd.tokens.get(n).is_some_and(|t| t.kind == TokenKind::Ident) {
                return Binding::Named(fd.tokens[n].text(&fd.src).to_string(), depth);
            }
        }
        Binding::Temp
    };

    let mut i = open + 1;
    while i < close {
        let tok = &fd.tokens[i];
        if tok.kind == TokenKind::Punct {
            match tok.text(&fd.src) {
                "{" => {
                    depth += 1;
                    stmt_start = i + 1;
                }
                "}" => {
                    held.retain(|h| match &h.binding {
                        Binding::Named(_, d) => *d < depth,
                        Binding::Temp => false,
                    });
                    depth -= 1;
                    stmt_start = i + 1;
                }
                ";" => {
                    held.retain(|h| h.binding != Binding::Temp);
                    stmt_start = i + 1;
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if tok.kind == TokenKind::Ident {
            let text = tok.text(&fd.src);
            // `drop(name)` releases a named guard
            if text == "drop" {
                let o = fd.next_code(i + 1);
                if fd.tokens.get(o).is_some_and(|t| t.text(&fd.src) == "(") {
                    let arg = fd.next_code(o + 1);
                    if fd
                        .tokens
                        .get(arg)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                    {
                        let name = fd.tokens[arg].text(&fd.src);
                        held.retain(|h| !matches!(&h.binding, Binding::Named(n, _) if n == name));
                    }
                }
            }
            if let Some(lock) = acquisition_at(fd, i, lock_fields) {
                for h in &held {
                    if h.lock != lock {
                        pairs
                            .entry((h.lock.clone(), lock.clone()))
                            .or_insert((file_idx, i));
                    }
                }
                held.push(Held {
                    lock,
                    binding: binding_of(fd, stmt_start, depth),
                });
            } else if let Some(site) = call_at.get(&i) {
                // a call into lock-acquiring code: every lock it may take
                // orders after everything currently held
                let mut callee_locks: BTreeSet<&String> = BTreeSet::new();
                let mut guard_call = false;
                for &callee in &site.callees {
                    callee_locks.extend(acquires[callee].iter());
                    guard_call |= returns_guard[callee];
                }
                for l in &callee_locks {
                    for h in &held {
                        if &h.lock != *l {
                            pairs
                                .entry((h.lock.clone(), (*l).clone()))
                                .or_insert((file_idx, i));
                        }
                    }
                }
                if guard_call {
                    // `let g = lock_helper()`: the guard (and its locks)
                    // stays held in this frame
                    let b = binding_of(fd, stmt_start, depth);
                    for l in callee_locks {
                        held.push(Held {
                            lock: l.clone(),
                            binding: b.clone(),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

// --- atomic-ordering --------------------------------------------------------

/// Flags `Ordering::Relaxed` loads of atomic struct fields that gate
/// control flow (`if` / `while` / `match` conditions) when another
/// function writes the same field — the reader can spin on a stale value
/// or miss the release of data published before the store. Fields whose
/// writes all sit in the same function (or that nothing writes) are
/// single-threaded from the type's perspective and stay quiet.
struct AtomicOrdering;

const WRITE_OPS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

impl WorkspaceRule for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn summary(&self) -> &'static str {
        "no Relaxed load may gate control flow on an atomic another function writes"
    }

    fn check(&self, ws: &WorkspaceCtx, cfg: &Config, out: &mut Vec<Violation>) {
        let atomic_fields: BTreeSet<&str> = ws
            .fields
            .iter()
            .filter(|f| cfg.is_atomic_crate(&ws.files[f.file].file.crate_name))
            .filter(|f| {
                f.type_text
                    .split_whitespace()
                    .any(|w| w.starts_with("Atomic"))
            })
            .map(|f| f.name.as_str())
            .collect();
        if atomic_fields.is_empty() {
            return;
        }

        // field -> fns that write it; and candidate relaxed control loads
        let mut writers: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
        struct Candidate<'a> {
            field: &'a str,
            fn_id: usize,
            file: usize,
            tok: usize,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        for (id, f) in ws.fns.iter().enumerate() {
            if f.is_test || !cfg.is_atomic_crate(&ws.files[f.file].file.crate_name) {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let fd = &ws.files[f.file];
            for i in (open + 1)..close {
                if fd.tokens[i].kind != TokenKind::Ident {
                    continue;
                }
                let op = fd.tokens[i].text(&fd.src);
                let is_load = op == "load";
                if !is_load && !WRITE_OPS.contains(&op) {
                    continue;
                }
                let Some(field) = atomic_receiver(fd, i, &atomic_fields) else {
                    continue;
                };
                if !is_load {
                    writers.entry(field).or_default().insert(id);
                    continue;
                }
                if relaxed_args(fd, i, close) && in_condition(fd, i, open) {
                    candidates.push(Candidate {
                        field,
                        fn_id: id,
                        file: f.file,
                        tok: i,
                    });
                }
            }
        }

        for c in candidates {
            let cross_thread = writers
                .get(c.field)
                .is_some_and(|w| w.iter().any(|&wid| wid != c.fn_id));
            if !cross_thread {
                continue;
            }
            let writer = writers[c.field]
                .iter()
                .find(|&&wid| wid != c.fn_id)
                .copied()
                .unwrap_or(c.fn_id);
            let (wpath, wline) = ws.fn_location(writer);
            let fd = &ws.files[c.file];
            out.push(violation_at(
                fd,
                c.tok,
                self.name(),
                format!(
                    "Relaxed load of atomic `{}` gates control flow, but {} ({wpath}:{wline}) \
                     writes it from another thread; use Acquire here with Release on the \
                     stores, or justify with a reasoned lint:allow",
                    c.field,
                    ws.fn_display(writer)
                ),
            ));
        }
    }
}

/// The atomic field a `.load(` / `.store(` method call targets, walking
/// back over one `[…]` index expression (`counts[i].fetch_add(…)`).
fn atomic_receiver<'a>(
    fd: &FileData,
    method_tok: usize,
    atomic_fields: &BTreeSet<&'a str>,
) -> Option<&'a str> {
    let dot = fd.prev_code(method_tok)?;
    if fd.tokens[dot].text(&fd.src) != "." {
        return None;
    }
    let mut recv = fd.prev_code(dot)?;
    if fd.tokens[recv].text(&fd.src) == "]" {
        // bracket-match backwards to the `[`, then take its receiver
        let mut depth = 0i32;
        loop {
            match fd.tokens[recv].text(&fd.src) {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        recv = fd.prev_code(recv)?;
                        break;
                    }
                }
                _ => {}
            }
            recv = fd.prev_code(recv)?;
        }
    }
    if fd.tokens[recv].kind != TokenKind::Ident {
        return None;
    }
    atomic_fields.get(fd.tokens[recv].text(&fd.src)).copied()
}

/// True when the call's argument list mentions `Relaxed`.
fn relaxed_args(fd: &FileData, method_tok: usize, close: usize) -> bool {
    let open = fd.next_code(method_tok + 1);
    if fd.tokens.get(open).is_none_or(|t| t.text(&fd.src) != "(") {
        return false;
    }
    let mut depth = 0i32;
    let mut j = open;
    while j <= close && j < fd.tokens.len() {
        match fd.tokens[j].text(&fd.src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "Relaxed" if fd.tokens[j].kind == TokenKind::Ident => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// True when the statement containing `tok` is an `if` / `while` / `match`
/// condition: an `if`/`while`/`match` keyword appears between the last
/// statement boundary (`;`, `{`, `}`) and the token.
fn in_condition(fd: &FileData, tok: usize, open: usize) -> bool {
    let mut j = tok;
    while j > open {
        j -= 1;
        let t = &fd.tokens[j];
        match t.kind {
            TokenKind::Punct => {
                if matches!(t.text(&fd.src), ";" | "{" | "}") {
                    return false;
                }
            }
            TokenKind::Ident => {
                if matches!(t.text(&fd.src), "if" | "while" | "match") {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}
