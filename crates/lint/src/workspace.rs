//! Workspace discovery: which `.rs` files exist, what role each plays
//! (library, binary, test, bench, example), and which crate owns it.
//!
//! Classification is by path convention — the same convention Cargo uses
//! for target auto-discovery — so the linter needs no manifest parsing:
//!
//! * `crates/<c>/src/bin/**`, `src/bin/**`, `src/main.rs` → binary
//! * `crates/<c>/tests/**`, `tests/**` → integration test
//! * `crates/<c>/benches/**` → bench
//! * `examples/**` → example
//! * anything else under a `src/` → library source
//!
//! `vendor/` (offline third-party shims), `target/`, and `results/` are
//! never linted.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The role a source file plays in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: the code the panic-freedom rules protect.
    Lib,
    /// Binary target (`src/bin/`, `src/main.rs`): may panic at top level.
    Bin,
    /// Integration test.
    Test,
    /// Criterion-style bench.
    Bench,
    /// Example.
    Example,
}

impl FileKind {
    /// True for test-adjacent code where panics are the failure mechanism.
    pub fn is_test_like(self) -> bool {
        matches!(self, FileKind::Test | FileKind::Bench | FileKind::Example)
    }

    /// Short label used in diagnostics and the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            FileKind::Lib => "lib",
            FileKind::Bin => "bin",
            FileKind::Test => "test",
            FileKind::Bench => "bench",
            FileKind::Example => "example",
        }
    }
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts,
    /// used in diagnostics, suppression bookkeeping, and the baseline).
    pub rel_path: String,
    /// Role (library / bin / test / bench / example).
    pub kind: FileKind,
    /// Owning crate: the directory name under `crates/`, or the workspace
    /// package name for root `src/`.
    pub crate_name: String,
    /// True for a crate root (`src/lib.rs`), where `#![forbid(unsafe_code)]`
    /// must live.
    pub is_crate_root: bool,
}

/// Name used for files under the workspace root's own `src/`.
pub const ROOT_CRATE: &str = "moreau-placer";

/// Directories under the workspace root that are never linted.
const EXCLUDED_TOP_DIRS: &[&str] = &["target", "vendor", "results", ".git", ".github"];

/// Classifies `rel_path` (forward-slash, workspace-relative). Returns
/// `None` for files the linter does not cover (e.g. excluded dirs).
pub fn classify(rel_path: &str) -> Option<SourceFile> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let first = rel_path.split('/').next().unwrap_or("");
    if EXCLUDED_TOP_DIRS.contains(&first) {
        return None;
    }

    let (crate_name, in_crate) = if let Some(rest) = rel_path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        (name.to_string(), tail)
    } else {
        (ROOT_CRATE.to_string(), rel_path)
    };

    let kind = if in_crate.starts_with("src/bin/") || in_crate == "src/main.rs" {
        FileKind::Bin
    } else if in_crate.starts_with("tests/") {
        FileKind::Test
    } else if in_crate.starts_with("benches/") {
        FileKind::Bench
    } else if in_crate.starts_with("examples/") {
        FileKind::Example
    } else if in_crate.starts_with("src/") {
        FileKind::Lib
    } else {
        // stray .rs outside the conventional layout (e.g. build.rs):
        // treat as library source so rules still apply
        FileKind::Lib
    };

    Some(SourceFile {
        rel_path: rel_path.to_string(),
        kind,
        crate_name,
        is_crate_root: in_crate == "src/lib.rs",
    })
}

/// Walks the workspace at `root` and returns every linted source file,
/// sorted by path so diagnostics, the baseline, and the JSON report are
/// deterministic regardless of directory iteration order.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    Ok(paths.iter().filter_map(|p| classify(p)).collect())
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if dir == root && EXCLUDED_TOP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            if name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative(root, &path));
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.to_string_lossy()
        .replace(std::path::MAIN_SEPARATOR, "/")
}

/// Locates the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_convention() {
        let f = classify("crates/wirelength/src/moreau.rs").unwrap();
        assert_eq!(f.kind, FileKind::Lib);
        assert_eq!(f.crate_name, "wirelength");
        assert!(!f.is_crate_root);

        let f = classify("crates/wirelength/src/lib.rs").unwrap();
        assert!(f.is_crate_root);

        assert_eq!(
            classify("crates/bench/src/bin/table1_stats.rs")
                .unwrap()
                .kind,
            FileKind::Bin
        );
        assert_eq!(
            classify("crates/placer/tests/guard_recovery.rs")
                .unwrap()
                .kind,
            FileKind::Test
        );
        assert_eq!(
            classify("crates/bench/benches/engine.rs").unwrap().kind,
            FileKind::Bench
        );
        assert_eq!(
            classify("examples/quickstart.rs").unwrap().kind,
            FileKind::Example
        );

        let f = classify("src/lib.rs").unwrap();
        assert_eq!(f.crate_name, ROOT_CRATE);
        assert!(f.is_crate_root);
        assert_eq!(classify("src/bin/mep.rs").unwrap().kind, FileKind::Bin);

        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("target/debug/build/out.rs").is_none());
        assert!(classify("README.md").is_none());
    }
}
