//! Workspace-scope analysis context: per-file parsed items, a
//! name-resolved-within-workspace call graph, panic sites, and struct
//! field definitions — the substrate for the interprocedural rules
//! (`panic-surface`, `lock-order`, `atomic-ordering`).
//!
//! Name resolution is deliberately approximate (DESIGN.md §16): a method
//! call `.name(…)` resolves to *every* workspace `impl`/`trait` function
//! named `name` (trait-object and generic dispatch are over-approximated
//! by name); a free call `name(…)` resolves to every workspace free
//! function named `name`; a qualified call `Q::name(…)` resolves through
//! `Q` when `Q` is a workspace `impl`/`trait` qualifier, through the free
//! functions when `Q` looks like a module path segment, and is opaque
//! otherwise (std / external types). Calls mediated by macros
//! (`format!`, `vec!`) and blanket trait impls (`.to_string()`) resolve
//! to nothing — the token stream never contains the expanded callee.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::find_test_spans;
use crate::items::{self, Item, ItemKind};
use crate::lexer::{self, LineIndex, Span, Token, TokenKind};
use crate::workspace::SourceFile;

/// One source file, fully lexed and item-parsed.
#[derive(Debug)]
pub struct FileData {
    /// Discovery metadata.
    pub file: SourceFile,
    /// Full source text.
    pub src: String,
    /// Lexed tokens (spans tile `src`).
    pub tokens: Vec<Token>,
    /// Byte-offset → line/column mapping.
    pub lines: LineIndex,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` / `#[bench]` items.
    pub test_spans: Vec<Span>,
    /// Parsed item forest.
    pub items: Vec<Item>,
}

impl FileData {
    /// Lexes and parses one in-memory source file.
    pub fn new(file: SourceFile, src: String) -> Self {
        let tokens = lexer::lex(&src);
        let lines = LineIndex::new(&src);
        let test_spans = find_test_spans(&src, &tokens);
        let items = items::parse_items(&src, &tokens);
        Self {
            file,
            src,
            tokens,
            lines,
            test_spans,
            items,
        }
    }

    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text(&self.src))
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(&self.src) == p)
    }

    fn is_ident(&self, i: usize) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn in_test(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(offset))
    }

    /// Next non-comment token index at or after `i`.
    pub fn next_code(&self, mut i: usize) -> usize {
        while self
            .tokens
            .get(i)
            .is_some_and(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        {
            i += 1;
        }
        i
    }

    /// Previous non-comment token index at or before `i`, or `None`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        let mut j = i.checked_sub(1)?;
        loop {
            match self.tokens.get(j).map(|t| t.kind) {
                Some(TokenKind::LineComment | TokenKind::BlockComment) => j = j.checked_sub(1)?,
                Some(_) => return Some(j),
                None => return None,
            }
        }
    }

    /// 1-based line of token `i`.
    pub fn token_line(&self, i: usize) -> usize {
        self.tokens
            .get(i)
            .map_or(1, |t| self.lines.line(t.span.start))
    }

    /// The trimmed source line containing byte `offset` (diagnostics).
    pub fn line_text(&self, offset: usize) -> &str {
        let line = self.lines.line(offset);
        let start = self.lines.line_start(line).unwrap_or(0);
        let end = self.lines.line_start(line + 1).unwrap_or(self.src.len());
        self.src[start..end].trim_end_matches('\n').trim()
    }
}

/// One function node in the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`WorkspaceCtx::files`].
    pub file: usize,
    /// Declared name.
    pub name: String,
    /// Enclosing `impl` self-type or `trait` name, `None` for free fns.
    pub qualifier: Option<String>,
    /// True when the fn and every enclosing module are bare `pub`.
    pub is_pub: bool,
    /// True when the first parameter is (some form of) `self` — only
    /// such fns are candidates for `.name(…)` method-call resolution.
    pub has_self: bool,
    /// True when the definition lies in test-only code.
    pub is_test: bool,
    /// Token index of the name ident.
    pub name_tok: usize,
    /// Token range of the body braces (inclusive), when present.
    pub body: Option<(usize, usize)>,
}

/// How a panicking token can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(…)`.
    Unwrap,
    /// `panic!` / `todo!` / `unreachable!` / `unimplemented!`.
    Macro,
    /// Slice / array / map indexing `x[…]`.
    Index,
}

impl PanicKind {
    /// Human-readable site description.
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`/`.expect()`",
            PanicKind::Macro => "a panicking macro",
            PanicKind::Index => "`[…]` indexing",
        }
    }
}

/// A direct panic site inside one function body.
#[derive(Debug, Clone, Copy)]
pub struct PanicSite {
    /// Token index in the owning file.
    pub tok: usize,
    /// Mechanism.
    pub kind: PanicKind,
    /// True when the site lies inside a `catch_unwind(…)` argument.
    pub shielded: bool,
}

/// A call site with its workspace-resolved callees.
#[derive(Debug)]
pub struct CallSite {
    /// Token index of the callee name in the owning file.
    pub tok: usize,
    /// Display form for diagnostics (`name`, `.name`, or `Q::name`).
    pub display: String,
    /// True when the call lies inside a `catch_unwind(…)` argument.
    pub shielded: bool,
    /// Resolved callee fn ids (empty = opaque: std or macro-mediated).
    pub callees: Vec<usize>,
}

/// A named struct field (locks and atomics live here).
#[derive(Debug)]
pub struct FieldDef {
    /// Index into [`WorkspaceCtx::files`].
    pub file: usize,
    /// Owning struct name.
    pub struct_name: String,
    /// Field name.
    pub name: String,
    /// The field's type tokens, joined with spaces.
    pub type_text: String,
    /// Token index of the field name.
    pub tok: usize,
}

/// The workspace analysis context handed to interprocedural rules.
#[derive(Debug)]
pub struct WorkspaceCtx {
    /// Parsed files, in discovery order.
    pub files: Vec<FileData>,
    /// All functions.
    pub fns: Vec<FnNode>,
    /// Per-fn resolved call sites (parallel to `fns`).
    pub calls: Vec<Vec<CallSite>>,
    /// Per-fn direct panic sites (parallel to `fns`).
    pub panics: Vec<Vec<PanicSite>>,
    /// Named struct fields across the workspace.
    pub fields: Vec<FieldDef>,
}

/// Call-name classification before resolution.
enum RawCallee {
    Method(String),
    Free(String),
    Qualified(String, String),
}

/// Keywords that must never be read as callee or receiver names.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "loop", "match", "return", "break", "continue", "let",
    "mut", "ref", "move", "as", "fn", "impl", "dyn", "where", "unsafe", "async", "await", "box",
    "do", "yield", "use", "pub", "const", "static", "struct", "enum", "trait", "mod", "type",
];

impl WorkspaceCtx {
    /// Builds the full workspace context from parsed files.
    pub fn build(files: Vec<FileData>) -> Self {
        let mut fns = Vec::new();
        let mut fields = Vec::new();
        for (fi, fd) in files.iter().enumerate() {
            collect_fns(fd, fi, &mut fns);
            collect_fields(fd, fi, &mut fields);
        }

        // name → fn-id indexes for resolution
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut frees: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut quals: BTreeSet<&str> = BTreeSet::new();
        for (id, f) in fns.iter().enumerate() {
            match &f.qualifier {
                Some(q) => {
                    // associated fns without `self` (constructors, parsers)
                    // cannot be called in method position — keeping them
                    // out of the method index stops e.g. `.parse::<u32>()`
                    // from resolving to a workspace `Type::parse(&str)`
                    if f.has_self {
                        methods.entry(&f.name).or_default().push(id);
                    }
                    by_qual.entry((q, &f.name)).or_default().push(id);
                    quals.insert(q);
                }
                None => frees.entry(&f.name).or_default().push(id),
            }
        }

        let mut calls = Vec::with_capacity(fns.len());
        let mut panics = Vec::with_capacity(fns.len());
        for f in &fns {
            let fd = &files[f.file];
            let Some((open, close)) = f.body else {
                calls.push(Vec::new());
                panics.push(Vec::new());
                continue;
            };
            let shields = shield_ranges(fd, open, close);
            let shielded = |tok: usize| shields.iter().any(|&(a, b)| a <= tok && tok < b);
            panics.push(scan_panics(fd, open, close, &shielded));
            let raw = scan_calls(fd, open, close, f.qualifier.as_deref());
            let resolved = raw
                .into_iter()
                .map(|(tok, callee)| {
                    let (display, callees) = match callee {
                        RawCallee::Method(n) => (
                            format!(".{n}"),
                            methods.get(n.as_str()).cloned().unwrap_or_default(),
                        ),
                        RawCallee::Free(n) => (
                            n.clone(),
                            frees.get(n.as_str()).cloned().unwrap_or_default(),
                        ),
                        RawCallee::Qualified(q, n) => {
                            let ids = if quals.contains(q.as_str()) {
                                by_qual
                                    .get(&(q.as_str(), n.as_str()))
                                    .cloned()
                                    .unwrap_or_default()
                            } else {
                                // module-qualified free call (`flow::run(…)`)
                                // when the segment is not a known self-type;
                                // opaque when nothing matches (std paths)
                                frees.get(n.as_str()).cloned().unwrap_or_default()
                            };
                            (format!("{q}::{n}"), ids)
                        }
                    };
                    CallSite {
                        tok,
                        display,
                        shielded: shielded(tok),
                        callees,
                    }
                })
                .collect();
            calls.push(resolved);
        }

        Self {
            files,
            fns,
            calls,
            panics,
            fields,
        }
    }

    /// Fn ids whose `crate::name` matches a `crate::fn` or
    /// `crate::Type::fn` root spec.
    pub fn find_roots(&self, spec: &str) -> Vec<usize> {
        let parts: Vec<&str> = spec.split("::").collect();
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                let crate_ok = parts
                    .first()
                    .is_some_and(|c| self.files[f.file].file.crate_name == *c);
                match parts.len() {
                    2 => crate_ok && f.name == parts[1],
                    3 => crate_ok && f.qualifier.as_deref() == Some(parts[1]) && f.name == parts[2],
                    _ => false,
                }
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// `"path:line"` of a fn's definition, for diagnostics.
    pub fn fn_location(&self, id: usize) -> (String, usize) {
        let f = &self.fns[id];
        let fd = &self.files[f.file];
        (fd.file.rel_path.clone(), fd.token_line(f.name_tok))
    }

    /// `"Type::name"` or `"name"`.
    pub fn fn_display(&self, id: usize) -> String {
        let f = &self.fns[id];
        match &f.qualifier {
            Some(q) => format!("{q}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Panic reachability over unshielded edges: returns, per fn, whether
    /// a panic site is transitively reachable, plus a witness (a direct
    /// site or the first panicking callee) for chain reconstruction.
    pub fn panic_reachability(&self) -> (Vec<bool>, Vec<Option<Witness>>) {
        let n = self.fns.len();
        let mut reaches = vec![false; n];
        let mut witness: Vec<Option<Witness>> = (0..n).map(|_| None).collect();
        // seed with direct sites
        for id in 0..n {
            if let Some(site) = self.panics[id].iter().find(|p| !p.shielded) {
                reaches[id] = true;
                witness[id] = Some(Witness::Direct(site.tok, site.kind));
            }
        }
        // reverse edges for the worklist
        let mut rev: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // callee -> (caller, call tok)
        for (caller, sites) in self.calls.iter().enumerate() {
            for s in sites {
                if s.shielded {
                    continue;
                }
                for &callee in &s.callees {
                    rev[callee].push((caller, s.tok));
                }
            }
        }
        let mut work: Vec<usize> = (0..n).filter(|&i| reaches[i]).collect();
        while let Some(id) = work.pop() {
            for &(caller, tok) in &rev[id] {
                if !reaches[caller] {
                    reaches[caller] = true;
                    witness[caller] = Some(Witness::Via(tok, id));
                    work.push(caller);
                }
            }
        }
        (reaches, witness)
    }

    /// Reconstructs a call chain from `id` to a concrete panic site:
    /// `a → b → c: `[…]` indexing at path:line`.
    pub fn witness_chain(&self, mut id: usize, witness: &[Option<Witness>]) -> String {
        let mut names = vec![self.fn_display(id)];
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 64 {
                names.push("…".to_string());
                return names.join(" → ");
            }
            match witness.get(id).and_then(|w| w.as_ref()) {
                Some(Witness::Via(_, callee)) => {
                    id = *callee;
                    names.push(self.fn_display(id));
                }
                Some(Witness::Direct(tok, kind)) => {
                    let fd = &self.files[self.fns[id].file];
                    return format!(
                        "{}: {} at {}:{}",
                        names.join(" → "),
                        kind.describe(),
                        fd.file.rel_path,
                        fd.token_line(*tok)
                    );
                }
                None => return names.join(" → "),
            }
        }
    }
}

/// Why a fn counts as panic-reachable.
#[derive(Debug, Clone, Copy)]
pub enum Witness {
    /// A direct panic site (call-site token, mechanism).
    Direct(usize, PanicKind),
    /// The first discovered panicking callee (call token, callee id).
    Via(usize, usize),
}

/// Walks the item forest collecting fn nodes with their qualifier and
/// effective visibility.
fn collect_fns(fd: &FileData, file_idx: usize, out: &mut Vec<FnNode>) {
    items::walk(&fd.items, &mut |item, stack| {
        if item.kind != ItemKind::Fn {
            return;
        }
        // the name ident follows the `fn` keyword inside the item extent
        let mut name_tok = item.start;
        for i in item.start..item.end {
            if fd.is_ident(i) && fd.text(i) == "fn" {
                name_tok = i + 1;
                break;
            }
        }
        let qualifier = stack
            .iter()
            .rev()
            .find(|p| matches!(p.kind, ItemKind::Impl | ItemKind::Trait))
            .map(|p| p.name.clone());
        // `self` as first parameter, allowing `&`, a lifetime, and `mut`
        // before it (`&'a mut self`, `mut self`, `self: Arc<Self>`, …)
        let has_self = {
            let mut j = fd.next_code(name_tok + 1);
            // skip generic params between name and `(`
            if fd.is_punct(j, "<") {
                let mut angle = 0i32;
                while j < item.end {
                    match fd.text(j) {
                        "<" => angle += 1,
                        "<<" => angle += 2,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        _ => {}
                    }
                    j += 1;
                    if angle <= 0 {
                        break;
                    }
                }
                j = fd.next_code(j);
            }
            if fd.is_punct(j, "(") {
                let mut k = fd.next_code(j + 1);
                while fd.is_punct(k, "&")
                    || fd
                        .tokens
                        .get(k)
                        .is_some_and(|t| t.kind == TokenKind::Lifetime)
                    || (fd.is_ident(k) && fd.text(k) == "mut")
                {
                    k = fd.next_code(k + 1);
                }
                fd.is_ident(k) && fd.text(k) == "self"
            } else {
                false
            }
        };
        // public = the fn is `pub` and no enclosing module hides it (trait
        // methods inherit the trait's visibility)
        let in_trait = stack.last().is_some_and(|p| p.kind == ItemKind::Trait);
        let own_pub = item.is_pub || (in_trait && stack.last().is_some_and(|p| p.is_pub));
        let is_pub = own_pub
            && stack
                .iter()
                .filter(|p| p.kind == ItemKind::Mod)
                .all(|p| p.is_pub);
        let offset = fd.tokens.get(name_tok).map_or(0, |t| t.span.start);
        out.push(FnNode {
            file: file_idx,
            name: fd.text(name_tok).to_string(),
            qualifier,
            is_pub,
            has_self,
            is_test: fd.in_test(offset),
            name_tok,
            body: item.body,
        });
    });
}

/// Extracts named fields (`name: Type…`) from struct bodies. Tuple-struct
/// fields have no names and are invisible to the lock/atomic rules — a
/// documented limitation (DESIGN.md §16).
fn collect_fields(fd: &FileData, file_idx: usize, out: &mut Vec<FieldDef>) {
    items::walk(&fd.items, &mut |item, _| {
        if item.kind != ItemKind::Struct {
            return;
        }
        let Some((open, close)) = item.body else {
            return;
        };
        let mut depth = 0i32;
        let mut i = open;
        while i <= close && i < fd.tokens.len() {
            if fd.tokens[i].kind == TokenKind::Punct {
                match fd.text(i) {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {}
                }
            }
            // a field is `name :` at brace depth 1 where the previous code
            // token opens the body, ends the previous field, or closes a
            // visibility/attribute group
            if depth == 1
                && fd.is_ident(i)
                && !KEYWORDS.contains(&fd.text(i))
                && fd.is_punct(fd.next_code(i + 1), ":")
                && !fd.is_punct(fd.next_code(i + 1) + 1, ":")
            {
                let prev_ok = match fd.prev_code(i) {
                    None => false,
                    Some(p) => {
                        let t = fd.text(p);
                        t == "{" || t == "," || t == "pub" || t == ")" || t == "]"
                    }
                };
                if prev_ok {
                    // type runs to the `,` (or closing `}`) at depth 0 of
                    // nested delimiters
                    let ty_start = fd.next_code(i + 1) + 1;
                    let mut j = ty_start;
                    let mut nest = 0i32;
                    let mut ty = String::new();
                    while j <= close && j < fd.tokens.len() {
                        let t = fd.text(j);
                        if fd.tokens[j].kind == TokenKind::Punct {
                            match t {
                                "<" | "(" | "[" => nest += 1,
                                ">" | ")" | "]" => nest -= 1,
                                "," if nest <= 0 => break,
                                "}" if nest <= 0 => break,
                                _ => {}
                            }
                        }
                        if !matches!(
                            fd.tokens[j].kind,
                            TokenKind::LineComment | TokenKind::BlockComment
                        ) {
                            if !ty.is_empty() {
                                ty.push(' ');
                            }
                            ty.push_str(t);
                        }
                        j += 1;
                    }
                    out.push(FieldDef {
                        file: file_idx,
                        struct_name: item.name.clone(),
                        name: fd.text(i).to_string(),
                        type_text: ty,
                        tok: i,
                    });
                }
            }
            i += 1;
        }
    });
}

/// Token ranges (half-open) of `catch_unwind(…)` arguments within a body.
fn shield_ranges(fd: &FileData, open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in open..close {
        if fd.is_ident(i) && fd.text(i) == "catch_unwind" {
            let paren = fd.next_code(i + 1);
            if fd.is_punct(paren, "(") {
                let mut depth = 0i32;
                let mut j = paren;
                while j <= close {
                    if fd.tokens[j].kind == TokenKind::Punct {
                        match fd.text(j) {
                            "(" => depth += 1,
                            ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
                out.push((paren, j + 1));
            }
        }
    }
    out
}

/// Direct panic sites in a body: `.unwrap()` / `.expect(`, panic-family
/// macros, and `[…]` indexing (an ident / `)` / `]` immediately before the
/// bracket distinguishes indexing from array literals and types).
fn scan_panics(
    fd: &FileData,
    open: usize,
    close: usize,
    shielded: &dyn Fn(usize) -> bool,
) -> Vec<PanicSite> {
    const PANIC_MACROS: &[&str] = &["panic", "todo", "unreachable", "unimplemented"];
    let mut out = Vec::new();
    let mut push = |tok: usize, kind: PanicKind| {
        out.push(PanicSite {
            tok,
            kind,
            shielded: shielded(tok),
        })
    };
    for i in (open + 1)..close {
        let t = &fd.tokens[i];
        match t.kind {
            TokenKind::Ident => {
                let text = fd.text(i);
                if (text == "unwrap" || text == "expect")
                    && fd.prev_code(i).is_some_and(|p| fd.text(p) == ".")
                    && fd.is_punct(fd.next_code(i + 1), "(")
                {
                    push(i, PanicKind::Unwrap);
                } else if PANIC_MACROS.contains(&text)
                    && fd.is_punct(i + 1, "!")
                    && fd.prev_code(i).is_none_or(|p| fd.text(p) != "::")
                {
                    push(i, PanicKind::Macro);
                }
            }
            TokenKind::Punct if fd.text(i) == "[" => {
                let Some(p) = fd.prev_code(i) else { continue };
                let prev = &fd.tokens[p];
                let is_recv = (prev.kind == TokenKind::Ident && !KEYWORDS.contains(&fd.text(p)))
                    || (prev.kind == TokenKind::Punct && matches!(fd.text(p), ")" | "]"));
                if is_recv {
                    push(i, PanicKind::Index);
                }
            }
            _ => {}
        }
    }
    out
}

/// Method names of the std atomic API (suppressed as call edges when an
/// explicit memory ordering appears in the argument list).
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "fetch_max",
    "fetch_min",
];

/// True when the parenthesized argument list starting at `open` names a
/// memory ordering (`Relaxed`, `Acquire`, …).
fn args_mention_ordering(fd: &FileData, open: usize, close: usize) -> bool {
    const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let mut depth = 0i32;
    let mut j = open;
    while j <= close {
        if fd.tokens[j].kind == TokenKind::Punct {
            match fd.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                _ => {}
            }
        } else if fd.is_ident(j) && ORDERINGS.contains(&fd.text(j)) {
            return true;
        }
        j += 1;
    }
    false
}

/// Call sites in a body, classified but unresolved.
fn scan_calls(
    fd: &FileData,
    open: usize,
    close: usize,
    self_qual: Option<&str>,
) -> Vec<(usize, RawCallee)> {
    let mut out = Vec::new();
    for i in (open + 1)..close {
        if !fd.is_ident(i) || KEYWORDS.contains(&fd.text(i)) {
            continue;
        }
        // `name(` — or `name::<T>(` through a turbofish
        let after = fd.next_code(i + 1);
        let is_call = if fd.is_punct(after, "(") {
            true
        } else if fd.is_punct(after, "::") && fd.is_punct(fd.next_code(after + 1), "<") {
            let mut angle = 0i32;
            let mut j = fd.next_code(after + 1);
            let mut found = false;
            while j <= close {
                match fd.text(j) {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                }
                if angle <= 0 {
                    found = fd.is_punct(fd.next_code(j + 1), "(");
                    break;
                }
                j += 1;
            }
            found
        } else {
            false
        };
        if !is_call {
            continue;
        }
        let name = fd.text(i).to_string();
        // `.load(Ordering::Relaxed)` and friends are std atomic operations,
        // not workspace calls — a workspace fn that happens to be named
        // `load` or `store` must not become a callee of every atomic op
        if ATOMIC_OPS.contains(&name.as_str())
            && fd.prev_code(i).is_some_and(|p| fd.is_punct(p, "."))
            && fd.is_punct(after, "(")
            && args_mention_ordering(fd, after, close)
        {
            continue;
        }
        let callee = match fd.prev_code(i) {
            Some(p) if fd.is_punct(p, ".") => RawCallee::Method(name),
            Some(p) if fd.is_punct(p, "::") => {
                match fd.prev_code(p) {
                    Some(q) if fd.is_ident(q) => {
                        let qual = fd.text(q);
                        let qual = if qual == "Self" || qual == "self" {
                            self_qual.unwrap_or(qual)
                        } else {
                            qual
                        };
                        RawCallee::Qualified(qual.to_string(), name)
                    }
                    // `<T as Trait>::name(…)` and `>::name(` — treat as a
                    // method-style call: resolve by name across impls
                    _ => RawCallee::Method(name),
                }
            }
            // `fn name(` is a nested definition, not a call
            Some(p) if fd.is_ident(p) && fd.text(p) == "fn" => continue,
            _ => RawCallee::Free(name),
        };
        out.push((i, callee));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::classify;

    fn ws(files: &[(&str, &str)]) -> WorkspaceCtx {
        let data = files
            .iter()
            .map(|(path, src)| FileData::new(classify(path).unwrap(), src.to_string()))
            .collect();
        WorkspaceCtx::build(data)
    }

    fn fn_id(ws: &WorkspaceCtx, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn free_call_edges_resolve_across_files() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn top() { helper(); }"),
            ("crates/b/src/lib.rs", "pub fn helper() { x.unwrap(); }"),
        ]);
        let top = fn_id(&w, "top");
        let helper = fn_id(&w, "helper");
        assert_eq!(w.calls[top].len(), 1);
        assert_eq!(w.calls[top][0].callees, vec![helper]);
        let (reaches, _) = w.panic_reachability();
        assert!(reaches[top] && reaches[helper]);
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { fn run(&self) {} }\n\
             impl B { fn run(&self) { panic!(\"boom\") } }\n\
             pub fn go(x: &A) { x.run(); }",
        )]);
        let go = fn_id(&w, "go");
        assert_eq!(w.calls[go][0].callees.len(), 2, "both impls resolve");
        let (reaches, _) = w.panic_reachability();
        assert!(reaches[go], "over-approximation: any impl panicking taints");
    }

    #[test]
    fn qualified_calls_resolve_through_impl_and_modules() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct Q;\n\
             impl Q { pub fn mk() -> Q { Q } fn own(&self) { Self::mk(); } }\n\
             pub fn direct() { Q::mk(); util::helper(); }\n\
             pub mod util { pub fn helper() {} }",
        )]);
        let direct = fn_id(&w, "direct");
        let mk = fn_id(&w, "mk");
        let helper = fn_id(&w, "helper");
        assert_eq!(w.calls[direct][0].callees, vec![mk]);
        assert_eq!(w.calls[direct][1].callees, vec![helper]);
        let own = fn_id(&w, "own");
        assert_eq!(w.calls[own][0].callees, vec![mk], "Self:: resolves");
    }

    #[test]
    fn catch_unwind_cuts_edges_and_sites() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn risky() { x.unwrap(); }\n\
             pub fn guarded() { let _ = catch_unwind(AssertUnwindSafe(|| risky())); }\n\
             pub fn open() { risky(); }",
        )]);
        let (reaches, _) = w.panic_reachability();
        assert!(reaches[fn_id(&w, "risky")]);
        assert!(!reaches[fn_id(&w, "guarded")], "shielded edge is cut");
        assert!(reaches[fn_id(&w, "open")]);
    }

    #[test]
    fn indexing_is_a_panic_site_but_literals_are_not() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn idx(xs: &[f64], i: usize) -> f64 { xs[i] }\n\
             pub fn lit() -> [u8; 2] { [1, 2] }\n\
             pub fn ty(x: [u8; 4]) -> Vec<u8> { x.to_vec() }",
        )]);
        let (reaches, _) = w.panic_reachability();
        assert!(reaches[fn_id(&w, "idx")]);
        assert!(!reaches[fn_id(&w, "lit")]);
        assert!(!reaches[fn_id(&w, "ty")]);
    }

    #[test]
    fn test_code_is_marked() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }",
        )]);
        assert!(!w.fns[fn_id(&w, "live")].is_test);
        assert!(w.fns[fn_id(&w, "t")].is_test);
    }

    #[test]
    fn fields_are_collected_with_types() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct S { pub a: Mutex<u32>, b: Arc<RwLock<Vec<u8>>>, c: usize }\n\
             struct Tuple(Mutex<u8>);",
        )]);
        let names: Vec<_> = w.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(w.fields[0].type_text.contains("Mutex"));
        assert!(w.fields[1].type_text.contains("RwLock"));
    }

    #[test]
    fn witness_chain_names_the_path() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() { panic!(\"x\") }",
        )]);
        let (reaches, wit) = w.panic_reachability();
        let a = fn_id(&w, "a");
        assert!(reaches[a]);
        let chain = w.witness_chain(a, &wit);
        assert!(chain.starts_with("a → b → c:"), "{chain}");
        assert!(chain.contains("panicking macro"), "{chain}");
    }
}
