//! Per-file analysis context shared by every rule: the token stream, the
//! line index, and the byte ranges of test-only code.
//!
//! Test-only ranges are found syntactically: a `#[cfg(test)]`, `#[test]`,
//! or `#[bench]` attribute marks the item that follows it (after any
//! further attributes and doc comments), and the item extends to its
//! matching close brace — or to the first `;` for brace-less items. Brace
//! matching happens on the *token* stream, so braces inside strings and
//! comments cannot desynchronize it.

use crate::lexer::{LineIndex, Span, Token, TokenKind};
use crate::workspace::SourceFile;

/// Everything a rule may inspect about one file.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Discovery metadata: path, kind, crate, crate-root flag.
    pub file: &'a SourceFile,
    /// Full source text.
    pub src: &'a str,
    /// Lexed token stream (spans tile `src`).
    pub tokens: &'a [Token],
    /// Byte-offset → line/column mapping.
    pub lines: &'a LineIndex,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
    /// items; most rules skip violations inside these.
    pub test_spans: Vec<Span>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context, computing test spans from the token stream.
    pub fn new(
        file: &'a SourceFile,
        src: &'a str,
        tokens: &'a [Token],
        lines: &'a LineIndex,
    ) -> Self {
        let test_spans = find_test_spans(src, tokens);
        Self {
            file,
            src,
            tokens,
            lines,
            test_spans,
        }
    }

    /// True when byte `offset` lies inside test-only code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(offset))
    }

    /// The token's text.
    pub fn text(&self, tok: &Token) -> &'a str {
        tok.text(self.src)
    }

    /// True when token `i` is an `Ident` with exactly this text.
    pub fn ident_is(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.src) == text)
    }

    /// True when token `i` is a `Punct` with exactly this text.
    pub fn punct_is(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == text)
    }

    /// Index of the next non-comment token at or after `i`.
    pub fn skip_comments(&self, mut i: usize) -> usize {
        while self
            .tokens
            .get(i)
            .is_some_and(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        {
            i += 1;
        }
        i
    }

    /// The source line (trimmed) containing byte `offset`, used as the
    /// human-readable part of diagnostics and baseline keys.
    pub fn line_text(&self, offset: usize) -> &'a str {
        let line = self.lines.line(offset);
        let start = self.lines.line_start(line).unwrap_or(0);
        let end = self.lines.line_start(line + 1).unwrap_or(self.src.len());
        self.src[start..end].trim_end_matches('\n').trim()
    }
}

/// Scans for test-marking attributes and returns the byte spans of the
/// items they cover. Public so the workspace-scope analyses (call graph,
/// panic surface) can classify functions without building a [`FileCtx`].
pub fn find_test_spans(src: &str, tokens: &[Token]) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // match `#` `[` … `]` (outer attribute; `#![…]` inner attrs never
        // mark tests in this workspace)
        if tokens[i].kind == TokenKind::Punct
            && tokens[i].text(src) == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text(src) == "[")
        {
            let attr_start = i;
            let (attr_end, is_test) = scan_attribute(src, tokens, i + 1);
            if is_test {
                if let Some(span) = item_extent(src, tokens, attr_end) {
                    let full = Span {
                        start: tokens[attr_start].span.start,
                        end: span.end,
                    };
                    // merge overlapping/nested spans (a #[test] fn inside
                    // a #[cfg(test)] mod) to keep the list disjoint
                    match spans.last_mut() {
                        Some(last) if last.end >= full.start => last.end = last.end.max(full.end),
                        _ => spans.push(full),
                    }
                }
            }
            i = attr_end;
        } else {
            i += 1;
        }
    }
    spans
}

/// From the `[` at `open`, scans to the matching `]`. Returns (index one
/// past the `]`, whether the attribute marks test code).
fn scan_attribute(src: &str, tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, is_test);
                }
            }
            "cfg" if t.kind == TokenKind::Ident => saw_cfg = true,
            "test" | "bench" if t.kind == TokenKind::Ident => {
                // `#[test]` / `#[bench]` directly, or `test` anywhere
                // inside a `cfg(...)` predicate (covers `cfg(test)` and
                // `cfg(all(test, …))`)
                let bare =
                    i == open + 1 && tokens.get(open + 2).is_some_and(|n| n.text(src) == "]");
                if bare || saw_cfg {
                    is_test = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (i, is_test)
}

/// Extent of the item starting at token `i` (which follows a test
/// attribute): skips further attributes and doc comments, then runs to
/// the close of the first brace block — or to the first `;` if one
/// appears before any `{`.
fn item_extent(src: &str, tokens: &[Token], mut i: usize) -> Option<Span> {
    // skip doc comments and further attributes
    loop {
        let t = tokens.get(i)?;
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => i += 1,
            TokenKind::Punct
                if t.text(src) == "#" && tokens.get(i + 1).is_some_and(|n| n.text(src) == "[") =>
            {
                let (end, _) = scan_attribute(src, tokens, i + 1);
                i = end;
            }
            _ => break,
        }
    }
    let item_start = tokens.get(i)?.span.start;
    // find first `{` or `;`
    let mut j = i;
    loop {
        let t = tokens.get(j)?;
        match t.text(src) {
            ";" if t.kind == TokenKind::Punct => {
                return Some(Span {
                    start: item_start,
                    end: t.span.end,
                })
            }
            "{" if t.kind == TokenKind::Punct => break,
            _ => j += 1,
        }
    }
    // brace match from `j`
    let mut depth = 0usize;
    while let Some(t) = tokens.get(j) {
        match t.text(src) {
            "{" if t.kind == TokenKind::Punct => depth += 1,
            "}" if t.kind == TokenKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return Some(Span {
                        start: item_start,
                        end: t.span.end,
                    });
                }
            }
            _ => {}
        }
        j += 1;
    }
    // unterminated item: cover to EOF so rules stay conservative
    Some(Span {
        start: item_start,
        end: src.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::workspace::classify;

    fn ctx_spans(src: &str) -> Vec<(usize, usize)> {
        let tokens = lexer::lex(src);
        find_test_spans(src, &tokens)
            .iter()
            .map(|s| (s.start, s.end))
            .collect()
    }

    #[test]
    fn cfg_test_module_is_covered() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() { x.unwrap(); }\n}\nfn after() {}";
        let spans = ctx_spans(src);
        assert_eq!(spans.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(spans[0].0 < unwrap_at && unwrap_at < spans[0].1);
        let after_at = src.find("fn after").unwrap();
        assert!(after_at >= spans[0].1);
    }

    #[test]
    fn test_fn_and_cfg_all_are_covered() {
        let src = "#[test]\nfn t() { a.unwrap(); }\n#[cfg(all(test, feature = \"x\"))]\nfn u() { b.unwrap(); }";
        let spans = ctx_spans(src);
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn non_test_attributes_are_not_covered() {
        let src = "#[derive(Debug)]\nstruct S;\n#[cfg(feature = \"fast\")]\nfn f() {}";
        assert!(ctx_spans(src).is_empty());
        // `test` as an ordinary identifier is not an attribute
        let src = "fn test() { x.unwrap(); }";
        assert!(ctx_spans(src).is_empty());
    }

    #[test]
    fn braces_in_strings_do_not_desync() {
        let src = "#[cfg(test)]\nmod tests {\n  const S: &str = \"}\";\n  fn t() { x.unwrap(); }\n}\nfn live() {}";
        let spans = ctx_spans(src);
        assert_eq!(spans.len(), 1);
        let live = src.find("fn live").unwrap();
        assert!(live >= spans[0].1, "code after the mod must be uncovered");
    }

    #[test]
    fn in_test_code_queries() {
        let file = classify("crates/x/src/lib.rs").unwrap();
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() {} }";
        let tokens = lexer::lex(src);
        let lines = lexer::LineIndex::new(src);
        let ctx = FileCtx::new(&file, src, &tokens, &lines);
        assert!(!ctx.in_test_code(src.find("live").unwrap()));
        assert!(ctx.in_test_code(src.find("fn t").unwrap()));
    }
}
