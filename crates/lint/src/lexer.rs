//! A span-tracking lexer for Rust source.
//!
//! The lint pass must never misread a string literal or a comment as code
//! (the classic grep failure mode: `// don't .unwrap() here` flagging a
//! comment), so this module tokenizes properly: line comments, nested
//! block comments, string/char/byte literals with escapes, raw strings
//! with arbitrary `#` fences, raw identifiers, lifetimes, numbers with
//! exponents and type suffixes, and max-munch multi-character operators.
//!
//! It is deliberately *not* a full Rust lexer — the lint rules only need
//! token kinds and byte spans — but it is total: every input produces a
//! token stream whose spans tile the source (gaps are whitespace only),
//! and unterminated literals or comments extend to end of input instead
//! of failing. The `lexer property test` in `tests/lexer_props.rs` checks
//! the tiling invariant over generated adversarial snippets.

/// A half-open byte range into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the token.
    pub start: usize,
    /// One past the last byte of the token.
    pub end: usize,
}

impl Span {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `offset` lies inside the span.
    pub fn contains(&self, offset: usize) -> bool {
        self.start <= offset && offset < self.end
    }
}

/// Token classification, as coarse as the rules allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime (`'a`), as distinguished from a char literal.
    Lifetime,
    /// Integer or float literal, including suffixes (`1_000u64`, `1.5e-3`).
    Number,
    /// String or byte-string literal (`"…"`, `b"…"`), escapes handled.
    Str,
    /// Raw (byte) string literal (`r"…"`, `br##"…"##`).
    RawStr,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Line comment `// …` (newline not included).
    LineComment,
    /// Block comment `/* … */`, nesting-aware.
    BlockComment,
    /// Operator or delimiter, max-munched up to three characters.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte range in the source.
    pub span: Span,
}

impl Token {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.span.start..self.span.end]
    }
}

/// Maps byte offsets to 1-based line/column positions.
#[derive(Debug, Clone)]
pub struct LineIndex {
    /// Byte offset of the start of each line (line 1 starts at 0).
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `src`.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        Self { starts }
    }

    /// 1-based line number containing `offset`.
    pub fn line(&self, offset: usize) -> usize {
        self.starts.partition_point(|&s| s <= offset)
    }

    /// 1-based (line, column) of `offset`; the column counts bytes.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = self.line(offset);
        (line, offset - self.starts[line - 1] + 1)
    }

    /// Byte offset where 1-based `line` starts, or `None` past the end.
    pub fn line_start(&self, line: usize) -> Option<usize> {
        self.starts.get(line.checked_sub(1)?).copied()
    }

    /// Number of lines (a trailing newline does not open a new line).
    pub fn line_count(&self) -> usize {
        self.starts.len()
    }
}

/// Multi-character operators, longest first within each leading byte so a
/// linear scan max-munches correctly.
const PUNCTS3: &[&str] = &["..=", "<<=", ">>=", "..."];
const PUNCTS2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. Total: never panics, never loses bytes — the returned
/// tokens are strictly ordered, non-overlapping, and every inter-token gap
/// is whitespace.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        out: Vec::new(),
        stash: None,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Token>,
    /// Kind recorded by `try_raw_or_byte_prefix`, which both recognizes
    /// and consumes its token from inside a match guard.
    stash: Option<TokenKind>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.cur_char();
            if c.is_whitespace() {
                self.pos += c.len_utf8();
                continue;
            }
            let kind = self.next_token(c);
            debug_assert!(self.pos > start, "lexer must always advance");
            self.out.push(Token {
                kind,
                span: Span {
                    start,
                    end: self.pos,
                },
            });
        }
        self.out
    }

    fn cur_char(&self) -> char {
        // `pos` is always on a char boundary: every advance steps by a
        // whole char or past complete ASCII sequences.
        self.src[self.pos..].chars().next().unwrap_or('\0')
    }

    fn peek_byte(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn next_token(&mut self, c: char) -> TokenKind {
        match c {
            '/' if self.peek_byte(1) == b'/' => {
                self.consume_line_comment();
                TokenKind::LineComment
            }
            '/' if self.peek_byte(1) == b'*' => {
                self.consume_block_comment();
                TokenKind::BlockComment
            }
            '"' => {
                self.consume_string(b'"');
                TokenKind::Str
            }
            '\'' => self.consume_char_or_lifetime(),
            'r' | 'b' if self.try_raw_or_byte_prefix() => {
                // token fully consumed by the helper; kind recorded there
                self.pending_kind()
            }
            c if is_ident_start(c) => {
                self.consume_ident();
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                self.consume_number();
                TokenKind::Number
            }
            _ => {
                self.consume_punct(c);
                TokenKind::Punct
            }
        }
    }

    // --- prefixed literals (r"…", r#"…"#, b"…", b'…', br"…", r#ident) ---

    /// When the source at `pos` begins a raw-string / byte-string /
    /// byte-char / raw-ident token, consumes it, stashes its kind, and
    /// returns true. Otherwise leaves `pos` untouched.
    fn try_raw_or_byte_prefix(&mut self) -> bool {
        let rest = &self.bytes[self.pos..];
        let kind = if rest.starts_with(b"r\"") || Self::raw_fence(rest, 1).is_some() {
            self.pos += 1; // past 'r'
            self.consume_raw_string();
            TokenKind::RawStr
        } else if rest.starts_with(b"br\"") || Self::raw_fence(rest, 2).is_some() {
            self.pos += 2; // past "br"
            self.consume_raw_string();
            TokenKind::RawStr
        } else if rest.starts_with(b"b\"") {
            self.pos += 1;
            self.consume_string(b'"');
            TokenKind::Str
        } else if rest.starts_with(b"b'") {
            self.pos += 1;
            self.consume_string(b'\'');
            TokenKind::Char
        } else if rest.starts_with(b"r#") && rest.get(2).is_some_and(|&b| b != b'"' && b != b'#') {
            // raw identifier r#type
            self.pos += 2;
            self.consume_ident();
            TokenKind::Ident
        } else {
            return false;
        };
        self.stash = Some(kind);
        true
    }

    fn pending_kind(&mut self) -> TokenKind {
        // the guard arm only fires after `try_raw_or_byte_prefix` stashed a
        // kind; Punct is an unreachable fallback kept for panic-freedom
        self.stash.take().unwrap_or(TokenKind::Punct)
    }

    /// `r####"` fence check: at `rest[skip..]`, one-or-more `#` then `"`.
    fn raw_fence(rest: &[u8], skip: usize) -> Option<usize> {
        if skip == 2 && !rest.starts_with(b"br") {
            return None;
        }
        if skip == 1 && !rest.starts_with(b"r") {
            return None;
        }
        let mut n = 0;
        while rest.get(skip + n) == Some(&b'#') {
            n += 1;
        }
        (n > 0 && rest.get(skip + n) == Some(&b'"')).then_some(n)
    }

    /// At a `#*"` fence (pos on the first `#` or the quote). Consumes
    /// through the matching `"#*` closer, or to EOF when unterminated.
    fn consume_raw_string(&mut self) {
        let mut hashes = 0;
        while self.peek_byte(0) == b'#' {
            hashes += 1;
            self.pos += 1;
        }
        debug_assert_eq!(self.peek_byte(0), b'"');
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let close = &self.bytes[self.pos + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&b| b == b'#') {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.advance_char();
        }
    }

    /// Consumes a quoted literal with `\`-escapes, starting at the opening
    /// quote; an unterminated literal runs to EOF (it is already a compile
    /// error in real Rust, so totality matters more than recovery).
    fn consume_string(&mut self, quote: u8) {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1; // the backslash
                    if self.pos < self.bytes.len() {
                        self.advance_char(); // whatever it escapes
                    }
                }
                b if b == quote => {
                    self.pos += 1;
                    return;
                }
                _ => self.advance_char(),
            }
        }
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn consume_char_or_lifetime(&mut self) -> TokenKind {
        let after = &self.src[self.pos + 1..];
        let mut chars = after.chars();
        let first = chars.next();
        let second = chars.next();
        match first {
            // `'a` followed by anything but a closing quote is a lifetime
            // (also `'static`, `'_`).
            Some(c) if is_ident_start(c) && second != Some('\'') => {
                self.pos += 1;
                self.consume_ident();
                TokenKind::Lifetime
            }
            _ => {
                self.consume_string(b'\'');
                TokenKind::Char
            }
        }
    }

    fn consume_ident(&mut self) {
        while self.pos < self.bytes.len() && is_ident_continue(self.cur_char()) {
            self.advance_char();
        }
    }

    /// Number with optional fraction (only when a digit follows the dot,
    /// so `1..n` stays a range), exponent, and type suffix.
    fn consume_number(&mut self) {
        let radix_prefix =
            matches!(self.peek_byte(1), b'x' | b'o' | b'b') && self.peek_byte(0) == b'0';
        self.pos += 1;
        if radix_prefix {
            self.pos += 1;
        }
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'a'..=b'f' | b'A'..=b'F' if radix_prefix => self.pos += 1,
                b'.' if !radix_prefix && self.peek_byte(1).is_ascii_digit() => self.pos += 1,
                b'e' | b'E'
                    if !radix_prefix
                        && (self.peek_byte(1).is_ascii_digit()
                            || (matches!(self.peek_byte(1), b'+' | b'-')
                                && self.peek_byte(2).is_ascii_digit())) =>
                {
                    self.pos += 2; // e and sign-or-digit
                }
                // type suffixes: i8…i128, u8…, f32, f64, usize, isize
                b'a'..=b'z' | b'A'..=b'Z' => {
                    self.consume_ident();
                    break;
                }
                _ => break,
            }
        }
    }

    fn consume_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.advance_char();
        }
    }

    fn consume_block_comment(&mut self) {
        self.pos += 2; // the `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos..].starts_with(b"/*") {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos..].starts_with(b"*/") {
                depth -= 1;
                self.pos += 2;
            } else {
                self.advance_char();
            }
        }
    }

    fn consume_punct(&mut self, c: char) {
        let rest = &self.src[self.pos..];
        for p in PUNCTS3 {
            if rest.starts_with(p) {
                self.pos += 3;
                return;
            }
        }
        for p in PUNCTS2 {
            if rest.starts_with(p) {
                self.pos += 2;
                return;
            }
        }
        self.pos += c.len_utf8();
    }

    fn advance_char(&mut self) {
        let c = self.cur_char();
        self.pos += c.len_utf8().max(1);
    }
}

/// Checks the tiling invariant: tokens are strictly ordered and
/// non-overlapping, every span is in bounds and on char boundaries, and
/// every gap between consecutive tokens (and before/after the stream) is
/// whitespace. Returns a description of the first failure.
pub fn verify_coverage(src: &str, tokens: &[Token]) -> Result<(), String> {
    let mut cursor = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if t.span.start < cursor {
            return Err(format!("token {i} overlaps predecessor: {:?}", t.span));
        }
        if t.span.end > src.len() || t.span.is_empty() {
            return Err(format!("token {i} has bad span {:?}", t.span));
        }
        if !src.is_char_boundary(t.span.start) || !src.is_char_boundary(t.span.end) {
            return Err(format!("token {i} span not on char boundary: {:?}", t.span));
        }
        let gap = &src[cursor..t.span.start];
        if !gap.chars().all(char::is_whitespace) {
            return Err(format!("non-whitespace gap before token {i}: {gap:?}"));
        }
        cursor = t.span.end;
    }
    let tail = &src[cursor..];
    if !tail.chars().all(char::is_whitespace) {
        return Err(format!("non-whitespace tail after last token: {tail:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn basic_stream() {
        use TokenKind::*;
        let got = kinds("let x = a.unwrap(); // done");
        let want: Vec<(TokenKind, &str)> = vec![
            (Ident, "let"),
            (Ident, "x"),
            (Punct, "="),
            (Ident, "a"),
            (Punct, "."),
            (Ident, "unwrap"),
            (Punct, "("),
            (Punct, ")"),
            (Punct, ";"),
            (LineComment, "// done"),
        ];
        assert_eq!(
            got,
            want.into_iter()
                .map(|(k, s)| (k, s.to_string()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn strings_hide_code() {
        let src = r#"let s = "a.unwrap() // not a comment";"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "/* outer /* inner */ still */");
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"has "quotes" and \ backslash"#;"###;
        let toks = kinds(src);
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::RawStr).unwrap();
        assert!(raw.1.contains("quotes"));
        // raw idents are idents, not raw strings
        let toks = kinds("let r#type = 1;");
        assert_eq!(toks[1], (TokenKind::Ident, "r#type".to_string()));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'x'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let toks = kinds("1.5e-3 + 0x1f + 1..n + 2.0f64");
        assert_eq!(toks[0], (TokenKind::Number, "1.5e-3".to_string()));
        assert_eq!(toks[2], (TokenKind::Number, "0x1f".to_string()));
        assert_eq!(toks[4], (TokenKind::Number, "1".to_string()));
        assert_eq!(toks[5], (TokenKind::Punct, "..".to_string()));
        assert_eq!(toks[8], (TokenKind::Number, "2.0f64".to_string()));
    }

    #[test]
    fn multichar_puncts_max_munch() {
        let toks = kinds("a == b != c :: d ..= e && f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "..=", "&&"]);
    }

    #[test]
    fn unterminated_inputs_are_total() {
        for src in ["\"never closed", "/* never closed", "r#\"open", "'", "b\""] {
            let toks = lex(src);
            verify_coverage(src, &toks).unwrap();
        }
    }

    #[test]
    fn line_index_round_trips() {
        let src = "a\nbb\n\nccc";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(2), (2, 1));
        assert_eq!(idx.line_col(3), (2, 2));
        assert_eq!(idx.line_col(6), (4, 1));
        assert_eq!(idx.line_count(), 4);
    }
}
