//! `mep-lint`: workspace-aware static analysis enforcing the invariants
//! the placement flow's tests assume — panic-freedom in library code,
//! bit-identical determinism in result-affecting crates, NaN-safe
//! comparators, allocation-free hot loops, and `unsafe`-free crates.
//!
//! The pass is zero-dependency and self-contained (no `syn`, consistent
//! with the workspace's vendored-offline constraint): a hand-rolled
//! span-tracking [`lexer`] feeds a set of token-level [`rules`], an
//! [`items`] parser and [`callgraph`] lift the token streams into a
//! workspace-scope view for the interprocedural rules ([`wrules`]:
//! lock-order and atomic-ordering; [`surface`]: the ratcheted panic
//! surface), and an [`engine`] applies inline [`suppress`]ions
//! (`// lint:allow(rule): reason`, reason mandatory) and the committed
//! [`baseline`] ratchet before reporting `file:line:col` diagnostics and
//! a machine-readable [`report`].
//!
//! Run it as:
//!
//! ```text
//! cargo run -p mep-lint -- check       # lint the workspace (CI gate)
//! cargo run -p mep-lint -- baseline    # re-ratchet after paying down debt
//! cargo run -p mep-lint -- rules       # list rules
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod context;
pub mod diag;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod surface;
pub mod workspace;
pub mod wrules;

pub use baseline::Baseline;
pub use config::Config;
pub use diag::Violation;
pub use engine::{Engine, Outcome};
