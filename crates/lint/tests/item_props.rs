//! Property tests for the item parser: over randomly assembled
//! module-level snippets — well-formed items, nested modules, stray
//! qualifiers, dangling keywords, and unbalanced braces — the parsed item
//! forest must tile the token stream (sibling extents strictly ordered
//! and disjoint, children inside parents, bodies inside items), so every
//! non-whitespace token has exactly one innermost owner: an item, or the
//! module root when no item covers it. That tiling is what lets the call
//! graph attribute every call and panic site to exactly one function.

use mep_lint::items::{parse_items, verify_item_coverage};
use mep_lint::lexer::lex;
use proptest::prelude::*;

/// Module-level fragments chosen to stress the item parser: ordinary
/// items, items with bodies and children, attribute/doc noise, stray
/// statements at module scope, and deliberately broken inputs (dangling
/// qualifiers, unbalanced braces) — the parser must stay total on all of
/// them.
const FRAGMENTS: &[&str] = &[
    "pub fn f(x: u32) -> u32 { x + 1 }",
    "fn g() {}",
    "pub(crate) fn h<T: Clone>(t: T) -> T { t.clone() }",
    "struct S { a: u32, b: Mutex<u32> }",
    "pub struct T(u32);",
    "enum E { A, B(u32) }",
    "impl S { pub fn m(&self) -> u32 { self.a } fn p() {} }",
    "impl Clone for T { fn clone(&self) -> Self { T(self.0) } }",
    "trait Tr { fn req(&self); fn def(&self) {} }",
    "mod m { pub fn inner() { let x = [1, 2]; let _ = x[0]; } }",
    "mod external;",
    "use std::sync::Mutex;",
    "pub use crate::engine::Engine;",
    "const K: u32 = 3;",
    "static ST: u32 = 4;",
    "type Alias = u32;",
    "macro_rules! mk { () => {}; }",
    "// a line comment\n",
    "/// a doc comment\n",
    "#[derive(Debug)]",
    "#![allow(dead_code)]",
    "#[cfg(test)] mod tests { #[test] fn t() { assert!(true); } }",
    "extern crate core;",
    "unsafe impl Send for T {}",
    // degenerate inputs: the parser must not panic or lose tokens
    "pub",
    "fn",
    "struct",
    "impl",
    "-> u32",
    "{ stray { nested } block }",
    "}",
    "{",
    "; ;",
];

const SEPARATORS: &[&str] = &["", " ", "\n", "\n\n", "\t"];

fn assemble(picks: &[(usize, usize)]) -> String {
    let mut src = String::new();
    for &(f, s) in picks {
        src.push_str(FRAGMENTS[f % FRAGMENTS.len()]);
        src.push_str(SEPARATORS[s % SEPARATORS.len()]);
        // fragments that end mid-comment must not swallow the next one
        if !src.ends_with('\n') && !src.ends_with(' ') {
            src.push(' ');
        }
    }
    src
}

proptest! {
    /// For generated inputs of 2..=1024 tokens, the item forest tiles the
    /// token stream: `verify_item_coverage` proves sibling extents are
    /// strictly ordered and disjoint, children lie inside their parent,
    /// and bodies lie inside their item — hence every token has exactly
    /// one innermost owner (an item, or the module root).
    fn items_tile_the_token_stream(
        picks in prop::collection::vec((0..FRAGMENTS.len(), 0..SEPARATORS.len()), 1..48),
    ) {
        let src = assemble(&picks);
        let tokens = lex(&src);
        prop_assume!(tokens.len() >= 2 && tokens.len() <= 1024);
        let items = parse_items(&src, &tokens);
        let coverage = verify_item_coverage(&tokens, &items);
        prop_assert!(
            coverage.is_ok(),
            "item tiling violated: {:?}\nsource: {src:?}",
            coverage.err()
        );
    }

    /// Parsing is a pure function of the token stream: two runs produce
    /// structurally identical forests.
    fn parsing_is_deterministic(
        picks in prop::collection::vec((0..FRAGMENTS.len(), 0..SEPARATORS.len()), 1..32),
    ) {
        let src = assemble(&picks);
        let tokens = lex(&src);
        prop_assume!(tokens.len() >= 2 && tokens.len() <= 1024);
        let a = parse_items(&src, &tokens);
        let b = parse_items(&src, &tokens);
        prop_assert_eq!(
            format!("{a:?}"), format!("{b:?}"),
            "item parsing must be deterministic for {:?}", src
        );
    }
}
