//! Property tests for the lexer: over randomly assembled snippets —
//! including nested block comments, raw strings, escapes, and
//! deliberately unterminated literals — the token stream must tile the
//! source exactly (every byte is covered by a token or lies in an
//! inter-token whitespace gap), which is what makes span-based
//! diagnostics and suppression line-targeting trustworthy.

use mep_lint::lexer::{lex, verify_coverage, LineIndex};
use proptest::prelude::*;

/// Source fragments chosen to stress every lexer mode. The last few are
/// intentionally unterminated: a total lexer must still tile the source.
const FRAGMENTS: &[&str] = &[
    "ident_x",
    "fn",
    "42",
    "3.14e-2",
    "0xfe_u64",
    "\"str with \\\" escape and // not a comment\"",
    "\"multi\\nline\"",
    "r\"raw no fence\"",
    "r#\"raw \" with fence\"#",
    "r##\"nested \"# fence\"##",
    "'c'",
    "'\\n'",
    "'\\''",
    "'static",
    "'a",
    "// line comment with \"quote\" and /* opener",
    "/* block comment */",
    "/* nested /* twice /* deep */ */ comment */",
    "::<>=>->..=&&||",
    ". , ; # ! ?",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "#![forbid(unsafe_code)]",
    "let x = y.partial_cmp(&z);",
    "\"unterminated string",
    "/* unterminated /* nested block",
    "r#\"unterminated raw",
];

const SEPARATORS: &[&str] = &["", " ", "  ", "\n", "\t", "\r\n", "\n\n    "];

/// Assembles a snippet from (fragment, separator) index pairs.
fn assemble(picks: &[(usize, usize)]) -> String {
    let mut src = String::new();
    for &(f, s) in picks {
        src.push_str(FRAGMENTS[f % FRAGMENTS.len()]);
        src.push_str(SEPARATORS[s % SEPARATORS.len()]);
    }
    src
}

proptest! {
    /// Token spans round-trip: concatenating tokens and whitespace gaps
    /// reproduces the source byte-for-byte, with no overlap and no
    /// non-whitespace byte left uncovered.
    fn spans_tile_the_source(
        picks in prop::collection::vec((0..FRAGMENTS.len(), 0..SEPARATORS.len()), 0..40),
    ) {
        let src = assemble(&picks);
        let tokens = lex(&src);
        let coverage = verify_coverage(&src, &tokens);
        prop_assert!(
            coverage.is_ok(),
            "coverage violated: {:?}\nsource: {src:?}",
            coverage.err()
        );
    }

    /// Lexing is a pure function of the source: two runs agree exactly.
    fn lexing_is_deterministic(
        picks in prop::collection::vec((0..FRAGMENTS.len(), 0..SEPARATORS.len()), 0..24),
    ) {
        let src = assemble(&picks);
        prop_assert_eq!(lex(&src), lex(&src));
    }

    /// Every token's (line, col) from the LineIndex points back at the
    /// token's own first byte — the invariant diagnostics rely on.
    fn line_index_round_trips_token_starts(
        picks in prop::collection::vec((0..FRAGMENTS.len(), 0..SEPARATORS.len()), 0..24),
    ) {
        let src = assemble(&picks);
        let lines = LineIndex::new(&src);
        for tok in lex(&src) {
            let (line, col) = lines.line_col(tok.span.start);
            let start = lines.line_start(line);
            prop_assert!(start.is_some(), "line {line} must exist");
            let recovered = start.unwrap_or(0) + (col - 1);
            prop_assert_eq!(
                recovered, tok.span.start,
                "line {} col {} must address offset {} in {:?}",
                line, col, tok.span.start, src
            );
        }
    }
}
