//! Per-rule fixture tests: for every rule, a positive case (the rule
//! fires), a negative case (it stays quiet), a suppressed case
//! (`lint:allow` with a reason silences it), and a baseline-masked case.
//! Plus the end-to-end acceptance check from the issue: an injected
//! violation fails the run with a `file:line:col rule message` diagnostic.

use mep_lint::{workspace, Baseline, Config, Engine, Outcome};

/// Lints `src` as if it lived at `rel_path`, against `baseline`.
fn check_with(rel_path: &str, src: &str, baseline: Baseline) -> Outcome {
    let file = workspace::classify(rel_path).expect("fixture path must classify");
    let engine = Engine::new(Config::default(), baseline);
    let mut outcome = Outcome::default();
    engine.check_source(&file, src, &mut outcome);
    outcome
}

fn check(rel_path: &str, src: &str) -> Outcome {
    check_with(rel_path, src, Baseline::empty())
}

/// New violations for one rule only.
fn new_for<'a>(outcome: &'a Outcome, rule: &str) -> Vec<&'a mep_lint::Violation> {
    outcome.new.iter().filter(|v| v.rule == rule).collect()
}

// Fixture paths: a library file in a result-affecting crate, a declared
// hot module, and a non-result-affecting crate.
const LIB: &str = "crates/placer/src/fixture.rs";
const HOT: &str = "crates/wirelength/src/moreau.rs";
const COLD_CRATE: &str = "crates/obs/src/fixture.rs";

// --- no-panic-lib -----------------------------------------------------------

#[test]
fn no_panic_lib_positive() {
    let out = check(
        LIB,
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let vs = new_for(&out, "no-panic-lib");
    assert_eq!(vs.len(), 1);
    assert_eq!((vs[0].line, vs[0].col), (2, 7));
    assert!(vs[0].message.contains("unwrap"));
    assert!(out.failed());

    let out = check(LIB, "pub fn f() {\n    todo!()\n}\n");
    assert_eq!(new_for(&out, "no-panic-lib").len(), 1);
}

#[test]
fn no_panic_lib_negative() {
    // strings and comments never fire (token-level checking)
    let quiet = r#"
// x.unwrap() in a comment
pub fn f() -> &'static str {
    "x.unwrap() and panic!(...) in a string"
}
"#;
    assert!(new_for(&check(LIB, quiet), "no-panic-lib").is_empty());

    // test code inside a library file is exempt
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(new_for(&check(LIB, in_test), "no-panic-lib").is_empty());

    // binaries, integration tests, and benches may panic
    for path in [
        "crates/placer/src/bin/tool.rs",
        "crates/placer/tests/it.rs",
        "crates/bench/benches/b.rs",
    ] {
        let out = check(path, "pub fn f() { panic!(\"boom\"); }\n");
        assert!(new_for(&out, "no-panic-lib").is_empty(), "{path}");
    }

    // `std::panic::catch_unwind` is a path, not the macro
    let path_use = "pub fn f() { let _ = std::panic::catch_unwind(|| 1); }\n";
    assert!(new_for(&check(LIB, path_use), "no-panic-lib").is_empty());
}

#[test]
fn no_panic_lib_suppressed() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // lint:allow(no-panic-lib): fixture-justified invariant\n    x.unwrap()\n}\n";
    let out = check(LIB, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].reason, "fixture-justified invariant");
    assert!(!out.failed());
}

#[test]
fn no_panic_lib_baseline_masked() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("no-panic-lib", LIB, 1);
    let out = check_with(LIB, src, baseline);
    assert!(out.new.is_empty());
    assert_eq!(out.baselined.len(), 1);
    assert!(!out.failed());
}

#[test]
fn exceeding_the_baseline_reports_every_instance() {
    let src = "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    x.unwrap() + y.unwrap()\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("no-panic-lib", LIB, 1);
    let out = check_with(LIB, src, baseline);
    // the offender is not identifiable, so the whole file surfaces
    assert_eq!(new_for(&out, "no-panic-lib").len(), 2);
    assert!(out.new[0].message.contains("baseline allowance of 1"));
    assert!(out.failed());
}

// --- nan-unsafe-cmp ---------------------------------------------------------

#[test]
fn nan_unsafe_cmp_positive() {
    let src =
        "pub fn sort(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let out = check(LIB, src);
    let vs = new_for(&out, "nan-unsafe-cmp");
    assert_eq!(vs.len(), 1);
    assert!(vs[0].message.contains("total_cmp"));

    // `.expect(...)` after the call is just as NaN-unsafe
    let src = "pub fn m(xs: &[f64]) -> f64 {\n    *xs.iter().max_by(|a, b| a.partial_cmp(b).expect(\"finite\")).unwrap()\n}\n";
    assert_eq!(new_for(&check(LIB, src), "nan-unsafe-cmp").len(), 1);
}

#[test]
fn nan_unsafe_cmp_negative() {
    let src = "pub fn sort(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert!(new_for(&check(LIB, src), "nan-unsafe-cmp").is_empty());

    // handling the None case is fine
    let src = "pub fn cmp(a: f64, b: f64) -> std::cmp::Ordering {\n    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)\n}\n";
    assert!(new_for(&check(LIB, src), "nan-unsafe-cmp").is_empty());
}

#[test]
fn nan_unsafe_cmp_suppressed_and_masked() {
    let src = "pub fn sort(xs: &mut [f64]) {\n    // lint:allow(nan-unsafe-cmp): inputs validated finite upstream\n    // lint:allow(no-panic-lib): same invariant\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let out = check(LIB, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 2);
    assert!(!out.failed());

    let src =
        "pub fn sort(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("nan-unsafe-cmp", LIB, 1);
    baseline.set("no-panic-lib", LIB, 1);
    let out = check_with(LIB, src, baseline);
    assert!(out.new.is_empty());
    assert_eq!(out.baselined.len(), 2);
}

// --- determinism ------------------------------------------------------------

#[test]
fn determinism_positive() {
    let src = "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
    let out = check(LIB, src);
    assert!(!new_for(&out, "determinism").is_empty());

    let src = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(new_for(&check(LIB, src), "determinism").len(), 1);

    let src = "pub fn f() -> std::thread::ThreadId {\n    std::thread::current().id()\n}\n";
    assert!(!new_for(&check(LIB, src), "determinism").is_empty());
}

#[test]
fn determinism_negative() {
    // non-result-affecting crates (telemetry) may use clocks and hash maps
    let src = "use std::collections::HashMap;\npub fn f() {\n    let _ = std::time::Instant::now();\n    let _: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert!(new_for(&check(COLD_CRATE, src), "determinism").is_empty());

    // the clock whitelist covers placer's telemetry module
    let src = "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let out = check("crates/placer/src/telemetry.rs", src);
    assert!(new_for(&out, "determinism").is_empty());

    // BTreeMap is the sanctioned container
    let src = "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> {\n    BTreeMap::new()\n}\n";
    assert!(new_for(&check(LIB, src), "determinism").is_empty());
}

#[test]
fn determinism_covers_declared_paths_outside_result_affecting_crates() {
    // the bench crate is not result-affecting, but the PEKO harness
    // module is individually declared deterministic: its ratios are
    // compared exactly against a committed baseline by the CI guard
    let src = "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
    let out = check("crates/bench/src/peko.rs", src);
    assert!(
        !new_for(&out, "determinism").is_empty(),
        "deterministic_paths entry must extend the rule to the harness"
    );
    // a sibling bench module stays exempt
    let out = check("crates/bench/src/flow.rs", src);
    assert!(new_for(&out, "determinism").is_empty());

    // wall clocks are equally banned in declared-deterministic paths
    let src = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let out = check("crates/bench/src/peko.rs", src);
    assert_eq!(new_for(&out, "determinism").len(), 1);
}

#[test]
fn determinism_suppressed() {
    let src = "use std::collections::HashMap; // lint:allow(determinism): name-keyed lookup, never iterated\npub struct S {\n    // lint:allow(determinism): name-keyed lookup, never iterated\n    pub by_name: HashMap<String, u32>,\n}\n";
    let out = check(LIB, src);
    assert!(new_for(&out, "determinism").is_empty());
    assert_eq!(out.suppressed.len(), 2);
}

// --- float-eq ---------------------------------------------------------------

#[test]
fn float_eq_positive() {
    let src = "pub fn f(x: f64) -> bool {\n    x == 0.0\n}\n";
    let out = check(LIB, src);
    let vs = new_for(&out, "float-eq");
    assert_eq!(vs.len(), 1);
    assert!(vs[0].message.contains("tolerance"));

    let src = "pub fn f(x: f64) -> bool {\n    x != f64::INFINITY\n}\n";
    assert_eq!(new_for(&check(LIB, src), "float-eq").len(), 1);

    // literal on the left
    let src = "pub fn f(x: f64) -> bool {\n    1.5 == x\n}\n";
    assert_eq!(new_for(&check(LIB, src), "float-eq").len(), 1);
}

#[test]
fn float_eq_negative() {
    for quiet in [
        "pub fn f(x: f64) -> bool { x < 0.0 }\n",
        "pub fn f(x: u32) -> bool { x == 0 }\n",
        "pub fn f(x: f64) -> bool { (x - 1.0).abs() < 1e-12 }\n",
        "pub fn f(x: f64) -> bool { x.is_nan() }\n",
    ] {
        assert!(
            new_for(&check(LIB, quiet), "float-eq").is_empty(),
            "{quiet}"
        );
    }
}

#[test]
fn float_eq_suppressed() {
    let src = "pub fn f(x: f64) -> bool {\n    // lint:allow(float-eq): exact-zero sentinel set by construction\n    x == 0.0\n}\n";
    let out = check(LIB, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 1);
}

// --- no-alloc-hot -----------------------------------------------------------

#[test]
fn no_alloc_hot_positive() {
    let src = "pub fn f() -> Vec<f64> {\n    let mut v = Vec::new();\n    v.push(1.0);\n    v\n}\n";
    let out = check(HOT, src);
    assert_eq!(new_for(&out, "no-alloc-hot").len(), 2); // Vec::new + .push

    let src = "pub fn g(n: usize) -> String {\n    format!(\"{n}\")\n}\n";
    assert_eq!(new_for(&check(HOT, src), "no-alloc-hot").len(), 1);
}

#[test]
fn no_alloc_hot_negative() {
    // the same allocation outside a declared hot module is fine
    let src = "pub fn f() -> Vec<f64> {\n    let mut v = Vec::new();\n    v.push(1.0);\n    v\n}\n";
    assert!(new_for(&check(LIB, src), "no-alloc-hot").is_empty());

    // writing into a preallocated slice is the sanctioned pattern
    let src =
        "pub fn f(out: &mut [f64]) {\n    for v in out.iter_mut() {\n        *v = 0.0;\n    }\n}\n";
    assert!(new_for(&check(HOT, src), "no-alloc-hot").is_empty());

    // tests inside a hot module may allocate
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = vec![1.0]; }\n}\n";
    assert!(new_for(&check(HOT, src), "no-alloc-hot").is_empty());
}

#[test]
fn no_alloc_hot_suppressed_and_masked() {
    let src = "pub fn plan() -> Vec<f64> {\n    // lint:allow(no-alloc-hot): one-time plan construction, not the per-iteration path\n    Vec::new()\n}\n";
    let out = check(HOT, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 1);

    let src = "pub fn plan() -> Vec<f64> {\n    Vec::new()\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("no-alloc-hot", HOT, 1);
    let out = check_with(HOT, src, baseline);
    assert!(out.new.is_empty());
    assert_eq!(out.baselined.len(), 1);
}

// --- forbid-unsafe ----------------------------------------------------------

#[test]
fn forbid_unsafe_positive() {
    let root = "crates/placer/src/lib.rs";
    let out = check(root, "//! A crate.\npub mod fixture;\n");
    let vs = new_for(&out, "forbid-unsafe");
    assert_eq!(vs.len(), 1);
    assert!(vs[0].message.contains("missing"));

    // `deny` is a distinct, weaker finding
    let out = check(root, "#![deny(unsafe_code)]\npub mod fixture;\n");
    let vs = new_for(&out, "forbid-unsafe");
    assert_eq!(vs.len(), 1);
    assert!(vs[0].message.contains("deny"));
}

#[test]
fn forbid_unsafe_negative() {
    let root = "crates/placer/src/lib.rs";
    let src = "//! A crate.\n#![forbid(unsafe_code)]\npub mod fixture;\n";
    assert!(new_for(&check(root, src), "forbid-unsafe").is_empty());

    // non-root files are not checked for the attribute
    let out = check(LIB, "pub mod fixture;\n");
    assert!(new_for(&out, "forbid-unsafe").is_empty());
}

#[test]
fn forbid_unsafe_deny_suppressible() {
    let root = "crates/placer/src/lib.rs";
    let src = "// lint:allow(forbid-unsafe): one audited unsafe block in a child module\n#![deny(unsafe_code)]\npub mod fixture;\n";
    let out = check(root, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 1);
}

// --- suppression grammar ----------------------------------------------------

#[test]
fn suppression_without_reason_is_an_error() {
    let src =
        "pub fn f(x: Option<u32>) -> u32 {\n    // lint:allow(no-panic-lib)\n    x.unwrap()\n}\n";
    let out = check(LIB, src);
    assert_eq!(out.suppress_errors.len(), 1);
    assert!(out.failed());
}

#[test]
fn suppression_of_unknown_rule_is_an_error() {
    let src = "// lint:allow(no-such-rule): whatever\npub fn f() {}\n";
    let out = check(LIB, src);
    assert_eq!(out.suppress_errors.len(), 1);
    assert!(out.suppress_errors[0].1.message.contains("no-such-rule"));
    assert!(out.failed());
}

#[test]
fn unused_suppression_is_reported_but_non_fatal() {
    let src = "// lint:allow(float-eq): nothing here actually compares floats\npub fn f() {}\n";
    let out = check(LIB, src);
    assert_eq!(out.unused.len(), 1);
    assert!(!out.failed());
}

// --- acceptance: injected violation fails with file:line diagnostics --------

#[test]
fn injected_violation_yields_file_line_rule_diagnostic() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let out = check(LIB, src);
    assert!(out.failed(), "an injected violation must fail the run");
    let rendered = out.new[0].to_string();
    assert!(
        rendered.starts_with("crates/placer/src/fixture.rs:2:7 no-panic-lib "),
        "diagnostic must be `file:line:col rule message`, got: {rendered}"
    );
}
