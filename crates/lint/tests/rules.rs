//! Per-rule fixture tests: for every rule, a positive case (the rule
//! fires), a negative case (it stays quiet), a suppressed case
//! (`lint:allow` with a reason silences it), and a baseline-masked case.
//! Plus the end-to-end acceptance check from the issue: an injected
//! violation fails the run with a `file:line:col rule message` diagnostic.

use mep_lint::{workspace, Baseline, Config, Engine, Outcome};

/// Lints `src` as if it lived at `rel_path`, against `baseline`.
fn check_with(rel_path: &str, src: &str, baseline: Baseline) -> Outcome {
    let file = workspace::classify(rel_path).expect("fixture path must classify");
    let engine = Engine::new(Config::default(), baseline);
    let mut outcome = Outcome::default();
    engine.check_source(&file, src, &mut outcome);
    outcome
}

fn check(rel_path: &str, src: &str) -> Outcome {
    check_with(rel_path, src, Baseline::empty())
}

/// New violations for one rule only.
fn new_for<'a>(outcome: &'a Outcome, rule: &str) -> Vec<&'a mep_lint::Violation> {
    outcome.new.iter().filter(|v| v.rule == rule).collect()
}

// Fixture paths: a library file in a result-affecting crate, a declared
// hot module, and a non-result-affecting crate.
const LIB: &str = "crates/placer/src/fixture.rs";
const HOT: &str = "crates/wirelength/src/moreau.rs";
const COLD_CRATE: &str = "crates/obs/src/fixture.rs";

// --- no-panic-lib -----------------------------------------------------------

#[test]
fn no_panic_lib_positive() {
    let out = check(
        LIB,
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let vs = new_for(&out, "no-panic-lib");
    assert_eq!(vs.len(), 1);
    assert_eq!((vs[0].line, vs[0].col), (2, 7));
    assert!(vs[0].message.contains("unwrap"));
    assert!(out.failed());

    let out = check(LIB, "pub fn f() {\n    todo!()\n}\n");
    assert_eq!(new_for(&out, "no-panic-lib").len(), 1);
}

#[test]
fn no_panic_lib_negative() {
    // strings and comments never fire (token-level checking)
    let quiet = r#"
// x.unwrap() in a comment
pub fn f() -> &'static str {
    "x.unwrap() and panic!(...) in a string"
}
"#;
    assert!(new_for(&check(LIB, quiet), "no-panic-lib").is_empty());

    // test code inside a library file is exempt
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(new_for(&check(LIB, in_test), "no-panic-lib").is_empty());

    // binaries, integration tests, and benches may panic
    for path in [
        "crates/placer/src/bin/tool.rs",
        "crates/placer/tests/it.rs",
        "crates/bench/benches/b.rs",
    ] {
        let out = check(path, "pub fn f() { panic!(\"boom\"); }\n");
        assert!(new_for(&out, "no-panic-lib").is_empty(), "{path}");
    }

    // `std::panic::catch_unwind` is a path, not the macro
    let path_use = "pub fn f() { let _ = std::panic::catch_unwind(|| 1); }\n";
    assert!(new_for(&check(LIB, path_use), "no-panic-lib").is_empty());
}

#[test]
fn no_panic_lib_suppressed() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // lint:allow(no-panic-lib): fixture-justified invariant\n    x.unwrap()\n}\n";
    let out = check(LIB, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].reason, "fixture-justified invariant");
    assert!(!out.failed());
}

#[test]
fn no_panic_lib_baseline_masked() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("no-panic-lib", LIB, 1);
    let out = check_with(LIB, src, baseline);
    assert!(out.new.is_empty());
    assert_eq!(out.baselined.len(), 1);
    assert!(!out.failed());
}

#[test]
fn exceeding_the_baseline_reports_every_instance() {
    let src = "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    x.unwrap() + y.unwrap()\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("no-panic-lib", LIB, 1);
    let out = check_with(LIB, src, baseline);
    // the offender is not identifiable, so the whole file surfaces
    assert_eq!(new_for(&out, "no-panic-lib").len(), 2);
    assert!(out.new[0].message.contains("baseline allowance of 1"));
    assert!(out.failed());
}

// --- nan-unsafe-cmp ---------------------------------------------------------

#[test]
fn nan_unsafe_cmp_positive() {
    let src =
        "pub fn sort(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let out = check(LIB, src);
    let vs = new_for(&out, "nan-unsafe-cmp");
    assert_eq!(vs.len(), 1);
    assert!(vs[0].message.contains("total_cmp"));

    // `.expect(...)` after the call is just as NaN-unsafe
    let src = "pub fn m(xs: &[f64]) -> f64 {\n    *xs.iter().max_by(|a, b| a.partial_cmp(b).expect(\"finite\")).unwrap()\n}\n";
    assert_eq!(new_for(&check(LIB, src), "nan-unsafe-cmp").len(), 1);
}

#[test]
fn nan_unsafe_cmp_negative() {
    let src = "pub fn sort(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert!(new_for(&check(LIB, src), "nan-unsafe-cmp").is_empty());

    // handling the None case is fine
    let src = "pub fn cmp(a: f64, b: f64) -> std::cmp::Ordering {\n    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)\n}\n";
    assert!(new_for(&check(LIB, src), "nan-unsafe-cmp").is_empty());
}

#[test]
fn nan_unsafe_cmp_suppressed_and_masked() {
    let src = "pub fn sort(xs: &mut [f64]) {\n    // lint:allow(nan-unsafe-cmp): inputs validated finite upstream\n    // lint:allow(no-panic-lib): same invariant\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let out = check(LIB, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 2);
    assert!(!out.failed());

    let src =
        "pub fn sort(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("nan-unsafe-cmp", LIB, 1);
    baseline.set("no-panic-lib", LIB, 1);
    let out = check_with(LIB, src, baseline);
    assert!(out.new.is_empty());
    assert_eq!(out.baselined.len(), 2);
}

// --- determinism ------------------------------------------------------------

#[test]
fn determinism_positive() {
    let src = "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
    let out = check(LIB, src);
    assert!(!new_for(&out, "determinism").is_empty());

    let src = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(new_for(&check(LIB, src), "determinism").len(), 1);

    let src = "pub fn f() -> std::thread::ThreadId {\n    std::thread::current().id()\n}\n";
    assert!(!new_for(&check(LIB, src), "determinism").is_empty());
}

#[test]
fn determinism_negative() {
    // non-result-affecting crates (telemetry) may use clocks and hash maps
    let src = "use std::collections::HashMap;\npub fn f() {\n    let _ = std::time::Instant::now();\n    let _: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert!(new_for(&check(COLD_CRATE, src), "determinism").is_empty());

    // the clock whitelist covers placer's telemetry module
    let src = "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let out = check("crates/placer/src/telemetry.rs", src);
    assert!(new_for(&out, "determinism").is_empty());

    // BTreeMap is the sanctioned container
    let src = "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> {\n    BTreeMap::new()\n}\n";
    assert!(new_for(&check(LIB, src), "determinism").is_empty());
}

#[test]
fn determinism_covers_declared_paths_outside_result_affecting_crates() {
    // the bench crate is not result-affecting, but the PEKO harness
    // module is individually declared deterministic: its ratios are
    // compared exactly against a committed baseline by the CI guard
    let src = "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
    let out = check("crates/bench/src/peko.rs", src);
    assert!(
        !new_for(&out, "determinism").is_empty(),
        "deterministic_paths entry must extend the rule to the harness"
    );
    // a sibling bench module stays exempt
    let out = check("crates/bench/src/flow.rs", src);
    assert!(new_for(&out, "determinism").is_empty());

    // wall clocks are equally banned in declared-deterministic paths
    let src = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let out = check("crates/bench/src/peko.rs", src);
    assert_eq!(new_for(&out, "determinism").len(), 1);
}

#[test]
fn determinism_suppressed() {
    let src = "use std::collections::HashMap; // lint:allow(determinism): name-keyed lookup, never iterated\npub struct S {\n    // lint:allow(determinism): name-keyed lookup, never iterated\n    pub by_name: HashMap<String, u32>,\n}\n";
    let out = check(LIB, src);
    assert!(new_for(&out, "determinism").is_empty());
    assert_eq!(out.suppressed.len(), 2);
}

// --- float-eq ---------------------------------------------------------------

#[test]
fn float_eq_positive() {
    let src = "pub fn f(x: f64) -> bool {\n    x == 0.0\n}\n";
    let out = check(LIB, src);
    let vs = new_for(&out, "float-eq");
    assert_eq!(vs.len(), 1);
    assert!(vs[0].message.contains("tolerance"));

    let src = "pub fn f(x: f64) -> bool {\n    x != f64::INFINITY\n}\n";
    assert_eq!(new_for(&check(LIB, src), "float-eq").len(), 1);

    // literal on the left
    let src = "pub fn f(x: f64) -> bool {\n    1.5 == x\n}\n";
    assert_eq!(new_for(&check(LIB, src), "float-eq").len(), 1);
}

#[test]
fn float_eq_negative() {
    for quiet in [
        "pub fn f(x: f64) -> bool { x < 0.0 }\n",
        "pub fn f(x: u32) -> bool { x == 0 }\n",
        "pub fn f(x: f64) -> bool { (x - 1.0).abs() < 1e-12 }\n",
        "pub fn f(x: f64) -> bool { x.is_nan() }\n",
    ] {
        assert!(
            new_for(&check(LIB, quiet), "float-eq").is_empty(),
            "{quiet}"
        );
    }
}

#[test]
fn float_eq_suppressed() {
    let src = "pub fn f(x: f64) -> bool {\n    // lint:allow(float-eq): exact-zero sentinel set by construction\n    x == 0.0\n}\n";
    let out = check(LIB, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 1);
}

// --- no-alloc-hot -----------------------------------------------------------

#[test]
fn no_alloc_hot_positive() {
    let src = "pub fn f() -> Vec<f64> {\n    let mut v = Vec::new();\n    v.push(1.0);\n    v\n}\n";
    let out = check(HOT, src);
    assert_eq!(new_for(&out, "no-alloc-hot").len(), 2); // Vec::new + .push

    let src = "pub fn g(n: usize) -> String {\n    format!(\"{n}\")\n}\n";
    assert_eq!(new_for(&check(HOT, src), "no-alloc-hot").len(), 1);
}

#[test]
fn no_alloc_hot_negative() {
    // the same allocation outside a declared hot module is fine
    let src = "pub fn f() -> Vec<f64> {\n    let mut v = Vec::new();\n    v.push(1.0);\n    v\n}\n";
    assert!(new_for(&check(LIB, src), "no-alloc-hot").is_empty());

    // writing into a preallocated slice is the sanctioned pattern
    let src =
        "pub fn f(out: &mut [f64]) {\n    for v in out.iter_mut() {\n        *v = 0.0;\n    }\n}\n";
    assert!(new_for(&check(HOT, src), "no-alloc-hot").is_empty());

    // tests inside a hot module may allocate
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = vec![1.0]; }\n}\n";
    assert!(new_for(&check(HOT, src), "no-alloc-hot").is_empty());
}

#[test]
fn no_alloc_hot_suppressed_and_masked() {
    let src = "pub fn plan() -> Vec<f64> {\n    // lint:allow(no-alloc-hot): one-time plan construction, not the per-iteration path\n    Vec::new()\n}\n";
    let out = check(HOT, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 1);

    let src = "pub fn plan() -> Vec<f64> {\n    Vec::new()\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("no-alloc-hot", HOT, 1);
    let out = check_with(HOT, src, baseline);
    assert!(out.new.is_empty());
    assert_eq!(out.baselined.len(), 1);
}

// --- forbid-unsafe ----------------------------------------------------------

#[test]
fn forbid_unsafe_positive() {
    let root = "crates/placer/src/lib.rs";
    let out = check(root, "//! A crate.\npub mod fixture;\n");
    let vs = new_for(&out, "forbid-unsafe");
    assert_eq!(vs.len(), 1);
    assert!(vs[0].message.contains("missing"));

    // `deny` is a distinct, weaker finding
    let out = check(root, "#![deny(unsafe_code)]\npub mod fixture;\n");
    let vs = new_for(&out, "forbid-unsafe");
    assert_eq!(vs.len(), 1);
    assert!(vs[0].message.contains("deny"));
}

#[test]
fn forbid_unsafe_negative() {
    let root = "crates/placer/src/lib.rs";
    let src = "//! A crate.\n#![forbid(unsafe_code)]\npub mod fixture;\n";
    assert!(new_for(&check(root, src), "forbid-unsafe").is_empty());

    // non-root files are not checked for the attribute
    let out = check(LIB, "pub mod fixture;\n");
    assert!(new_for(&out, "forbid-unsafe").is_empty());
}

#[test]
fn forbid_unsafe_deny_suppressible() {
    let root = "crates/placer/src/lib.rs";
    let src = "// lint:allow(forbid-unsafe): one audited unsafe block in a child module\n#![deny(unsafe_code)]\npub mod fixture;\n";
    let out = check(root, src);
    assert!(out.new.is_empty());
    assert_eq!(out.suppressed.len(), 1);
}

// --- suppression grammar ----------------------------------------------------

#[test]
fn suppression_without_reason_is_an_error() {
    let src =
        "pub fn f(x: Option<u32>) -> u32 {\n    // lint:allow(no-panic-lib)\n    x.unwrap()\n}\n";
    let out = check(LIB, src);
    assert_eq!(out.suppress_errors.len(), 1);
    assert!(out.failed());
}

#[test]
fn suppression_of_unknown_rule_is_an_error() {
    let src = "// lint:allow(no-such-rule): whatever\npub fn f() {}\n";
    let out = check(LIB, src);
    assert_eq!(out.suppress_errors.len(), 1);
    assert!(out.suppress_errors[0].1.message.contains("no-such-rule"));
    assert!(out.failed());
}

#[test]
fn unused_suppression_is_reported_but_non_fatal() {
    let src = "// lint:allow(float-eq): nothing here actually compares floats\npub fn f() {}\n";
    let out = check(LIB, src);
    assert_eq!(out.unused.len(), 1);
    assert!(!out.failed());
}

// --- acceptance: injected violation fails with file:line diagnostics --------

#[test]
fn injected_violation_yields_file_line_rule_diagnostic() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let out = check(LIB, src);
    assert!(out.failed(), "an injected violation must fail the run");
    let rendered = out.new[0].to_string();
    assert!(
        rendered.starts_with("crates/placer/src/fixture.rs:2:7 no-panic-lib "),
        "diagnostic must be `file:line:col rule message`, got: {rendered}"
    );
}

// --- lock-order -------------------------------------------------------------

/// Lints `src` with a custom config (workspace rules need crate-scoped
/// audit lists and protected roots).
fn check_cfg(rel_path: &str, src: &str, config: Config) -> Outcome {
    let file = workspace::classify(rel_path).expect("fixture path must classify");
    let engine = Engine::new(config, Baseline::empty());
    let mut outcome = Outcome::default();
    engine.check_source(&file, src, &mut outcome);
    outcome
}

// The concurrency fixtures live in `obs`, which the default config audits
// for both lock order and atomics but does not name in `protected_roots`.
const CONC: &str = "crates/obs/src/fixture.rs";

const LOCK_INVERSION: &str = "\
use std::sync::Mutex;
pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
impl S {
    pub fn ab(&self) {
        let g = self.alpha.lock().unwrap();
        let h = self.beta.lock().unwrap();
        drop(h);
        drop(g);
    }
    pub fn ba(&self) {
        let g = self.beta.lock().unwrap();
        let h = self.alpha.lock().unwrap();
        drop(h);
        drop(g);
    }
}
";

#[test]
fn lock_order_positive_direct_inversion() {
    let out = check(CONC, LOCK_INVERSION);
    let vs = new_for(&out, "lock-order");
    assert_eq!(
        vs.len(),
        1,
        "one inversion per unordered pair: {:?}",
        out.new
    );
    assert!(vs[0].message.contains("inversion"));
    assert!(vs[0].message.contains("alpha") && vs[0].message.contains("beta"));
}

#[test]
fn lock_order_positive_two_function_indirect_inversion() {
    // `ab` holds `alpha` while calling a helper that takes `beta`; `ba`
    // nests them directly in the opposite order — the inversion is only
    // visible through the call edge.
    let src = "\
use std::sync::Mutex;
pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
impl S {
    fn grab_beta(&self) -> u32 {
        let g = self.beta.lock().unwrap();
        *g
    }
    pub fn ab(&self) {
        let g = self.alpha.lock().unwrap();
        let _ = self.grab_beta();
        drop(g);
    }
    pub fn ba(&self) {
        let g = self.beta.lock().unwrap();
        let h = self.alpha.lock().unwrap();
        drop(h);
        drop(g);
    }
}
";
    let out = check(CONC, src);
    let vs = new_for(&out, "lock-order");
    assert_eq!(
        vs.len(),
        1,
        "call-edge inversion must be found: {:?}",
        out.new
    );
}

#[test]
fn lock_order_tracks_guard_returning_helpers() {
    // `hold_alpha` returns a `MutexGuard`, so its acquisition stays held
    // in the caller's frame; the nested `beta` acquisition inverts `ba`.
    let src = "\
use std::sync::{Mutex, MutexGuard};
pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
impl S {
    fn hold_alpha(&self) -> MutexGuard<'_, u32> {
        self.alpha.lock().unwrap()
    }
    pub fn ab(&self) {
        let g = self.hold_alpha();
        let h = self.beta.lock().unwrap();
        drop(h);
        drop(g);
    }
    pub fn ba(&self) {
        let g = self.beta.lock().unwrap();
        let h = self.alpha.lock().unwrap();
        drop(h);
        drop(g);
    }
}
";
    let out = check(CONC, src);
    assert_eq!(new_for(&out, "lock-order").len(), 1, "{:?}", out.new);
}

#[test]
fn lock_order_negative() {
    // consistent global order in both functions
    let src = "\
use std::sync::Mutex;
pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
impl S {
    pub fn one(&self) {
        let g = self.alpha.lock().unwrap();
        let h = self.beta.lock().unwrap();
        drop(h);
        drop(g);
    }
    pub fn two(&self) {
        let g = self.alpha.lock().unwrap();
        let h = self.beta.lock().unwrap();
        drop(h);
        drop(g);
    }
}
";
    assert!(new_for(&check(CONC, src), "lock-order").is_empty());

    // opposite textual orders, but never nested: dropping the first
    // guard before the second acquisition means no pair is recorded
    let src = "\
use std::sync::Mutex;
pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
impl S {
    pub fn ab(&self) {
        let g = self.alpha.lock().unwrap();
        drop(g);
        let h = self.beta.lock().unwrap();
        drop(h);
    }
    pub fn ba(&self) {
        let g = self.beta.lock().unwrap();
        drop(g);
        let h = self.alpha.lock().unwrap();
        drop(h);
    }
}
";
    assert!(new_for(&check(CONC, src), "lock-order").is_empty());
}

#[test]
fn lock_order_suppressed() {
    // the diagnostic anchors at the lexicographically-earlier direction:
    // taking `beta` while `alpha` is held inside `ab`
    let src = LOCK_INVERSION.replace(
        "        let h = self.beta.lock().unwrap();\n        drop(h);\n        drop(g);\n    }\n    pub fn ba",
        "        // lint:allow(lock-order): fixture-justified nested acquisition\n        let h = self.beta.lock().unwrap();\n        drop(h);\n        drop(g);\n    }\n    pub fn ba",
    );
    let out = check(CONC, &src);
    assert!(new_for(&out, "lock-order").is_empty(), "{:?}", out.new);
    assert_eq!(
        out.suppressed
            .iter()
            .filter(|s| s.violation.rule == "lock-order")
            .count(),
        1
    );
}

#[test]
fn lock_order_baseline_masked() {
    let mut baseline = Baseline::empty();
    baseline.set("lock-order", CONC, 1);
    let out = check_with(CONC, LOCK_INVERSION, baseline);
    assert!(new_for(&out, "lock-order").is_empty(), "{:?}", out.new);
    assert_eq!(
        out.baselined
            .iter()
            .filter(|v| v.rule == "lock-order")
            .count(),
        1
    );
}

// --- atomic-ordering --------------------------------------------------------

const RELAXED_SPIN: &str = "\
use std::sync::atomic::{AtomicBool, Ordering};
pub struct S { stop: AtomicBool }
impl S {
    pub fn run(&self) {
        while !self.stop.load(Ordering::Relaxed) {
            std::hint::spin_loop();
        }
    }
    pub fn halt(&self) {
        self.stop.store(true, Ordering::Release);
    }
}
";

#[test]
fn atomic_ordering_positive() {
    let out = check(CONC, RELAXED_SPIN);
    let vs = new_for(&out, "atomic-ordering");
    assert_eq!(vs.len(), 1, "{:?}", out.new);
    assert!(vs[0].message.contains("Relaxed") && vs[0].message.contains("stop"));
    assert!(
        vs[0].message.contains("halt"),
        "cites the writer: {}",
        vs[0].message
    );
}

#[test]
fn atomic_ordering_negative() {
    // Acquire load: correct pairing, quiet
    let src = RELAXED_SPIN.replace("Ordering::Relaxed", "Ordering::Acquire");
    assert!(new_for(&check(CONC, &src), "atomic-ordering").is_empty());

    // Relaxed load, but nothing else writes the flag: single-threaded
    let src = "\
use std::sync::atomic::{AtomicBool, Ordering};
pub struct S { stop: AtomicBool }
impl S {
    pub fn run(&self) {
        self.stop.store(true, Ordering::Relaxed);
        while !self.stop.load(Ordering::Relaxed) {
            std::hint::spin_loop();
        }
    }
}
";
    assert!(new_for(&check(CONC, src), "atomic-ordering").is_empty());

    // Relaxed load outside any condition: a value read, not a gate
    let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
pub struct S { count: AtomicU64 }
impl S {
    pub fn snapshot(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
    pub fn bump(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}
";
    assert!(new_for(&check(CONC, src), "atomic-ordering").is_empty());
}

#[test]
fn atomic_ordering_suppressed() {
    let src = RELAXED_SPIN.replace(
        "        while !self.stop.load(Ordering::Relaxed) {",
        "        // lint:allow(atomic-ordering): the enclosing mutex orders these accesses\n        while !self.stop.load(Ordering::Relaxed) {",
    );
    let out = check(CONC, &src);
    assert!(new_for(&out, "atomic-ordering").is_empty(), "{:?}", out.new);
    assert_eq!(
        out.suppressed
            .iter()
            .filter(|s| s.violation.rule == "atomic-ordering")
            .count(),
        1
    );
}

#[test]
fn atomic_ordering_baseline_masked() {
    let mut baseline = Baseline::empty();
    baseline.set("atomic-ordering", CONC, 1);
    let out = check_with(CONC, RELAXED_SPIN, baseline);
    assert!(new_for(&out, "atomic-ordering").is_empty(), "{:?}", out.new);
    assert_eq!(
        out.baselined
            .iter()
            .filter(|v| v.rule == "atomic-ordering")
            .count(),
        1
    );
}

// --- panic-surface ----------------------------------------------------------

/// A config whose only protected root lives in the fixture crate.
fn rooted_config() -> Config {
    Config {
        protected_roots: vec!["obs::root".to_string()],
        ..Config::default()
    }
}

// The panic is one call away from the root: only the transitive analysis
// can see it.
const INDIRECT_PANIC: &str = "\
fn helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
pub fn root() -> u32 {
    helper(None)
}
";

#[test]
fn panic_surface_positive_two_function_indirect_panic() {
    let out = check_cfg(CONC, INDIRECT_PANIC, rooted_config());
    let vs = new_for(&out, "panic-surface");
    assert_eq!(vs.len(), 1, "{:?}", out.new);
    assert!(vs[0].message.contains("protected root `obs::root`"));
    assert!(
        vs[0].message.contains("helper"),
        "witness chain must name the intermediate fn: {}",
        vs[0].message
    );
}

#[test]
fn panic_surface_negative() {
    // panic-free helper: nothing to reach
    let src = "\
fn helper(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
pub fn root() -> u32 {
    helper(None)
}
";
    let out = check_cfg(CONC, src, rooted_config());
    assert!(new_for(&out, "panic-surface").is_empty(), "{:?}", out.new);

    // the panicking call is shielded by catch_unwind
    let src = "\
fn helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
pub fn root() -> u32 {
    std::panic::catch_unwind(|| helper(None)).unwrap_or(0)
}
";
    let out = check_cfg(CONC, src, rooted_config());
    assert!(new_for(&out, "panic-surface").is_empty(), "{:?}", out.new);
}

#[test]
fn panic_surface_missing_root_is_an_error_within_its_crate() {
    // the fixture file IS the obs crate here, so a root spec that matches
    // nothing must fail loudly (a rename would otherwise disable the check)
    let src = "pub fn not_the_root() {}\n";
    let out = check_cfg(CONC, src, rooted_config());
    let vs = new_for(&out, "panic-surface");
    assert_eq!(vs.len(), 1, "{:?}", out.new);
    assert!(vs[0].message.contains("matches no function"));
}

#[test]
fn panic_surface_suppressed() {
    let src = INDIRECT_PANIC.replace(
        "pub fn root()",
        "// lint:allow(panic-surface): fixture demonstrates suppression plumbing\npub fn root()",
    );
    let out = check_cfg(CONC, &src, rooted_config());
    assert!(new_for(&out, "panic-surface").is_empty(), "{:?}", out.new);
    assert_eq!(
        out.suppressed
            .iter()
            .filter(|s| s.violation.rule == "panic-surface")
            .count(),
        1
    );
}

#[test]
fn panic_surface_growth_is_ratcheted() {
    use mep_lint::surface::PanicSurface;
    let file = workspace::classify(CONC).expect("fixture path must classify");
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";

    // committed ratchet already lists the entry: quiet
    let mut committed = PanicSurface::default();
    committed
        .crates
        .entry("obs".to_string())
        .or_default()
        .insert(format!("{CONC}::f"));
    let mut engine = Engine::new(Config::default(), Baseline::empty());
    engine.panic_ratchet = Some(committed);
    let mut out = Outcome::default();
    engine.check_source(&file, src, &mut out);
    assert!(new_for(&out, "panic-surface").is_empty(), "{:?}", out.new);

    // empty ratchet: the same surface is growth and fails
    let mut engine = Engine::new(Config::default(), Baseline::empty());
    engine.panic_ratchet = Some(PanicSurface::default());
    let mut out = Outcome::default();
    engine.check_source(&file, src, &mut out);
    let vs = new_for(&out, "panic-surface");
    assert_eq!(vs.len(), 1, "{:?}", out.new);
    assert!(vs[0].message.contains("panic surface grew"));
    assert!(vs[0].message.contains("re-ratchet"));

    // the computed surface artifact is always attached to the outcome
    let surface = out.panic_surface.expect("surface present after check");
    assert!(surface.crates["obs"].contains(&format!("{CONC}::f")));
}

#[test]
fn panic_surface_growth_masked_by_baseline_allowance() {
    // `mep-lint baseline` never writes panic-surface allowances, but the
    // engine's masking semantics stay uniform: a hand-written allowance
    // masks a growth diagnostic like any other rule's.
    use mep_lint::surface::PanicSurface;
    let file = workspace::classify(CONC).expect("fixture path must classify");
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let mut baseline = Baseline::empty();
    baseline.set("panic-surface", CONC, 1);
    let mut engine = Engine::new(Config::default(), baseline);
    engine.panic_ratchet = Some(PanicSurface::default());
    let mut out = Outcome::default();
    engine.check_source(&file, src, &mut out);
    assert!(new_for(&out, "panic-surface").is_empty(), "{:?}", out.new);
    assert_eq!(
        out.baselined
            .iter()
            .filter(|v| v.rule == "panic-surface")
            .count(),
        1
    );
}
