//! Nonlinear first-order optimizers for analytical placement.
//!
//! The paper's flow uses ePlace's Nesterov method with Lipschitz steplength
//! prediction ([`nesterov::Nesterov`]); the crate also ships the baselines
//! discussed in its related work: Adam ([`adam::Adam`]), steepest descent
//! with Armijo line search ([`gd::GradientDescent`]), and the
//! Polak–Ribière–Polyak conjugate subgradient method
//! ([`cg::ConjugateSubgradient`]) used by non-smooth wirelength
//! optimization \[23\].
//!
//! Everything optimizes a [`problem::Problem`]: a flat parameter vector
//! with value + gradient, plus an optional projection (the placer clamps
//! cells into the die there).
//!
//! # Example
//!
//! ```
//! use mep_optim::{Optimizer, nesterov::Nesterov};
//! use mep_optim::problem::testfns::Quadratic;
//!
//! let mut problem = Quadratic { diag: vec![1.0, 4.0] };
//! let mut x = vec![1.0, 1.0];
//! let mut opt = Nesterov::new(0.01);
//! for _ in 0..100 {
//!     opt.step(&mut problem, &mut x);
//! }
//! assert!(x.iter().all(|v| v.abs() < 1e-3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels index several parallel arrays with one counter; the
// iterator rewrites clippy suggests obscure those loops.
#![allow(clippy::needless_range_loop)]

pub mod adam;
pub mod cg;
pub mod gd;
pub mod nesterov;
pub mod problem;

pub use problem::Problem;

/// Per-iteration optimizer telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Objective value at the point where the step's gradient was taken.
    pub value: f64,
    /// Euclidean norm of that gradient.
    pub grad_norm: f64,
    /// Steplength actually used.
    pub step: f64,
}

/// A stateful first-order optimizer advancing one iterate per call.
pub trait Optimizer {
    /// Short display name.
    fn name(&self) -> &'static str;

    /// Performs one major iteration, updating `x` in place.
    fn step(&mut self, problem: &mut dyn Problem, x: &mut [f64]) -> StepReport;

    /// Clears internal state (momenta, steplength history).
    fn reset(&mut self);

    /// Shrinks the working steplength by `factor` after a recovery rollback
    /// (a tripped numerical guard in the caller). The default is a no-op so
    /// optimizers without a steplength concept can ignore it; implementors
    /// should also discard momentum built on the now-abandoned iterates.
    fn backoff(&mut self, _factor: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testfns::Quadratic;

    /// Acceleration matters: on an ill-conditioned quadratic, Nesterov
    /// needs far fewer iterations than plain gradient descent to reach the
    /// same tolerance — the reason ePlace adopted it.
    #[test]
    fn nesterov_converges_faster_than_gd_when_ill_conditioned() {
        let diag = vec![1.0, 10.0, 100.0, 1000.0];
        let tol = 1e-6;
        let iters_to_tol = |opt: &mut dyn Optimizer| -> usize {
            let mut p = Quadratic { diag: diag.clone() };
            let mut x = vec![1.0; 4];
            for k in 0..20000 {
                let r = opt.step(&mut p, &mut x);
                if r.value < tol {
                    return k;
                }
            }
            20000
        };
        let n = iters_to_tol(&mut nesterov::Nesterov::new(1e-4));
        let g = iters_to_tol(&mut gd::GradientDescent::new(1.0 / 1000.0));
        assert!(
            n * 3 < g,
            "expected ≥3× speedup: nesterov {n} vs gd {g} iterations"
        );
    }

    #[test]
    fn all_optimizers_descend_a_quadratic() {
        let optimizers: Vec<Box<dyn Optimizer>> = vec![
            Box::new(nesterov::Nesterov::new(0.01)),
            Box::new(adam::Adam::new(0.1)),
            Box::new(gd::GradientDescent::new(1.0)),
            Box::new(cg::ConjugateSubgradient::new(1.0)),
        ];
        for mut opt in optimizers {
            let mut p = Quadratic {
                diag: vec![1.0, 3.0],
            };
            let mut x = vec![2.0, -2.0];
            let first = opt.step(&mut p, &mut x).value;
            let mut last = first;
            for _ in 0..500 {
                last = opt.step(&mut p, &mut x).value;
            }
            assert!(last < 0.05 * first, "{}: {first} → {last}", opt.name());
        }
    }
}
