//! Nesterov's accelerated method with Lipschitz steplength prediction —
//! the ePlace \[18\] optimizer used by DREAMPlace and by the paper.
//!
//! Per major iteration, with reference point `v_k` and solution `u_k`:
//!
//! ```text
//! α_k      = ‖v_k − v_{k−1}‖ / ‖∇f(v_k) − ∇f(v_{k−1})‖   (inverse Lipschitz)
//! u_{k+1}  = v_k − α_k ∇f(v_k)
//! a_{k+1}  = (1 + √(4a_k² + 1)) / 2
//! v_{k+1}  = u_{k+1} + (a_k − 1)(u_{k+1} − u_k) / a_{k+1}
//! ```
//!
//! with ePlace's backtracking: after forming `v_{k+1}`, the predicted
//! steplength at the new point is checked; if it is smaller than the one
//! used, the step is redone with the smaller value (bounded retries).

use crate::problem::{distance, norm, Problem};
use crate::{Optimizer, StepReport};

/// Nesterov optimizer with ePlace steplength prediction.
#[derive(Debug, Clone)]
pub struct Nesterov {
    /// Initial steplength used before any curvature information exists.
    initial_step: f64,
    /// Maximum backtracking retries per iteration (ePlace uses a small cap).
    max_backtrack: usize,
    a: f64,
    // state vectors (empty until the first step)
    u: Vec<f64>,
    v: Vec<f64>,
    v_prev: Vec<f64>,
    g: Vec<f64>,
    g_prev: Vec<f64>,
    u_new: Vec<f64>,
    v_new: Vec<f64>,
    g_new: Vec<f64>,
    step: f64,
    initialized: bool,
}

impl Nesterov {
    /// Creates the optimizer; `initial_step` sets the very first move's
    /// scale (the placer passes a fraction of the bin size).
    pub fn new(initial_step: f64) -> Self {
        Self {
            initial_step,
            max_backtrack: 2,
            a: 1.0,
            u: Vec::new(),
            v: Vec::new(),
            v_prev: Vec::new(),
            g: Vec::new(),
            g_prev: Vec::new(),
            u_new: Vec::new(),
            v_new: Vec::new(),
            g_new: Vec::new(),
            step: 0.0,
            initialized: false,
        }
    }

    /// Overrides the backtracking cap.
    pub fn with_max_backtrack(mut self, n: usize) -> Self {
        self.max_backtrack = n;
        self
    }

    fn ensure_init(&mut self, problem: &mut dyn Problem, x: &[f64]) {
        if self.initialized {
            return;
        }
        let n = problem.dim();
        self.u = x.to_vec();
        self.v = x.to_vec();
        self.v_prev = x.to_vec();
        self.g = vec![0.0; n];
        self.g_prev = vec![0.0; n];
        self.u_new = vec![0.0; n];
        self.v_new = vec![0.0; n];
        self.g_new = vec![0.0; n];
        self.step = self.initial_step;
        self.a = 1.0;
        self.initialized = true;
    }
}

impl Optimizer for Nesterov {
    fn name(&self) -> &'static str {
        "Nesterov"
    }

    fn reset(&mut self) {
        self.initialized = false;
    }

    fn backoff(&mut self, factor: f64) {
        // Restart from the caller's (restored) iterate with a shrunken
        // initial steplength: momentum and the Lipschitz history were built
        // on the abandoned trajectory and must not leak into the retry.
        let base = if self.step > 0.0 && self.step.is_finite() {
            self.step
        } else {
            self.initial_step
        };
        self.initial_step = (base * factor).max(f64::MIN_POSITIVE);
        self.initialized = false;
    }

    fn step(&mut self, problem: &mut dyn Problem, x: &mut [f64]) -> StepReport {
        self.ensure_init(problem, x);
        let n = x.len();
        let value = problem.eval(&self.v, &mut self.g);

        // steplength prediction from the last two reference gradients
        let mut alpha = {
            let dg = distance(&self.g, &self.g_prev);
            let dv = distance(&self.v, &self.v_prev);
            if dg > 1e-30 && dv > 0.0 {
                dv / dg
            } else {
                self.step.max(self.initial_step)
            }
        };

        let a_next = 0.5 * (1.0 + (4.0 * self.a * self.a + 1.0).sqrt());
        let coef = (self.a - 1.0) / a_next;

        let mut accepted = false;
        for _try in 0..=self.max_backtrack {
            for i in 0..n {
                self.u_new[i] = self.v[i] - alpha * self.g[i];
            }
            problem.project(&mut self.u_new);
            for i in 0..n {
                self.v_new[i] = self.u_new[i] + coef * (self.u_new[i] - self.u[i]);
            }
            problem.project(&mut self.v_new);
            // backtracking check: predicted steplength at the new point
            problem.eval(&self.v_new, &mut self.g_new);
            let dg = distance(&self.g_new, &self.g);
            let dv = distance(&self.v_new, &self.v);
            let alpha_hat = if dg > 1e-30 { dv / dg } else { alpha };
            // lint:allow(float-eq): guards the division below; exactly zero is the only dangerous value
            if alpha_hat >= 0.95 * alpha || dv == 0.0 {
                accepted = true;
                break;
            }
            alpha = alpha_hat;
        }
        let _ = accepted; // bounded retries: last trial is taken regardless

        // commit
        self.v_prev.copy_from_slice(&self.v);
        self.g_prev.copy_from_slice(&self.g);
        self.u.copy_from_slice(&self.u_new);
        self.v.copy_from_slice(&self.v_new);
        self.a = a_next;
        self.step = alpha;
        x.copy_from_slice(&self.u);

        StepReport {
            value,
            grad_norm: norm(&self.g),
            step: alpha,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testfns::{Quadratic, Rosenbrock};

    #[test]
    fn minimizes_quadratic_fast() {
        let mut p = Quadratic {
            diag: vec![1.0, 10.0, 100.0],
        };
        let mut x = vec![1.0, 1.0, 1.0];
        let mut opt = Nesterov::new(0.001);
        for _ in 0..400 {
            opt.step(&mut p, &mut x);
        }
        let mut g = vec![0.0; 3];
        let f = p.eval(&x, &mut g);
        assert!(f < 1e-5, "f = {f}, x = {x:?}");
    }

    #[test]
    fn makes_progress_on_rosenbrock() {
        let mut p = Rosenbrock;
        let mut x = vec![-1.2, 1.0];
        let mut g = vec![0.0; 2];
        let f0 = p.eval(&x, &mut g);
        let mut opt = Nesterov::new(1e-4);
        for _ in 0..500 {
            opt.step(&mut p, &mut x);
        }
        let f1 = p.eval(&x, &mut g);
        assert!(f1 < 0.05 * f0, "f0 = {f0}, f1 = {f1}");
    }

    #[test]
    fn respects_projection() {
        struct Boxed(Quadratic);
        impl Problem for Boxed {
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn eval(&mut self, x: &[f64], g: &mut [f64]) -> f64 {
                self.0.eval(x, g)
            }
            fn project(&self, x: &mut [f64]) {
                for v in x.iter_mut() {
                    *v = v.clamp(0.5, 10.0);
                }
            }
        }
        let mut p = Boxed(Quadratic {
            diag: vec![1.0, 1.0],
        });
        let mut x = vec![5.0, 5.0];
        let mut opt = Nesterov::new(0.1);
        for _ in 0..100 {
            opt.step(&mut p, &mut x);
        }
        // unconstrained minimum is 0; projection pins it at 0.5
        for &v in &x {
            assert!((v - 0.5).abs() < 1e-9, "x = {x:?}");
        }
    }

    #[test]
    fn reset_restarts_cleanly() {
        let mut p = Quadratic {
            diag: vec![2.0, 2.0],
        };
        let mut x = vec![1.0, -1.0];
        let mut opt = Nesterov::new(0.01);
        for _ in 0..10 {
            opt.step(&mut p, &mut x);
        }
        opt.reset();
        let report = opt.step(&mut p, &mut x);
        assert!(report.value.is_finite());
        assert!(report.step > 0.0);
    }

    #[test]
    fn backoff_shrinks_steplength_and_restarts() {
        let mut p = Quadratic {
            diag: vec![1.0, 2.0],
        };
        let mut x = vec![1.0, 1.0];
        let mut opt = Nesterov::new(0.1);
        let before = opt.step(&mut p, &mut x).step;
        opt.backoff(0.5);
        let after = opt.step(&mut p, &mut x);
        assert!(after.value.is_finite());
        // the restarted first step uses the shrunken initial steplength
        assert!(
            after.step <= 0.5 * before + 1e-12,
            "step {} vs before {before}",
            after.step
        );
    }

    #[test]
    fn backoff_recovers_from_poisoned_state() {
        // even if the last predicted step was non-finite, backoff must leave
        // a usable positive steplength behind
        let mut opt = Nesterov::new(0.2);
        opt.step = f64::NAN;
        opt.initialized = true;
        opt.backoff(0.5);
        assert!(opt.initial_step > 0.0 && opt.initial_step.is_finite());
        assert!(!opt.initialized);
    }

    #[test]
    fn report_tracks_descent() {
        let mut p = Quadratic { diag: vec![1.0; 4] };
        let mut x = vec![2.0; 4];
        let mut opt = Nesterov::new(0.05);
        let mut prev = f64::INFINITY;
        for _ in 0..50 {
            let r = opt.step(&mut p, &mut x);
            assert!(r.value <= prev + 1e-9);
            prev = r.value;
        }
    }
}
