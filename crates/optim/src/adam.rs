//! Adam — an adaptive first-order baseline optimizer.
//!
//! Not used by the paper's flow (ePlace uses Nesterov) but provided as an
//! optional optimizer for ablations: the paper's conclusion points at
//! "novel optimizers" as future work.

use crate::problem::{norm, Problem};
use crate::{Optimizer, StepReport};

/// Adam with the standard bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    g: Vec<f64>,
}

impl Adam {
    /// Creates Adam with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
            g: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn name(&self) -> &'static str {
        "Adam"
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn step(&mut self, problem: &mut dyn Problem, x: &mut [f64]) -> StepReport {
        let n = x.len();
        if self.m.len() != n {
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
            self.g = vec![0.0; n];
            self.t = 0;
        }
        let value = problem.eval(x, &mut self.g);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..n {
            let gi = self.g[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * gi;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * gi * gi;
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            x[i] -= self.lr * mh / (vh.sqrt() + self.eps);
        }
        problem.project(x);
        StepReport {
            value,
            grad_norm: norm(&self.g),
            step: self.lr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testfns::{AbsSum, Quadratic};

    #[test]
    fn minimizes_quadratic() {
        let mut p = Quadratic {
            diag: vec![1.0, 50.0],
        };
        let mut x = vec![3.0, -2.0];
        let mut opt = Adam::new(0.1);
        for _ in 0..1000 {
            opt.step(&mut p, &mut x);
        }
        let mut g = vec![0.0; 2];
        assert!(p.eval(&x, &mut g) < 1e-4);
    }

    #[test]
    fn shrinks_non_smooth_abs_sum() {
        let mut p = AbsSum { n: 5 };
        let mut x = vec![1.0, -2.0, 0.5, 3.0, -0.1];
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            opt.step(&mut p, &mut x);
        }
        let mut g = vec![0.0; 5];
        assert!(p.eval(&x, &mut g) < 0.3);
    }

    #[test]
    fn reset_clears_moments() {
        let mut p = Quadratic { diag: vec![1.0] };
        let mut x = vec![1.0];
        let mut opt = Adam::new(0.1);
        opt.step(&mut p, &mut x);
        opt.reset();
        assert_eq!(opt.t, 0);
    }
}
