//! The optimization-problem abstraction.

/// A first-order unconstrained (or box-projected) minimization problem over
/// a flat parameter vector.
///
/// The placer flattens cell coordinates into one vector `[x…, y…]`; test
/// problems are classic analytic functions.
pub trait Problem {
    /// Number of parameters.
    fn dim(&self) -> usize;

    /// Objective value and gradient at `x` (gradient written into `grad`).
    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64;

    /// Projects an iterate onto the feasible set (default: no-op). The
    /// placer clamps cell centers into the die here.
    fn project(&self, _x: &mut [f64]) {}
}

/// Euclidean norm of a slice.
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Euclidean distance between two slices.
///
/// # Panics
///
/// Panics (debug builds) if lengths differ.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Dot product of two slices.
///
/// # Panics
///
/// Panics (debug builds) if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Classic test problems used by the optimizer unit tests.
pub mod testfns {
    use super::Problem;

    /// Convex quadratic `½ xᵀ diag(d) x`.
    #[derive(Debug, Clone)]
    pub struct Quadratic {
        /// Positive diagonal.
        pub diag: Vec<f64>,
    }

    impl Problem for Quadratic {
        fn dim(&self) -> usize {
            self.diag.len()
        }

        fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
            let mut f = 0.0;
            for i in 0..x.len() {
                grad[i] = self.diag[i] * x[i];
                f += 0.5 * self.diag[i] * x[i] * x[i];
            }
            f
        }
    }

    /// The 2-D Rosenbrock valley (non-convex, smooth).
    #[derive(Debug, Clone, Default)]
    pub struct Rosenbrock;

    impl Problem for Rosenbrock {
        fn dim(&self) -> usize {
            2
        }

        fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
            let (a, b) = (1.0, 100.0);
            let f = (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2);
            grad[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
            grad[1] = 2.0 * b * (x[1] - x[0] * x[0]);
            f
        }
    }

    /// Non-smooth `Σ |x_i|` with the sign subgradient — exercises the
    /// conjugate-subgradient baseline.
    #[derive(Debug, Clone)]
    pub struct AbsSum {
        /// Dimension.
        pub n: usize,
    }

    impl Problem for AbsSum {
        fn dim(&self) -> usize {
            self.n
        }

        fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
            let mut f = 0.0;
            for i in 0..x.len() {
                f += x[i].abs();
                grad[i] = if x[i] > 0.0 {
                    1.0
                } else if x[i] < 0.0 {
                    -1.0
                } else {
                    0.0
                };
            }
            f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_and_dots() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(distance(&[1.0, 1.0], &[4.0, 5.0]), 5.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn quadratic_gradient() {
        use testfns::Quadratic;
        let mut q = Quadratic {
            diag: vec![2.0, 4.0],
        };
        let mut g = [0.0; 2];
        let f = q.eval(&[1.0, 1.0], &mut g);
        assert_eq!(f, 3.0);
        assert_eq!(g, [2.0, 4.0]);
    }

    #[test]
    fn rosenbrock_minimum_at_one_one() {
        use testfns::Rosenbrock;
        let mut r = Rosenbrock;
        let mut g = [0.0; 2];
        let f = r.eval(&[1.0, 1.0], &mut g);
        assert_eq!(f, 0.0);
        assert!(g[0].abs() < 1e-12 && g[1].abs() < 1e-12);
    }
}
