//! Gradient descent with Armijo backtracking line search — the simplest
//! correct baseline, used in tests and ablations.

use crate::problem::{dot, norm, Problem};
use crate::{Optimizer, StepReport};

/// Steepest descent with Armijo backtracking.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    /// Initial trial step each iteration.
    pub step0: f64,
    /// Armijo sufficient-decrease constant.
    pub c1: f64,
    /// Backtracking shrink factor.
    pub shrink: f64,
    /// Maximum backtracking halvings.
    pub max_backtrack: usize,
    g: Vec<f64>,
    g_scratch: Vec<f64>,
    trial: Vec<f64>,
}

impl GradientDescent {
    /// Creates the optimizer with trial step `step0`.
    pub fn new(step0: f64) -> Self {
        Self {
            step0,
            c1: 1e-4,
            shrink: 0.5,
            max_backtrack: 30,
            g: Vec::new(),
            g_scratch: Vec::new(),
            trial: Vec::new(),
        }
    }
}

impl Optimizer for GradientDescent {
    fn name(&self) -> &'static str {
        "GD"
    }

    fn reset(&mut self) {}

    fn step(&mut self, problem: &mut dyn Problem, x: &mut [f64]) -> StepReport {
        let n = x.len();
        self.g.resize(n, 0.0);
        self.g_scratch.resize(n, 0.0);
        self.trial.resize(n, 0.0);
        let f0 = problem.eval(x, &mut self.g);
        let gg = dot(&self.g, &self.g);
        let mut alpha = self.step0;
        let mut accepted_f = f0;
        for _ in 0..self.max_backtrack {
            for i in 0..n {
                self.trial[i] = x[i] - alpha * self.g[i];
            }
            problem.project(&mut self.trial);
            let f_trial = problem.eval(&self.trial, &mut self.g_scratch);
            if f_trial <= f0 - self.c1 * alpha * gg {
                accepted_f = f_trial;
                x.copy_from_slice(&self.trial);
                break;
            }
            alpha *= self.shrink;
        }
        let _ = accepted_f;
        StepReport {
            value: f0,
            grad_norm: gg.sqrt(),
            step: alpha,
        }
    }
}

/// Wrapper making [`norm`] visible for the report (kept private otherwise).
#[allow(dead_code)]
fn _norm_is_used(v: &[f64]) -> f64 {
    norm(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testfns::{Quadratic, Rosenbrock};

    #[test]
    fn minimizes_quadratic() {
        let mut p = Quadratic {
            diag: vec![1.0, 10.0],
        };
        let mut x = vec![4.0, -3.0];
        let mut opt = GradientDescent::new(1.0);
        for _ in 0..300 {
            opt.step(&mut p, &mut x);
        }
        let mut g = vec![0.0; 2];
        assert!(p.eval(&x, &mut g) < 1e-8);
    }

    #[test]
    fn line_search_never_increases_objective() {
        let mut p = Rosenbrock;
        let mut x = vec![-1.2, 1.0];
        let mut opt = GradientDescent::new(1.0);
        let mut prev = f64::INFINITY;
        for _ in 0..100 {
            let r = opt.step(&mut p, &mut x);
            assert!(r.value <= prev + 1e-12);
            prev = r.value;
        }
    }
}
