//! Polak–Ribière–Polyak conjugate (sub)gradient method \[23, 24\].
//!
//! The paper's related work (§I) discusses non-smooth optimization that
//! drives the exact `ℓ1`/HPWL objective with subgradients and PRP conjugate
//! directions instead of smoothing. This is that baseline: a PRP+ direction
//! update with a diminishing, non-monotone step rule suitable for
//! subgradients (plain line search can stall on kinks).

use crate::problem::{dot, norm, Problem};
use crate::{Optimizer, StepReport};

/// PRP+ conjugate subgradient optimizer.
#[derive(Debug, Clone)]
pub struct ConjugateSubgradient {
    /// Base step scale `s0`; iteration `k` uses `s0 / √(k+1)`.
    pub step0: f64,
    k: u64,
    g: Vec<f64>,
    g_prev: Vec<f64>,
    d: Vec<f64>,
}

impl ConjugateSubgradient {
    /// Creates the optimizer with base step `step0`.
    pub fn new(step0: f64) -> Self {
        Self {
            step0,
            k: 0,
            g: Vec::new(),
            g_prev: Vec::new(),
            d: Vec::new(),
        }
    }
}

impl Optimizer for ConjugateSubgradient {
    fn name(&self) -> &'static str {
        "PRP-CG"
    }

    fn reset(&mut self) {
        self.k = 0;
        self.g.clear();
        self.g_prev.clear();
        self.d.clear();
    }

    fn step(&mut self, problem: &mut dyn Problem, x: &mut [f64]) -> StepReport {
        let n = x.len();
        if self.g.len() != n {
            self.g = vec![0.0; n];
            self.g_prev = vec![0.0; n];
            self.d = vec![0.0; n];
            self.k = 0;
        }
        let value = problem.eval(x, &mut self.g);
        // PRP+ coefficient: β = max(0, gᵀ(g − g_prev) / ‖g_prev‖²)
        let beta = if self.k == 0 {
            0.0
        } else {
            let denom = dot(&self.g_prev, &self.g_prev);
            if denom > 1e-30 {
                let mut num = 0.0;
                for i in 0..n {
                    num += self.g[i] * (self.g[i] - self.g_prev[i]);
                }
                (num / denom).max(0.0)
            } else {
                0.0
            }
        };
        for i in 0..n {
            self.d[i] = -self.g[i] + beta * self.d[i];
        }
        // safeguard: fall back to steepest descent when d is not a descent
        // direction (possible with subgradients)
        if dot(&self.d, &self.g) > 0.0 {
            for i in 0..n {
                self.d[i] = -self.g[i];
            }
        }
        let dn = norm(&self.d).max(1e-30);
        let step = self.step0 / ((self.k + 1) as f64).sqrt();
        for i in 0..n {
            x[i] += step * self.d[i] / dn;
        }
        problem.project(x);
        self.g_prev.copy_from_slice(&self.g);
        self.k += 1;
        StepReport {
            value,
            grad_norm: norm(&self.g),
            step,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testfns::{AbsSum, Quadratic};

    #[test]
    fn minimizes_quadratic() {
        let mut p = Quadratic {
            diag: vec![1.0, 5.0, 25.0],
        };
        let mut x = vec![2.0, 2.0, 2.0];
        let mut opt = ConjugateSubgradient::new(1.0);
        let mut best = f64::INFINITY;
        for _ in 0..2000 {
            let r = opt.step(&mut p, &mut x);
            best = best.min(r.value);
        }
        assert!(best < 1e-2, "best = {best}");
    }

    #[test]
    fn handles_non_smooth_abs_sum() {
        let mut p = AbsSum { n: 8 };
        let mut x: Vec<f64> = (0..8).map(|i| (i as f64 - 3.5) * 0.7).collect();
        let mut opt = ConjugateSubgradient::new(0.5);
        let mut best = f64::INFINITY;
        for _ in 0..3000 {
            let r = opt.step(&mut p, &mut x);
            best = best.min(r.value);
        }
        // subgradient methods converge slowly but surely on |·|
        assert!(best < 0.5, "best = {best}");
    }

    #[test]
    fn diminishing_steps() {
        let mut p = Quadratic { diag: vec![1.0] };
        let mut x = vec![1.0];
        let mut opt = ConjugateSubgradient::new(1.0);
        let s1 = opt.step(&mut p, &mut x).step;
        let s2 = opt.step(&mut p, &mut x).step;
        assert!(s2 < s1);
    }
}
