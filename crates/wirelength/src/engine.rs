//! Persistent parallel evaluation engine for the placement hot loop.
//!
//! Global placement evaluates the objective hundreds of times; spawning
//! threads and allocating gradient buffers per evaluation dominates the
//! small-to-medium design profile. [`EvalEngine`] fixes both:
//!
//! * a **long-lived worker pool** is spawned lazily on the first parallel
//!   run and reused until the engine is dropped — zero thread spawns per
//!   evaluation after warm-up;
//! * a generic [`EvalEngine::run`] primitive executes a closure over `P`
//!   *parts* (work items claimed dynamically by the pool **and** the
//!   calling thread), on top of which evaluators keep per-part workspace
//!   arenas alive across iterations;
//! * lightweight **instrumentation** ([`EngineStats`]) counts thread
//!   spawns, parallel/serial runs, workspace (re)allocations, and
//!   per-stage evaluation counts and wall time.
//!
//! # Determinism contract
//!
//! `run(parts, f)` guarantees each part index in `0..parts` is executed
//! exactly once, but on an unspecified thread in unspecified order.
//! Callers that want results independent of the thread count must make
//! each part's output depend only on its part index (disjoint output
//! slots), then combine the parts in a fixed order on the calling thread.
//! [`crate::NetlistEvaluator`] does exactly this, and is bit-identical
//! across thread counts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Below this item count (nets, cells, …) parallel dispatch is not worth
/// the synchronization; evaluators fall back to the serial path.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

/// The workspace-wide thread-count policy: available parallelism capped at
/// 16 (beyond that, memory bandwidth dominates wirelength evaluation).
///
/// The `MEP_THREADS` environment variable overrides the detected count
/// (clamped to `1..=256`). Unset falls back to detection silently; a set
/// but unparsable value (empty string, `0x8`, `four`, …) is **rejected**
/// with a one-line stderr warning — printed once per process — and also
/// falls back to detection, so a typo degrades noisily instead of being
/// silently swallowed. This is the single source of truth — config
/// defaults in every crate route through it.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MEP_THREADS") {
        match parse_mep_threads(&v) {
            Ok(n) => return n,
            Err(reason) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: ignoring MEP_THREADS={v:?} ({reason}); using detected parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Strict parser behind the `MEP_THREADS` override: a plain base-10
/// integer (surrounding whitespace allowed), clamped to `1..=256`.
/// Anything else — empty string, hex like `0x8`, signs, words — is an
/// error carrying the reason; [`default_threads`] turns that into a
/// one-line warning plus detection fallback rather than guessing.
pub fn parse_mep_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        // lint:allow(no-alloc-hot): cold env-parsing error path, runs at most once per process
        return Err("empty value".to_string());
    }
    if !trimmed.bytes().all(|b| b.is_ascii_digit()) {
        // digit-strict: `parse::<usize>` would accept a leading `+`,
        // which is exactly the kind of almost-a-number this rejects
        // lint:allow(no-alloc-hot): cold env-parsing error path, runs at most once per process
        return Err(format!("not a base-10 thread count: {trimmed:?}"));
    }
    match trimmed.parse::<usize>() {
        Ok(n) => Ok(n.clamp(1, 256)),
        // lint:allow(no-alloc-hot): cold env-parsing error path, runs at most once per process
        Err(_) => Err(format!("not a base-10 thread count: {trimmed:?}")),
    }
}

/// Pipeline stages the engine attributes evaluation time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wirelength value + gradient evaluation.
    WlGrad,
    /// Wirelength value-only evaluation.
    WlValue,
    /// Density update + gradient accumulation.
    Density,
    /// Planned 2-D spectral transforms inside the density stage (a subset
    /// of [`Stage::Density`] wall time, counted per `transform_2d`-
    /// equivalent sweep).
    DensityTransform,
}

impl Stage {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            Stage::WlGrad => 0,
            Stage::WlValue => 1,
            Stage::Density => 2,
            Stage::DensityTransform => 3,
        }
    }
}

/// Count and cumulative wall time of one [`Stage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Evaluations attributed to the stage.
    pub count: u64,
    /// Cumulative wall time, nanoseconds.
    pub nanos: u64,
}

impl StageStats {
    /// Cumulative wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 * 1e-9
    }
}

/// Snapshot of the engine's instrumentation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Configured worker-thread budget.
    pub threads: usize,
    /// OS threads spawned so far (pool construction only; a warmed-up
    /// engine performs zero spawns per evaluation).
    pub spawned_threads: u64,
    /// `run` calls dispatched to the pool.
    pub parallel_runs: u64,
    /// `run`/`run_serial` calls executed on the calling thread.
    pub serial_runs: u64,
    /// Workspace arena (re)allocations noted by evaluators; stays flat
    /// across iterations once topology is warm.
    pub workspace_allocs: u64,
    /// Wirelength value+gradient stage.
    pub wl_grad: StageStats,
    /// Wirelength value-only stage.
    pub wl_value: StageStats,
    /// Density stage.
    pub density: StageStats,
    /// Spectral-transform sub-stage of density (included in `density`).
    pub density_transform: StageStats,
}

#[derive(Debug, Default)]
struct StageCounter {
    count: AtomicU64,
    nanos: AtomicU64,
}

/// A unit of work shipped to a pool worker: a borrowed claiming loop.
///
/// The pointee lives on the stack frame of [`EvalEngine::run`], which does
/// not return before every worker acknowledges completion, so the borrow
/// is erased (and restored inside the worker) soundly.
struct Task {
    func: *const (dyn Fn() + Sync),
}

// SAFETY: `Task` is only constructed by `EvalEngine::run`, which holds the
// pool lock from dispatch until it has received one completion
// acknowledgement per dispatched task. The pointee therefore outlives
// every dereference, and `dyn Fn() + Sync` is safe to call from another
// thread.
unsafe impl Send for Task {}

enum Msg {
    Run(Task),
    Exit,
}

#[derive(Debug)]
struct PoolState {
    workers: Vec<std::thread::JoinHandle<()>>,
    senders: Vec<mpsc::Sender<Msg>>,
    done_tx: mpsc::Sender<()>,
    done_rx: mpsc::Receiver<()>,
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Msg::Run(_) => f.write_str("Run(..)"),
            Msg::Exit => f.write_str("Exit"),
        }
    }
}

/// Persistent parallel evaluation engine (see the module docs).
///
/// Create one per placement run (e.g. per `place()` call), share it with
/// `Arc`, and let every evaluation stage dispatch through it.
#[derive(Debug)]
pub struct EvalEngine {
    threads: usize,
    parallel_threshold: usize,
    pool: Mutex<Option<PoolState>>,
    panicked: AtomicBool,
    spawned_threads: AtomicU64,
    parallel_runs: AtomicU64,
    serial_runs: AtomicU64,
    workspace_allocs: AtomicU64,
    stages: [StageCounter; Stage::COUNT],
}

impl EvalEngine {
    /// Engine with a worker budget of `threads` (`1` = strictly serial; the
    /// pool is never spawned).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            pool: Mutex::new(None),
            panicked: AtomicBool::new(false),
            spawned_threads: AtomicU64::new(0),
            parallel_runs: AtomicU64::new(0),
            serial_runs: AtomicU64::new(0),
            workspace_allocs: AtomicU64::new(0),
            stages: Default::default(),
        }
    }

    /// Engine with the workspace-wide [`default_threads`] policy.
    pub fn with_default_threads() -> Self {
        Self::new(default_threads())
    }

    /// Overrides the work-size threshold below which evaluators should stay
    /// serial (mostly for tests forcing the parallel path on tiny inputs).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(1);
        self
    }

    /// Configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Work-size threshold below which evaluators should stay serial.
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }

    /// Executes `f(part)` for every part in `0..parts`, using the worker
    /// pool (plus the calling thread) when the engine has one.
    ///
    /// Parts are claimed dynamically, so per-part work may be uneven; the
    /// call returns once every part completed. Panics in `f` are caught on
    /// the workers and re-raised here.
    pub fn run(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        if parts == 0 {
            return;
        }
        if self.threads <= 1 || parts == 1 {
            self.run_serial(parts, f);
            return;
        }
        self.parallel_runs.fetch_add(1, Ordering::Relaxed);
        // lint:allow(no-panic-lib): a poisoned pool lock means a worker thread already panicked; propagating is correct
        let mut guard = self.pool.lock().expect("engine pool lock");
        let pool = self.ensure_spawned(&mut guard);

        let next = AtomicUsize::new(0);
        let panicked = &self.panicked;
        let claim_loop = move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= parts {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                panicked.store(true, Ordering::Relaxed);
            }
        };
        let local: &(dyn Fn() + Sync) = &claim_loop;
        // SAFETY: erases the stack lifetime of `claim_loop`; sound because
        // this function does not return before every dispatched task has
        // been acknowledged (see `Task`).
        let erased: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), _>(local) };
        let dispatched = pool.senders.len();
        for s in &pool.senders {
            s.send(Msg::Run(Task {
                func: erased as *const _,
            }))
            // lint:allow(no-panic-lib): a worker hangup only happens after a worker panic; crashing is the engine contract
            .expect("engine worker hung up");
        }
        // the calling thread is worker 0
        claim_loop();
        for _ in 0..dispatched {
            // lint:allow(no-panic-lib): a worker hangup only happens after a worker panic; crashing is the engine contract
            pool.done_rx.recv().expect("engine worker hung up");
        }
        drop(guard);
        if self.panicked.swap(false, Ordering::Relaxed) {
            // lint:allow(no-panic-lib): re-raises a caught worker panic on the caller thread; the guarded loop handles it
            panic!("evaluation engine worker panicked");
        }
    }

    /// Executes `f(part)` for every part in `0..parts` on the calling
    /// thread, in ascending part order.
    ///
    /// Evaluators use this below [`EvalEngine::parallel_threshold`]; by the
    /// determinism contract it produces outputs bit-identical to
    /// [`EvalEngine::run`].
    pub fn run_serial(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        self.serial_runs.fetch_add(1, Ordering::Relaxed);
        for i in 0..parts {
            f(i);
        }
    }

    fn ensure_spawned<'a>(&self, guard: &'a mut Option<PoolState>) -> &'a PoolState {
        guard.get_or_insert_with(|| {
            let workers_needed = self.threads - 1;
            let (done_tx, done_rx) = mpsc::channel();
            // lint:allow(no-alloc-hot): one-time pool construction, amortized across the whole run
            let mut workers = Vec::with_capacity(workers_needed);
            // lint:allow(no-alloc-hot): one-time pool construction, amortized across the whole run
            let mut senders = Vec::with_capacity(workers_needed);
            for w in 0..workers_needed {
                let (tx, rx) = mpsc::channel::<Msg>();
                let done = done_tx.clone();
                let handle = std::thread::Builder::new()
                    // lint:allow(no-alloc-hot): one-time pool construction, amortized across the whole run
                    .name(format!("mep-eval-{w}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                Msg::Run(task) => {
                                    // SAFETY: see `Task`.
                                    let f = unsafe { &*task.func };
                                    f();
                                    if done.send(()).is_err() {
                                        break;
                                    }
                                }
                                Msg::Exit => break,
                            }
                        }
                    })
                    // lint:allow(no-panic-lib): thread-spawn failure at pool construction is unrecoverable resource exhaustion
                    .expect("spawn engine worker");
                // lint:allow(no-alloc-hot): one-time pool construction, amortized across the whole run
                workers.push(handle);
                // lint:allow(no-alloc-hot): one-time pool construction, amortized across the whole run
                senders.push(tx);
            }
            self.spawned_threads
                .fetch_add(workers_needed as u64, Ordering::Relaxed);
            PoolState {
                workers,
                senders,
                done_tx,
                done_rx,
            }
        })
    }

    /// Times `f`, attributing the wall time (and one evaluation) to
    /// `stage`.
    pub fn time_stage<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        // lint:allow(determinism): EngineStats stage timing; durations never feed back into results
        let t0 = Instant::now();
        let r = f();
        let c = &self.stages[stage.index()];
        c.count.fetch_add(1, Ordering::Relaxed);
        c.nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    /// Attributes `count` evaluations and `nanos` of wall time measured
    /// elsewhere to `stage` — for sub-stages timed by subsystems (e.g. the
    /// density crate's spectral transforms) whose clocks the engine cannot
    /// wrap directly.
    pub fn add_stage_sample(&self, stage: Stage, count: u64, nanos: u64) {
        let c = &self.stages[stage.index()];
        c.count.fetch_add(count, Ordering::Relaxed);
        c.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one workspace arena (re)allocation. Evaluators call this
    /// when they (re)build topology-derived buffers; a warmed-up hot loop
    /// must keep this counter flat.
    pub fn note_workspace_alloc(&self) {
        self.workspace_allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Determinism self-check, for long-lived drivers reusing one engine
    /// across many jobs (the `mep-serve` daemon runs it after any job
    /// panic before the pool serves the next job).
    ///
    /// Dispatches a fixed known-answer workload through
    /// [`EvalEngine::run`] — more parts than any worker count, each part
    /// writing a deterministic bit pattern into its own slot — and checks
    /// every slot bitwise. Returns `false` when the pool mutex is
    /// poisoned, the workload itself panics, or any slot is missing or
    /// wrong (a wedged or dead worker); callers must then discard the
    /// engine and build a fresh one. Returns `true` on a healthy engine,
    /// which stays fully usable afterwards.
    pub fn revalidate(&self) -> bool {
        // a mutex poisoned by a panic while spawning/dispatching can
        // never be locked again; the pool is unrecoverable
        if self.pool.lock().is_err() {
            return false;
        }
        // odd and larger than the 256-thread cap would ever claim per
        // worker at once: exercises dynamic claiming across every worker
        const PARTS: usize = 97;
        fn known_answer(i: usize) -> u64 {
            (((i as f64) + 0.5).sin() * 1e9).to_bits()
        }
        // lint:allow(no-alloc-hot): cold re-validation path, runs only after a job panic
        let slots: Vec<AtomicU64> = (0..PARTS).map(|_| AtomicU64::new(u64::MAX)).collect();
        let run = catch_unwind(AssertUnwindSafe(|| {
            self.run(PARTS, &|i| {
                slots[i].store(known_answer(i), Ordering::Relaxed);
            });
        }));
        if run.is_err() {
            return false;
        }
        (0..PARTS).all(|i| slots[i].load(Ordering::Relaxed) == known_answer(i))
    }

    /// Snapshot of all instrumentation counters.
    pub fn stats(&self) -> EngineStats {
        let stage = |s: Stage| {
            let c = &self.stages[s.index()];
            StageStats {
                count: c.count.load(Ordering::Relaxed),
                nanos: c.nanos.load(Ordering::Relaxed),
            }
        };
        EngineStats {
            threads: self.threads,
            spawned_threads: self.spawned_threads.load(Ordering::Relaxed),
            parallel_runs: self.parallel_runs.load(Ordering::Relaxed),
            serial_runs: self.serial_runs.load(Ordering::Relaxed),
            workspace_allocs: self.workspace_allocs.load(Ordering::Relaxed),
            wl_grad: stage(Stage::WlGrad),
            wl_value: stage(Stage::WlValue),
            density: stage(Stage::Density),
            density_transform: stage(Stage::DensityTransform),
        }
    }

    /// Resets every counter except `spawned_threads` (the pool persists, so
    /// forgetting historical spawns would let a benchmark miss them).
    pub fn reset_stats(&self) {
        self.parallel_runs.store(0, Ordering::Relaxed);
        self.serial_runs.store(0, Ordering::Relaxed);
        self.workspace_allocs.store(0, Ordering::Relaxed);
        for c in &self.stages {
            c.count.store(0, Ordering::Relaxed);
            c.nanos.store(0, Ordering::Relaxed);
        }
    }
}

impl Drop for EvalEngine {
    fn drop(&mut self) {
        if let Ok(mut guard) = self.pool.lock() {
            if let Some(pool) = guard.take() {
                for s in &pool.senders {
                    let _ = s.send(Msg::Exit);
                }
                drop(pool.senders);
                drop(pool.done_tx);
                for w in pool.workers {
                    let _ = w.join();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn covers_every_part_exactly_once() {
        let engine = EvalEngine::new(4);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        engine.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "part {i}");
        }
    }

    #[test]
    fn pool_spawns_once_across_runs() {
        let engine = EvalEngine::new(3);
        for _ in 0..10 {
            engine.run(64, &|_| {});
        }
        let s = engine.stats();
        assert_eq!(s.spawned_threads, 2, "3 threads = caller + 2 workers");
        assert_eq!(s.parallel_runs, 10);
        assert_eq!(s.serial_runs, 0);
    }

    #[test]
    fn serial_engine_never_spawns() {
        let engine = EvalEngine::new(1);
        let sum = AtomicU32::new(0);
        engine.run(100, &|i| {
            sum.fetch_add(i as u32, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        let s = engine.stats();
        assert_eq!(s.spawned_threads, 0);
        assert_eq!(s.serial_runs, 1);
        assert_eq!(s.parallel_runs, 0);
    }

    #[test]
    fn single_part_stays_on_caller() {
        let engine = EvalEngine::new(8);
        engine.run(1, &|_| {});
        let s = engine.stats();
        assert_eq!(s.spawned_threads, 0);
        assert_eq!(s.serial_runs, 1);
    }

    #[test]
    fn worker_panic_propagates_and_engine_survives() {
        let engine = EvalEngine::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            engine.run(16, &|i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // engine remains usable
        let ok = AtomicU32::new(0);
        engine.run(16, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn stage_timing_accumulates() {
        let engine = EvalEngine::new(1);
        let x = engine.time_stage(Stage::WlGrad, || 41 + 1);
        assert_eq!(x, 42);
        engine.time_stage(Stage::WlGrad, || {});
        engine.time_stage(Stage::Density, || {});
        let s = engine.stats();
        assert_eq!(s.wl_grad.count, 2);
        assert_eq!(s.density.count, 1);
        assert_eq!(s.wl_value.count, 0);
        engine.reset_stats();
        assert_eq!(engine.stats().wl_grad.count, 0);
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        let t = default_threads();
        assert!((1..=256).contains(&t));
    }

    /// `MEP_THREADS` override, including clamping and fallback on garbage.
    /// Runs all cases in one test (env vars are process-global and the
    /// harness runs tests concurrently; no other test reads the variable).
    #[test]
    fn mep_threads_env_overrides_detection() {
        let detected = default_threads();
        for (val, want) in [("3", Some(3)), ("0", Some(1)), ("9999", Some(256))] {
            std::env::set_var("MEP_THREADS", val);
            assert_eq!(default_threads(), want.unwrap(), "MEP_THREADS={val}");
        }
        std::env::set_var("MEP_THREADS", "not-a-number");
        assert_eq!(default_threads(), detected);
        std::env::set_var("MEP_THREADS", "");
        assert_eq!(default_threads(), detected);
        std::env::remove_var("MEP_THREADS");
        assert_eq!(default_threads(), detected);
    }

    /// The strict parser: accepted shapes clamp, everything else is a
    /// typed rejection (no silent guessing for `0x8`-style garbage).
    #[test]
    fn parse_mep_threads_edge_cases() {
        assert_eq!(parse_mep_threads("8"), Ok(8));
        assert_eq!(parse_mep_threads(" 8 "), Ok(8), "whitespace trimmed");
        assert_eq!(parse_mep_threads("1"), Ok(1));
        assert_eq!(parse_mep_threads("0"), Ok(1), "clamped up");
        assert_eq!(parse_mep_threads("9999"), Ok(256), "clamped down");
        for garbage in [
            "",
            "   ",
            "0x8",
            "eight",
            "-1",
            "+4",
            "3.5",
            "2,000",
            "8 threads",
        ] {
            assert!(
                parse_mep_threads(garbage).is_err(),
                "{garbage:?} must be rejected, not coerced"
            );
        }
    }

    #[test]
    fn revalidate_passes_on_a_healthy_engine() {
        for threads in [1, 4] {
            let engine = EvalEngine::new(threads);
            assert!(engine.revalidate(), "threads = {threads}");
            // revalidation is repeatable and leaves the engine usable
            assert!(engine.revalidate());
            let hits = AtomicUsize::new(0);
            engine.run(8, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 8);
        }
    }

    #[test]
    fn revalidate_passes_after_a_caught_worker_panic() {
        let engine = EvalEngine::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            engine.run(16, &|i| {
                if i == 3 {
                    panic!("chaos");
                }
            });
        }));
        assert!(result.is_err());
        assert!(
            engine.revalidate(),
            "a re-raised worker panic must not poison the pool"
        );
    }
}
