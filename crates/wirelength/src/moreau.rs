//! The Moreau-envelope wirelength model — the paper's contribution.
//!
//! For one net with coordinates `x ∈ R^n` and HPWL span
//! `W_e(x) = max_i x_i − min_i x_i`, the Moreau envelope is
//!
//! ```text
//! W_e^t(x) = min_u W_e(u) + ‖u − x‖² / (2t)
//! ```
//!
//! Theorem 1 gives the minimizer in closed form up to two water levels
//! `τ1, τ2` (clamping), solved by [`crate::waterfill`]; Corollary 1 gives
//! the gradient `∇W_e^t = (x − prox_{tW_e}(x)) / t` (the envelope theorem).
//! The reported model value is `W_e^t + t`, as in the paper, which centres
//! the approximation error band of Theorem 2.

use crate::model::NetModel;
use crate::waterfill::TauPair;

/// Result of one envelope evaluation, exposing the intermediate quantities
/// (levels, prox) that tests and the Fig. 2 harness need
/// ([C-INTERMEDIATE]).
///
/// [C-INTERMEDIATE]: https://rust-lang.github.io/api-guidelines/flexibility.html
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeEval {
    /// The envelope value `W_e^t(x)` (without the `+t` offset).
    pub envelope: f64,
    /// Lower water level `τ1` (or the mean in the collapsed case).
    pub tau1: f64,
    /// Upper water level `τ2` (or the mean in the collapsed case).
    pub tau2: f64,
    /// Whether `τ1 > τ2` collapsed the prox to the mean coordinate.
    pub collapsed: bool,
}

/// Computes `prox_{tW_e}(x)` per Theorem 1 into `out`.
///
/// `x` need not be sorted. `O(n log n)` from the internal sort. Allocates
/// a per-call scratch copy; the hot loop uses [`prox_in`].
///
/// # Panics
///
/// Panics if `x` is empty, `out.len() != x.len()`, or `t ≤ 0`.
pub fn prox(x: &[f64], t: f64, out: &mut [f64]) -> EnvelopeEval {
    // lint:allow(no-alloc-hot): convenience wrapper; hot callers use the _in variant with engine workspace scratch
    prox_in(x, t, out, &mut Vec::new())
}

/// [`prox`] with a caller-provided scratch vector (e.g. an engine
/// workspace slot): zero allocations once `scratch` has grown to the
/// largest net degree.
///
/// # Panics
///
/// Panics if `x` is empty, `out.len() != x.len()`, or `t ≤ 0`.
pub fn prox_in(x: &[f64], t: f64, out: &mut [f64], scratch: &mut Vec<f64>) -> EnvelopeEval {
    assert_eq!(x.len(), out.len(), "output length must match input");
    scratch.clear();
    scratch.extend_from_slice(x);
    eval_sorted_scratch(scratch, x, t, None, Some(out))
}

/// Computes the envelope value and its gradient (Algorithm 1 + Corollary 1).
///
/// `grad` receives `∇W_e^t(x)`; the return value carries the envelope and
/// the water levels. `x` need not be sorted. Allocates a per-call scratch
/// copy; the hot loop uses [`eval_with_gradient_in`].
///
/// # Panics
///
/// Panics if `x` is empty, `grad.len() != x.len()`, or `t ≤ 0`.
pub fn eval_with_gradient(x: &[f64], t: f64, grad: &mut [f64]) -> EnvelopeEval {
    // lint:allow(no-alloc-hot): convenience wrapper; hot callers use the _in variant with engine workspace scratch
    eval_with_gradient_in(x, t, grad, &mut Vec::new())
}

/// [`eval_with_gradient`] with a caller-provided scratch vector: zero
/// allocations once `scratch` has grown to the largest net degree.
///
/// # Panics
///
/// Panics if `x` is empty, `grad.len() != x.len()`, or `t ≤ 0`.
pub fn eval_with_gradient_in(
    x: &[f64],
    t: f64,
    grad: &mut [f64],
    scratch: &mut Vec<f64>,
) -> EnvelopeEval {
    assert_eq!(x.len(), grad.len(), "gradient length must match input");
    scratch.clear();
    scratch.extend_from_slice(x);
    eval_sorted_scratch(scratch, x, t, Some(grad), None)
}

/// Envelope value only. Allocates a per-call scratch copy; the hot loop
/// uses [`envelope_in`].
///
/// # Panics
///
/// Panics if `x` is empty or `t ≤ 0`.
pub fn envelope(x: &[f64], t: f64) -> f64 {
    // lint:allow(no-alloc-hot): convenience wrapper; hot callers use the _in variant with engine workspace scratch
    envelope_in(x, t, &mut Vec::new())
}

/// [`envelope`] with a caller-provided scratch vector: zero allocations
/// once `scratch` has grown to the largest net degree.
///
/// # Panics
///
/// Panics if `x` is empty or `t ≤ 0`.
pub fn envelope_in(x: &[f64], t: f64, scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    scratch.extend_from_slice(x);
    eval_sorted_scratch(scratch, x, t, None, None).envelope
}

/// Branchless ascending sort of `v.len() ≤ 8` elements by optimal sorting
/// networks: every compare-exchange lowers to `minsd`/`maxsd`, no data-
/// dependent branches, no comparator closure. Nets of ≤ 8 pins are the
/// vast majority of every benchmark, so this removes the
/// `sort_unstable_by` dispatch from the model's hot path.
fn sort_small(v: &mut [f64]) {
    #[inline(always)]
    fn cx(v: &mut [f64], i: usize, j: usize) {
        let (a, b) = (v[i], v[j]);
        v[i] = a.min(b);
        v[j] = a.max(b);
    }
    match v.len() {
        0 | 1 => {}
        2 => cx(v, 0, 1),
        3 => {
            cx(v, 0, 1);
            cx(v, 0, 2);
            cx(v, 1, 2);
        }
        4 => {
            cx(v, 0, 1);
            cx(v, 2, 3);
            cx(v, 0, 2);
            cx(v, 1, 3);
            cx(v, 1, 2);
        }
        5 => {
            cx(v, 0, 1);
            cx(v, 3, 4);
            cx(v, 2, 4);
            cx(v, 2, 3);
            cx(v, 1, 4);
            cx(v, 0, 3);
            cx(v, 0, 2);
            cx(v, 1, 3);
            cx(v, 1, 2);
        }
        6 => {
            cx(v, 1, 2);
            cx(v, 4, 5);
            cx(v, 0, 2);
            cx(v, 3, 5);
            cx(v, 0, 1);
            cx(v, 3, 4);
            cx(v, 2, 5);
            cx(v, 0, 3);
            cx(v, 1, 4);
            cx(v, 2, 4);
            cx(v, 1, 3);
            cx(v, 2, 3);
        }
        7 => {
            cx(v, 1, 2);
            cx(v, 3, 4);
            cx(v, 5, 6);
            cx(v, 0, 2);
            cx(v, 3, 5);
            cx(v, 4, 6);
            cx(v, 0, 1);
            cx(v, 4, 5);
            cx(v, 2, 6);
            cx(v, 0, 4);
            cx(v, 1, 5);
            cx(v, 0, 3);
            cx(v, 2, 5);
            cx(v, 1, 3);
            cx(v, 2, 4);
            cx(v, 2, 3);
        }
        8 => {
            cx(v, 0, 1);
            cx(v, 2, 3);
            cx(v, 4, 5);
            cx(v, 6, 7);
            cx(v, 0, 2);
            cx(v, 1, 3);
            cx(v, 4, 6);
            cx(v, 5, 7);
            cx(v, 1, 2);
            cx(v, 5, 6);
            cx(v, 0, 4);
            cx(v, 3, 7);
            cx(v, 1, 5);
            cx(v, 2, 6);
            cx(v, 1, 4);
            cx(v, 3, 6);
            cx(v, 2, 4);
            cx(v, 3, 5);
            cx(v, 3, 4);
        }
        // lint:allow(no-panic-lib): sort_small dispatch is exhaustive for n <= 8 by construction (debug_assert upstream)
        _ => unreachable!("sort_small is only called for n <= 8"),
    }
}

/// Shared core: sorts `scratch`, solves the water levels, then fills the
/// requested outputs from the *original* coordinates.
fn eval_sorted_scratch(
    scratch: &mut [f64],
    x: &[f64],
    t: f64,
    grad: Option<&mut [f64]>,
    prox_out: Option<&mut [f64]>,
) -> EnvelopeEval {
    assert!(!x.is_empty(), "net must have at least one pin");
    assert!(t > 0.0, "smoothing parameter must be positive, got {t}");
    // NaN coordinates are tolerated rather than asserted away: a poisoned
    // iterate must propagate NaN through value/gradient (the placer's
    // health guard detects and rolls it back) instead of panicking here.
    if scratch.len() <= 8 {
        sort_small(scratch);
    } else {
        scratch.sort_unstable_by(f64::total_cmp);
    }
    let pair = TauPair::solve(scratch, t);
    let n = x.len() as f64;

    if pair.is_collapsed() {
        // Theorem 1, second case: prox is the mean in every component.
        let mean = x.iter().sum::<f64>() / n;
        let mut sq = 0.0;
        for &xi in x {
            let r = xi - mean;
            sq += r * r;
        }
        if let Some(g) = grad {
            for (gi, &xi) in g.iter_mut().zip(x) {
                *gi = (xi - mean) / t;
            }
        }
        if let Some(p) = prox_out {
            p.fill(mean);
        }
        return EnvelopeEval {
            envelope: sq / (2.0 * t),
            tau1: mean,
            tau2: mean,
            collapsed: true,
        };
    }

    let (tau1, tau2) = (pair.tau1, pair.tau2);
    // One fused, branch-light pass over the coordinates. The clamp
    // residual `r = max(x−τ2, 0) + min(x−τ1, 0)` is bit-identical to the
    // three-way branch of [`reference::eval`] on every input: exactly one
    // term is nonzero outside the band (adding ±0 preserves the bits),
    // both are +0 inside it, and for NaN coordinates `f64::max`/`min`
    // return the non-NaN operand — matching the branch chain whose
    // comparisons are all false. Everything lowers to `maxsd`/`minsd`
    // straight-line code, and value/gradient/prox share one traversal.
    let mut sq = 0.0;
    match (grad, prox_out) {
        (None, None) => {
            for &xi in x {
                let r = (xi - tau2).max(0.0) + (xi - tau1).min(0.0);
                sq += r * r;
            }
        }
        (Some(g), None) => {
            for (gi, &xi) in g.iter_mut().zip(x) {
                let r = (xi - tau2).max(0.0) + (xi - tau1).min(0.0);
                sq += r * r;
                *gi = r / t;
            }
        }
        (None, Some(p)) => {
            for (pi, &xi) in p.iter_mut().zip(x) {
                let r = (xi - tau2).max(0.0) + (xi - tau1).min(0.0);
                sq += r * r;
                *pi = xi.clamp(tau1, tau2);
            }
        }
        (Some(g), Some(p)) => {
            for ((gi, pi), &xi) in g.iter_mut().zip(p.iter_mut()).zip(x) {
                let r = (xi - tau2).max(0.0) + (xi - tau1).min(0.0);
                sq += r * r;
                *gi = r / t;
                *pi = xi.clamp(tau1, tau2);
            }
        }
    }
    EnvelopeEval {
        envelope: (tau2 - tau1) + sq / (2.0 * t),
        tau1,
        tau2,
        collapsed: false,
    }
}

/// Plainly-written scalar reference for the envelope evaluation: the
/// three-way branch form of Theorem 1 / Corollary 1, with separate loops
/// for value, gradient, and prox. The production kernel
/// ([`eval_with_gradient_in`] and friends) is a fused, branch-light
/// restructuring that must stay **bit-identical** to this module on every
/// input — property tests compare the two with `to_bits`.
pub mod reference {
    use super::{sort_small, EnvelopeEval};
    use crate::waterfill::TauPair;

    /// Branchy scalar evaluation of value + optional gradient + optional
    /// prox. Same contract as the production `eval_sorted_scratch` core.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, an output length mismatches, or `t ≤ 0`.
    pub fn eval(
        x: &[f64],
        t: f64,
        grad: Option<&mut [f64]>,
        prox_out: Option<&mut [f64]>,
        scratch: &mut Vec<f64>,
    ) -> EnvelopeEval {
        assert!(!x.is_empty(), "net must have at least one pin");
        assert!(t > 0.0, "smoothing parameter must be positive, got {t}");
        scratch.clear();
        scratch.extend_from_slice(x);
        if scratch.len() <= 8 {
            sort_small(scratch);
        } else {
            scratch.sort_unstable_by(f64::total_cmp);
        }
        let pair = TauPair::solve(scratch, t);
        let n = x.len() as f64;

        if pair.is_collapsed() {
            let mean = x.iter().sum::<f64>() / n;
            let mut sq = 0.0;
            for &xi in x {
                let r = xi - mean;
                sq += r * r;
            }
            if let Some(g) = grad {
                for (gi, &xi) in g.iter_mut().zip(x) {
                    *gi = (xi - mean) / t;
                }
            }
            if let Some(p) = prox_out {
                p.fill(mean);
            }
            return EnvelopeEval {
                envelope: sq / (2.0 * t),
                tau1: mean,
                tau2: mean,
                collapsed: true,
            };
        }

        let (tau1, tau2) = (pair.tau1, pair.tau2);
        let mut sq = 0.0;
        for &xi in x {
            let r = if xi > tau2 {
                xi - tau2
            } else if xi < tau1 {
                xi - tau1
            } else {
                0.0
            };
            sq += r * r;
        }
        if let Some(g) = grad {
            for (gi, &xi) in g.iter_mut().zip(x) {
                *gi = if xi > tau2 {
                    (xi - tau2) / t
                } else if xi < tau1 {
                    (xi - tau1) / t
                } else {
                    0.0
                };
            }
        }
        if let Some(p) = prox_out {
            for (pi, &xi) in p.iter_mut().zip(x) {
                *pi = xi.clamp(tau1, tau2);
            }
        }
        EnvelopeEval {
            envelope: (tau2 - tau1) + sq / (2.0 * t),
            tau1,
            tau2,
            collapsed: false,
        }
    }
}

/// The Moreau-envelope model as a reusable [`NetModel`]
/// (reported value is `W_e^t + t`, the paper's convention).
#[derive(Debug, Clone)]
pub struct Moreau {
    t: f64,
    scratch: Vec<f64>,
}

impl Moreau {
    /// Creates the model with smoothing parameter `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t ≤ 0`.
    pub fn new(t: f64) -> Self {
        assert!(t > 0.0, "smoothing parameter must be positive, got {t}");
        Self {
            t,
            // lint:allow(no-alloc-hot): one empty Vec per evaluator; grows to max net degree once, then reused
            scratch: Vec::new(),
        }
    }

    /// Full evaluation exposing levels and collapse status.
    pub fn eval_detailed(&mut self, x: &[f64], grad: &mut [f64]) -> EnvelopeEval {
        eval_with_gradient_in(x, self.t, grad, &mut self.scratch)
    }
}

impl NetModel for Moreau {
    fn name(&self) -> &'static str {
        "Moreau"
    }

    fn smoothing(&self) -> f64 {
        self.t
    }

    fn set_smoothing(&mut self, s: f64) {
        assert!(s > 0.0, "smoothing parameter must be positive, got {s}");
        self.t = s;
    }

    fn eval_axis(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        self.eval_detailed(x, grad).envelope + self.t
    }

    fn value_axis(&mut self, x: &[f64]) -> f64 {
        envelope_in(x, self.t, &mut self.scratch) + self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(x: &[f64]) -> f64 {
        let mx = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mn = x.iter().cloned().fold(f64::INFINITY, f64::min);
        mx - mn
    }

    /// Brute-force envelope by dense 1-D search over u is infeasible; instead
    /// verify the prox by first-order optimality: for the convex objective
    /// H(u) = (max u − min u) + ‖u−x‖²/(2t), any feasible direction from u*
    /// must not decrease H (checked along coordinate and random directions).
    fn check_prox_optimality(x: &[f64], t: f64) {
        let mut u = vec![0.0; x.len()];
        prox(x, t, &mut u);
        let h = |v: &[f64]| -> f64 {
            let mut s = 0.0;
            for (vi, xi) in v.iter().zip(x) {
                s += (vi - xi) * (vi - xi);
            }
            span(v) + s / (2.0 * t)
        };
        let h0 = h(&u);
        let eps = 1e-4;
        // coordinate probes
        for i in 0..u.len() {
            for delta in [eps, -eps] {
                let mut v = u.clone();
                v[i] += delta;
                assert!(
                    h(&v) >= h0 - 1e-9,
                    "prox not optimal: x={x:?} t={t} i={i} delta={delta}"
                );
            }
        }
    }

    #[test]
    fn prox_first_order_optimality() {
        check_prox_optimality(&[0.0, 1.0, 5.0, 9.0], 0.7);
        check_prox_optimality(&[2.0, 2.0, 2.0], 0.5);
        check_prox_optimality(&[-3.0, 4.0], 1.0);
        check_prox_optimality(&[0.0, 100.0, 100.0, 100.0, 3.0], 2.5);
        check_prox_optimality(&[1.0], 1.0);
    }

    #[test]
    fn gradient_matches_envelope_theorem() {
        let x = [0.0, 2.0, 7.0, 11.0];
        let t = 0.9;
        let mut g = vec![0.0; 4];
        let mut u = vec![0.0; 4];
        eval_with_gradient(&x, t, &mut g);
        prox(&x, t, &mut u);
        for i in 0..4 {
            assert!((g[i] - (x[i] - u[i]) / t).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_finite_difference() {
        let x = [0.3, -1.2, 4.5, 2.0, 4.5];
        let t = 0.8;
        let mut g = vec![0.0; x.len()];
        eval_with_gradient(&x, t, &mut g);
        let h = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            let fd = (envelope(&xp, t) - envelope(&xm, t)) / (2.0 * h);
            assert!(
                (fd - g[i]).abs() < 1e-5,
                "coordinate {i}: fd {fd} vs analytic {}",
                g[i]
            );
        }
    }

    #[test]
    fn envelope_bounds_of_theorem_2() {
        // −t/2 (1/n_max + 1/n_min) ≤ W^t − W ≤ 0
        let cases: &[&[f64]] = &[
            &[0.0, 5.0, 10.0],
            &[0.0, 0.0, 10.0, 10.0],
            &[1.0, 4.0, 4.0, 9.0, 9.0, 9.0],
            &[-5.0, 3.0],
        ];
        for &x in cases {
            let w = span(x);
            let mx = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mn = x.iter().cloned().fold(f64::INFINITY, f64::min);
            let nmax = x.iter().filter(|&&v| v == mx).count() as f64;
            let nmin = x.iter().filter(|&&v| v == mn).count() as f64;
            for &t in &[0.01, 0.1, 1.0] {
                let e = envelope(x, t);
                let lower = -t / 2.0 * (1.0 / nmax + 1.0 / nmin);
                assert!(e - w <= 1e-12, "upper bound broken: {x:?} t={t}");
                assert!(e - w >= lower - 1e-12, "lower bound broken: {x:?} t={t}");
            }
        }
    }

    #[test]
    fn envelope_converges_to_hpwl_as_t_vanishes() {
        let x = [0.0, 3.0, 8.0, 20.0];
        let w = span(&x);
        let mut prev_err = f64::INFINITY;
        for &t in &[4.0, 1.0, 0.25, 0.0625] {
            let err = (envelope(&x, t) - w).abs();
            assert!(err <= prev_err + 1e-12);
            prev_err = err;
        }
        assert!(prev_err < 0.07);
    }

    #[test]
    fn gradient_components_sum_to_zero() {
        // Corollary 3
        let x = [0.0, 1.5, 6.0, 6.0, -2.0];
        for &t in &[0.1, 1.0, 100.0] {
            let mut g = vec![0.0; x.len()];
            eval_with_gradient(&x, t, &mut g);
            assert!(g.iter().sum::<f64>().abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn gradient_upper_side_sums_to_one() {
        // Theorem 6: Σ_{x_i > τ2} g_i = 1 and Σ_{x_i < τ1} g_i = −1
        let x = [0.0, 2.0, 5.0, 9.0, 10.0];
        let t = 1.3;
        let mut g = vec![0.0; x.len()];
        let eval = eval_with_gradient(&x, t, &mut g);
        assert!(!eval.collapsed);
        let up: f64 = x
            .iter()
            .zip(&g)
            .filter(|(&xi, _)| xi > eval.tau2)
            .map(|(_, &gi)| gi)
            .sum();
        let dn: f64 = x
            .iter()
            .zip(&g)
            .filter(|(&xi, _)| xi < eval.tau1)
            .map(|(_, &gi)| gi)
            .sum();
        assert!((up - 1.0).abs() < 1e-9, "upper sum {up}");
        assert!((dn + 1.0).abs() < 1e-9, "lower sum {dn}");
    }

    #[test]
    fn small_t_gradient_matches_wa_limit_subgradient() {
        // Theorem 4: for small t the gradient equals Eq. (17)
        let x = [0.0, 0.0, 3.0, 7.0, 7.0, 7.0];
        let t = 1e-3;
        let mut g = vec![0.0; x.len()];
        eval_with_gradient(&x, t, &mut g);
        let expect = [-0.5, -0.5, 0.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0];
        for (gi, ei) in g.iter().zip(&expect) {
            assert!((gi - ei).abs() < 1e-9, "{g:?}");
        }
    }

    #[test]
    fn collapsed_case_uses_mean() {
        let x = [1.0, 2.0, 3.0];
        let t = 100.0; // enormous smoothing ⇒ collapse
        let mut g = vec![0.0; 3];
        let eval = eval_with_gradient(&x, t, &mut g);
        assert!(eval.collapsed);
        for (gi, &xi) in g.iter().zip(&x) {
            assert!((gi - (xi - 2.0) / t).abs() < 1e-12);
        }
        assert!((eval.envelope - (1.0 + 0.0 + 1.0) / (2.0 * t)).abs() < 1e-12);
    }

    #[test]
    fn single_pin_net_has_zero_gradient() {
        let x = [5.0];
        let mut g = [123.0];
        let eval = eval_with_gradient(&x, 1.0, &mut g);
        assert_eq!(g[0], 0.0);
        assert_eq!(eval.envelope, 0.0);
    }

    #[test]
    fn model_reports_envelope_plus_t() {
        let mut m = Moreau::new(0.5);
        let x = [0.0, 10.0];
        let mut g = [0.0; 2];
        let v = m.eval_axis(&x, &mut g);
        assert!((v - (envelope(&x, 0.5) + 0.5)).abs() < 1e-12);
        assert_eq!(m.value_axis(&x), v);
    }

    #[test]
    fn convexity_along_random_segments() {
        // Moreau envelopes of convex functions are convex (§II-D.2)
        let a = [0.0, 4.0, 9.0, 2.0];
        let b = [3.0, -1.0, 5.0, 8.0];
        let t = 0.7;
        let f = |lam: f64| {
            let v: Vec<f64> = a
                .iter()
                .zip(&b)
                .map(|(&ai, &bi)| (1.0 - lam) * ai + lam * bi)
                .collect();
            envelope(&v, t)
        };
        for k in 1..10 {
            let lam = k as f64 / 10.0;
            assert!(
                f(lam) <= (1.0 - lam) * f(0.0) + lam * f(1.0) + 1e-9,
                "convexity violated at λ={lam}"
            );
        }
    }

    #[test]
    fn translation_equivariance() {
        // envelope(x + c) == envelope(x); gradient unchanged
        let x = [0.0, 2.0, 5.0];
        let shifted: Vec<f64> = x.iter().map(|v| v + 1234.5).collect();
        let t = 0.4;
        let mut g1 = vec![0.0; 3];
        let mut g2 = vec![0.0; 3];
        let e1 = eval_with_gradient(&x, t, &mut g1);
        let e2 = eval_with_gradient(&shifted, t, &mut g2);
        assert!((e1.envelope - e2.envelope).abs() < 1e-9);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "smoothing parameter must be positive")]
    fn zero_t_rejected() {
        let _ = Moreau::new(0.0);
    }

    #[test]
    fn sorting_networks_pass_zero_one_principle() {
        // a comparator network sorts all inputs iff it sorts every 0/1
        // sequence (Knuth's 0-1 principle); n ≤ 8 is exhaustible
        for n in 0..=8usize {
            for mask in 0..(1u32 << n) {
                let mut v: Vec<f64> = (0..n)
                    .map(|i| if mask >> i & 1 == 1 { 1.0 } else { 0.0 })
                    .collect();
                sort_small(&mut v);
                assert!(
                    v.windows(2).all(|w| w[0] <= w[1]),
                    "n={n} mask={mask:b}: {v:?}"
                );
            }
        }
    }

    #[test]
    fn sorting_networks_match_std_sort_on_random_data() {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in 1..=8usize {
            for _ in 0..200 {
                let v: Vec<f64> = (0..n).map(|_| next()).collect();
                let mut want = v.clone();
                want.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
                let mut got = v;
                sort_small(&mut got);
                for i in 0..n {
                    assert_eq!(got[i].to_bits(), want[i].to_bits(), "n={n}");
                }
            }
        }
    }

    #[test]
    fn scratch_variants_match_allocating_ones() {
        let x = [0.3, -1.2, 4.5, 2.0, 4.5, 9.1, -3.0, 0.0, 2.2];
        let t = 0.8;
        let mut scratch = Vec::new();

        assert_eq!(envelope(&x, t), envelope_in(&x, t, &mut scratch));

        let mut g1 = vec![0.0; x.len()];
        let mut g2 = vec![0.0; x.len()];
        let e1 = eval_with_gradient(&x, t, &mut g1);
        let e2 = eval_with_gradient_in(&x, t, &mut g2, &mut scratch);
        assert_eq!(e1, e2);
        assert_eq!(g1, g2);

        let mut p1 = vec![0.0; x.len()];
        let mut p2 = vec![0.0; x.len()];
        let e1 = prox(&x, t, &mut p1);
        let e2 = prox_in(&x, t, &mut p2, &mut scratch);
        assert_eq!(e1, e2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn fused_kernel_bitwise_matches_branchy_reference() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut scratch = Vec::new();
        let mut rscratch = Vec::new();
        for n in 1..=24usize {
            for rep in 0..40 {
                let mut x: Vec<f64> = (0..n).map(|_| next() * 20.0).collect();
                if rep % 5 == 0 && n >= 2 {
                    x[n / 2] = x[0]; // exercise duplicate coordinates
                }
                // spread t across collapse and non-collapse regimes
                for &t in &[1e-3, 0.7, 5.0, 500.0] {
                    let mut g = vec![0.0; n];
                    let mut p = vec![0.0; n];
                    let got =
                        eval_sorted_scratch_entry(&x, t, Some(&mut g), Some(&mut p), &mut scratch);
                    let mut rg = vec![0.0; n];
                    let mut rp = vec![0.0; n];
                    let want = reference::eval(&x, t, Some(&mut rg), Some(&mut rp), &mut rscratch);
                    assert_eq!(
                        got.envelope.to_bits(),
                        want.envelope.to_bits(),
                        "n={n} t={t}"
                    );
                    assert_eq!(got.tau1.to_bits(), want.tau1.to_bits());
                    assert_eq!(got.tau2.to_bits(), want.tau2.to_bits());
                    assert_eq!(got.collapsed, want.collapsed);
                    for i in 0..n {
                        assert_eq!(g[i].to_bits(), rg[i].to_bits(), "grad n={n} t={t} i={i}");
                        assert_eq!(p[i].to_bits(), rp[i].to_bits(), "prox n={n} t={t} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn fused_kernel_matches_reference_on_nan_coordinates() {
        let x = [1.0, f64::NAN, 3.0, -2.0];
        let t = 0.5;
        let mut scratch = Vec::new();
        let mut g = vec![0.0; 4];
        let got = eval_sorted_scratch_entry(&x, t, Some(&mut g), None, &mut scratch);
        let mut rg = vec![0.0; 4];
        let want = reference::eval(&x, t, Some(&mut rg), None, &mut Vec::new());
        assert_eq!(got.envelope.to_bits(), want.envelope.to_bits());
        for i in 0..4 {
            assert_eq!(g[i].to_bits(), rg[i].to_bits(), "i={i}");
        }
    }

    /// Test-only shim: drive the production core with the same optional
    /// outputs the reference takes.
    fn eval_sorted_scratch_entry(
        x: &[f64],
        t: f64,
        grad: Option<&mut [f64]>,
        prox_out: Option<&mut [f64]>,
        scratch: &mut Vec<f64>,
    ) -> EnvelopeEval {
        scratch.clear();
        scratch.extend_from_slice(x);
        eval_sorted_scratch(scratch, x, t, grad, prox_out)
    }

    #[test]
    fn scratch_is_reused_without_reallocation() {
        let x = [5.0, 1.0, 3.0, 2.0, 4.0, 0.0, 6.0];
        let mut scratch = Vec::new();
        let _ = envelope_in(&x, 1.0, &mut scratch);
        let cap = scratch.capacity();
        assert!(cap >= x.len());
        for _ in 0..10 {
            let mut g = vec![0.0; x.len()];
            let _ = eval_with_gradient_in(&x, 1.0, &mut g, &mut scratch);
            assert_eq!(scratch.capacity(), cap, "scratch reallocated");
        }
    }
}
