//! The wirelength-model abstraction shared by all approximations.
//!
//! Placement works one axis at a time (the paper's Section III treats the
//! horizontal part; the vertical is symmetric), so a model only ever sees
//! the coordinates of one net along one axis.

use crate::big::{BigChks, BigWa};
use crate::hpwl::Hpwl;
use crate::lse::Lse;
use crate::moreau::Moreau;
use crate::wa::Wa;

/// A differentiable (or subdifferentiable) one-axis net wirelength model.
///
/// Implementations may keep internal scratch buffers, hence `&mut self`;
/// clone one instance per thread for parallel evaluation.
pub trait NetModel {
    /// Short stable name, e.g. `"WA"` (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Current smoothing parameter (`γ` for exponential models, `t` for the
    /// Moreau envelope). Smaller means closer to exact HPWL.
    fn smoothing(&self) -> f64;

    /// Updates the smoothing parameter (called every placement iteration by
    /// the schedules in [`crate::schedule`]).
    fn set_smoothing(&mut self, s: f64);

    /// Computes the smoothed net span of `x` and writes `∂/∂x_i` into
    /// `grad`. Returns the model value.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != x.len()` or `x` is empty.
    fn eval_axis(&mut self, x: &[f64], grad: &mut [f64]) -> f64;

    /// Model value only (may skip gradient work).
    fn value_axis(&mut self, x: &[f64]) -> f64;
}

/// Which wirelength model to use — the four contestants of Tables II/III
/// plus exact HPWL (for reporting and subgradient baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Exact HPWL with a WA-limit subgradient (non-smooth).
    Hpwl,
    /// Log-sum-exp model \[15\].
    Lse,
    /// Weighted-average model \[16, 17\].
    Wa,
    /// Bivariate-gradient model with the CHKS smoothing function \[21, 36\].
    BigChks,
    /// Bivariate-gradient model with the WA bivariate function (the
    /// BiG_WA variant of \[21\]; not a Table II/III contestant).
    BigWa,
    /// The paper's Moreau-envelope model.
    Moreau,
}

impl ModelKind {
    /// Table name used in the paper's result tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Hpwl => "HPWL",
            ModelKind::Lse => "LSE",
            ModelKind::Wa => "WA",
            ModelKind::BigChks => "BiG_CHKS",
            ModelKind::BigWa => "BiG_WA",
            ModelKind::Moreau => "Ours",
        }
    }

    /// Instantiates the model with an initial smoothing parameter.
    pub fn instantiate(self, smoothing: f64) -> AnyModel {
        match self {
            ModelKind::Hpwl => AnyModel::Hpwl(Hpwl::new()),
            ModelKind::Lse => AnyModel::Lse(Lse::new(smoothing)),
            ModelKind::Wa => AnyModel::Wa(Wa::new(smoothing)),
            ModelKind::BigChks => AnyModel::BigChks(BigChks::new(smoothing)),
            ModelKind::BigWa => AnyModel::BigWa(BigWa::new(smoothing)),
            ModelKind::Moreau => AnyModel::Moreau(Moreau::new(smoothing)),
        }
    }

    /// All four differentiable contestants compared in the paper's tables.
    pub fn contestants() -> [ModelKind; 4] {
        [
            ModelKind::BigChks,
            ModelKind::Lse,
            ModelKind::Wa,
            ModelKind::Moreau,
        ]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Enum dispatch over the concrete models (object-safe, `Clone`, `Send`),
/// so evaluation loops monomorphize nothing and threads can clone freely.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// Exact HPWL (subgradient).
    Hpwl(Hpwl),
    /// Log-sum-exp.
    Lse(Lse),
    /// Weighted-average.
    Wa(Wa),
    /// CHKS bivariate fold.
    BigChks(BigChks),
    /// WA bivariate fold.
    BigWa(BigWa),
    /// Moreau envelope.
    Moreau(Moreau),
}

impl AnyModel {
    /// The corresponding [`ModelKind`].
    pub fn kind(&self) -> ModelKind {
        match self {
            AnyModel::Hpwl(_) => ModelKind::Hpwl,
            AnyModel::Lse(_) => ModelKind::Lse,
            AnyModel::Wa(_) => ModelKind::Wa,
            AnyModel::BigChks(_) => ModelKind::BigChks,
            AnyModel::BigWa(_) => ModelKind::BigWa,
            AnyModel::Moreau(_) => ModelKind::Moreau,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            AnyModel::Hpwl($m) => $body,
            AnyModel::Lse($m) => $body,
            AnyModel::Wa($m) => $body,
            AnyModel::BigChks($m) => $body,
            AnyModel::BigWa($m) => $body,
            AnyModel::Moreau($m) => $body,
        }
    };
}

impl NetModel for AnyModel {
    fn name(&self) -> &'static str {
        dispatch!(self, m => m.name())
    }

    fn smoothing(&self) -> f64 {
        dispatch!(self, m => m.smoothing())
    }

    fn set_smoothing(&mut self, s: f64) {
        dispatch!(self, m => m.set_smoothing(s))
    }

    fn eval_axis(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        dispatch!(self, m => m.eval_axis(x, grad))
    }

    fn value_axis(&mut self, x: &[f64]) -> f64 {
        dispatch!(self, m => m.value_axis(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_all_kinds() {
        for kind in [
            ModelKind::Hpwl,
            ModelKind::Lse,
            ModelKind::Wa,
            ModelKind::BigChks,
            ModelKind::BigWa,
            ModelKind::Moreau,
        ] {
            let mut m = kind.instantiate(1.0);
            assert_eq!(m.kind(), kind);
            let x = [0.0, 3.0, 10.0];
            let mut g = [0.0; 3];
            let v = m.eval_axis(&x, &mut g);
            assert!(v.is_finite());
            // every model approximates the span 10
            assert!((v - 10.0).abs() < 3.0, "{kind}: {v}");
        }
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(ModelKind::Moreau.label(), "Ours");
        assert_eq!(ModelKind::BigChks.label(), "BiG_CHKS");
        assert_eq!(ModelKind::Moreau.to_string(), "Ours");
    }

    #[test]
    fn set_smoothing_round_trips() {
        let mut m = ModelKind::Wa.instantiate(4.0);
        assert_eq!(m.smoothing(), 4.0);
        m.set_smoothing(0.5);
        assert_eq!(m.smoothing(), 0.5);
    }

    #[test]
    fn any_model_is_send_and_clone() {
        fn assert_send<T: Send + Clone>() {}
        assert_send::<AnyModel>();
    }
}
