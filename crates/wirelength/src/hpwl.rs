//! Exact HPWL as a (non-smooth) net model.
//!
//! The value is the exact span `max x − min x`; the "gradient" is the
//! canonical subgradient of Eq. (17): `+1/n_max` on the tied maxima and
//! `−1/n_min` on the tied minima — exactly the `γ → 0⁺` limit of WA
//! (Theorem 3) and the small-`t` limit of the Moreau envelope (Theorem 4).
//! Used by the PRP conjugate-subgradient baseline and as the reporting
//! metric.

use crate::model::NetModel;

/// Exact-HPWL net model (subgradient-based).
#[derive(Debug, Clone, Default)]
pub struct Hpwl {
    _private: (),
}

impl Hpwl {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NetModel for Hpwl {
    fn name(&self) -> &'static str {
        "HPWL"
    }

    /// HPWL is exact; reports 0 smoothing.
    fn smoothing(&self) -> f64 {
        0.0
    }

    /// No-op: there is nothing to smooth.
    fn set_smoothing(&mut self, _s: f64) {}

    fn eval_axis(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        assert_eq!(x.len(), grad.len());
        let mx = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mn = x.iter().cloned().fold(f64::INFINITY, f64::min);
        if mx == mn {
            grad.fill(0.0);
            return 0.0;
        }
        let n_max = x.iter().filter(|&&v| v == mx).count() as f64;
        let n_min = x.iter().filter(|&&v| v == mn).count() as f64;
        for (g, &xi) in grad.iter_mut().zip(x) {
            *g = if xi == mx {
                1.0 / n_max
            } else if xi == mn {
                -1.0 / n_min
            } else {
                0.0
            };
        }
        mx - mn
    }

    fn value_axis(&mut self, x: &[f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        let mx = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mn = x.iter().cloned().fold(f64::INFINITY, f64::min);
        mx - mn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_value() {
        let mut m = Hpwl::new();
        assert_eq!(m.value_axis(&[3.0, -1.0, 7.0]), 8.0);
    }

    #[test]
    fn subgradient_matches_eq_17() {
        let mut m = Hpwl::new();
        let x = [0.0, 0.0, 3.0, 7.0];
        let mut g = [0.0; 4];
        let v = m.eval_axis(&x, &mut g);
        assert_eq!(v, 7.0);
        assert_eq!(g, [-0.5, -0.5, 0.0, 1.0]);
    }

    #[test]
    fn subgradient_sums_to_zero() {
        let mut m = Hpwl::new();
        let x = [1.0, 1.0, 5.0, 5.0, 3.0];
        let mut g = [0.0; 5];
        m.eval_axis(&x, &mut g);
        assert!(g.iter().sum::<f64>().abs() < 1e-15);
    }

    #[test]
    fn degenerate_net_zero_gradient() {
        let mut m = Hpwl::new();
        let x = [2.0, 2.0];
        let mut g = [9.0; 2];
        assert_eq!(m.eval_axis(&x, &mut g), 0.0);
        assert_eq!(g, [0.0, 0.0]);
    }
}
