//! The bivariate-gradient (BiG) wirelength model \[21\] with the CHKS
//! smoothing function \[36\].
//!
//! BiG avoids exponentials entirely: the net maximum is smoothed by folding
//! a *bivariate* smooth-max over the pins (recursive function smoothing,
//! Li–Koh \[22\]), and gradients are obtained by backpropagating through the
//! fold. We use the Chen–Harker–Kanzow–Smale function,
//!
//! ```text
//! chks_max(a, b; γ) = (a + b + √((a−b)² + 4γ²)) / 2 ,
//! ```
//!
//! which the paper also adopts for its re-implementation ("BiG_CHKS").
//! `chks_max(a,b) ≥ max(a,b)` with error at most `γ` per application, no
//! overflow risk, and cheap `sqrt`-only arithmetic — the model's selling
//! points (§I).

use crate::model::NetModel;

/// CHKS smooth maximum of two scalars. Overestimates by at most `γ`.
#[inline]
pub fn chks_max(a: f64, b: f64, gamma: f64) -> f64 {
    0.5 * (a + b + ((a - b) * (a - b) + 4.0 * gamma * gamma).sqrt())
}

/// CHKS smooth minimum of two scalars. Underestimates by at most `γ`.
#[inline]
pub fn chks_min(a: f64, b: f64, gamma: f64) -> f64 {
    0.5 * (a + b - ((a - b) * (a - b) + 4.0 * gamma * gamma).sqrt())
}

/// Partial derivatives `(∂/∂a, ∂/∂b)` of [`chks_max`]. They sum to 1.
#[inline]
pub fn chks_max_partials(a: f64, b: f64, gamma: f64) -> (f64, f64) {
    let r = ((a - b) * (a - b) + 4.0 * gamma * gamma).sqrt();
    let d = (a - b) / r;
    (0.5 * (1.0 + d), 0.5 * (1.0 - d))
}

/// Bivariate WA smooth maximum (the BiG_WA variant of \[21\]):
/// `(a·e^{a/γ} + b·e^{b/γ}) / (e^{a/γ} + e^{b/γ})`, evaluated with
/// max-shifting so it never overflows. Underestimates `max(a,b)`.
#[inline]
pub fn wa2_max(a: f64, b: f64, gamma: f64) -> f64 {
    let m = a.max(b);
    let ea = ((a - m) / gamma).exp();
    let eb = ((b - m) / gamma).exp();
    (a * ea + b * eb) / (ea + eb)
}

/// Bivariate WA smooth minimum (negated-argument mirror of [`wa2_max`]).
#[inline]
pub fn wa2_min(a: f64, b: f64, gamma: f64) -> f64 {
    -wa2_max(-a, -b, gamma)
}

/// Partial derivatives `(∂/∂a, ∂/∂b)` of [`wa2_max`].
#[inline]
pub fn wa2_max_partials(a: f64, b: f64, gamma: f64) -> (f64, f64) {
    let m = a.max(b);
    let ea = ((a - m) / gamma).exp();
    let eb = ((b - m) / gamma).exp();
    let s = ea + eb;
    let f = (a * ea + b * eb) / s;
    // ∂f/∂a = (e_a/s)(1 + (a − f)/γ); symmetric in b
    (
        ea / s * (1.0 + (a - f) / gamma),
        eb / s * (1.0 + (b - f) / gamma),
    )
}

/// The BiG_CHKS net model: a left fold of [`chks_max`]/[`chks_min`] over
/// the pins, with gradients via reverse-mode accumulation through the fold.
#[derive(Debug, Clone)]
pub struct BigChks {
    gamma: f64,
    /// forward prefix values of the smooth-max fold (`fwd_max[i]` folds pins `0..=i`)
    fwd_max: Vec<f64>,
    fwd_min: Vec<f64>,
}

impl BigChks {
    /// Creates the model with smoothing parameter `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `γ ≤ 0`.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0,
            "smoothing parameter must be positive, got {gamma}"
        );
        Self {
            gamma,
            fwd_max: Vec::new(),
            fwd_min: Vec::new(),
        }
    }
}

impl NetModel for BigChks {
    fn name(&self) -> &'static str {
        "BiG_CHKS"
    }

    fn smoothing(&self) -> f64 {
        self.gamma
    }

    fn set_smoothing(&mut self, s: f64) {
        assert!(s > 0.0, "smoothing parameter must be positive, got {s}");
        self.gamma = s;
    }

    fn eval_axis(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        assert_eq!(x.len(), grad.len());
        let n = x.len();
        let g = self.gamma;
        if n == 1 {
            grad[0] = 0.0;
            return 0.0;
        }
        self.fwd_max.resize(n, 0.0);
        self.fwd_min.resize(n, 0.0);
        // forward folds
        self.fwd_max[0] = x[0];
        self.fwd_min[0] = x[0];
        for i in 1..n {
            self.fwd_max[i] = chks_max(self.fwd_max[i - 1], x[i], g);
            self.fwd_min[i] = chks_min(self.fwd_min[i - 1], x[i], g);
        }
        // reverse accumulation: seed = dV/d(fold result) = ±1
        let mut acc_max = 1.0; // d smax / d fwd_max[i]
        let mut acc_min = 1.0;
        grad.fill(0.0);
        for i in (1..n).rev() {
            let (da, db) = chks_max_partials(self.fwd_max[i - 1], x[i], g);
            grad[i] += acc_max * db;
            acc_max *= da;
            // chks_min partials mirror chks_max with the sign of d flipped:
            // ∂min/∂a = 0.5(1 − (a−b)/r), ∂min/∂b = 0.5(1 + (a−b)/r)
            let (pa, pb) = chks_max_partials(self.fwd_min[i - 1], x[i], g);
            let (da_min, db_min) = (pb, pa);
            grad[i] -= acc_min * db_min;
            acc_min *= da_min;
        }
        grad[0] += acc_max - acc_min;
        self.fwd_max[n - 1] - self.fwd_min[n - 1]
    }

    fn value_axis(&mut self, x: &[f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        let g = self.gamma;
        let mut mx = x[0];
        let mut mn = x[0];
        for &xi in &x[1..] {
            mx = chks_max(mx, xi, g);
            mn = chks_min(mn, xi, g);
        }
        mx - mn
    }
}

/// The BiG_WA net model: the same recursive fold as [`BigChks`], using
/// the bivariate WA function instead of CHKS. The paper cites \[21\]'s
/// observation that BiG_WA and BiG_CHKS perform roughly equally and
/// re-implements only the CHKS variant; both are provided here.
#[derive(Debug, Clone)]
pub struct BigWa {
    gamma: f64,
    fwd_max: Vec<f64>,
    fwd_min: Vec<f64>,
}

impl BigWa {
    /// Creates the model with smoothing parameter `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `γ ≤ 0`.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0,
            "smoothing parameter must be positive, got {gamma}"
        );
        Self {
            gamma,
            fwd_max: Vec::new(),
            fwd_min: Vec::new(),
        }
    }
}

impl NetModel for BigWa {
    fn name(&self) -> &'static str {
        "BiG_WA"
    }

    fn smoothing(&self) -> f64 {
        self.gamma
    }

    fn set_smoothing(&mut self, s: f64) {
        assert!(s > 0.0, "smoothing parameter must be positive, got {s}");
        self.gamma = s;
    }

    fn eval_axis(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        assert_eq!(x.len(), grad.len());
        let n = x.len();
        let g = self.gamma;
        if n == 1 {
            grad[0] = 0.0;
            return 0.0;
        }
        self.fwd_max.resize(n, 0.0);
        self.fwd_min.resize(n, 0.0);
        self.fwd_max[0] = x[0];
        self.fwd_min[0] = x[0];
        for i in 1..n {
            self.fwd_max[i] = wa2_max(self.fwd_max[i - 1], x[i], g);
            self.fwd_min[i] = wa2_min(self.fwd_min[i - 1], x[i], g);
        }
        let mut acc_max = 1.0;
        let mut acc_min = 1.0;
        grad.fill(0.0);
        for i in (1..n).rev() {
            let (da, db) = wa2_max_partials(self.fwd_max[i - 1], x[i], g);
            grad[i] += acc_max * db;
            acc_max *= da;
            // min(a,b) = −wa2_max(−a,−b), so ∂min/∂a and ∂min/∂b equal the
            // max partials evaluated at the negated arguments
            let (da_min, db_min) = wa2_max_partials(-self.fwd_min[i - 1], -x[i], g);
            grad[i] -= acc_min * db_min;
            acc_min *= da_min;
        }
        grad[0] += acc_max - acc_min;
        self.fwd_max[n - 1] - self.fwd_min[n - 1]
    }

    fn value_axis(&mut self, x: &[f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        let g = self.gamma;
        let mut mx = x[0];
        let mut mn = x[0];
        for &xi in &x[1..] {
            mx = wa2_max(mx, xi, g);
            mn = wa2_min(mn, xi, g);
        }
        mx - mn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(x: &[f64]) -> f64 {
        x.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - x.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn chks_bounds_pairwise_max() {
        for &(a, b) in &[(0.0, 1.0), (-5.0, 3.0), (2.0, 2.0), (100.0, -100.0)] {
            for &g in &[0.1, 1.0, 10.0] {
                let s = chks_max(a, b, g);
                assert!(s >= a.max(b));
                assert!(s <= a.max(b) + g);
                let m = chks_min(a, b, g);
                assert!(m <= a.min(b));
                assert!(m >= a.min(b) - g);
                // identity: chks_max + chks_min = a + b
                assert!((s + m - (a + b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn partials_sum_to_one() {
        let (da, db) = chks_max_partials(3.0, -1.0, 0.5);
        assert!((da + db - 1.0).abs() < 1e-12);
        assert!(da > db); // larger argument dominates
    }

    #[test]
    fn value_overestimates_span_boundedly() {
        let x = [0.0, 30.0, 70.0, 100.0];
        let g = 2.0;
        let mut m = BigChks::new(g);
        let v = m.value_axis(&x);
        // each fold adds ≤ γ error per side
        assert!(v >= span(&x));
        assert!(v <= span(&x) + 2.0 * g * (x.len() - 1) as f64);
    }

    #[test]
    fn converges_to_hpwl() {
        let x = [0.0, 50.0, 200.0];
        let mut m = BigChks::new(0.05);
        assert!((m.value_axis(&x) - 200.0).abs() < 0.5);
    }

    #[test]
    fn gradient_finite_difference() {
        let x = [0.0, 2.5, 5.0, 4.9, -1.0];
        let g = 1.2;
        let mut m = BigChks::new(g);
        let mut grad = vec![0.0; x.len()];
        let v0 = m.eval_axis(&x, &mut grad);
        assert!((v0 - m.value_axis(&x)).abs() < 1e-12);
        let h = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            let fd = (m.value_axis(&xp) - m.value_axis(&xm)) / (2.0 * h);
            assert!((fd - grad[i]).abs() < 1e-6, "i={i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn gradient_components_sum_to_zero() {
        let x = [3.0, -1.0, 12.0, 0.5, 7.7];
        let mut m = BigChks::new(0.8);
        let mut grad = vec![0.0; x.len()];
        m.eval_axis(&x, &mut grad);
        assert!(grad.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn no_overflow_at_huge_coordinates() {
        // the BiG selling point: no exponentials anywhere
        let x = [0.0, 1e12];
        let mut m = BigChks::new(1.0);
        let mut grad = [0.0; 2];
        let v = m.eval_axis(&x, &mut grad);
        assert!(v.is_finite());
        assert!((v - 1e12).abs() < 1.0);
    }

    #[test]
    fn single_pin_net() {
        let mut m = BigChks::new(1.0);
        let mut g = [0.0];
        assert_eq!(m.eval_axis(&[4.0], &mut g), 0.0);
        assert_eq!(g[0], 0.0);
    }

    #[test]
    fn two_pin_gradient_is_symmetric() {
        let mut m = BigChks::new(0.5);
        let mut g = [0.0; 2];
        m.eval_axis(&[0.0, 10.0], &mut g);
        assert!((g[0] + g[1]).abs() < 1e-12);
        assert!(g[1] > 0.9 && g[0] < -0.9);
    }

    #[test]
    fn wa2_brackets_pairwise_max() {
        for &(a, b) in &[(0.0, 1.0), (-5.0, 3.0), (2.0, 2.0), (40.0, -40.0)] {
            for &g in &[0.1, 1.0, 10.0] {
                let s = wa2_max(a, b, g);
                assert!(s <= a.max(b) + 1e-12);
                assert!(s >= 0.5 * (a + b) - 1e-12);
                let m = wa2_min(a, b, g);
                assert!(m >= a.min(b) - 1e-12);
                // identity: wa2_max + wa2_min... does NOT hold for WA;
                // instead check the mirror relation directly
                assert!((m + wa2_max(-a, -b, g)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn wa2_partials_match_finite_differences() {
        let (a, b, g) = (1.3, -0.7, 0.9);
        let (da, db) = wa2_max_partials(a, b, g);
        let h = 1e-7;
        let fa = (wa2_max(a + h, b, g) - wa2_max(a - h, b, g)) / (2.0 * h);
        let fb = (wa2_max(a, b + h, g) - wa2_max(a, b - h, g)) / (2.0 * h);
        assert!((da - fa).abs() < 1e-6);
        assert!((db - fb).abs() < 1e-6);
    }

    #[test]
    fn big_wa_gradient_finite_difference() {
        let x = [0.0, 2.5, 5.0, 4.9, -1.0];
        let g = 1.2;
        let mut m = BigWa::new(g);
        let mut grad = vec![0.0; x.len()];
        let v0 = m.eval_axis(&x, &mut grad);
        assert!((v0 - m.value_axis(&x)).abs() < 1e-12);
        let h = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            let fd = (m.value_axis(&xp) - m.value_axis(&xm)) / (2.0 * h);
            assert!((fd - grad[i]).abs() < 1e-6, "i={i}: {fd} vs {}", grad[i]);
        }
        let sum: f64 = grad.iter().sum();
        assert!(sum.abs() < 1e-12);
    }

    #[test]
    fn big_wa_and_big_chks_are_close() {
        // [21]'s observation echoed in the paper: the two variants behave
        // similarly
        let x = [0.0, 30.0, 70.0, 100.0];
        let g = 2.0;
        let mut wa = BigWa::new(g);
        let mut chks = BigChks::new(g);
        let (vw, vc) = (wa.value_axis(&x), chks.value_axis(&x));
        assert!((vw - vc).abs() < 0.1 * span(&x), "{vw} vs {vc}");
    }

    #[test]
    fn big_wa_stable_at_placement_scale() {
        let x = [0.0, 5000.0];
        let mut m = BigWa::new(1.0);
        let mut g = [0.0; 2];
        let v = m.eval_axis(&x, &mut g);
        assert!(v.is_finite());
        assert!((v - 5000.0).abs() < 1.0);
    }
}
