//! The log-sum-exp (LSE) wirelength model \[15\] (Eq. (3), left).
//!
//! `W_LSE^γ(x) = γ ln Σ e^{x_i/γ} + γ ln Σ e^{−x_i/γ}`, an upper bound on
//! the span that tightens as `γ → 0⁺`. The default implementation shifts
//! exponents by the max/min so it never overflows; [`lse_max_naive`] keeps
//! the textbook formula to *demonstrate* the overflow the paper's §II-D.1
//! warns about.

use crate::model::NetModel;

/// Stable smooth maximum `γ ln Σ e^{x_i/γ}` and its gradient weights.
///
/// Writes the softmax weights (which sum to 1) into `weights` and returns
/// the smooth max.
pub fn lse_max(x: &[f64], gamma: f64, weights: &mut [f64]) -> f64 {
    debug_assert_eq!(x.len(), weights.len());
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (w, &xi) in weights.iter_mut().zip(x) {
        let e = ((xi - m) / gamma).exp();
        *w = e;
        sum += e;
    }
    for w in weights.iter_mut() {
        *w /= sum;
    }
    m + gamma * sum.ln()
}

/// Naive smooth maximum without max-shifting — **overflows** for
/// `x_i/γ ≳ 710`. Kept public so the numerical-stability claim of the
/// paper's §II-D.1 can be demonstrated in tests and experiments; never use
/// it in the placer.
pub fn lse_max_naive(x: &[f64], gamma: f64) -> f64 {
    gamma * x.iter().map(|&xi| (xi / gamma).exp()).sum::<f64>().ln()
}

/// The LSE net model.
#[derive(Debug, Clone)]
pub struct Lse {
    gamma: f64,
    weights: Vec<f64>,
}

impl Lse {
    /// Creates the model with smoothing parameter `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `γ ≤ 0`.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0,
            "smoothing parameter must be positive, got {gamma}"
        );
        Self {
            gamma,
            weights: Vec::new(),
        }
    }
}

impl NetModel for Lse {
    fn name(&self) -> &'static str {
        "LSE"
    }

    fn smoothing(&self) -> f64 {
        self.gamma
    }

    fn set_smoothing(&mut self, s: f64) {
        assert!(s > 0.0, "smoothing parameter must be positive, got {s}");
        self.gamma = s;
    }

    fn eval_axis(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        assert_eq!(x.len(), grad.len());
        let g = self.gamma;
        self.weights.resize(x.len(), 0.0);
        let vmax = lse_max(x, g, &mut self.weights);
        grad.copy_from_slice(&self.weights);
        // min part: −γ ln Σ e^{−x_i/γ}; reuse weights on negated input
        let neg: f64 = {
            let m = x.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut sum = 0.0;
            for (w, &xi) in self.weights.iter_mut().zip(x) {
                let e = ((m - xi) / g).exp();
                *w = e;
                sum += e;
            }
            for w in self.weights.iter_mut() {
                *w /= sum;
            }
            -m + g * sum.ln()
        };
        for (gi, w) in grad.iter_mut().zip(&self.weights) {
            *gi -= w;
        }
        vmax + neg
    }

    fn value_axis(&mut self, x: &[f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        let g = self.gamma;
        let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let n = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let s_hi: f64 = x.iter().map(|&xi| ((xi - m) / g).exp()).sum();
        let s_lo: f64 = x.iter().map(|&xi| ((n - xi) / g).exp()).sum();
        (m - n) + g * (s_hi.ln() + s_lo.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(x: &[f64]) -> f64 {
        x.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - x.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn lse_upper_bounds_span() {
        let x = [0.0, 3.0, 10.0];
        for &g in &[0.1, 1.0, 10.0] {
            let mut m = Lse::new(g);
            let v = m.value_axis(&x);
            assert!(v >= span(&x) - 1e-12, "γ={g}: {v}");
        }
    }

    #[test]
    fn lse_error_bound_is_two_gamma_ln_n() {
        // γ ln Σ e^{x/γ} ≤ max + γ ln n per side
        let x = [0.0, 1.0, 2.0, 200.0];
        let g = 5.0;
        let mut m = Lse::new(g);
        let v = m.value_axis(&x);
        assert!(v - span(&x) <= 2.0 * g * (x.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn converges_to_hpwl() {
        let x = [0.0, 50.0, 200.0];
        let mut m = Lse::new(0.05);
        assert!((m.value_axis(&x) - 200.0).abs() < 0.2);
    }

    #[test]
    fn gradient_finite_difference() {
        let x = [0.0, 2.0, 5.0, 4.9];
        let g = 1.3;
        let mut m = Lse::new(g);
        let mut grad = vec![0.0; x.len()];
        let v0 = m.eval_axis(&x, &mut grad);
        assert!((v0 - m.value_axis(&x)).abs() < 1e-12);
        let h = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            let fd = (m.value_axis(&xp) - m.value_axis(&xm)) / (2.0 * h);
            assert!((fd - grad[i]).abs() < 1e-6, "i={i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn gradient_components_sum_to_zero() {
        let x = [1.0, -4.0, 9.0, 2.0];
        let mut m = Lse::new(0.7);
        let mut grad = vec![0.0; x.len()];
        m.eval_axis(&x, &mut grad);
        assert!(grad.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn stable_at_placement_scale_coordinates() {
        // §II-D.1: naive exp overflows, shifted version does not
        let x = [0.0, 5000.0];
        let gamma = 1.0;
        assert!(lse_max_naive(&x, gamma).is_infinite());
        let mut m = Lse::new(gamma);
        let v = m.value_axis(&x);
        assert!(v.is_finite());
        assert!((v - 5000.0).abs() < 1.0);
    }

    #[test]
    fn single_pin_net() {
        let mut m = Lse::new(1.0);
        let mut g = [0.0];
        let v = m.eval_axis(&[7.0], &mut g);
        assert!(v.abs() < 1e-12);
        assert!(g[0].abs() < 1e-12);
    }

    #[test]
    fn lse_dominates_wa_error() {
        // LSE has a looser bound than WA at the same γ (paper §I):
        // here just check LSE ≥ exact while WA can undershoot; see wa.rs
        let x = [0.0, 100.0, 200.0];
        let mut m = Lse::new(20.0);
        assert!(m.value_axis(&x) > span(&x));
    }
}
