//! The weighted-average (WA) wirelength model \[16, 17\] (Eq. (3), right).
//!
//! `W_WA^γ(x) = Σ x_i e^{x_i/γ} / Σ e^{x_i/γ} − Σ x_i e^{−x_i/γ} / Σ e^{−x_i/γ}`.
//!
//! The exponentials are shifted by the max/min before evaluation (the shift
//! cancels in the ratios), so the model is numerically stable at placement
//! scale — unlike the textbook formula, see [`wa_naive`] and the paper's
//! §II-D.1. WA has a tighter error bound than LSE but is **not convex**
//! (Fig. 1(a)), which the tests below demonstrate.

use crate::model::NetModel;

/// Naive WA evaluation without exponent shifting — **overflows** for
/// `x_i/γ ≳ 710`. Public only to demonstrate §II-D.1; never used by the
/// placer.
pub fn wa_naive(x: &[f64], gamma: f64) -> f64 {
    let (mut sw, mut tw, mut sv, mut tv) = (0.0, 0.0, 0.0, 0.0);
    for &xi in x {
        let w = (xi / gamma).exp();
        let v = (-xi / gamma).exp();
        sw += w;
        tw += xi * w;
        sv += v;
        tv += xi * v;
    }
    tw / sw - tv / sv
}

/// The WA net model.
#[derive(Debug, Clone)]
pub struct Wa {
    gamma: f64,
    w_hi: Vec<f64>,
    w_lo: Vec<f64>,
}

impl Wa {
    /// Creates the model with smoothing parameter `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `γ ≤ 0`.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0,
            "smoothing parameter must be positive, got {gamma}"
        );
        Self {
            gamma,
            w_hi: Vec::new(),
            w_lo: Vec::new(),
        }
    }

    /// Smooth max `f`, smooth min `g`, with normalized weights cached.
    fn forward(&mut self, x: &[f64]) -> (f64, f64) {
        let g = self.gamma;
        let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let n = x.iter().cloned().fold(f64::INFINITY, f64::min);
        self.w_hi.resize(x.len(), 0.0);
        self.w_lo.resize(x.len(), 0.0);
        let (mut s_hi, mut t_hi, mut s_lo, mut t_lo) = (0.0, 0.0, 0.0, 0.0);
        for (i, &xi) in x.iter().enumerate() {
            let wh = ((xi - m) / g).exp();
            let wl = ((n - xi) / g).exp();
            self.w_hi[i] = wh;
            self.w_lo[i] = wl;
            s_hi += wh;
            t_hi += xi * wh;
            s_lo += wl;
            t_lo += xi * wl;
        }
        for i in 0..x.len() {
            self.w_hi[i] /= s_hi;
            self.w_lo[i] /= s_lo;
        }
        (t_hi / s_hi, t_lo / s_lo)
    }
}

impl NetModel for Wa {
    fn name(&self) -> &'static str {
        "WA"
    }

    fn smoothing(&self) -> f64 {
        self.gamma
    }

    fn set_smoothing(&mut self, s: f64) {
        assert!(s > 0.0, "smoothing parameter must be positive, got {s}");
        self.gamma = s;
    }

    fn eval_axis(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        assert_eq!(x.len(), grad.len());
        let (f, gmin) = self.forward(x);
        let gamma = self.gamma;
        // ∂f/∂x_k = w_k (1 + (x_k − f)/γ); ∂g/∂x_k = v_k (1 − (x_k − g)/γ)
        for (k, gk) in grad.iter_mut().enumerate() {
            let xk = x[k];
            *gk = self.w_hi[k] * (1.0 + (xk - f) / gamma)
                - self.w_lo[k] * (1.0 - (xk - gmin) / gamma);
        }
        f - gmin
    }

    fn value_axis(&mut self, x: &[f64]) -> f64 {
        assert!(!x.is_empty(), "net must have at least one pin");
        let (f, g) = self.forward(x);
        f - g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(x: &[f64]) -> f64 {
        x.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - x.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn wa_underestimates_span() {
        // smooth max ≤ max and smooth min ≥ min, so WA ≤ HPWL
        let x = [0.0, 40.0, 100.0];
        for &g in &[1.0, 10.0, 50.0] {
            let mut m = Wa::new(g);
            assert!(m.value_axis(&x) <= span(&x) + 1e-12);
        }
    }

    #[test]
    fn converges_to_hpwl() {
        let x = [0.0, 50.0, 200.0];
        let mut m = Wa::new(0.5);
        assert!((m.value_axis(&x) - 200.0).abs() < 0.1);
    }

    #[test]
    fn mean_error_tighter_than_lse_at_same_gamma() {
        // the paper (§I, Fig. 1(b)) claims WA's error is lower than LSE's;
        // per-instance this is not universal, but it holds on average over
        // the Fig. 1(b) workload (random 4-pin nets, Δx = 200) at medium γ
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = 20.0;
        let mut wa = Wa::new(g);
        let mut lse = crate::lse::Lse::new(g);
        let (mut wa_err, mut lse_err) = (0.0, 0.0);
        for _ in 0..500 {
            let x = [
                0.0,
                rng.gen_range(0.0..200.0),
                rng.gen_range(0.0..200.0),
                200.0,
            ];
            wa_err += (wa.value_axis(&x) - 200.0).abs();
            lse_err += (lse.value_axis(&x) - 200.0).abs();
        }
        assert!(wa_err < lse_err, "wa {wa_err} vs lse {lse_err}");
    }

    #[test]
    fn gradient_finite_difference() {
        let x = [0.0, 2.5, 5.0, 4.9, -1.0];
        let g = 1.7;
        let mut m = Wa::new(g);
        let mut grad = vec![0.0; x.len()];
        let v0 = m.eval_axis(&x, &mut grad);
        assert!((v0 - m.value_axis(&x)).abs() < 1e-12);
        let h = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            let fd = (m.value_axis(&xp) - m.value_axis(&xm)) / (2.0 * h);
            assert!((fd - grad[i]).abs() < 1e-6, "i={i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn gradient_components_sum_to_zero() {
        // Corollary 2 of the paper
        let x = [3.0, -1.0, 12.0, 0.5];
        let mut m = Wa::new(2.0);
        let mut grad = vec![0.0; x.len()];
        m.eval_axis(&x, &mut grad);
        assert!(grad.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn smooth_max_weights_sum_to_one() {
        // Theorem 5: the smooth-max part alone has gradient summing to 1
        let x = [0.0, 1.0, 5.0];
        let gamma = 1.1;
        let mut m = Wa::new(gamma);
        let (f, _) = m.forward(&x);
        let sum: f64 = (0..x.len())
            .map(|k| m.w_hi[k] * (1.0 + (x[k] - f) / gamma))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_limit_is_eq_17_subgradient() {
        // Theorem 3: γ → 0⁺ limit distributes over tied extremes
        let x = [0.0, 0.0, 3.0, 7.0, 7.0];
        let mut m = Wa::new(1e-3);
        let mut grad = vec![0.0; x.len()];
        m.eval_axis(&x, &mut grad);
        let expect = [-0.5, -0.5, 0.0, 0.5, 0.5];
        for (g, e) in grad.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-6, "{grad:?}");
        }
    }

    #[test]
    fn non_convexity_on_three_pin_net() {
        // Fig. 1(a): fix endpoints 0 and 100, sweep the middle pin; the WA
        // curve must violate midpoint convexity somewhere
        let gamma = 10.0;
        let mut m = Wa::new(gamma);
        let f = |x: f64, m: &mut Wa| m.value_axis(&[0.0, x, 100.0]);
        let mut violated = false;
        let steps = 200;
        for i in 1..steps {
            let a = (i - 1) as f64 / steps as f64 * 100.0;
            let b = (i + 1) as f64 / steps as f64 * 100.0;
            let mid = 0.5 * (a + b);
            if f(mid, &mut m) > 0.5 * (f(a, &mut m) + f(b, &mut m)) + 1e-9 {
                violated = true;
                break;
            }
        }
        assert!(violated, "expected WA to be non-convex on a 3-pin net");
    }

    #[test]
    fn stable_at_placement_scale_coordinates() {
        let x = [0.0, 5000.0];
        let gamma = 1.0;
        assert!(wa_naive(&x, gamma).is_nan() || wa_naive(&x, gamma).is_infinite());
        let mut m = Wa::new(gamma);
        let v = m.value_axis(&x);
        assert!(v.is_finite());
        assert!((v - 5000.0).abs() < 1.0);
    }

    #[test]
    fn single_pin_net() {
        let mut m = Wa::new(1.0);
        let mut g = [0.0];
        let v = m.eval_axis(&[3.0], &mut g);
        assert!(v.abs() < 1e-12);
        assert!(g[0].abs() < 1e-12);
    }
}
