//! Whole-netlist wirelength evaluation: sums a [`NetModel`] over every net
//! (both axes) and accumulates pin gradients onto cells.
//!
//! This is the `Σ_e W_e(x, y)` term of the global placement objective
//! (Eq. (1)). Evaluation is embarrassingly parallel over nets; with more
//! than a few thousand nets the work is split across threads, each with its
//! own cloned model (models carry scratch buffers) and gradient
//! accumulator.

use crate::model::{AnyModel, NetModel};
use mep_netlist::{Netlist, Placement};

/// Result of one whole-netlist wirelength evaluation.
#[derive(Debug, Clone, Default)]
pub struct WirelengthGrad {
    /// Model wirelength summed over nets and both axes.
    pub value: f64,
    /// `∂/∂x_c` per cell (lower-left = center derivative; offsets are constant).
    pub grad_x: Vec<f64>,
    /// `∂/∂y_c` per cell.
    pub grad_y: Vec<f64>,
}

impl WirelengthGrad {
    /// Zero-initialized buffers for `num_cells`.
    pub fn zeros(num_cells: usize) -> Self {
        Self {
            value: 0.0,
            grad_x: vec![0.0; num_cells],
            grad_y: vec![0.0; num_cells],
        }
    }

    fn reset(&mut self, num_cells: usize) {
        self.value = 0.0;
        self.grad_x.clear();
        self.grad_x.resize(num_cells, 0.0);
        self.grad_y.clear();
        self.grad_y.resize(num_cells, 0.0);
    }
}

/// Reusable whole-netlist evaluator for one wirelength model.
#[derive(Debug, Clone)]
pub struct NetlistEvaluator {
    model: AnyModel,
    threads: usize,
}

/// Below this net count the parallel path is not worth the thread spawns.
const PARALLEL_THRESHOLD: usize = 4096;

impl NetlistEvaluator {
    /// Creates an evaluator using up to `threads` worker threads
    /// (`threads = 1` forces the serial path).
    pub fn new(model: AnyModel, threads: usize) -> Self {
        Self {
            model,
            threads: threads.max(1),
        }
    }

    /// Evaluator with threads picked from available parallelism.
    pub fn with_default_threads(model: AnyModel) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        Self::new(model, threads)
    }

    /// The wrapped model (e.g. to change its smoothing parameter).
    pub fn model_mut(&mut self) -> &mut AnyModel {
        &mut self.model
    }

    /// The wrapped model.
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// Evaluates value + cell gradients into `out` (buffers are reused).
    pub fn evaluate(&self, netlist: &Netlist, placement: &Placement, out: &mut WirelengthGrad) {
        out.reset(netlist.num_cells());
        let nets = netlist.num_nets();
        if nets == 0 {
            return;
        }
        if self.threads > 1 && nets >= PARALLEL_THRESHOLD {
            self.evaluate_parallel(netlist, placement, out);
        } else {
            let mut model = self.model.clone();
            out.value = eval_net_range(
                &mut model,
                netlist,
                placement,
                0..nets,
                &mut out.grad_x,
                &mut out.grad_y,
            );
        }
    }

    /// Value only (no gradient buffers touched).
    pub fn value(&self, netlist: &Netlist, placement: &Placement) -> f64 {
        let mut model = self.model.clone();
        let mut coords_x = Vec::new();
        let mut coords_y = Vec::new();
        let mut total = 0.0;
        for net in netlist.nets() {
            gather(netlist, placement, net, &mut coords_x, &mut coords_y);
            if coords_x.len() < 2 {
                continue;
            }
            let w = netlist.net_weight(net);
            total += w * (model.value_axis(&coords_x) + model.value_axis(&coords_y));
        }
        total
    }

    fn evaluate_parallel(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        out: &mut WirelengthGrad,
    ) {
        let nets = netlist.num_nets();
        let threads = self.threads.min(nets);
        let chunk = nets.div_ceil(threads);
        let num_cells = netlist.num_cells();
        let mut partials: Vec<(f64, Vec<f64>, Vec<f64>)> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for tid in 0..threads {
                let lo = tid * chunk;
                let hi = ((tid + 1) * chunk).min(nets);
                let mut model = self.model.clone();
                handles.push(scope.spawn(move || {
                    let mut gx = vec![0.0; num_cells];
                    let mut gy = vec![0.0; num_cells];
                    let v = eval_net_range(&mut model, netlist, placement, lo..hi, &mut gx, &mut gy);
                    (v, gx, gy)
                }));
            }
            for h in handles {
                partials.push(h.join().expect("wirelength worker panicked"));
            }
        });
        for (v, gx, gy) in partials {
            out.value += v;
            for (o, p) in out.grad_x.iter_mut().zip(&gx) {
                *o += p;
            }
            for (o, p) in out.grad_y.iter_mut().zip(&gy) {
                *o += p;
            }
        }
    }
}

/// Gathers the pin coordinates of one net into the scratch vectors.
fn gather(
    netlist: &Netlist,
    placement: &Placement,
    net: mep_netlist::NetId,
    xs: &mut Vec<f64>,
    ys: &mut Vec<f64>,
) {
    xs.clear();
    ys.clear();
    for pin in netlist.net_pins(net) {
        let p = placement.pin_position(netlist, pin);
        xs.push(p.x);
        ys.push(p.y);
    }
}

fn eval_net_range(
    model: &mut AnyModel,
    netlist: &Netlist,
    placement: &Placement,
    range: std::ops::Range<usize>,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) -> f64 {
    let mut coords_x = Vec::new();
    let mut coords_y = Vec::new();
    let mut gx = Vec::new();
    let mut gy = Vec::new();
    let mut total = 0.0;
    for net_idx in range {
        let net = mep_netlist::NetId::from_usize(net_idx);
        gather(netlist, placement, net, &mut coords_x, &mut coords_y);
        let deg = coords_x.len();
        if deg < 2 {
            continue;
        }
        gx.resize(deg, 0.0);
        gy.resize(deg, 0.0);
        let w = netlist.net_weight(net);
        total += w * model.eval_axis(&coords_x, &mut gx[..deg]);
        total += w * model.eval_axis(&coords_y, &mut gy[..deg]);
        for (slot, pin) in netlist.net_pins(net).enumerate() {
            let cell = netlist.pin_cell(pin).index();
            grad_x[cell] += w * gx[slot];
            grad_y[cell] += w * gy[slot];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use mep_netlist::synth;
    use mep_netlist::total_hpwl;

    #[test]
    fn matches_exact_hpwl_with_hpwl_model() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let eval = NetlistEvaluator::new(ModelKind::Hpwl.instantiate(0.0), 1);
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut out);
        let exact = total_hpwl(nl, &c.placement);
        assert!((out.value - exact).abs() < 1e-6 * exact.max(1.0));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        for kind in ModelKind::contestants() {
            let model = kind.instantiate(2.0);
            let serial = NetlistEvaluator::new(model.clone(), 1);
            let mut a = WirelengthGrad::zeros(nl.num_cells());
            serial.evaluate(nl, &c.placement, &mut a);
            // force the parallel path by lowering the threshold via many threads
            let par = NetlistEvaluator::new(model, 4);
            let mut b = WirelengthGrad::zeros(nl.num_cells());
            par.evaluate_parallel(nl, &c.placement, &mut b);
            assert!(
                (a.value - b.value).abs() < 1e-9 * a.value.abs().max(1.0),
                "{kind}: {} vs {}",
                a.value,
                b.value
            );
            for i in 0..nl.num_cells() {
                assert!((a.grad_x[i] - b.grad_x[i]).abs() < 1e-9, "{kind} gx[{i}]");
                assert!((a.grad_y[i] - b.grad_y[i]).abs() < 1e-9, "{kind} gy[{i}]");
            }
        }
    }

    #[test]
    fn whole_netlist_gradient_finite_difference() {
        // spot-check dO/dx of a few cells through the full accumulation
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let eval = NetlistEvaluator::new(ModelKind::Moreau.instantiate(1.5), 1);
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut out);
        let h = 1e-5;
        for cell in [0usize, 7, 42, 137] {
            let mut plus = c.placement.clone();
            plus.x[cell] += h;
            let mut minus = c.placement.clone();
            minus.x[cell] -= h;
            let fd = (eval.value(nl, &plus) - eval.value(nl, &minus)) / (2.0 * h);
            assert!(
                (fd - out.grad_x[cell]).abs() < 1e-4 * fd.abs().max(1.0),
                "cell {cell}: fd {fd} vs {}",
                out.grad_x[cell]
            );
        }
    }

    #[test]
    fn gradients_sum_to_zero_over_cells() {
        // Corollaries 2–3 aggregate: total gradient over all pins is zero
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        for kind in ModelKind::contestants() {
            let eval = NetlistEvaluator::new(kind.instantiate(1.0), 1);
            let mut out = WirelengthGrad::zeros(nl.num_cells());
            eval.evaluate(nl, &c.placement, &mut out);
            let sx: f64 = out.grad_x.iter().sum();
            let sy: f64 = out.grad_y.iter().sum();
            assert!(sx.abs() < 1e-6, "{kind}: Σgx = {sx}");
            assert!(sy.abs() < 1e-6, "{kind}: Σgy = {sy}");
        }
    }

    #[test]
    fn value_matches_evaluate() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let eval = NetlistEvaluator::new(ModelKind::Wa.instantiate(3.0), 1);
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut out);
        let v = eval.value(nl, &c.placement);
        assert!((out.value - v).abs() < 1e-9 * v.abs().max(1.0));
    }

    #[test]
    fn net_weights_scale_value_and_gradient() {
        let mut b = mep_netlist::NetlistBuilder::new();
        let a = b.add_cell("a", 0.0, 0.0, true).unwrap();
        let c = b.add_cell("b", 0.0, 0.0, true).unwrap();
        let net = b.add_net("n", vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]);
        b.set_net_weight(net, 4.0);
        let nl = b.build();
        let mut pl = Placement::zeros(2);
        pl.x[1] = 10.0;
        let eval = NetlistEvaluator::new(ModelKind::Moreau.instantiate(0.5), 1);
        let mut out = WirelengthGrad::zeros(2);
        eval.evaluate(&nl, &pl, &mut out);
        // unweighted value would be (envelope + t) ≈ 10 for x plus ~t for y
        let unweighted = {
            let mut b = mep_netlist::NetlistBuilder::new();
            let a = b.add_cell("a", 0.0, 0.0, true).unwrap();
            let c = b.add_cell("b", 0.0, 0.0, true).unwrap();
            b.add_net("n", vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]);
            let nl1 = b.build();
            let mut o = WirelengthGrad::zeros(2);
            eval.evaluate(&nl1, &pl, &mut o);
            (o.value, o.grad_x[0])
        };
        assert!((out.value - 4.0 * unweighted.0).abs() < 1e-9);
        assert!((out.grad_x[0] - 4.0 * unweighted.1).abs() < 1e-9);
    }

    #[test]
    fn empty_netlist() {
        let nl = mep_netlist::NetlistBuilder::new().build();
        let pl = Placement::zeros(0);
        let eval = NetlistEvaluator::new(ModelKind::Moreau.instantiate(1.0), 2);
        let mut out = WirelengthGrad::zeros(0);
        eval.evaluate(&nl, &pl, &mut out);
        assert_eq!(out.value, 0.0);
    }
}
