//! Whole-netlist wirelength evaluation: sums a [`NetModel`] over every net
//! (both axes) and accumulates pin gradients onto cells.
//!
//! This is the `Σ_e W_e(x, y)` term of the global placement objective
//! (Eq. (1)). Evaluation is embarrassingly parallel over nets and runs on
//! the persistent [`EvalEngine`]: the netlist is partitioned once into
//! pin-count-balanced contiguous net ranges (CSR prefix sums, so a part
//! with a few huge nets gets fewer of them), each part owns a workspace
//! arena (cloned model, per-net value slots, per-pin gradient slots,
//! coordinate gather buffers) that lives across iterations, and results
//! are combined on the calling thread in a fixed order.
//!
//! # Determinism
//!
//! Evaluation is **bit-identical at any thread count** (including the
//! serial path):
//!
//! * each net's value and per-pin gradients depend only on that net's
//!   coordinates, never on which part or thread computed them;
//! * net values are summed in global net order (parts are contiguous and
//!   ascending, so part-major iteration *is* net order);
//! * per-pin gradients are scattered onto cells by walking each cell's
//!   pin list in CSR order, independent of the partition.

use crate::engine::{EvalEngine, Stage};
use crate::model::{AnyModel, NetModel};
use mep_netlist::{NetId, Netlist, Placement};
use std::sync::{Arc, Mutex};

/// Result of one whole-netlist wirelength evaluation.
#[derive(Debug, Clone, Default)]
pub struct WirelengthGrad {
    /// Model wirelength summed over nets and both axes.
    pub value: f64,
    /// `∂/∂x_c` per cell (lower-left = center derivative; offsets are constant).
    pub grad_x: Vec<f64>,
    /// `∂/∂y_c` per cell.
    pub grad_y: Vec<f64>,
}

impl WirelengthGrad {
    /// Zero-initialized buffers for `num_cells`.
    pub fn zeros(num_cells: usize) -> Self {
        Self {
            value: 0.0,
            grad_x: vec![0.0; num_cells],
            grad_y: vec![0.0; num_cells],
        }
    }

    fn reset(&mut self, num_cells: usize) {
        self.value = 0.0;
        self.grad_x.clear();
        self.grad_x.resize(num_cells, 0.0);
        self.grad_y.clear();
        self.grad_y.resize(num_cells, 0.0);
    }
}

/// Per-part workspace arena: everything one part needs to evaluate its net
/// range without touching shared state. The `Mutex` is uncontended (a part
/// is claimed by exactly one thread per run); it exists to satisfy the
/// shared-closure signature of [`EvalEngine::run`].
#[derive(Debug)]
struct PartArena {
    model: AnyModel,
    /// Gather buffers: pin coordinates of the net being evaluated.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Per-pin axis gradients of the net being evaluated.
    gx: Vec<f64>,
    gy: Vec<f64>,
    /// Weighted value per net of this part (slot `n - net_lo`).
    net_value: Vec<f64>,
    /// Weighted gradient per pin of this part (slot `p - pin_lo`).
    pin_gx: Vec<f64>,
    pin_gy: Vec<f64>,
}

/// Topology-derived state, cached per netlist instance.
#[derive(Debug)]
struct Workspace {
    netlist_instance: u64,
    parts: usize,
    /// Pin-count-balanced partition: part `p` owns nets
    /// `part_net_start[p]..part_net_start[p+1]` (contiguous, ascending).
    part_net_start: Vec<u32>,
    /// First pin index of each part (CSR prefix at the part boundary).
    part_pin_start: Vec<u32>,
    /// Per-pin gather info: owning cell, and offset from the cell's
    /// lower-left corner to the pin (half-extent + pin offset), so a
    /// gather is one add per axis.
    pin_cell: Vec<u32>,
    pin_bias_x: Vec<f64>,
    pin_bias_y: Vec<f64>,
    /// Per-pin weighted gradients in global pin order (assembly copies the
    /// part segments here; scatter reads them per cell).
    pin_grad_x: Vec<f64>,
    pin_grad_y: Vec<f64>,
    arenas: Vec<Mutex<PartArena>>,
}

impl Workspace {
    fn build(netlist: &Netlist, model: &AnyModel, parts: usize) -> Self {
        let nets = netlist.num_nets();
        let pins = netlist.num_pins();
        let prefix = |net: usize| -> usize {
            if net == nets {
                pins
            } else {
                netlist.net_pin_range(NetId::from_usize(net)).start
            }
        };
        // pin-count-balanced boundaries: part k starts at the first net
        // whose CSR prefix reaches k/parts of the total pin count
        let mut part_net_start = Vec::with_capacity(parts + 1);
        let mut lo = 0usize;
        for k in 0..=parts {
            let target = (pins as u128 * k as u128 / parts as u128) as usize;
            let mut hi = nets;
            let mut lo_k = lo;
            while lo_k < hi {
                let mid = (lo_k + hi) / 2;
                if prefix(mid) < target {
                    lo_k = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo = lo_k;
            part_net_start.push(lo as u32);
        }
        part_net_start[parts] = nets as u32;
        let part_pin_start: Vec<u32> = part_net_start
            .iter()
            .map(|&n| prefix(n as usize) as u32)
            .collect();

        let mut pin_cell = Vec::with_capacity(pins);
        let mut pin_bias_x = Vec::with_capacity(pins);
        let mut pin_bias_y = Vec::with_capacity(pins);
        for pin in netlist.pins() {
            let cell = netlist.pin_cell(pin);
            pin_cell.push(cell.index() as u32);
            pin_bias_x.push(0.5 * netlist.cell_width(cell) + netlist.pin_offset_x(pin));
            pin_bias_y.push(0.5 * netlist.cell_height(cell) + netlist.pin_offset_y(pin));
        }

        let arenas = (0..parts)
            .map(|p| {
                let net_lo = part_net_start[p] as usize;
                let net_hi = part_net_start[p + 1] as usize;
                let pin_count = (part_pin_start[p + 1] - part_pin_start[p]) as usize;
                let max_deg = (net_lo..net_hi)
                    .map(|n| netlist.net_degree(NetId::from_usize(n)))
                    .max()
                    .unwrap_or(0);
                Mutex::new(PartArena {
                    model: model.clone(),
                    xs: vec![0.0; max_deg],
                    ys: vec![0.0; max_deg],
                    gx: vec![0.0; max_deg],
                    gy: vec![0.0; max_deg],
                    net_value: vec![0.0; net_hi - net_lo],
                    pin_gx: vec![0.0; pin_count],
                    pin_gy: vec![0.0; pin_count],
                })
            })
            .collect();

        Self {
            netlist_instance: netlist.instance_id(),
            parts,
            part_net_start,
            part_pin_start,
            pin_cell,
            pin_bias_x,
            pin_bias_y,
            pin_grad_x: vec![0.0; pins],
            pin_grad_y: vec![0.0; pins],
            arenas,
        }
    }

    /// Evaluates the nets of part `p`: per-net weighted values into
    /// `net_value`, and (when `with_grad`) per-pin weighted gradients into
    /// `pin_gx`/`pin_gy`. Output depends only on `p`, never on the thread.
    fn eval_part(&self, netlist: &Netlist, placement: &Placement, p: usize, with_grad: bool) {
        let mut arena = self.arenas[p].lock().expect("part arena lock");
        let arena = &mut *arena;
        let net_lo = self.part_net_start[p] as usize;
        let net_hi = self.part_net_start[p + 1] as usize;
        let pin_lo = self.part_pin_start[p] as usize;
        for net_idx in net_lo..net_hi {
            let net = NetId::from_usize(net_idx);
            let range = netlist.net_pin_range(net);
            let deg = range.len();
            let local = range.start - pin_lo;
            // alloc-free gather: index-write into the pre-sized arena buffers
            // through zipped slices (no push, no per-pin bounds checks on the
            // CSR-parallel arrays)
            let cells = &self.pin_cell[range.clone()];
            let bias_x = &self.pin_bias_x[range.clone()];
            let bias_y = &self.pin_bias_y[range];
            for ((((xo, yo), &cell), &bx), &by) in arena.xs[..deg]
                .iter_mut()
                .zip(&mut arena.ys[..deg])
                .zip(cells)
                .zip(bias_x)
                .zip(bias_y)
            {
                let cell = cell as usize;
                *xo = placement.x[cell] + bx;
                *yo = placement.y[cell] + by;
            }
            if deg < 2 {
                arena.net_value[net_idx - net_lo] = 0.0;
                if with_grad {
                    arena.pin_gx[local..local + deg].fill(0.0);
                    arena.pin_gy[local..local + deg].fill(0.0);
                }
                continue;
            }
            let w = netlist.net_weight(net);
            if with_grad {
                let vx = arena
                    .model
                    .eval_axis(&arena.xs[..deg], &mut arena.gx[..deg]);
                let vy = arena
                    .model
                    .eval_axis(&arena.ys[..deg], &mut arena.gy[..deg]);
                arena.net_value[net_idx - net_lo] = w * (vx + vy);
                for ((po, &g), (qo, &h)) in arena.pin_gx[local..local + deg]
                    .iter_mut()
                    .zip(&arena.gx[..deg])
                    .zip(
                        arena.pin_gy[local..local + deg]
                            .iter_mut()
                            .zip(&arena.gy[..deg]),
                    )
                {
                    *po = w * g;
                    *qo = w * h;
                }
            } else {
                arena.net_value[net_idx - net_lo] = w
                    * (arena.model.value_axis(&arena.xs[..deg])
                        + arena.model.value_axis(&arena.ys[..deg]));
            }
        }
    }
}

/// Reusable whole-netlist evaluator for one wirelength model, backed by a
/// persistent [`EvalEngine`].
#[derive(Debug)]
pub struct NetlistEvaluator {
    model: AnyModel,
    engine: Arc<EvalEngine>,
    ws: Option<Workspace>,
}

impl NetlistEvaluator {
    /// Creates an evaluator dispatching through `engine`.
    pub fn new(model: AnyModel, engine: Arc<EvalEngine>) -> Self {
        Self {
            model,
            engine,
            ws: None,
        }
    }

    /// Strictly serial evaluator (private engine with one thread); handy
    /// for tests and small tools.
    pub fn serial(model: AnyModel) -> Self {
        Self::new(model, Arc::new(EvalEngine::new(1)))
    }

    /// The engine this evaluator dispatches through.
    pub fn engine(&self) -> &Arc<EvalEngine> {
        &self.engine
    }

    /// The wrapped model (e.g. to change its smoothing parameter).
    pub fn model_mut(&mut self) -> &mut AnyModel {
        &mut self.model
    }

    /// The wrapped model.
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// Replaces the wirelength model in place (the placer's degradation
    /// ladder: Moreau → WA → LSE). The workspace topology is kept — only
    /// the per-part model clones are swapped, so no workspace reallocation
    /// is recorded and the next evaluation is bit-identical to a fresh
    /// evaluator built on the new model.
    pub fn set_model(&mut self, model: AnyModel) {
        self.model = model;
        if let Some(ws) = &self.ws {
            for arena in &ws.arenas {
                arena.lock().expect("part arena lock").model = self.model.clone();
            }
        }
    }

    /// Ensures the workspace matches this netlist's topology and the
    /// engine's part count, then syncs the per-part model smoothing.
    fn prepare(&mut self, netlist: &Netlist) -> &Workspace {
        let parts = self.engine.threads();
        let stale = match &self.ws {
            Some(ws) => ws.netlist_instance != netlist.instance_id() || ws.parts != parts,
            None => true,
        };
        if stale {
            self.ws = Some(Workspace::build(netlist, &self.model, parts));
            self.engine.note_workspace_alloc();
        }
        let ws = self.ws.as_ref().expect("workspace just ensured");
        let smoothing = self.model.smoothing();
        for arena in &ws.arenas {
            arena
                .lock()
                .expect("part arena lock")
                .model
                .set_smoothing(smoothing);
        }
        ws
    }

    fn dispatch(&self, netlist: &Netlist, f: &(dyn Fn(usize) + Sync), parts: usize) {
        if netlist.num_nets() >= self.engine.parallel_threshold() {
            self.engine.run(parts, f);
        } else {
            self.engine.run_serial(parts, f);
        }
    }

    /// Evaluates value + cell gradients into `out` (buffers are reused).
    ///
    /// Bit-identical across engine thread counts; see the module docs.
    pub fn evaluate(&mut self, netlist: &Netlist, placement: &Placement, out: &mut WirelengthGrad) {
        out.reset(netlist.num_cells());
        if netlist.num_nets() == 0 {
            return;
        }
        self.prepare(netlist);
        let engine = Arc::clone(&self.engine);
        engine.time_stage(Stage::WlGrad, || {
            let ws = self.ws.as_ref().expect("workspace prepared");
            self.dispatch(
                netlist,
                &|p| ws.eval_part(netlist, placement, p, true),
                ws.parts,
            );
            // fixed-order assembly on the calling thread
            let ws = self.ws.as_mut().expect("workspace prepared");
            let mut total = 0.0;
            for p in 0..ws.parts {
                let arena = ws.arenas[p].lock().expect("part arena lock");
                for v in &arena.net_value {
                    total += v;
                }
                let pin_lo = ws.part_pin_start[p] as usize;
                let pin_hi = ws.part_pin_start[p + 1] as usize;
                ws.pin_grad_x[pin_lo..pin_hi].copy_from_slice(&arena.pin_gx);
                ws.pin_grad_y[pin_lo..pin_hi].copy_from_slice(&arena.pin_gy);
            }
            out.value = total;
            // scatter pins onto cells in cell-CSR order (partition-independent)
            for cell in netlist.cells() {
                let (mut ax, mut ay) = (0.0, 0.0);
                for &pin in netlist.cell_pins(cell) {
                    ax += ws.pin_grad_x[pin.index()];
                    ay += ws.pin_grad_y[pin.index()];
                }
                out.grad_x[cell.index()] = ax;
                out.grad_y[cell.index()] = ay;
            }
        });
    }

    /// Value only (no gradient buffers touched). Runs on the engine like
    /// [`NetlistEvaluator::evaluate`] and is equally deterministic.
    pub fn value(&mut self, netlist: &Netlist, placement: &Placement) -> f64 {
        if netlist.num_nets() == 0 {
            return 0.0;
        }
        self.prepare(netlist);
        let engine = Arc::clone(&self.engine);
        engine.time_stage(Stage::WlValue, || {
            let ws = self.ws.as_ref().expect("workspace prepared");
            self.dispatch(
                netlist,
                &|p| ws.eval_part(netlist, placement, p, false),
                ws.parts,
            );
            let mut total = 0.0;
            for p in 0..ws.parts {
                let arena = ws.arenas[p].lock().expect("part arena lock");
                for v in &arena.net_value {
                    total += v;
                }
            }
            total
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use mep_netlist::synth;
    use mep_netlist::total_hpwl;

    fn parallel_eval(model: AnyModel, threads: usize) -> NetlistEvaluator {
        // threshold 1 forces the parallel path on the tiny smoke circuit
        NetlistEvaluator::new(
            model,
            Arc::new(EvalEngine::new(threads).with_parallel_threshold(1)),
        )
    }

    #[test]
    fn matches_exact_hpwl_with_hpwl_model() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let mut eval = NetlistEvaluator::serial(ModelKind::Hpwl.instantiate(0.0));
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut out);
        let exact = total_hpwl(nl, &c.placement);
        assert!((out.value - exact).abs() < 1e-6 * exact.max(1.0));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        for kind in ModelKind::contestants() {
            let model = kind.instantiate(2.0);
            let mut serial = NetlistEvaluator::serial(model.clone());
            let mut a = WirelengthGrad::zeros(nl.num_cells());
            serial.evaluate(nl, &c.placement, &mut a);
            let mut par = parallel_eval(model, 4);
            let mut b = WirelengthGrad::zeros(nl.num_cells());
            par.evaluate(nl, &c.placement, &mut b);
            assert!(
                par.engine().stats().parallel_runs > 0,
                "{kind}: parallel path not exercised"
            );
            assert!(
                (a.value - b.value).abs() < 1e-9 * a.value.abs().max(1.0),
                "{kind}: {} vs {}",
                a.value,
                b.value
            );
            for i in 0..nl.num_cells() {
                assert!((a.grad_x[i] - b.grad_x[i]).abs() < 1e-9, "{kind} gx[{i}]");
                assert!((a.grad_y[i] - b.grad_y[i]).abs() < 1e-9, "{kind} gy[{i}]");
            }
        }
    }

    #[test]
    fn whole_netlist_gradient_finite_difference() {
        // spot-check dO/dx of a few cells through the full accumulation
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let mut eval = NetlistEvaluator::serial(ModelKind::Moreau.instantiate(1.5));
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut out);
        let h = 1e-5;
        for cell in [0usize, 7, 42, 137] {
            let mut plus = c.placement.clone();
            plus.x[cell] += h;
            let mut minus = c.placement.clone();
            minus.x[cell] -= h;
            let fd = (eval.value(nl, &plus) - eval.value(nl, &minus)) / (2.0 * h);
            assert!(
                (fd - out.grad_x[cell]).abs() < 1e-4 * fd.abs().max(1.0),
                "cell {cell}: fd {fd} vs {}",
                out.grad_x[cell]
            );
        }
    }

    #[test]
    fn gradients_sum_to_zero_over_cells() {
        // Corollaries 2–3 aggregate: total gradient over all pins is zero
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        for kind in ModelKind::contestants() {
            let mut eval = NetlistEvaluator::serial(kind.instantiate(1.0));
            let mut out = WirelengthGrad::zeros(nl.num_cells());
            eval.evaluate(nl, &c.placement, &mut out);
            let sx: f64 = out.grad_x.iter().sum();
            let sy: f64 = out.grad_y.iter().sum();
            assert!(sx.abs() < 1e-6, "{kind}: Σgx = {sx}");
            assert!(sy.abs() < 1e-6, "{kind}: Σgy = {sy}");
        }
    }

    #[test]
    fn value_matches_evaluate() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let mut eval = NetlistEvaluator::serial(ModelKind::Wa.instantiate(3.0));
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut out);
        let v = eval.value(nl, &c.placement);
        assert!((out.value - v).abs() < 1e-9 * v.abs().max(1.0));
    }

    #[test]
    fn net_weights_scale_value_and_gradient() {
        let mut b = mep_netlist::NetlistBuilder::new();
        let a = b.add_cell("a", 0.0, 0.0, true).unwrap();
        let c = b.add_cell("b", 0.0, 0.0, true).unwrap();
        let net = b.add_net("n", vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]);
        b.set_net_weight(net, 4.0);
        let nl = b.build();
        let mut pl = Placement::zeros(2);
        pl.x[1] = 10.0;
        let mut eval = NetlistEvaluator::serial(ModelKind::Moreau.instantiate(0.5));
        let mut out = WirelengthGrad::zeros(2);
        eval.evaluate(&nl, &pl, &mut out);
        // unweighted value would be (envelope + t) ≈ 10 for x plus ~t for y
        let unweighted = {
            let mut b = mep_netlist::NetlistBuilder::new();
            let a = b.add_cell("a", 0.0, 0.0, true).unwrap();
            let c = b.add_cell("b", 0.0, 0.0, true).unwrap();
            b.add_net("n", vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]);
            let nl1 = b.build();
            let mut o = WirelengthGrad::zeros(2);
            eval.evaluate(&nl1, &pl, &mut o);
            (o.value, o.grad_x[0])
        };
        assert!((out.value - 4.0 * unweighted.0).abs() < 1e-9);
        assert!((out.grad_x[0] - 4.0 * unweighted.1).abs() < 1e-9);
    }

    #[test]
    fn workspace_rebuilds_only_on_topology_change() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let mut eval = NetlistEvaluator::serial(ModelKind::Moreau.instantiate(1.0));
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        for _ in 0..5 {
            eval.evaluate(nl, &c.placement, &mut out);
        }
        assert_eq!(
            eval.engine().stats().workspace_allocs,
            1,
            "workspace must be built exactly once for a fixed netlist"
        );
    }

    #[test]
    fn smoothing_changes_propagate_to_part_models() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let mut eval = parallel_eval(ModelKind::Moreau.instantiate(4.0), 2);
        let mut warm = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut warm);
        eval.model_mut().set_smoothing(0.25);
        let mut tightened = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut tightened);
        // a fresh evaluator at the new smoothing must agree exactly
        let mut fresh = NetlistEvaluator::serial(ModelKind::Moreau.instantiate(0.25));
        let mut expect = WirelengthGrad::zeros(nl.num_cells());
        fresh.evaluate(nl, &c.placement, &mut expect);
        assert_eq!(tightened.value.to_bits(), expect.value.to_bits());
    }

    #[test]
    fn set_model_swaps_part_models_without_workspace_rebuild() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let mut eval = parallel_eval(ModelKind::Moreau.instantiate(2.0), 2);
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut out);
        eval.set_model(ModelKind::Wa.instantiate(2.0));
        let mut degraded = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(nl, &c.placement, &mut degraded);
        assert_eq!(eval.model().kind(), ModelKind::Wa);
        assert_eq!(
            eval.engine().stats().workspace_allocs,
            1,
            "model swap must not rebuild the workspace"
        );
        // must agree bitwise with a fresh evaluator on the new model
        let mut fresh = NetlistEvaluator::serial(ModelKind::Wa.instantiate(2.0));
        let mut expect = WirelengthGrad::zeros(nl.num_cells());
        fresh.evaluate(nl, &c.placement, &mut expect);
        assert_eq!(degraded.value.to_bits(), expect.value.to_bits());
        for i in 0..nl.num_cells() {
            assert_eq!(degraded.grad_x[i].to_bits(), expect.grad_x[i].to_bits());
            assert_eq!(degraded.grad_y[i].to_bits(), expect.grad_y[i].to_bits());
        }
    }

    #[test]
    fn empty_netlist() {
        let nl = mep_netlist::NetlistBuilder::new().build();
        let pl = Placement::zeros(0);
        let mut eval = NetlistEvaluator::new(
            ModelKind::Moreau.instantiate(1.0),
            Arc::new(EvalEngine::new(2)),
        );
        let mut out = WirelengthGrad::zeros(0);
        eval.evaluate(&nl, &pl, &mut out);
        assert_eq!(out.value, 0.0);
        assert_eq!(eval.value(&nl, &pl), 0.0);
    }
}
