//! Smoothing-parameter schedules (paper §III-C).
//!
//! During global placement the smoothing parameter is driven by the density
//! overflow `φ`: high overflow (early iterations) wants a very smooth
//! objective, low overflow (late) wants near-exact HPWL.
//!
//! * [`EplaceGammaSchedule`] — ePlace's `γ(φ) = γ0 (w_x + w_y) 10^{kφ+b}`
//!   for the exponential models (LSE/WA) and for BiG.
//! * [`TangentTSchedule`] — the paper's Eq. (14) for the Moreau parameter:
//!   `t(φ) = t0/2 (w_x + w_y) tan(π/2 φ − δ)`.

/// Maps density overflow `φ ∈ \[0, 1\]` to a smoothing parameter.
pub trait SmoothingSchedule {
    /// The smoothing value to use at overflow `phi`.
    fn value(&self, phi: f64) -> f64;
}

/// ePlace's decade schedule: `γ(φ) = γ0 (w_x + w_y) 10^{kφ+b}` with the
/// standard `k = 20/9`, `b = −11/9` mapping (`φ=1 → 10¹`, `φ=0.1 → 10⁻¹`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EplaceGammaSchedule {
    /// Base coefficient `γ0`.
    pub gamma0: f64,
    /// Sum of horizontal and vertical bin sizes, `w_bin^x + w_bin^y`.
    pub bin_size_sum: f64,
    /// Exponent slope `k`.
    pub k: f64,
    /// Exponent intercept `b`.
    pub b: f64,
}

impl EplaceGammaSchedule {
    /// Standard ePlace constants with `γ0 = 0.5` (DREAMPlace default
    /// `gamma` coefficient).
    pub fn new(gamma0: f64, bin_w: f64, bin_h: f64) -> Self {
        Self {
            gamma0,
            bin_size_sum: bin_w + bin_h,
            k: 20.0 / 9.0,
            b: -11.0 / 9.0,
        }
    }
}

impl SmoothingSchedule for EplaceGammaSchedule {
    fn value(&self, phi: f64) -> f64 {
        let phi = phi.clamp(0.0, 1.0);
        self.gamma0 * self.bin_size_sum * 10f64.powf(self.k * phi + self.b)
    }
}

/// The paper's tangent schedule, Eq. (14):
/// `t(φ) = t0/2 (w_x + w_y) tan(π/2 φ − δ)`.
///
/// As `φ → 1` the tangent blows up (maximal smoothing), and as `φ → 0` it
/// goes through zero at `φ = 2δ/π`; the raw formula then turns *negative*,
/// so the schedule clamps below at `floor` (a tiny positive value) — the
/// `δ` term exists precisely "to avoid numerical overflow" per the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TangentTSchedule {
    /// Initial coefficient `t0` (paper default 4).
    pub t0: f64,
    /// Sum of horizontal and vertical bin sizes.
    pub bin_size_sum: f64,
    /// Offset `δ` (paper default `1e−4`).
    pub delta: f64,
    /// Smallest `t` ever returned.
    pub floor: f64,
    /// Largest `t` ever returned (tan(π/2·φ−δ) diverges at φ=1).
    pub ceil: f64,
}

impl TangentTSchedule {
    /// Paper defaults: `t0 = 4`, `δ = 1e−4`.
    pub fn new(bin_w: f64, bin_h: f64) -> Self {
        Self {
            t0: 4.0,
            bin_size_sum: bin_w + bin_h,
            delta: 1e-4,
            floor: 1e-6,
            ceil: 1e6,
        }
    }

    /// Overrides `t0` (the paper notes `t0 = 4, δ = 1e−4` "will normally
    /// give a good result for most cases").
    pub fn with_t0(mut self, t0: f64) -> Self {
        self.t0 = t0;
        self
    }
}

impl SmoothingSchedule for TangentTSchedule {
    fn value(&self, phi: f64) -> f64 {
        let phi = phi.clamp(0.0, 1.0);
        let raw = 0.5
            * self.t0
            * self.bin_size_sum
            * (std::f64::consts::FRAC_PI_2 * phi - self.delta).tan();
        raw.clamp(self.floor, self.ceil)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_schedule_decade_mapping() {
        let s = EplaceGammaSchedule::new(1.0, 0.5, 0.5);
        // φ=1 → 10^1, φ=0.1 → 10^(20/90 − 110/90) = 10^(-1)
        assert!((s.value(1.0) - 10.0).abs() < 1e-9);
        assert!((s.value(0.1) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn gamma_schedule_monotone_in_overflow() {
        let s = EplaceGammaSchedule::new(0.5, 1.0, 1.0);
        let mut prev = 0.0;
        for i in 0..=10 {
            let v = s.value(i as f64 / 10.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn tangent_schedule_monotone_and_positive() {
        let s = TangentTSchedule::new(1.0, 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let v = s.value(i as f64 / 20.0);
            assert!(v > 0.0, "t must stay positive at φ={}", i as f64 / 20.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn tangent_schedule_clamps_tiny_overflow() {
        let s = TangentTSchedule::new(1.0, 1.0);
        // below φ = 2δ/π the raw tangent is negative; schedule must clamp
        assert_eq!(s.value(0.0), s.floor);
    }

    #[test]
    fn tangent_schedule_blows_up_at_high_overflow() {
        let s = TangentTSchedule::new(1.0, 1.0);
        assert!(s.value(1.0) > 1e3);
        assert!(s.value(1.0) <= s.ceil);
    }

    #[test]
    fn overflow_outside_unit_interval_is_clamped() {
        let s = TangentTSchedule::new(1.0, 1.0);
        assert_eq!(s.value(-0.5), s.value(0.0));
        assert_eq!(s.value(1.5), s.value(1.0));
        let g = EplaceGammaSchedule::new(0.5, 1.0, 1.0);
        assert_eq!(g.value(2.0), g.value(1.0));
    }
}
