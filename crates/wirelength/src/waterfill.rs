//! The water-filling solver (Algorithm 2 of the paper).
//!
//! Given sorted pin coordinates `x_1 ≤ … ≤ x_n` and a water amount `t > 0`,
//! [`solve_lower`] finds the level `τ1` with
//! `Σ_i (τ1 − x_i)^+ = t`, and [`solve_upper`] finds `τ2` with
//! `Σ_i (x_i − τ2)^+ = t`. Both run in `O(n)` using the Abel-summation
//! telescoping of the sorted gaps (Eq. (11)–(13) of the paper).
//!
//! Intuition: pour `t` units of water into a reservoir whose uneven bottom
//! is the bar graph of the coordinates; `τ1` is the final water level
//! (Fig. 2 of the paper). `τ2` is the mirrored problem from above.

/// Violation of a water-filling precondition, reported by the release-safe
/// [`try_solve_lower`]/[`try_solve_upper`] entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaterfillError {
    /// The coordinate slice was empty.
    EmptyNet,
    /// The water amount `t` was not a positive finite number.
    NonPositiveWater(f64),
    /// A coordinate was NaN/Inf (carries the offending index).
    NonFiniteCoordinate(usize),
}

impl std::fmt::Display for WaterfillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaterfillError::EmptyNet => write!(f, "water-filling needs at least one pin"),
            WaterfillError::NonPositiveWater(t) => {
                write!(f, "water amount must be positive and finite, got {t}")
            }
            WaterfillError::NonFiniteCoordinate(i) => {
                write!(f, "non-finite pin coordinate at index {i}")
            }
        }
    }
}

impl std::error::Error for WaterfillError {}

/// Validates the `try_solve_*` preconditions; `Ok(true)` means the slice is
/// already ascending, `Ok(false)` means a sort-and-retry is needed.
fn validate(x: &[f64], t: f64) -> Result<bool, WaterfillError> {
    if x.is_empty() {
        return Err(WaterfillError::EmptyNet);
    }
    // NaN-tolerant: NaN fails the positivity test and lands in the error arm
    if t.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !t.is_finite() {
        return Err(WaterfillError::NonPositiveWater(t));
    }
    let mut ascending = true;
    for (i, &v) in x.iter().enumerate() {
        if !v.is_finite() {
            return Err(WaterfillError::NonFiniteCoordinate(i));
        }
        if i > 0 && v < x[i - 1] {
            ascending = false;
        }
    }
    Ok(ascending)
}

/// Sort-and-retry fallback for the release-safe entry points: solves on a
/// sorted copy of the coordinates (the solution is permutation-invariant).
#[cold]
fn solve_on_sorted_copy(x: &[f64], t: f64, upper: bool) -> f64 {
    // lint:allow(no-alloc-hot): #[cold] sorted-copy fallback off the hot path; hot callers pass pre-sorted slices
    let mut sorted = x.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    if upper {
        solve_upper(&sorted, t)
    } else {
        solve_lower(&sorted, t)
    }
}

/// Release-safe [`solve_lower`]: validates every precondition instead of
/// relying on `debug_assert`, returning a typed error for empty input, a
/// non-positive/non-finite `t`, or non-finite coordinates, and falling back
/// to sort-and-retry when the coordinates are not ascending.
pub fn try_solve_lower(x: &[f64], t: f64) -> Result<f64, WaterfillError> {
    if validate(x, t)? {
        Ok(solve_lower(x, t))
    } else {
        Ok(solve_on_sorted_copy(x, t, false))
    }
}

/// Release-safe [`solve_upper`]; same contract as [`try_solve_lower`].
pub fn try_solve_upper(x: &[f64], t: f64) -> Result<f64, WaterfillError> {
    if validate(x, t)? {
        Ok(solve_upper(x, t))
    } else {
        Ok(solve_on_sorted_copy(x, t, true))
    }
}

/// Solves `Σ_i (τ1 − x_i)^+ = t` for `τ1` on ascending-sorted coordinates.
///
/// Runs in `O(n)`. If `t` exceeds the water needed to level the whole
/// reservoir at `x_n`, the level rises above `x_n` by `(t − q)/n`.
///
/// This is the trusted hot path (the Moreau model sorts immediately before
/// calling); use [`try_solve_lower`] when the input is not guaranteed
/// sorted. NaN coordinates are tolerated and propagate as NaN levels.
///
/// # Panics
///
/// Panics (debug builds) if `sorted` is empty, out of ascending order
/// (NaNs excepted), or `t` is not positive.
pub fn solve_lower(sorted: &[f64], t: f64) -> f64 {
    debug_assert!(!sorted.is_empty(), "water-filling needs at least one pin");
    debug_assert!(t > 0.0, "water amount must be positive, got {t}");
    debug_assert!(
        sorted
            .windows(2)
            .all(|w| w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Greater)),
        "coordinates must be ascending"
    );
    let n = sorted.len();
    let mut filled = 0.0_f64;
    // zipped adjacent-pair walk: no index arithmetic, no bounds checks in
    // the hot loop; arithmetic is expression-identical to the indexed form
    for (k, (&lo, &hi)) in sorted.iter().zip(&sorted[1..]).enumerate() {
        let k = (k + 1) as f64;
        // filling the k lowest bottoms up from `lo` to `hi`
        let trial = filled + k * (hi - lo);
        if trial > t {
            return hi - (trial - t) / k;
        }
        filled = trial;
    }
    sorted[n - 1] + (t - filled) / n as f64
}

/// Solves `Σ_i (x_i − τ2)^+ = t` for `τ2` on ascending-sorted coordinates.
///
/// Mirror image of [`solve_lower`]: water is poured from above.
///
/// Same trusted-precondition contract as [`solve_lower`]; the release-safe
/// variant is [`try_solve_upper`].
///
/// # Panics
///
/// Same contract as [`solve_lower`].
pub fn solve_upper(sorted: &[f64], t: f64) -> f64 {
    debug_assert!(!sorted.is_empty(), "water-filling needs at least one pin");
    debug_assert!(t > 0.0, "water amount must be positive, got {t}");
    debug_assert!(
        sorted
            .windows(2)
            .all(|w| w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Greater)),
        "coordinates must be ascending"
    );
    let n = sorted.len();
    let mut filled = 0.0_f64;
    // mirrored adjacent-pair walk from the top, same bounds-check-free shape
    // as `solve_lower`
    for (k, (&hi, &lo)) in sorted
        .iter()
        .rev()
        .zip(sorted[..n - 1].iter().rev())
        .enumerate()
    {
        let k = (k + 1) as f64;
        let trial = filled + k * (hi - lo);
        if trial > t {
            return lo + (trial - t) / k;
        }
        filled = trial;
    }
    sorted[0] - (t - filled) / n as f64
}

/// Both water levels `(τ1, τ2)` for one net in a single call.
///
/// When `τ1 > τ2` the proximal mapping of Theorem 1 collapses to the mean;
/// callers should check [`TauPair::is_collapsed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauPair {
    /// Lower water level.
    pub tau1: f64,
    /// Upper water level.
    pub tau2: f64,
}

impl TauPair {
    /// Solves both levels on ascending-sorted coordinates.
    pub fn solve(sorted: &[f64], t: f64) -> Self {
        Self {
            tau1: solve_lower(sorted, t),
            tau2: solve_upper(sorted, t),
        }
    }

    /// Release-safe [`TauPair::solve`]: typed errors for bad input,
    /// sort-and-retry for unsorted coordinates (see [`try_solve_lower`]).
    pub fn try_solve(x: &[f64], t: f64) -> Result<Self, WaterfillError> {
        Ok(Self {
            tau1: try_solve_lower(x, t)?,
            tau2: try_solve_upper(x, t)?,
        })
    }

    /// Whether the levels crossed (`τ1 > τ2`), i.e. `t` is so large that the
    /// prox collapses every coordinate to the mean.
    pub fn is_collapsed(&self) -> bool {
        self.tau1 > self.tau2
    }
}

/// Residual of the lower water-filling equation, `Σ (τ1 − x_i)^+ − t`.
/// Exposed for tests and verification harnesses.
pub fn lower_residual(x: &[f64], tau1: f64, t: f64) -> f64 {
    x.iter().map(|&xi| (tau1 - xi).max(0.0)).sum::<f64>() - t
}

/// Residual of the upper water-filling equation, `Σ (x_i − τ2)^+ − t`.
pub fn upper_residual(x: &[f64], tau2: f64, t: f64) -> f64 {
    x.iter().map(|&xi| (xi - tau2).max(0.0)).sum::<f64>() - t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn paper_four_pin_example() {
        // 4 bars; small t keeps the level within the first gap
        let x = [1.0, 2.0, 4.0, 7.0];
        let tau1 = solve_lower(&x, 0.5);
        assert_near(tau1, 1.5); // only the lowest bottom holds water
        assert_near(lower_residual(&x, tau1, 0.5), 0.0);
    }

    #[test]
    fn level_crosses_multiple_bottoms() {
        let x = [1.0, 2.0, 4.0, 7.0];
        // filling to level 2 costs 1; to level 4 costs 1 + 2*2 = 5
        let tau1 = solve_lower(&x, 3.0);
        // between x2=2 and x3=4: 3 = 1 + 2*(tau-2) => tau = 3
        assert_near(tau1, 3.0);
        assert_near(lower_residual(&x, tau1, 3.0), 0.0);
    }

    #[test]
    fn level_exceeds_top_coordinate() {
        let x = [1.0, 2.0, 4.0, 7.0];
        // leveling everything at 7 costs 6+5+3+0 = 14; extra spreads over 4
        let tau1 = solve_lower(&x, 18.0);
        assert_near(tau1, 8.0);
        assert_near(lower_residual(&x, tau1, 18.0), 0.0);
    }

    #[test]
    fn exact_breakpoint_water_amount() {
        let x = [0.0, 1.0, 2.0];
        // q after first gap = 1 exactly
        let tau1 = solve_lower(&x, 1.0);
        assert_near(tau1, 1.0);
        assert_near(lower_residual(&x, tau1, 1.0), 0.0);
    }

    #[test]
    fn upper_mirrors_lower() {
        let x = [1.0, 2.0, 4.0, 7.0];
        for &t in &[0.3, 1.0, 2.5, 9.0, 30.0] {
            let tau2 = solve_upper(&x, t);
            let neg: Vec<f64> = x.iter().rev().map(|&v| -v).collect();
            let mirrored = -solve_lower(&neg, t);
            assert_near(tau2, mirrored);
            assert_near(upper_residual(&x, tau2, t), 0.0);
        }
    }

    #[test]
    fn single_pin_net() {
        let x = [5.0];
        assert_near(solve_lower(&x, 2.0), 7.0);
        assert_near(solve_upper(&x, 2.0), 3.0);
        let pair = TauPair::solve(&x, 2.0);
        assert!(pair.is_collapsed());
    }

    #[test]
    fn duplicate_coordinates() {
        let x = [1.0, 1.0, 1.0, 5.0];
        let tau1 = solve_lower(&x, 1.5);
        assert_near(tau1, 1.5);
        assert_near(lower_residual(&x, tau1, 1.5), 0.0);
        let tau2 = solve_upper(&x, 1.5);
        // from above: gap 4 over 1 bar costs 4 > 1.5 → tau2 = 5 - 1.5
        assert_near(tau2, 3.5);
    }

    #[test]
    fn all_equal_coordinates_collapse() {
        let x = [2.0, 2.0, 2.0];
        let pair = TauPair::solve(&x, 0.3);
        assert_near(pair.tau1, 2.1);
        assert_near(pair.tau2, 1.9);
        assert!(pair.is_collapsed());
    }

    #[test]
    fn small_t_keeps_levels_separated() {
        let x = [0.0, 10.0, 20.0, 100.0];
        let pair = TauPair::solve(&x, 0.5);
        assert!(!pair.is_collapsed());
        assert_near(pair.tau1, 0.5);
        assert_near(pair.tau2, 99.5);
    }

    #[test]
    fn negative_coordinates() {
        let x = [-10.0, -5.0, 0.0];
        let tau1 = solve_lower(&x, 2.0);
        assert_near(lower_residual(&x, tau1, 2.0), 0.0);
        assert!(tau1 > -10.0 && tau1 < 0.0);
    }

    #[test]
    fn try_solve_accepts_sorted_input_bitwise() {
        let x = [1.0, 2.0, 4.0, 7.0];
        for &t in &[0.3, 1.0, 2.5, 9.0] {
            let a = solve_lower(&x, t);
            let b = try_solve_lower(&x, t).unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
            let a = solve_upper(&x, t);
            let b = try_solve_upper(&x, t).unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn try_solve_sorts_and_retries_unsorted_input() {
        let shuffled = [7.0, 1.0, 4.0, 2.0];
        let sorted = [1.0, 2.0, 4.0, 7.0];
        for &t in &[0.3, 2.5, 30.0] {
            let got = try_solve_lower(&shuffled, t).unwrap();
            assert_eq!(got.to_bits(), solve_lower(&sorted, t).to_bits());
            let got = try_solve_upper(&shuffled, t).unwrap();
            assert_eq!(got.to_bits(), solve_upper(&sorted, t).to_bits());
            let pair = TauPair::try_solve(&shuffled, t).unwrap();
            assert_eq!(pair, TauPair::solve(&sorted, t));
        }
    }

    #[test]
    fn try_solve_rejects_bad_input_with_typed_errors() {
        assert_eq!(try_solve_lower(&[], 1.0), Err(WaterfillError::EmptyNet));
        assert_eq!(
            try_solve_upper(&[1.0], 0.0),
            Err(WaterfillError::NonPositiveWater(0.0))
        );
        assert!(matches!(
            try_solve_lower(&[1.0], f64::NAN),
            Err(WaterfillError::NonPositiveWater(_))
        ));
        assert_eq!(
            try_solve_lower(&[1.0, f64::NAN, 3.0], 1.0),
            Err(WaterfillError::NonFiniteCoordinate(1))
        );
        assert_eq!(
            try_solve_upper(&[f64::INFINITY], 1.0),
            Err(WaterfillError::NonFiniteCoordinate(0))
        );
    }

    /// Straightforward indexed transliteration of Eq. (11)–(13), kept as the
    /// bitwise oracle for the zipped bounds-check-free scans above.
    fn indexed_lower(sorted: &[f64], t: f64) -> f64 {
        let n = sorted.len();
        let mut filled = 0.0_f64;
        for k in 1..n {
            let trial = filled + k as f64 * (sorted[k] - sorted[k - 1]);
            if trial > t {
                return sorted[k] - (trial - t) / k as f64;
            }
            filled = trial;
        }
        sorted[n - 1] + (t - filled) / n as f64
    }

    fn indexed_upper(sorted: &[f64], t: f64) -> f64 {
        let n = sorted.len();
        let mut filled = 0.0_f64;
        for k in 1..n {
            let trial = filled + k as f64 * (sorted[n - k] - sorted[n - k - 1]);
            if trial > t {
                return sorted[n - k - 1] + (trial - t) / k as f64;
            }
            filled = trial;
        }
        sorted[0] - (t - filled) / n as f64
    }

    #[test]
    fn zipped_scans_bitwise_match_indexed_reference() {
        let mut state = 0x1234_5678_9ABC_DEF0_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
        };
        for n in 1..=16 {
            for rep in 0..25 {
                let mut x: Vec<f64> = (0..n).map(|_| next()).collect();
                if rep % 4 == 1 && n > 2 {
                    x[1] = x[0]; // exercise duplicate coordinates
                }
                x.sort_unstable_by(f64::total_cmp);
                for &t in &[1e-6, 0.03, 0.7, 4.0, 150.0] {
                    assert_eq!(
                        solve_lower(&x, t).to_bits(),
                        indexed_lower(&x, t).to_bits(),
                        "lower n={n} rep={rep} t={t}"
                    );
                    assert_eq!(
                        solve_upper(&x, t).to_bits(),
                        indexed_upper(&x, t).to_bits(),
                        "upper n={n} rep={rep} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_is_monotone_in_level() {
        let x = [0.0, 3.0, 9.0];
        let t = 2.0;
        let tau = solve_lower(&x, t);
        assert!(lower_residual(&x, tau - 0.1, t) < 0.0);
        assert!(lower_residual(&x, tau + 0.1, t) > 0.0);
    }
}
