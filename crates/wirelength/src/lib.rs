//! Differentiable wirelength models for analytical global placement.
//!
//! This crate implements the paper's contribution — the **Moreau-envelope
//! HPWL model** ([`moreau`]) computed via the water-filling algorithm
//! ([`waterfill`]) — alongside every baseline the paper compares against:
//! log-sum-exp ([`lse`]), weighted-average ([`wa`]), the CHKS bivariate
//! model ([`big`]), and exact HPWL with its canonical subgradient
//! ([`hpwl`]). All models share the [`model::NetModel`] trait and are
//! summed over a netlist by [`netgrad::NetlistEvaluator`].
//!
//! The overflow-driven smoothing schedules of §III-C (the paper's tangent
//! schedule Eq. (14) and ePlace's decade schedule) live in [`schedule`].
//!
//! # Example
//!
//! ```
//! use mep_wirelength::model::{ModelKind, NetModel};
//!
//! let mut ours = ModelKind::Moreau.instantiate(0.5);
//! let x = [0.0, 4.0, 10.0];
//! let mut grad = [0.0; 3];
//! let w = ours.eval_axis(&x, &mut grad);
//! assert!((w - 10.0).abs() < 0.6); // close to the exact span
//! assert!(grad.iter().sum::<f64>().abs() < 1e-12); // Corollary 3
//! ```

// lint:allow(forbid-unsafe): engine.rs needs two audited unsafe blocks (lifetime-erased
// scoped tasks for the persistent worker pool); deny + per-module allow is the tightest
// level that still compiles them. See the SAFETY comments in engine.rs.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels index several parallel arrays with one counter; the
// iterator rewrites clippy suggests obscure those loops.
#![allow(clippy::needless_range_loop)]

pub mod big;
// The persistent worker pool erases task lifetimes to dispatch borrowed
// closures to long-lived threads; the two unsafe blocks carry SAFETY
// proofs and are the only unsafe code in the workspace.
#[allow(unsafe_code)]
pub mod engine;
pub mod hpwl;
pub mod lse;
pub mod model;
pub mod moreau;
pub mod netgrad;
pub mod schedule;
pub mod wa;
pub mod waterfill;

pub use engine::{EngineStats, EvalEngine, Stage, StageStats};
pub use model::{AnyModel, ModelKind, NetModel};
pub use netgrad::{NetlistEvaluator, WirelengthGrad};
pub use schedule::{EplaceGammaSchedule, SmoothingSchedule, TangentTSchedule};
