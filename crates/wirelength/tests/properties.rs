//! Property-based tests for the wirelength models, checking the paper's
//! theorems on randomized nets.

use mep_wirelength::model::{ModelKind, NetModel};
use mep_wirelength::moreau;
use mep_wirelength::waterfill;
use proptest::prelude::*;

fn coords() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-500.0f64..500.0, 1..24)
}

fn coords_multi() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-500.0f64..500.0, 2..24)
}

fn smoothing() -> impl Strategy<Value = f64> {
    (0.01f64..50.0).prop_map(|t| t)
}

fn span(x: &[f64]) -> f64 {
    x.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - x.iter().cloned().fold(f64::INFINITY, f64::min)
}

proptest! {
    /// Water-filling (Algorithm 2) solves its defining equation exactly.
    #[test]
    fn waterfill_residuals_vanish(mut x in coords(), t in smoothing()) {
        x.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let tau1 = waterfill::solve_lower(&x, t);
        let tau2 = waterfill::solve_upper(&x, t);
        let scale = t.max(span(&x)).max(1.0);
        prop_assert!(waterfill::lower_residual(&x, tau1, t).abs() < 1e-9 * scale);
        prop_assert!(waterfill::upper_residual(&x, tau2, t).abs() < 1e-9 * scale);
    }

    /// Theorem 1: the prox either clamps into `[τ1, τ2]` (conserving `t` of
    /// water on each side) or collapses to the mean.
    #[test]
    fn prox_structure(x in coords(), t in smoothing()) {
        let mut u = vec![0.0; x.len()];
        let eval = moreau::prox(&x, t, &mut u);
        if eval.collapsed {
            let mean = x.iter().sum::<f64>() / x.len() as f64;
            for &ui in &u {
                prop_assert!((ui - mean).abs() < 1e-9);
            }
        } else {
            prop_assert!(eval.tau1 <= eval.tau2 + 1e-12);
            for (&ui, &xi) in u.iter().zip(&x) {
                prop_assert!((ui - xi.clamp(eval.tau1, eval.tau2)).abs() < 1e-9);
            }
            let moved_up: f64 = x.iter().map(|&xi| (xi - eval.tau2).max(0.0)).sum();
            let moved_dn: f64 = x.iter().map(|&xi| (eval.tau1 - xi).max(0.0)).sum();
            let scale = t.max(1.0);
            prop_assert!((moved_up - t).abs() < 1e-9 * scale);
            prop_assert!((moved_dn - t).abs() < 1e-9 * scale);
        }
    }

    /// The envelope theorem (Eq. (5)): `∇W^t = (x − prox)/t`.
    #[test]
    fn gradient_is_scaled_prox_residual(x in coords(), t in smoothing()) {
        let mut g = vec![0.0; x.len()];
        let mut u = vec![0.0; x.len()];
        moreau::eval_with_gradient(&x, t, &mut g);
        moreau::prox(&x, t, &mut u);
        for i in 0..x.len() {
            prop_assert!((g[i] - (x[i] - u[i]) / t).abs() < 1e-9);
        }
    }

    /// Theorem 2: `−t/2 (1/n_max + 1/n_min) ≤ W^t − W ≤ 0`. With random
    /// reals the extremes are unique, so the bound is `−t`.
    #[test]
    fn envelope_bound(x in coords(), t in smoothing()) {
        let e = moreau::envelope(&x, t);
        let w = span(&x);
        prop_assert!(e <= w + 1e-9);
        prop_assert!(e >= w - t - 1e-9);
    }

    /// Corollary 3 (and Corollary 2, and the analogous facts for LSE and
    /// BiG): gradient components sum to zero for every model.
    #[test]
    fn gradient_components_sum_to_zero(x in coords_multi(), s in smoothing()) {
        for kind in ModelKind::contestants() {
            let mut m = kind.instantiate(s);
            let mut g = vec![0.0; x.len()];
            m.eval_axis(&x, &mut g);
            let sum: f64 = g.iter().sum();
            prop_assert!(sum.abs() < 1e-8, "{kind}: Σg = {sum}");
        }
    }

    /// Theorem 6: on the Moreau gradient, the entries above `τ2` sum to +1
    /// and the ones below `τ1` sum to −1 (non-collapsed case).
    #[test]
    fn moreau_side_sums(x in coords_multi(), t in 0.001f64..1.0) {
        let mut g = vec![0.0; x.len()];
        let eval = moreau::eval_with_gradient(&x, t, &mut g);
        prop_assume!(!eval.collapsed);
        let up: f64 = x.iter().zip(&g).filter(|(&xi, _)| xi > eval.tau2).map(|(_, &gi)| gi).sum();
        let dn: f64 = x.iter().zip(&g).filter(|(&xi, _)| xi < eval.tau1).map(|(_, &gi)| gi).sum();
        prop_assert!((up - 1.0).abs() < 1e-8);
        prop_assert!((dn + 1.0).abs() < 1e-8);
    }

    /// Every differentiable model's analytic gradient matches central
    /// finite differences.
    #[test]
    fn gradients_match_finite_differences(x in prop::collection::vec(-100.0f64..100.0, 2..10),
                                          s in 0.5f64..20.0) {
        for kind in ModelKind::contestants() {
            let mut m = kind.instantiate(s);
            let mut g = vec![0.0; x.len()];
            m.eval_axis(&x, &mut g);
            let h = 1e-5;
            for i in 0..x.len() {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp[i] += h;
                xm[i] -= h;
                let fd = (m.value_axis(&xp) - m.value_axis(&xm)) / (2.0 * h);
                prop_assert!(
                    (fd - g[i]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "{kind} coord {i}: fd {fd} vs {}", g[i]
                );
            }
        }
    }

    /// Side-of-truth ordering: LSE overestimates the span, WA and the
    /// Moreau envelope underestimate it.
    #[test]
    fn model_sidedness(x in coords_multi(), s in smoothing()) {
        let w = span(&x);
        let mut lse = ModelKind::Lse.instantiate(s);
        let mut wa = ModelKind::Wa.instantiate(s);
        prop_assert!(lse.value_axis(&x) >= w - 1e-9);
        prop_assert!(wa.value_axis(&x) <= w + 1e-9);
        prop_assert!(moreau::envelope(&x, s) <= w + 1e-9);
    }

    /// The Moreau envelope is convex (§II-D.2): midpoint convexity along
    /// random segments.
    #[test]
    fn moreau_convex_along_segments(a in coords_multi(), t in smoothing(), seed in 0u64..1000) {
        // derive a paired endpoint deterministically from the seed
        let b: Vec<f64> = a.iter().enumerate()
            .map(|(i, &v)| v + ((seed as f64 + i as f64) * 0.73).sin() * 50.0)
            .collect();
        let mid: Vec<f64> = a.iter().zip(&b).map(|(&p, &q)| 0.5 * (p + q)).collect();
        let fa = moreau::envelope(&a, t);
        let fb = moreau::envelope(&b, t);
        let fm = moreau::envelope(&mid, t);
        prop_assert!(fm <= 0.5 * (fa + fb) + 1e-9);
    }

    /// Monotone improvement: shrinking `t` never increases the absolute
    /// envelope error.
    #[test]
    fn error_monotone_in_t(x in coords_multi(), t in 0.1f64..10.0) {
        let w = span(&x);
        let e_big = (moreau::envelope(&x, t) - w).abs();
        let e_small = (moreau::envelope(&x, t * 0.5) - w).abs();
        prop_assert!(e_small <= e_big + 1e-9);
    }

    /// Scaling: the envelope of `c·x` at `c·t` is `c` times the envelope of
    /// `x` at `t` (positive homogeneity of the HPWL prox system).
    #[test]
    fn envelope_positive_homogeneity(x in coords_multi(), t in smoothing(), c in 0.1f64..10.0) {
        let scaled: Vec<f64> = x.iter().map(|&v| c * v).collect();
        let lhs = moreau::envelope(&scaled, c * t);
        let rhs = c * moreau::envelope(&x, t);
        prop_assert!((lhs - rhs).abs() < 1e-7 * (1.0 + rhs.abs()));
    }
}
