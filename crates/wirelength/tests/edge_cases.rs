//! Edge-case tests for the wirelength models: extreme degrees, extreme
//! smoothing parameters, pathological coordinate patterns.

use mep_wirelength::model::{ModelKind, NetModel};
use mep_wirelength::moreau;
use mep_wirelength::waterfill;

#[test]
fn thousand_pin_net_all_models() {
    let x: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
    let mut grad = vec![0.0; x.len()];
    for kind in ModelKind::contestants() {
        let mut m = kind.instantiate(2.0);
        let v = m.eval_axis(&x, &mut grad);
        assert!(v.is_finite(), "{kind}");
        assert!((v - 999.0).abs() < 60.0, "{kind}: {v}");
        let s: f64 = grad.iter().sum();
        assert!(s.abs() < 1e-6, "{kind}: Σg = {s}");
    }
}

#[test]
fn moreau_gradient_fd_on_large_net() {
    let x: Vec<f64> = (0..200).map(|i| ((i * 31) % 97) as f64 * 1.37).collect();
    let t = 1.1;
    let mut g = vec![0.0; x.len()];
    moreau::eval_with_gradient(&x, t, &mut g);
    let h = 1e-6;
    for &i in &[0usize, 50, 123, 199] {
        let mut xp = x.clone();
        let mut xm = x.clone();
        xp[i] += h;
        xm[i] -= h;
        let fd = (moreau::envelope(&xp, t) - moreau::envelope(&xm, t)) / (2.0 * h);
        assert!((fd - g[i]).abs() < 1e-5, "i={i}");
    }
}

#[test]
fn tiny_smoothing_parameter_stays_finite() {
    let x = [0.0, 100.0, 250.0];
    for kind in ModelKind::contestants() {
        let mut m = kind.instantiate(1e-9);
        let mut g = vec![0.0; 3];
        let v = m.eval_axis(&x, &mut g);
        assert!(v.is_finite(), "{kind}: {v}");
        assert!((v - 250.0).abs() < 1e-3, "{kind}: {v}");
        assert!(g.iter().all(|gi| gi.is_finite()), "{kind}");
    }
}

#[test]
fn huge_smoothing_parameter_stays_finite() {
    let x = [0.0, 1.0, 2.0];
    for kind in ModelKind::contestants() {
        let mut m = kind.instantiate(1e9);
        let mut g = vec![0.0; 3];
        let v = m.eval_axis(&x, &mut g);
        assert!(v.is_finite(), "{kind}: {v}");
        assert!(g.iter().all(|gi| gi.is_finite()), "{kind}");
    }
}

#[test]
fn nearly_coincident_coordinates() {
    // spacing at the edge of f64 resolution must not produce NaNs
    let x = [1.0, 1.0 + 1e-15, 1.0 + 2e-15, 1.0 + 3e-15];
    for kind in ModelKind::contestants() {
        let mut m = kind.instantiate(0.5);
        let mut g = vec![0.0; 4];
        let v = m.eval_axis(&x, &mut g);
        assert!(v.is_finite(), "{kind}");
        assert!(g.iter().all(|gi| gi.is_finite()), "{kind}");
    }
}

#[test]
fn waterfill_with_microscopic_water() {
    let x = [0.0, 1.0, 2.0];
    let t = 1e-300;
    let tau1 = waterfill::solve_lower(&x, t);
    let tau2 = waterfill::solve_upper(&x, t);
    assert!((tau1 - 0.0).abs() < 1e-12);
    assert!((tau2 - 2.0).abs() < 1e-12);
}

#[test]
fn waterfill_with_astronomic_water() {
    let x = [0.0, 1.0, 2.0];
    let t = 1e12;
    let tau1 = waterfill::solve_lower(&x, t);
    // everything levels at x_max then rises by (t − filled)/n
    assert!((tau1 - (2.0 + (1e12 - 3.0) / 3.0)).abs() < 1.0);
}

#[test]
fn moreau_at_exact_tau_boundary_is_consistent() {
    // coordinates placed exactly at the water level: gradient must be 0
    // there (the clamp band is closed)
    let x = [0.0, 2.0, 4.0];
    // t = 1: τ1 = 1, τ2 = 3 (each extreme moves in by exactly t)
    let mut g = vec![0.0; 3];
    let eval = moreau::eval_with_gradient(&x, 1.0, &mut g);
    assert!((eval.tau1 - 1.0).abs() < 1e-12);
    assert!((eval.tau2 - 3.0).abs() < 1e-12);
    // now a pin exactly at τ1
    let x2 = [0.0, 1.0, 2.0, 4.0];
    let mut g2 = vec![0.0; 4];
    let eval2 = moreau::eval_with_gradient(&x2, 1.0, &mut g2);
    for (i, &xi) in x2.iter().enumerate() {
        if xi >= eval2.tau1 - 1e-12 && xi <= eval2.tau2 + 1e-12 {
            assert!(
                g2[i].abs() < 1e-9 || xi > eval2.tau2 - 1e-9 || xi < eval2.tau1 + 1e-9,
                "interior pin {i} has gradient {}",
                g2[i]
            );
        }
    }
    let s: f64 = g2.iter().sum();
    assert!(s.abs() < 1e-12);
}

#[test]
fn negative_and_mixed_sign_coordinates() {
    let x = [-1e6, -5.0, 0.0, 7.0, 1e6];
    for kind in ModelKind::contestants() {
        let mut m = kind.instantiate(10.0);
        let mut g = vec![0.0; 5];
        let v = m.eval_axis(&x, &mut g);
        assert!(v.is_finite(), "{kind}");
        assert!((v - 2e6).abs() < 100.0, "{kind}: {v}");
    }
}

#[test]
fn two_pin_net_gradients_are_antisymmetric() {
    for kind in ModelKind::contestants() {
        let mut m = kind.instantiate(1.0);
        let mut g = vec![0.0; 2];
        m.eval_axis(&[3.0, 17.0], &mut g);
        assert!((g[0] + g[1]).abs() < 1e-12, "{kind}");
        assert!(g[1] > 0.0 && g[0] < 0.0, "{kind}");
    }
}

#[test]
fn model_value_only_matches_eval_for_all_models() {
    let x = [4.0, -2.0, 9.5, 0.1, 4.0];
    for kind in ModelKind::contestants() {
        let mut m = kind.instantiate(3.3);
        let mut g = vec![0.0; 5];
        let v1 = m.eval_axis(&x, &mut g);
        let v2 = m.value_axis(&x);
        assert!((v1 - v2).abs() < 1e-12, "{kind}: {v1} vs {v2}");
    }
}
