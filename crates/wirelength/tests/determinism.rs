//! The engine's determinism contract, enforced bitwise: evaluating the
//! same placement twice, or at 1, 2, and 8 threads, must produce
//! bit-identical value and gradients — on a realistic circuit and on a
//! degenerate netlist of single-pin and zero-weight nets.

use mep_netlist::{synth, Netlist, NetlistBuilder, Placement};
use mep_wirelength::engine::EvalEngine;
use mep_wirelength::{ModelKind, NetlistEvaluator, WirelengthGrad};
use std::sync::Arc;

fn evaluator(kind: ModelKind, smoothing: f64, threads: usize) -> NetlistEvaluator {
    // threshold 1 so even tiny netlists exercise the parallel path
    NetlistEvaluator::new(
        kind.instantiate(smoothing),
        Arc::new(EvalEngine::new(threads).with_parallel_threshold(1)),
    )
}

fn eval_bits(
    eval: &mut NetlistEvaluator,
    nl: &Netlist,
    pl: &Placement,
) -> (u64, Vec<u64>, Vec<u64>) {
    let mut out = WirelengthGrad::zeros(nl.num_cells());
    eval.evaluate(nl, pl, &mut out);
    (
        out.value.to_bits(),
        out.grad_x.iter().map(|g| g.to_bits()).collect(),
        out.grad_y.iter().map(|g| g.to_bits()).collect(),
    )
}

/// A netlist exercising the skip paths: single-pin nets (no wirelength),
/// zero-weight nets (pins exist, contribution removed), and ordinary nets.
fn degenerate_netlist() -> (Netlist, Placement) {
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..12)
        .map(|i| b.add_cell(format!("c{i}"), 1.0, 1.0, true).unwrap())
        .collect();
    // single-pin nets
    b.add_net("solo0", vec![(cells[0], 0.0, 0.0)]);
    b.add_net("solo1", vec![(cells[5], 0.1, -0.1)]);
    // zero-weight net
    let zw = b.add_net("dead", vec![(cells[1], 0.0, 0.0), (cells[2], 0.0, 0.0)]);
    b.set_net_weight(zw, 0.0);
    // ordinary nets interleaved
    b.add_net(
        "n0",
        vec![
            (cells[2], 0.0, 0.0),
            (cells[3], 0.0, 0.0),
            (cells[4], 0.0, 0.0),
        ],
    );
    b.add_net("empty", Vec::new());
    b.add_net(
        "n1",
        vec![
            (cells[6], 0.2, 0.0),
            (cells[7], 0.0, 0.2),
            (cells[8], -0.2, 0.0),
            (cells[9], 0.0, -0.2),
        ],
    );
    b.add_net("n2", vec![(cells[10], 0.0, 0.0), (cells[11], 0.0, 0.0)]);
    let nl = b.build();
    let mut pl = Placement::zeros(12);
    for i in 0..12 {
        pl.x[i] = (i as f64 * 2.7).sin() * 10.0;
        pl.y[i] = (i as f64 * 1.3).cos() * 10.0;
    }
    (nl, pl)
}

#[test]
fn same_placement_twice_is_bit_identical() {
    let c = synth::generate(&synth::smoke_spec());
    let nl = &c.design.netlist;
    for kind in ModelKind::contestants() {
        let mut eval = evaluator(kind, 1.5, 4);
        let a = eval_bits(&mut eval, nl, &c.placement);
        let b = eval_bits(&mut eval, nl, &c.placement);
        assert_eq!(a, b, "{kind}: re-evaluation must be bit-identical");
    }
}

#[test]
fn thread_count_does_not_change_a_single_bit() {
    let c = synth::generate(&synth::smoke_spec());
    let nl = &c.design.netlist;
    for kind in ModelKind::contestants() {
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut eval = evaluator(kind, 2.0, threads);
            results.push((threads, eval_bits(&mut eval, nl, &c.placement)));
        }
        let (_, base) = &results[0];
        for (threads, bits) in &results[1..] {
            assert_eq!(
                bits, base,
                "{kind}: {threads}-thread evaluation differs from serial"
            );
        }
    }
}

#[test]
fn degenerate_nets_are_deterministic_and_inert() {
    let (nl, pl) = degenerate_netlist();
    for kind in ModelKind::contestants() {
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut eval = evaluator(kind, 1.0, threads);
            results.push(eval_bits(&mut eval, &nl, &pl));
        }
        assert_eq!(results[0], results[1], "{kind}: 2 threads");
        assert_eq!(results[0], results[2], "{kind}: 8 threads");
        // single-pin net cells and zero-weight net cells feel no force
        let (_, gx, gy) = &results[0];
        for cell in [0usize, 1, 5] {
            assert_eq!(f64::from_bits(gx[cell]), 0.0, "{kind}: gx[{cell}]");
            assert_eq!(f64::from_bits(gy[cell]), 0.0, "{kind}: gy[{cell}]");
        }
    }
}

#[test]
fn value_serial_and_parallel_agree_for_all_contestants() {
    let c = synth::generate(&synth::smoke_spec());
    let nl = &c.design.netlist;
    for kind in ModelKind::contestants() {
        let mut serial = evaluator(kind, 2.5, 1);
        let mut parallel = evaluator(kind, 2.5, 8);
        let vs = serial.value(nl, &c.placement);
        let vp = parallel.value(nl, &c.placement);
        assert!(
            parallel.engine().stats().parallel_runs > 0,
            "{kind}: value() must route through the engine"
        );
        assert!(
            (vs - vp).abs() <= 1e-9 * vs.abs().max(1.0),
            "{kind}: serial {vs} vs parallel {vp}"
        );
    }
}

#[test]
fn value_agrees_with_evaluate_on_degenerate_nets() {
    let (nl, pl) = degenerate_netlist();
    for kind in ModelKind::contestants() {
        let mut eval = evaluator(kind, 1.0, 2);
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        eval.evaluate(&nl, &pl, &mut out);
        let v = eval.value(&nl, &pl);
        assert!(
            (out.value - v).abs() <= 1e-9 * v.abs().max(1.0),
            "{kind}: evaluate {} vs value {v}",
            out.value
        );
    }
}
