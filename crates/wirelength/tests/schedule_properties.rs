//! Property-based tests for the §III-C smoothing schedules: over the whole
//! overflow range φ ∈ [0, 1] and randomized parameters, both schedules
//! must return finite, strictly positive values and be monotone
//! non-decreasing in φ — including the tangent schedule's clamped region
//! below φ = 2δ/π where the raw formula goes negative.

use mep_wirelength::schedule::{EplaceGammaSchedule, SmoothingSchedule, TangentTSchedule};
use proptest::prelude::*;

fn gamma0() -> impl Strategy<Value = f64> {
    0.01f64..100.0
}

fn bin_size() -> impl Strategy<Value = f64> {
    // bin widths from sub-micron sites to huge macro grids
    1e-3f64..1e4
}

fn t0() -> impl Strategy<Value = f64> {
    0.1f64..64.0
}

/// A dense sweep of φ including the exact interval endpoints.
fn phis() -> Vec<f64> {
    let mut v: Vec<f64> = (0..=200).map(|i| i as f64 / 200.0).collect();
    v.extend([0.0, 1e-9, 1e-6, 1e-4, 0.999_999, 1.0]);
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

proptest! {
    /// γ(φ) = γ0 (w_x + w_y) 10^{kφ+b}: finite, positive, monotone.
    #[test]
    fn gamma_schedule_finite_positive_monotone(
        g0 in gamma0(),
        bin_w in bin_size(),
        bin_h in bin_size(),
    ) {
        let s = EplaceGammaSchedule::new(g0, bin_w, bin_h);
        let mut prev = f64::NEG_INFINITY;
        for phi in phis() {
            let v = s.value(phi);
            prop_assert!(v.is_finite(), "γ({phi}) = {v} not finite");
            prop_assert!(v > 0.0, "γ({phi}) = {v} not positive");
            prop_assert!(
                v >= prev,
                "γ not monotone: γ({phi}) = {v} < previous {prev}"
            );
            prev = v;
        }
    }

    /// t(φ) = t0/2 (w_x + w_y) tan(π/2 φ − δ): finite, positive, monotone,
    /// with the clamp taking over below φ = 2δ/π and at the φ → 1 blowup.
    #[test]
    fn tangent_schedule_finite_positive_monotone(
        t0 in t0(),
        bin_w in bin_size(),
        bin_h in bin_size(),
    ) {
        let s = TangentTSchedule::new(bin_w, bin_h).with_t0(t0);
        let mut prev = f64::NEG_INFINITY;
        for phi in phis() {
            let v = s.value(phi);
            prop_assert!(v.is_finite(), "t({phi}) = {v} not finite");
            prop_assert!(v > 0.0, "t({phi}) = {v} not positive");
            prop_assert!(v >= s.floor && v <= s.ceil, "t({phi}) = {v} outside clamp");
            prop_assert!(
                v >= prev,
                "t not monotone: t({phi}) = {v} < previous {prev}"
            );
            prev = v;
        }
    }

    /// In the clamped region φ < 2δ/π the raw tangent is negative, and the
    /// schedule must pin the result to exactly `floor`.
    #[test]
    fn tangent_schedule_clamps_below_two_delta_over_pi(
        t0 in t0(),
        bin_w in bin_size(),
        bin_h in bin_size(),
        frac in 0.0f64..1.0,
    ) {
        let s = TangentTSchedule::new(bin_w, bin_h).with_t0(t0);
        let zero_cross = 2.0 * s.delta / std::f64::consts::PI;
        let phi = frac * zero_cross;
        prop_assert_eq!(
            s.value(phi),
            s.floor,
            "φ = {} below the zero crossing {} must clamp to floor",
            phi,
            zero_cross
        );
    }

    /// Out-of-range overflow is clamped to the unit interval, never
    /// extrapolated.
    #[test]
    fn schedules_clamp_phi_outside_unit_interval(
        g0 in gamma0(),
        t0 in t0(),
        bin_w in bin_size(),
        bin_h in bin_size(),
        phi in -10.0f64..10.0,
    ) {
        let g = EplaceGammaSchedule::new(g0, bin_w, bin_h);
        let t = TangentTSchedule::new(bin_w, bin_h).with_t0(t0);
        let clamped = phi.clamp(0.0, 1.0);
        prop_assert_eq!(g.value(phi), g.value(clamped));
        prop_assert_eq!(t.value(phi), t.value(clamped));
    }
}
