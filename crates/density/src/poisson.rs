//! Spectral Poisson solver for the ePlace electrostatic system.
//!
//! Solves `∇²ψ = −ρ` on the die with Neumann (reflecting) boundary
//! conditions, using the half-sample cosine basis:
//!
//! ```text
//! a_uv = DCT2(ρ),   ψ = IDCT( a_uv / (w_u² + w_v²) ),
//! E_x  = IDXST-in-x( a_uv · w_u / (w_u² + w_v²) ),
//! E_y  = IDXST-in-y( a_uv · w_v / (w_u² + w_v²) ),
//! ```
//!
//! with `w_u = πu / W`, `w_v = πv / H` (die width/height) — exactly the
//! transform set of ePlace \[18\] / DREAMPlace \[20\]. The DC term is dropped,
//! which is equivalent to superimposing a uniform neutralizing background
//! charge; fields are unaffected.
//!
//! The four 2-D sweeps of every solve run through a planned
//! [`Spectral2d`] engine: precomputed twiddle/phase tables, the real-input
//! FFT fast path, a cache-blocked transpose, and (when an executor is
//! installed via [`PoissonSolver::set_executor`]) parallel row batches with
//! bit-identical output at any thread count.

use crate::exec::ParallelExec;
use crate::transform::{transform_2d, Kind, Spectral2d, TransformScratch, TransformStats};
use std::sync::Arc;
use std::time::Instant;

/// Reusable spectral solver for an `ny × nx` bin grid (row-major, `iy`
/// major) over a die of physical size `width × height`.
#[derive(Debug, Clone)]
pub struct PoissonSolver {
    nx: usize,
    ny: usize,
    /// x-frequencies `w_u`, `u = 0..nx`.
    wu: Vec<f64>,
    /// y-frequencies `w_v`, `v = 0..ny`.
    wv: Vec<f64>,
    /// Planned 2-D transform engine (all four sweeps per solve run here).
    spectral: Spectral2d,
    /// Degraded mode: route sweeps through the unplanned serial
    /// `transform_2d` baseline instead of the planned engine (the placer's
    /// last-resort recovery action when the planned path misbehaves).
    unplanned: bool,
    /// Scratch + instrumentation for the unplanned fallback sweeps.
    fb_scratch: TransformScratch,
    fb_calls: u64,
    fb_nanos: u64,
}

/// Solver output views live in the caller's buffers; see
/// [`PoissonSolver::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of spectral modes used (all but DC).
    pub modes: usize,
}

impl PoissonSolver {
    /// Creates a solver for an `nx × ny` grid over a `width × height` die.
    ///
    /// # Panics
    ///
    /// Panics if a grid dimension is not a power of two or the die size is
    /// not positive.
    pub fn new(nx: usize, ny: usize, width: f64, height: f64) -> Self {
        assert!(
            nx.is_power_of_two() && ny.is_power_of_two(),
            "grid must be power of two"
        );
        assert!(width > 0.0 && height > 0.0, "die must have positive size");
        let wu = (0..nx)
            .map(|u| std::f64::consts::PI * u as f64 / width)
            .collect();
        let wv = (0..ny)
            .map(|v| std::f64::consts::PI * v as f64 / height)
            .collect();
        Self {
            nx,
            ny,
            wu,
            wv,
            spectral: Spectral2d::new(ny, nx),
            unplanned: false,
            fb_scratch: TransformScratch::new(),
            fb_calls: 0,
            fb_nanos: 0,
        }
    }

    /// Degrades every subsequent solve to the unplanned serial
    /// `transform_2d` baseline (same mathematics, no plan caches, no
    /// parallel row batches). One-way: recovery escalation never re-arms
    /// the planned path within a run.
    pub fn degrade_to_unplanned(&mut self) {
        self.unplanned = true;
    }

    /// Whether the solver has been degraded to the unplanned baseline.
    pub fn is_degraded(&self) -> bool {
        self.unplanned
    }

    /// One 2-D sweep through whichever transform path is active.
    fn sweep(&mut self, data: &mut [f64], kind_x: Kind, kind_y: Kind) {
        if self.unplanned {
            // lint:allow(determinism): TransformStats timing telemetry; durations never feed back into results
            let t0 = Instant::now();
            transform_2d(data, self.ny, self.nx, kind_x, kind_y, &mut self.fb_scratch);
            self.fb_calls += 1;
            self.fb_nanos += t0.elapsed().as_nanos() as u64;
        } else {
            self.spectral.execute(data, kind_x, kind_y);
        }
    }

    /// Installs a parallel executor for the 2-D transform row batches (see
    /// [`Spectral2d::set_executor`]); results stay bit-identical at any
    /// thread count.
    pub fn set_executor(&mut self, exec: Arc<dyn ParallelExec>, parts: usize) {
        self.spectral.set_executor(exec, parts);
    }

    /// Call count and cumulative wall time of the 2-D transforms (planned
    /// sweeps plus any unplanned fallback sweeps after a degrade).
    pub fn transform_stats(&self) -> TransformStats {
        let planned = self.spectral.stats();
        TransformStats {
            calls: planned.calls + self.fb_calls,
            nanos: planned.nanos + self.fb_nanos,
            ..planned
        }
    }

    /// Solves for the potential and both field components.
    ///
    /// `rho` is the charge density per bin, row-major with `iy` major
    /// (`rho[iy * nx + ix]`); `psi`, `ex`, `ey` receive the potential and
    /// field at bin centers.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `nx · ny`.
    pub fn solve(
        &mut self,
        rho: &[f64],
        psi: &mut [f64],
        ex: &mut [f64],
        ey: &mut [f64],
    ) -> SolveStats {
        let n = self.nx * self.ny;
        assert_eq!(rho.len(), n);
        assert_eq!(psi.len(), n);
        assert_eq!(ex.len(), n);
        assert_eq!(ey.len(), n);

        // forward analysis, directly in the caller's ψ buffer
        psi.copy_from_slice(rho);
        self.sweep(psi, Kind::Dct2, Kind::Dct2);

        // normalization for the synthesis pair: x = (2/N)(2/M) dct3(dct2 x)
        let norm = (2.0 / self.nx as f64) * (2.0 / self.ny as f64);

        // One fused elementwise pass turns the analysis coefficients into
        // all three synthesis spectra while each cache line of ψ is still
        // resident: s = norm·a/(w_u² + w_v²) overwrites ψ in place and
        // seeds E_x = s·w_u and E_y = s·w_v. This replaces the former
        // `coeff`/`work` staging buffers and their three re-read passes.
        for v in 0..self.ny {
            let wv = self.wv[v];
            let wv2 = wv * wv;
            let row = v * self.nx;
            for u in 0..self.nx {
                if u == 0 && v == 0 {
                    continue; // DC dropped below
                }
                let wu = self.wu[u];
                let denom = wu * wu + wv2;
                let s = norm * psi[row + u] / denom;
                psi[row + u] = s;
                ex[row + u] = s * wu;
                ey[row + u] = s * wv;
            }
        }
        psi[0] = 0.0;
        ex[0] = 0.0;
        ey[0] = 0.0;

        // ψ = Σ s_uv cos(w_u x) cos(w_v y)
        self.sweep(psi, Kind::Dct3, Kind::Dct3);
        // E_x = Σ s_uv w_u sin(w_u x) cos(w_v y)
        self.sweep(ex, Kind::Dst3, Kind::Dct3);
        // E_y = Σ s_uv w_v cos(w_u x) sin(w_v y)
        self.sweep(ey, Kind::Dct3, Kind::Dst3);

        SolveStats { modes: n - 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Build a single-mode density and check the manufactured solution.
    #[test]
    fn manufactured_single_mode() {
        let (nx, ny) = (32usize, 16usize);
        let (w, h) = (8.0, 4.0);
        let (u, v) = (3usize, 2usize);
        let wu = PI * u as f64 / w;
        let wv = PI * v as f64 / h;
        let mode = |ix: usize, iy: usize| {
            let x = (ix as f64 + 0.5) * w / nx as f64;
            let y = (iy as f64 + 0.5) * h / ny as f64;
            (wu * x).cos() * (wv * y).cos()
        };
        // ρ = (wu² + wv²) ψ*  ⇒  ψ = ψ*
        let k = wu * wu + wv * wv;
        let mut rho = vec![0.0; nx * ny];
        for iy in 0..ny {
            for ix in 0..nx {
                rho[iy * nx + ix] = k * mode(ix, iy);
            }
        }
        let mut solver = PoissonSolver::new(nx, ny, w, h);
        let mut psi = vec![0.0; nx * ny];
        let mut ex = vec![0.0; nx * ny];
        let mut ey = vec![0.0; nx * ny];
        solver.solve(&rho, &mut psi, &mut ex, &mut ey);
        for iy in 0..ny {
            for ix in 0..nx {
                let want = mode(ix, iy);
                assert!(
                    (psi[iy * nx + ix] - want).abs() < 1e-9,
                    "psi({ix},{iy}) = {} want {want}",
                    psi[iy * nx + ix]
                );
                // E_x = wu sin(wu x) cos(wv y)
                let x = (ix as f64 + 0.5) * w / nx as f64;
                let y = (iy as f64 + 0.5) * h / ny as f64;
                let want_ex = wu * (wu * x).sin() * (wv * y).cos();
                let want_ey = wv * (wu * x).cos() * (wv * y).sin();
                assert!((ex[iy * nx + ix] - want_ex).abs() < 1e-9, "ex({ix},{iy})");
                assert!((ey[iy * nx + ix] - want_ey).abs() < 1e-9, "ey({ix},{iy})");
            }
        }
    }

    #[test]
    fn constant_density_gives_zero_field() {
        let (nx, ny) = (16, 16);
        let rho = vec![2.5; nx * ny];
        let mut solver = PoissonSolver::new(nx, ny, 1.0, 1.0);
        let mut psi = vec![0.0; nx * ny];
        let mut ex = vec![0.0; nx * ny];
        let mut ey = vec![0.0; nx * ny];
        solver.solve(&rho, &mut psi, &mut ex, &mut ey);
        for i in 0..nx * ny {
            assert!(psi[i].abs() < 1e-9);
            assert!(ex[i].abs() < 1e-9);
            assert!(ey[i].abs() < 1e-9);
        }
    }

    #[test]
    fn field_points_away_from_charge_blob() {
        // a blob in the left half pushes positive charges to the right
        let (nx, ny) = (32, 32);
        let mut rho = vec![0.0; nx * ny];
        for iy in 12..20 {
            for ix in 4..10 {
                rho[iy * nx + ix] = 1.0;
            }
        }
        let mut solver = PoissonSolver::new(nx, ny, 1.0, 1.0);
        let mut psi = vec![0.0; nx * ny];
        let mut ex = vec![0.0; nx * ny];
        let mut ey = vec![0.0; nx * ny];
        solver.solve(&rho, &mut psi, &mut ex, &mut ey);
        // to the right of the blob, E_x must be positive (pointing right)
        assert!(ex[16 * nx + 16] > 0.0);
        // to the left of the blob, E_x must be negative
        assert!(ex[16 * nx + 1] < 0.0);
        // potential is highest inside the blob
        let inside = psi[16 * nx + 7];
        let outside = psi[16 * nx + 28];
        assert!(inside > outside);
    }

    #[test]
    fn field_is_negative_gradient_of_potential() {
        // central differences of ψ ≈ −E on a smooth density
        let (nx, ny) = (64, 64);
        let (w, h) = (1.0, 1.0);
        let mut rho = vec![0.0; nx * ny];
        for iy in 0..ny {
            for ix in 0..nx {
                let x = (ix as f64 + 0.5) / nx as f64;
                let y = (iy as f64 + 0.5) / ny as f64;
                rho[iy * nx + ix] = (PI * x).cos() * (2.0 * PI * y).cos();
            }
        }
        let mut solver = PoissonSolver::new(nx, ny, w, h);
        let mut psi = vec![0.0; nx * ny];
        let mut ex = vec![0.0; nx * ny];
        let mut ey = vec![0.0; nx * ny];
        solver.solve(&rho, &mut psi, &mut ex, &mut ey);
        let hx = w / nx as f64;
        for iy in 8..ny - 8 {
            for ix in 8..nx - 8 {
                let d = (psi[iy * nx + ix + 1] - psi[iy * nx + ix - 1]) / (2.0 * hx);
                let e = ex[iy * nx + ix];
                assert!(
                    (d + e).abs() < 2e-3 * (1.0 + e.abs()),
                    "({ix},{iy}): dψ/dx {d} vs −E {e}"
                );
            }
        }
    }

    #[test]
    fn degraded_solver_agrees_with_planned_path() {
        let (nx, ny) = (32, 16);
        let mut rho = vec![0.0; nx * ny];
        for iy in 4..10 {
            for ix in 6..20 {
                rho[iy * nx + ix] = 1.0 + 0.1 * (ix + iy) as f64;
            }
        }
        let mut planned = PoissonSolver::new(nx, ny, 4.0, 2.0);
        let mut degraded = PoissonSolver::new(nx, ny, 4.0, 2.0);
        degraded.degrade_to_unplanned();
        assert!(degraded.is_degraded() && !planned.is_degraded());
        let n = nx * ny;
        let (mut psi_a, mut ex_a, mut ey_a) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let (mut psi_b, mut ex_b, mut ey_b) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        planned.solve(&rho, &mut psi_a, &mut ex_a, &mut ey_a);
        degraded.solve(&rho, &mut psi_b, &mut ex_b, &mut ey_b);
        let scale = psi_a.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1.0);
        for i in 0..n {
            assert!((psi_a[i] - psi_b[i]).abs() < 1e-9 * scale, "psi[{i}]");
            assert!((ex_a[i] - ex_b[i]).abs() < 1e-9 * scale, "ex[{i}]");
            assert!((ey_a[i] - ey_b[i]).abs() < 1e-9 * scale, "ey[{i}]");
        }
        // fallback sweeps are still counted in the transform clock
        assert_eq!(degraded.transform_stats().calls, 4);
    }

    #[test]
    fn energy_is_positive_for_nonuniform_density() {
        // ½Σρψ > 0: the electrostatic energy of any non-neutral layout
        let (nx, ny) = (16, 16);
        let mut rho = vec![0.0; nx * ny];
        rho[5 * nx + 5] = 1.0;
        rho[10 * nx + 12] = 2.0;
        let mut solver = PoissonSolver::new(nx, ny, 1.0, 1.0);
        let mut psi = vec![0.0; nx * ny];
        let mut ex = vec![0.0; nx * ny];
        let mut ey = vec![0.0; nx * ny];
        solver.solve(&rho, &mut psi, &mut ex, &mut ey);
        let energy: f64 = rho.iter().zip(&psi).map(|(r, p)| r * p).sum::<f64>() * 0.5;
        assert!(energy > 0.0);
    }
}
