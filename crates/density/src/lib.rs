//! ePlace-style electrostatic density system for analytical placement.
//!
//! The density penalty `D(x, y)` of the global-placement objective
//! (Eq. (1) of the paper) is modeled electrostatically, as in ePlace \[18\]
//! and DREAMPlace \[20\]: cells are charges, density is charge density, and
//! the penalty is the field energy obtained from a Poisson solve.
//!
//! Layers, bottom-up:
//!
//! * [`fft`] — a from-scratch iterative radix-2 complex FFT;
//! * [`transform`] — DCT-II / DCT-III / DST-III on top of the FFT
//!   (the DREAMPlace transform set), with naive references;
//! * [`grid`] — bin grid, exact-overlap rasterization with ePlace local
//!   smoothing, and the density-overflow metric;
//! * [`poisson`] — the spectral Poisson solver (`ψ`, `E_x`, `E_y`);
//! * [`electro`] — the user-facing [`electro::Electrostatics`] system:
//!   energy, overflow, and per-cell density gradients.
//!
//! # Example
//!
//! ```
//! use mep_density::electro::Electrostatics;
//! use mep_netlist::synth;
//!
//! let c = synth::generate(&synth::smoke_spec());
//! let mut es = Electrostatics::new(&c.design, &c.placement);
//! let report = es.update(&c.design.netlist, &c.placement);
//! assert!(report.overflow > 0.0); // cells start piled at the die center
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels index several parallel arrays with one counter; the
// iterator rewrites clippy suggests obscure those loops.
#![allow(clippy::needless_range_loop)]

pub mod electro;
pub mod exec;
pub mod fft;
pub mod grid;
pub mod poisson;
pub mod transform;

pub use electro::{DensityReport, Electrostatics};
pub use exec::{part_bounds, ParallelExec, SerialExec};
pub use fft::FftPlan;
pub use grid::{BinGrid, DensityMap};
pub use poisson::PoissonSolver;
pub use transform::{plan_cache_stats, shared_dct_plan, DctPlan, Spectral2d, TransformStats};
