//! A self-contained iterative radix-2 complex FFT, unplanned and planned.
//!
//! The spectral Poisson solver only needs power-of-two sizes (the bin grid
//! is chosen as one), so a clean radix-2 implementation suffices. Data is
//! split-complex (`re`/`im` slices) to avoid a complex-number dependency.
//!
//! Two execution paths exist:
//!
//! * [`fft_in_place`] — the original self-contained routine. It derives
//!   twiddle factors with a per-butterfly complex recurrence seeded by one
//!   `cos`/`sin` pair per stage; fine for one-off transforms, but the
//!   recurrence is a serial dependency chain and the bit-reversal shift is
//!   recomputed every call.
//! * [`FftPlan`] — a reusable plan holding the bit-reversal permutation
//!   and all stage twiddle factors as precomputed tables. The placement
//!   hot loop runs thousands of same-size transforms per iteration, so the
//!   tables are computed once per grid size and amortized to zero.

/// In-place FFT (`inverse = false`) or unnormalized inverse FFT
/// (`inverse = true`) of a split-complex sequence.
///
/// The inverse is **unnormalized**: `ifft(fft(x)) = n · x`.
///
/// # Panics
///
/// Panics if the length is not a power of two or the slices disagree.
pub fn fft_in_place(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // butterflies
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0_f64, 0.0_f64);
            for k in 0..half {
                let a = start + k;
                let b = a + half;
                let tr = re[b] * cr - im[b] * ci;
                let ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
}
/// A reusable plan for radix-2 complex FFTs of one fixed power-of-two
/// size: the bit-reversal permutation and every stage's twiddle factors,
/// precomputed once so [`FftPlan::process`] performs no trigonometry.
///
/// The twiddle table is laid out stage-major: for the stage whose
/// butterflies span `2h` points, entry `h + k` holds
/// `e^{-iπk/h}` (`k = 0..h`), so the whole table is exactly `n` entries.
/// Inverse transforms conjugate the factors on the fly.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of each position (`n` entries).
    bitrev: Vec<u32>,
    /// Forward twiddle factors, stage-major (see the type docs).
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
}

impl FftPlan {
    /// Builds the plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| {
                if n <= 1 {
                    0
                } else {
                    (i as u32).reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let mut tw_re = vec![0.0; n];
        let mut tw_im = vec![0.0; n];
        let mut h = 1;
        while h < n {
            for k in 0..h {
                let ang = -std::f64::consts::PI * k as f64 / h as f64;
                tw_re[h + k] = ang.cos();
                tw_im[h + k] = ang.sin();
            }
            h <<= 1;
        }
        Self {
            n,
            bitrev,
            tw_re,
            tw_im,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial length-0 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place FFT (`inverse = false`) or unnormalized inverse FFT
    /// (`inverse = true`); same contract as [`fft_in_place`] but driven
    /// entirely by the precomputed tables.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the planned length.
    pub fn process(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        let n = self.n;
        assert_eq!(re.len(), n, "re length differs from planned length");
        assert_eq!(im.len(), n, "im length differs from planned length");
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let sign = if inverse { -1.0 } else { 1.0 };
        let mut h = 1;
        while h < n {
            let len = 2 * h;
            for start in (0..n).step_by(len) {
                for k in 0..h {
                    let wr = self.tw_re[h + k];
                    let wi = sign * self.tw_im[h + k];
                    let a = start + k;
                    let b = a + h;
                    let tr = re[b] * wr - im[b] * wi;
                    let ti = re[b] * wi + im[b] * wr;
                    re[b] = re[a] - tr;
                    im[b] = im[a] - ti;
                    re[a] += tr;
                    im[a] += ti;
                }
            }
            h = len;
        }
    }
}

/// Naive `O(n²)` DFT used as the correctness reference in tests.
pub fn dft_naive(re: &[f64], im: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out_re = vec![0.0; n];
    let mut out_im = vec![0.0; n];
    for (k, (orr, oii)) in out_re.iter_mut().zip(out_im.iter_mut()).enumerate() {
        let (mut sr, mut si) = (0.0, 0.0);
        for i in 0..n {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
            let (c, s) = (ang.cos(), ang.sin());
            sr += re[i] * c - im[i] * s;
            si += re[i] * s + im[i] * c;
        }
        *orr = sr;
        *oii = si;
    }
    (out_re, out_im)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_seq(n: usize, seed: u64) -> Vec<f64> {
        // tiny deterministic LCG; avoids a test-only dependency here
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let re0 = rand_seq(n, 7);
            let im0 = rand_seq(n, 13);
            let (want_re, want_im) = dft_naive(&re0, &im0, false);
            let mut re = re0.clone();
            let mut im = im0.clone();
            fft_in_place(&mut re, &mut im, false);
            for i in 0..n {
                assert!((re[i] - want_re[i]).abs() < 1e-9, "n={n} re[{i}]");
                assert!((im[i] - want_im[i]).abs() < 1e-9, "n={n} im[{i}]");
            }
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        let n = 64;
        let re0 = rand_seq(n, 3);
        let im0 = rand_seq(n, 5);
        let (want_re, want_im) = dft_naive(&re0, &im0, true);
        let mut re = re0;
        let mut im = im0;
        fft_in_place(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - want_re[i]).abs() < 1e-9);
            assert!((im[i] - want_im[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn round_trip_recovers_input_times_n() {
        let n = 256;
        let re0 = rand_seq(n, 11);
        let im0 = rand_seq(n, 17);
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_in_place(&mut re, &mut im, false);
        fft_in_place(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - n as f64 * re0[i]).abs() < 1e-9);
            assert!((im[i] - n as f64 * im0[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let re0 = rand_seq(n, 23);
        let im0 = vec![0.0; n];
        let t: f64 = re0.iter().map(|v| v * v).sum();
        let mut re = re0;
        let mut im = im0;
        fft_in_place(&mut re, &mut im, false);
        let f: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        assert!((f - n as f64 * t).abs() < 1e-6 * f.max(1.0));
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im, false);
        for i in 0..n {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_in_place(&mut re, &mut im, false);
    }

    #[test]
    fn plan_matches_naive_dft_both_directions() {
        for &n in &[1usize, 2, 4, 8, 64, 256] {
            let plan = FftPlan::new(n);
            assert_eq!(plan.len(), n);
            for inverse in [false, true] {
                let re0 = rand_seq(n, 31);
                let im0 = rand_seq(n, 37);
                let (want_re, want_im) = dft_naive(&re0, &im0, inverse);
                let mut re = re0;
                let mut im = im0;
                plan.process(&mut re, &mut im, inverse);
                for i in 0..n {
                    assert!((re[i] - want_re[i]).abs() < 1e-9, "n={n} inv={inverse}");
                    assert!((im[i] - want_im[i]).abs() < 1e-9, "n={n} inv={inverse}");
                }
            }
        }
    }

    #[test]
    fn plan_is_reusable_and_deterministic() {
        let plan = FftPlan::new(128);
        let re0 = rand_seq(128, 41);
        let im0 = rand_seq(128, 43);
        let mut first: Option<(Vec<f64>, Vec<f64>)> = None;
        for _ in 0..3 {
            let mut re = re0.clone();
            let mut im = im0.clone();
            plan.process(&mut re, &mut im, false);
            match &first {
                None => first = Some((re, im)),
                Some((fr, fi)) => {
                    for i in 0..128 {
                        assert_eq!(re[i].to_bits(), fr[i].to_bits());
                        assert_eq!(im[i].to_bits(), fi[i].to_bits());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn plan_rejects_non_power_of_two() {
        let _ = FftPlan::new(24);
    }

    #[test]
    #[should_panic(expected = "differs from planned length")]
    fn plan_rejects_length_mismatch() {
        let plan = FftPlan::new(8);
        let mut re = vec![0.0; 4];
        let mut im = vec![0.0; 4];
        plan.process(&mut re, &mut im, false);
    }
}
