//! A self-contained iterative radix-2 complex FFT.
//!
//! The spectral Poisson solver only needs power-of-two sizes (the bin grid
//! is chosen as one), so a clean radix-2 implementation suffices. Data is
//! split-complex (`re`/`im` slices) to avoid a complex-number dependency.

/// In-place FFT (`inverse = false`) or unnormalized inverse FFT
/// (`inverse = true`) of a split-complex sequence.
///
/// The inverse is **unnormalized**: `ifft(fft(x)) = n · x`.
///
/// # Panics
///
/// Panics if the length is not a power of two or the slices disagree.
pub fn fft_in_place(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // butterflies
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0_f64, 0.0_f64);
            for k in 0..half {
                let a = start + k;
                let b = a + half;
                let tr = re[b] * cr - im[b] * ci;
                let ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
}

/// Naive `O(n²)` DFT used as the correctness reference in tests.
pub fn dft_naive(re: &[f64], im: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out_re = vec![0.0; n];
    let mut out_im = vec![0.0; n];
    for (k, (orr, oii)) in out_re.iter_mut().zip(out_im.iter_mut()).enumerate() {
        let (mut sr, mut si) = (0.0, 0.0);
        for i in 0..n {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
            let (c, s) = (ang.cos(), ang.sin());
            sr += re[i] * c - im[i] * s;
            si += re[i] * s + im[i] * c;
        }
        *orr = sr;
        *oii = si;
    }
    (out_re, out_im)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_seq(n: usize, seed: u64) -> Vec<f64> {
        // tiny deterministic LCG; avoids a test-only dependency here
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let re0 = rand_seq(n, 7);
            let im0 = rand_seq(n, 13);
            let (want_re, want_im) = dft_naive(&re0, &im0, false);
            let mut re = re0.clone();
            let mut im = im0.clone();
            fft_in_place(&mut re, &mut im, false);
            for i in 0..n {
                assert!((re[i] - want_re[i]).abs() < 1e-9, "n={n} re[{i}]");
                assert!((im[i] - want_im[i]).abs() < 1e-9, "n={n} im[{i}]");
            }
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        let n = 64;
        let re0 = rand_seq(n, 3);
        let im0 = rand_seq(n, 5);
        let (want_re, want_im) = dft_naive(&re0, &im0, true);
        let mut re = re0;
        let mut im = im0;
        fft_in_place(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - want_re[i]).abs() < 1e-9);
            assert!((im[i] - want_im[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn round_trip_recovers_input_times_n() {
        let n = 256;
        let re0 = rand_seq(n, 11);
        let im0 = rand_seq(n, 17);
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_in_place(&mut re, &mut im, false);
        fft_in_place(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - n as f64 * re0[i]).abs() < 1e-9);
            assert!((im[i] - n as f64 * im0[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let re0 = rand_seq(n, 23);
        let im0 = vec![0.0; n];
        let t: f64 = re0.iter().map(|v| v * v).sum();
        let mut re = re0;
        let mut im = im0;
        fft_in_place(&mut re, &mut im, false);
        let f: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        assert!((f - n as f64 * t).abs() < 1e-6 * f.max(1.0));
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im, false);
        for i in 0..n {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_in_place(&mut re, &mut im, false);
    }
}
