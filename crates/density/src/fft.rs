//! A self-contained iterative radix-2 complex FFT, unplanned and planned.
//!
//! The spectral Poisson solver only needs power-of-two sizes (the bin grid
//! is chosen as one), so a clean radix-2 implementation suffices. Data is
//! split-complex (`re`/`im` slices) to avoid a complex-number dependency.
//!
//! Two execution paths exist:
//!
//! * [`fft_in_place`] — the original self-contained routine. It derives
//!   twiddle factors with a per-butterfly complex recurrence seeded by one
//!   `cos`/`sin` pair per stage; fine for one-off transforms, but the
//!   recurrence is a serial dependency chain and the bit-reversal shift is
//!   recomputed every call.
//! * [`FftPlan`] — a reusable plan holding the bit-reversal permutation
//!   and all stage twiddle factors as precomputed tables. The placement
//!   hot loop runs thousands of same-size transforms per iteration, so the
//!   tables are computed once per grid size and amortized to zero.

/// In-place FFT (`inverse = false`) or unnormalized inverse FFT
/// (`inverse = true`) of a split-complex sequence.
///
/// The inverse is **unnormalized**: `ifft(fft(x)) = n · x`.
///
/// # Panics
///
/// Panics if the length is not a power of two or the slices disagree.
pub fn fft_in_place(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // butterflies
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0_f64, 0.0_f64);
            for k in 0..half {
                let a = start + k;
                let b = a + half;
                let tr = re[b] * cr - im[b] * ci;
                let ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
}
/// A reusable plan for radix-2 complex FFTs of one fixed power-of-two
/// size: the bit-reversal permutation and every stage's twiddle factors,
/// precomputed once so [`FftPlan::process`] performs no trigonometry.
///
/// The twiddle table is laid out stage-major: for the stage whose
/// butterflies span `2h` points, entry `h + k` holds
/// `e^{-iπk/h}` (`k = 0..h`), so the whole table is exactly `n` entries.
/// Inverse transforms conjugate the factors on the fly.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of each position (`n` entries).
    bitrev: Vec<u32>,
    /// Forward twiddle factors, stage-major (see the type docs).
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
}

impl FftPlan {
    /// Builds the plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| {
                if n <= 1 {
                    0
                } else {
                    (i as u32).reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let mut tw_re = vec![0.0; n];
        let mut tw_im = vec![0.0; n];
        let mut h = 1;
        while h < n {
            for k in 0..h {
                let ang = -std::f64::consts::PI * k as f64 / h as f64;
                tw_re[h + k] = ang.cos();
                tw_im[h + k] = ang.sin();
            }
            h <<= 1;
        }
        Self {
            n,
            bitrev,
            tw_re,
            tw_im,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial length-0 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place FFT (`inverse = false`) or unnormalized inverse FFT
    /// (`inverse = true`); same contract as [`fft_in_place`] but driven
    /// entirely by the precomputed tables.
    ///
    /// The butterfly loops are structured for autovectorization: each
    /// stage walks zipped sub-slices (no bounds checks survive), the
    /// products fold into exactly-rounded `mul_add`s, and the first stage
    /// — whose twiddle factor is exactly `1` — is specialized to a pure
    /// add/sub pass. [`FftPlan::process_lanes`] mirrors every expression
    /// here one-for-one; keep the two in lockstep or the fused/unfused
    /// bitwise-identity contract breaks.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the planned length.
    pub fn process(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        let n = self.n;
        assert_eq!(re.len(), n, "re length differs from planned length");
        assert_eq!(im.len(), n, "im length differs from planned length");
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        // Stage h = 1: the only twiddle factor is exactly 1, so the
        // butterfly degenerates to add/sub over adjacent pairs.
        for (pr, pi) in re.chunks_exact_mut(2).zip(im.chunks_exact_mut(2)) {
            let tr = pr[1];
            let ti = pi[1];
            pr[1] = pr[0] - tr;
            pi[1] = pi[0] - ti;
            pr[0] += tr;
            pi[0] += ti;
        }
        let sign = if inverse { -1.0 } else { 1.0 };
        let mut h = 2;
        while h < n {
            let len = 2 * h;
            let stage_re = &self.tw_re[h..len];
            let stage_im = &self.tw_im[h..len];
            for (blk_re, blk_im) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
                let (ar, br) = blk_re.split_at_mut(h);
                let (ai, bi) = blk_im.split_at_mut(h);
                for ((((ar, br), (ai, bi)), &wr), &twi) in ar
                    .iter_mut()
                    .zip(br.iter_mut())
                    .zip(ai.iter_mut().zip(bi.iter_mut()))
                    .zip(stage_re)
                    .zip(stage_im)
                {
                    let wi = sign * twi;
                    let xr = *br;
                    let xi = *bi;
                    let tr = f64::mul_add(xr, wr, -(xi * wi));
                    let ti = f64::mul_add(xr, wi, xi * wr);
                    *br = *ar - tr;
                    *bi = *ai - ti;
                    *ar += tr;
                    *ai += ti;
                }
            }
            h = len;
        }
    }

    /// Lane-parallel variant of [`FftPlan::process`]: transforms
    /// [`LANES`] independent sequences at once, stored SoA so element `u`
    /// of lane `l` lives at index `u * LANES + l`. Each lane's arithmetic
    /// mirrors the scalar path expression-for-expression (same `mul_add`
    /// placement, same specialized first stage), so lane `l` of the
    /// output is bit-identical to running [`FftPlan::process`] on lane
    /// `l` alone — the property the fused spectral sweeps rely on.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from `LANES` times the planned
    /// length.
    pub fn process_lanes(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        const W: usize = LANES;
        let n = self.n;
        assert_eq!(re.len(), n * W, "re length differs from LANES * planned");
        assert_eq!(im.len(), n * W, "im length differs from LANES * planned");
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                let (lo, hi) = re.split_at_mut(j * W);
                lo[i * W..i * W + W].swap_with_slice(&mut hi[..W]);
                let (lo, hi) = im.split_at_mut(j * W);
                lo[i * W..i * W + W].swap_with_slice(&mut hi[..W]);
            }
        }
        // Stage h = 1, specialized exactly as in the scalar path.
        for (pr, pi) in re.chunks_exact_mut(2 * W).zip(im.chunks_exact_mut(2 * W)) {
            let (ar, br) = pr.split_at_mut(W);
            let (ai, bi) = pi.split_at_mut(W);
            for l in 0..W {
                let tr = br[l];
                let ti = bi[l];
                br[l] = ar[l] - tr;
                bi[l] = ai[l] - ti;
                ar[l] += tr;
                ai[l] += ti;
            }
        }
        let sign = if inverse { -1.0 } else { 1.0 };
        let mut h = 2;
        while h < n {
            let len = 2 * h;
            let stage_re = &self.tw_re[h..len];
            let stage_im = &self.tw_im[h..len];
            for (blk_re, blk_im) in re
                .chunks_exact_mut(len * W)
                .zip(im.chunks_exact_mut(len * W))
            {
                let (ar, br) = blk_re.split_at_mut(h * W);
                let (ai, bi) = blk_im.split_at_mut(h * W);
                for ((((ar, br), (ai, bi)), &wr), &twi) in ar
                    .chunks_exact_mut(W)
                    .zip(br.chunks_exact_mut(W))
                    .zip(ai.chunks_exact_mut(W).zip(bi.chunks_exact_mut(W)))
                    .zip(stage_re)
                    .zip(stage_im)
                {
                    let wi = sign * twi;
                    for l in 0..W {
                        let xr = br[l];
                        let xi = bi[l];
                        let tr = f64::mul_add(xr, wr, -(xi * wi));
                        let ti = f64::mul_add(xr, wi, xi * wr);
                        br[l] = ar[l] - tr;
                        bi[l] = ai[l] - ti;
                        ar[l] += tr;
                        ai[l] += ti;
                    }
                }
            }
            h = len;
        }
    }
}

/// Number of independent sequences the `*_lanes` kernels transform at
/// once. Eight `f64`s fill one 64-byte cache line, so a column-pass tile
/// of eight adjacent grid columns turns every strided row access into a
/// single full-line load — the key to the transpose-free fused sweeps.
pub const LANES: usize = 8;

/// Naive `O(n²)` DFT used as the correctness reference in tests.
pub fn dft_naive(re: &[f64], im: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out_re = vec![0.0; n];
    let mut out_im = vec![0.0; n];
    for (k, (orr, oii)) in out_re.iter_mut().zip(out_im.iter_mut()).enumerate() {
        let (mut sr, mut si) = (0.0, 0.0);
        for i in 0..n {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
            let (c, s) = (ang.cos(), ang.sin());
            sr += re[i] * c - im[i] * s;
            si += re[i] * s + im[i] * c;
        }
        *orr = sr;
        *oii = si;
    }
    (out_re, out_im)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_seq(n: usize, seed: u64) -> Vec<f64> {
        // tiny deterministic LCG; avoids a test-only dependency here
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let re0 = rand_seq(n, 7);
            let im0 = rand_seq(n, 13);
            let (want_re, want_im) = dft_naive(&re0, &im0, false);
            let mut re = re0.clone();
            let mut im = im0.clone();
            fft_in_place(&mut re, &mut im, false);
            for i in 0..n {
                assert!((re[i] - want_re[i]).abs() < 1e-9, "n={n} re[{i}]");
                assert!((im[i] - want_im[i]).abs() < 1e-9, "n={n} im[{i}]");
            }
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        let n = 64;
        let re0 = rand_seq(n, 3);
        let im0 = rand_seq(n, 5);
        let (want_re, want_im) = dft_naive(&re0, &im0, true);
        let mut re = re0;
        let mut im = im0;
        fft_in_place(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - want_re[i]).abs() < 1e-9);
            assert!((im[i] - want_im[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn round_trip_recovers_input_times_n() {
        let n = 256;
        let re0 = rand_seq(n, 11);
        let im0 = rand_seq(n, 17);
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_in_place(&mut re, &mut im, false);
        fft_in_place(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - n as f64 * re0[i]).abs() < 1e-9);
            assert!((im[i] - n as f64 * im0[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let re0 = rand_seq(n, 23);
        let im0 = vec![0.0; n];
        let t: f64 = re0.iter().map(|v| v * v).sum();
        let mut re = re0;
        let mut im = im0;
        fft_in_place(&mut re, &mut im, false);
        let f: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        assert!((f - n as f64 * t).abs() < 1e-6 * f.max(1.0));
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im, false);
        for i in 0..n {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_in_place(&mut re, &mut im, false);
    }

    #[test]
    fn plan_matches_naive_dft_both_directions() {
        for &n in &[1usize, 2, 4, 8, 64, 256] {
            let plan = FftPlan::new(n);
            assert_eq!(plan.len(), n);
            for inverse in [false, true] {
                let re0 = rand_seq(n, 31);
                let im0 = rand_seq(n, 37);
                let (want_re, want_im) = dft_naive(&re0, &im0, inverse);
                let mut re = re0;
                let mut im = im0;
                plan.process(&mut re, &mut im, inverse);
                for i in 0..n {
                    assert!((re[i] - want_re[i]).abs() < 1e-9, "n={n} inv={inverse}");
                    assert!((im[i] - want_im[i]).abs() < 1e-9, "n={n} inv={inverse}");
                }
            }
        }
    }

    #[test]
    fn plan_is_reusable_and_deterministic() {
        let plan = FftPlan::new(128);
        let re0 = rand_seq(128, 41);
        let im0 = rand_seq(128, 43);
        let mut first: Option<(Vec<f64>, Vec<f64>)> = None;
        for _ in 0..3 {
            let mut re = re0.clone();
            let mut im = im0.clone();
            plan.process(&mut re, &mut im, false);
            match &first {
                None => first = Some((re, im)),
                Some((fr, fi)) => {
                    for i in 0..128 {
                        assert_eq!(re[i].to_bits(), fr[i].to_bits());
                        assert_eq!(im[i].to_bits(), fi[i].to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn lanes_bitwise_match_scalar_plan() {
        for &n in &[2usize, 4, 8, 64, 256] {
            let plan = FftPlan::new(n);
            for inverse in [false, true] {
                // SoA pack of LANES distinct sequences.
                let mut lre = vec![0.0; n * LANES];
                let mut lim = vec![0.0; n * LANES];
                let mut scalars = Vec::new();
                for l in 0..LANES {
                    let re0 = rand_seq(n, 100 + l as u64);
                    let im0 = rand_seq(n, 200 + l as u64);
                    for u in 0..n {
                        lre[u * LANES + l] = re0[u];
                        lim[u * LANES + l] = im0[u];
                    }
                    scalars.push((re0, im0));
                }
                plan.process_lanes(&mut lre, &mut lim, inverse);
                for (l, (re, im)) in scalars.iter_mut().enumerate() {
                    plan.process(re, im, inverse);
                    for u in 0..n {
                        assert_eq!(
                            lre[u * LANES + l].to_bits(),
                            re[u].to_bits(),
                            "n={n} inv={inverse} lane={l} re[{u}]"
                        );
                        assert_eq!(
                            lim[u * LANES + l].to_bits(),
                            im[u].to_bits(),
                            "n={n} inv={inverse} lane={l} im[{u}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn plan_rejects_non_power_of_two() {
        let _ = FftPlan::new(24);
    }

    #[test]
    #[should_panic(expected = "differs from planned length")]
    fn plan_rejects_length_mismatch() {
        let plan = FftPlan::new(8);
        let mut re = vec![0.0; 4];
        let mut im = vec![0.0; 4];
        plan.process(&mut re, &mut im, false);
    }
}
