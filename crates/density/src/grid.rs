//! Bin grid, density rasterization, and the overflow metric.
//!
//! The die is divided into an `m × n` grid of equal bins (`m`, `n` powers
//! of two for the spectral solver). Cell area is rasterized into bins by
//! exact rectangle overlap. Following ePlace's *local smoothing*, a movable
//! cell narrower than `√2 ×` the bin size is inflated to that size with its
//! density scaled down so total charge (area) is preserved — otherwise
//! sub-bin cells produce a spiky, ill-conditioned density.

use mep_netlist::{CellId, Design, Netlist, Placement, Rect};

/// An `m × n` grid of equal bins over the die.
#[derive(Debug, Clone, PartialEq)]
pub struct BinGrid {
    die: Rect,
    nx: usize,
    ny: usize,
    bin_w: f64,
    bin_h: f64,
}

impl BinGrid {
    /// Creates a grid with `nx × ny` bins over `die`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or the die is degenerate.
    pub fn new(die: Rect, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "bin grid must be non-empty");
        assert!(die.width() > 0.0 && die.height() > 0.0, "degenerate die");
        Self {
            die,
            nx,
            ny,
            bin_w: die.width() / nx as f64,
            bin_h: die.height() / ny as f64,
        }
    }

    /// Picks a power-of-two grid so bins are a few standard-cell rows wide,
    /// clamped to `\[16, 1024\]` per side (ePlace uses a similar heuristic).
    pub fn auto(design: &Design) -> Self {
        let cells = design.netlist.num_movable().max(1);
        // aim for ~1–4 movable cells per bin
        let target = (cells as f64).sqrt();
        let side = target.clamp(16.0, 1024.0);
        let pow2 = (side.log2().round() as u32).clamp(4, 10);
        let n = 1usize << pow2;
        Self::new(design.die, n, n)
    }

    /// Number of bins horizontally.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of bins vertically.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of bins.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bin width.
    pub fn bin_w(&self) -> f64 {
        self.bin_w
    }

    /// Bin height.
    pub fn bin_h(&self) -> f64 {
        self.bin_h
    }

    /// Area of one bin.
    pub fn bin_area(&self) -> f64 {
        self.bin_w * self.bin_h
    }

    /// The die this grid covers.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Rectangle of bin `(ix, iy)`.
    pub fn bin_rect(&self, ix: usize, iy: usize) -> Rect {
        Rect::from_origin_size(
            self.die.xl + ix as f64 * self.bin_w,
            self.die.yl + iy as f64 * self.bin_h,
            self.bin_w,
            self.bin_h,
        )
    }

    /// Flat index of bin `(ix, iy)` (row-major by `iy`).
    #[inline]
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        iy * self.nx + ix
    }

    /// Column range of bins overlapping `[xl, xh]`, clamped to the die.
    #[inline]
    fn col_range(&self, xl: f64, xh: f64) -> std::ops::Range<usize> {
        let lo = ((xl - self.die.xl) / self.bin_w).floor().max(0.0) as usize;
        let hi = (((xh - self.die.xl) / self.bin_w).ceil() as usize).min(self.nx);
        lo.min(self.nx)..hi
    }

    #[inline]
    fn row_range(&self, yl: f64, yh: f64) -> std::ops::Range<usize> {
        let lo = ((yl - self.die.yl) / self.bin_h).floor().max(0.0) as usize;
        let hi = (((yh - self.die.yl) / self.bin_h).ceil() as usize).min(self.ny);
        lo.min(self.ny)..hi
    }

    /// Splats `rect` (weighted by `scale`) into `out` by exact overlap.
    pub fn splat(&self, rect: &Rect, scale: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.len());
        for iy in self.row_range(rect.yl, rect.yh) {
            for ix in self.col_range(rect.xl, rect.xh) {
                let ov = self.bin_rect(ix, iy).overlap_area(rect);
                if ov > 0.0 {
                    out[self.index(ix, iy)] += scale * ov;
                }
            }
        }
    }

    /// Accumulates the field average over `rect` from per-bin values
    /// (overlap-weighted mean; the adjoint of [`BinGrid::splat`]).
    pub fn gather(&self, rect: &Rect, field: &[f64]) -> f64 {
        debug_assert_eq!(field.len(), self.len());
        let area = rect.area();
        if area <= 0.0 {
            // degenerate rect (zero-size terminal): nearest bin value
            let ix = (((rect.xl - self.die.xl) / self.bin_w) as usize).min(self.nx - 1);
            let iy = (((rect.yl - self.die.yl) / self.bin_h) as usize).min(self.ny - 1);
            return field[self.index(ix, iy)];
        }
        let mut acc = 0.0;
        for iy in self.row_range(rect.yl, rect.yh) {
            for ix in self.col_range(rect.xl, rect.xh) {
                let ov = self.bin_rect(ix, iy).overlap_area(rect);
                if ov > 0.0 {
                    acc += ov * field[self.index(ix, iy)];
                }
            }
        }
        acc / area
    }

    /// The (possibly inflated) density footprint of a movable cell under
    /// ePlace local smoothing, with the density scale that preserves area.
    /// Returns `(rect, scale)`.
    pub fn smoothed_footprint(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        cell: CellId,
    ) -> (Rect, f64) {
        let w = netlist.cell_width(cell);
        let h = netlist.cell_height(cell);
        let min_w = std::f64::consts::SQRT_2 * self.bin_w;
        let min_h = std::f64::consts::SQRT_2 * self.bin_h;
        let ew = w.max(min_w);
        let eh = h.max(min_h);
        let scale = if ew > w || eh > h {
            (w * h) / (ew * eh)
        } else {
            1.0
        };
        let c = placement.center(netlist, cell);
        (
            Rect::new(
                c.x - 0.5 * ew,
                c.y - 0.5 * eh,
                c.x + 0.5 * ew,
                c.y + 0.5 * eh,
            ),
            scale,
        )
    }
}

/// Movable and fixed density maps over a [`BinGrid`].
#[derive(Debug, Clone)]
pub struct DensityMap {
    grid: BinGrid,
    /// Fixed-cell area per bin (computed once).
    pub fixed: Vec<f64>,
    /// Movable-cell area per bin (recomputed every iteration).
    pub movable: Vec<f64>,
}

impl DensityMap {
    /// Builds the map and rasterizes the fixed cells from `placement`.
    pub fn new(grid: BinGrid, netlist: &Netlist, placement: &Placement) -> Self {
        let mut fixed = vec![0.0; grid.len()];
        for cell in netlist.fixed_cells() {
            let rect = placement.cell_rect(netlist, cell);
            if rect.area() > 0.0 {
                grid.splat(&rect, 1.0, &mut fixed);
            }
        }
        Self {
            movable: vec![0.0; grid.len()],
            fixed,
            grid,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &BinGrid {
        &self.grid
    }

    /// Re-rasterizes movable cells (with ePlace smoothing) from `placement`.
    pub fn update_movable(&mut self, netlist: &Netlist, placement: &Placement) {
        self.movable.iter_mut().for_each(|v| *v = 0.0);
        for cell in netlist.movable_cells() {
            let (rect, scale) = self.grid.smoothed_footprint(netlist, placement, cell);
            self.grid.splat(&rect, scale, &mut self.movable);
        }
    }

    /// Total charge density per bin (movable + fixed), for the Poisson
    /// right-hand side. Written into `out`.
    pub fn total_into(&self, out: &mut [f64]) {
        for ((o, &m), &f) in out.iter_mut().zip(&self.movable).zip(&self.fixed) {
            *o = m + f;
        }
    }

    /// ePlace density overflow
    /// `φ = Σ_b (mov_b − ρ_t · free_b)⁺ / Σ movable area`, where `free_b`
    /// is the bin area not covered by fixed cells.
    ///
    /// Overflow starts near 1 with everything piled at the die center and
    /// approaches 0 as cells spread to the target density.
    pub fn overflow(&self, target_density: f64, total_movable_area: f64) -> f64 {
        if total_movable_area <= 0.0 {
            return 0.0;
        }
        let bin_area = self.grid.bin_area();
        let mut over = 0.0;
        for (&m, &f) in self.movable.iter().zip(&self.fixed) {
            let free = (bin_area - f).max(0.0);
            over += (m - target_density * free).max(0.0);
        }
        over / total_movable_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth;

    fn grid44() -> BinGrid {
        BinGrid::new(Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4)
    }

    #[test]
    fn splat_conserves_area() {
        let g = grid44();
        let mut out = vec![0.0; g.len()];
        let r = Rect::new(0.3, 0.7, 2.9, 3.1);
        g.splat(&r, 1.0, &mut out);
        let total: f64 = out.iter().sum();
        assert!((total - r.area()).abs() < 1e-9);
    }

    #[test]
    fn splat_clips_to_die() {
        let g = grid44();
        let mut out = vec![0.0; g.len()];
        let r = Rect::new(-1.0, -1.0, 1.0, 1.0); // hangs off the die
        g.splat(&r, 1.0, &mut out);
        let total: f64 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-9); // only the in-die quarter
        assert!((out[g.index(0, 0)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn splat_scale_factor() {
        let g = grid44();
        let mut out = vec![0.0; g.len()];
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        g.splat(&r, 0.25, &mut out);
        assert!((out.iter().sum::<f64>() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gather_of_constant_field_is_constant() {
        let g = grid44();
        let field = vec![3.5; g.len()];
        let r = Rect::new(0.2, 0.6, 3.3, 2.7);
        assert!((g.gather(&r, &field) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn gather_weighs_by_overlap() {
        let g = BinGrid::new(Rect::new(0.0, 0.0, 2.0, 1.0), 2, 1);
        let field = vec![1.0, 3.0];
        // rect covering 25% of bin0 and 75% of bin1 (widths 0.5 / 1.5 over x in [0.5, 2.0])
        let r = Rect::new(0.5, 0.0, 2.0, 1.0);
        let want = (0.5 * 1.0 + 1.0 * 3.0) / 1.5;
        assert!((g.gather(&r, &field) - want).abs() < 1e-9);
    }

    #[test]
    fn smoothing_preserves_cell_area() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let g = BinGrid::new(c.design.die, 32, 32);
        for cell in nl.movable_cells().take(20) {
            let (rect, scale) = g.smoothed_footprint(nl, &c.placement, cell);
            assert!((rect.area() * scale - nl.cell_area(cell)).abs() < 1e-9);
        }
    }

    #[test]
    fn density_map_totals_match_areas() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        // spread cells a bit so the smoothed footprints stay inside the die
        let mut map = DensityMap::new(BinGrid::new(c.design.die, 16, 16), nl, &c.placement);
        map.update_movable(nl, &c.placement);
        let movable: f64 = map.movable.iter().sum();
        // footprints are centered in-die (cells start at the die center)
        assert!(
            (movable - nl.total_movable_area()).abs() < 0.02 * nl.total_movable_area(),
            "movable mass {movable} vs area {}",
            nl.total_movable_area()
        );
    }

    #[test]
    fn overflow_is_one_when_piled_and_zero_when_spread() {
        // 100 unit cells on a 10x10 die, target density 1.0
        let mut b = mep_netlist::NetlistBuilder::new();
        for i in 0..100 {
            b.add_cell(format!("c{i}"), 1.0, 1.0, true).unwrap();
        }
        let nl = b.build();
        let die = Rect::new(0.0, 0.0, 10.0, 10.0);
        let grid = BinGrid::new(die, 8, 8);

        // piled at center
        let mut piled = Placement::zeros(100);
        for i in 0..100 {
            piled.x[i] = 4.5;
            piled.y[i] = 4.5;
        }
        let mut map = DensityMap::new(grid.clone(), &nl, &piled);
        map.update_movable(&nl, &piled);
        let phi_piled = map.overflow(1.0, nl.total_movable_area());

        // spread uniformly
        let mut spread = Placement::zeros(100);
        for i in 0..100 {
            spread.x[i] = (i % 10) as f64;
            spread.y[i] = (i / 10) as f64;
        }
        map.update_movable(&nl, &spread);
        let phi_spread = map.overflow(1.0, nl.total_movable_area());

        assert!(phi_piled > 0.6, "piled overflow {phi_piled}");
        assert!(phi_spread < 0.1, "spread overflow {phi_spread}");
    }

    #[test]
    fn fixed_density_reduces_capacity() {
        let mut b = mep_netlist::NetlistBuilder::new();
        b.add_cell("m", 2.0, 2.0, true).unwrap();
        b.add_cell("blk", 5.0, 10.0, false).unwrap();
        let nl = b.build();
        let mut pl = Placement::zeros(2);
        pl.x[1] = 0.0; // block covers left half
        pl.y[1] = 0.0;
        pl.x[0] = 1.0; // movable cell inside the blockage
        pl.y[0] = 4.0;
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 10.0, 10.0), 4, 4);
        let mut map = DensityMap::new(grid, &nl, &pl);
        map.update_movable(&nl, &pl);
        let phi_blocked = map.overflow(1.0, nl.total_movable_area());
        // move the movable cell into free space
        pl.x[0] = 7.0;
        map.update_movable(&nl, &pl);
        let phi_free = map.overflow(1.0, nl.total_movable_area());
        assert!(phi_blocked > phi_free);
    }

    #[test]
    fn auto_grid_is_power_of_two() {
        let c = synth::generate(&synth::smoke_spec());
        let g = BinGrid::auto(&c.design);
        assert!(g.nx().is_power_of_two());
        assert!(g.ny().is_power_of_two());
        assert!(g.nx() >= 16 && g.nx() <= 1024);
    }
}
