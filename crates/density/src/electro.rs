//! The high-level electrostatic density system: the `D(x, y)` term of the
//! global placement objective (Eq. (1)) and its gradient.
//!
//! ePlace's analogy: cells are positive charges with charge = area; the
//! density penalty is the electrostatic potential energy
//! `D = ½ Σ_i q_i ψ(x_i)`, its gradient on cell `i` is `−q_i E(x_i)`
//! (cells are pushed *down* the energy landscape, i.e. away from dense
//! regions, by following `−∇D`).

use crate::exec::ParallelExec;
use crate::grid::{BinGrid, DensityMap};
use crate::poisson::PoissonSolver;
use mep_netlist::{CellId, Design, Netlist, Placement};
use std::sync::{Arc, Mutex};

/// Below this movable-cell count the parallel gradient path is not worth
/// the dispatch overhead; the serial loop runs instead.
const PARALLEL_CELL_THRESHOLD: usize = 2048;

/// An installed executor plus the per-part state it dispatches over.
///
/// Bound to the netlist passed to [`Electrostatics::set_executor`]: the
/// movable-cell list and its uniform partition are computed once there,
/// and the per-part `(cell, dgx, dgy)` scratch vectors are pre-sized so
/// the hot loop performs no allocations.
#[derive(Debug)]
struct ExecHook {
    exec: Arc<dyn ParallelExec>,
    netlist_instance: u64,
    /// Movable cell indices, ascending.
    movable: Vec<u32>,
    /// Partition boundaries into `movable` (`parts + 1` entries).
    part_start: Vec<u32>,
    /// Per-part `(cell, dgx, dgy)` output; applied in part order, which is
    /// ascending cell order, so results are identical to the serial loop.
    scratch: Vec<Mutex<Vec<(u32, f64, f64)>>>,
}

impl Clone for ExecHook {
    fn clone(&self) -> Self {
        Self {
            exec: Arc::clone(&self.exec),
            netlist_instance: self.netlist_instance,
            movable: self.movable.clone(),
            part_start: self.part_start.clone(),
            scratch: self
                .scratch
                .iter()
                .map(|m| {
                    // poison recovery: a scratch is plain buffer space, so a
                    // clone of a poisoned one is still well-formed
                    let guard = match m.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    Mutex::new(guard.clone())
                })
                .collect(),
        }
    }
}

/// Per-iteration density report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityReport {
    /// Electrostatic energy `½ Σ ρ ψ` (the penalty value `D`).
    pub energy: f64,
    /// ePlace density overflow `φ ∈ [0, ~1]`.
    pub overflow: f64,
}

/// The electrostatic system bound to one design: grid, fixed density,
/// spectral solver, and scratch fields.
#[derive(Debug, Clone)]
pub struct Electrostatics {
    map: DensityMap,
    solver: PoissonSolver,
    target_density: f64,
    total_movable_area: f64,
    rho: Vec<f64>,
    psi: Vec<f64>,
    ex: Vec<f64>,
    ey: Vec<f64>,
    bin_area: f64,
    exec: Option<ExecHook>,
}

impl Electrostatics {
    /// Builds the system for `design` with an automatically sized grid.
    pub fn new(design: &Design, placement: &Placement) -> Self {
        Self::with_grid(design, placement, BinGrid::auto(design))
    }

    /// Builds the system with an explicit grid.
    pub fn with_grid(design: &Design, placement: &Placement, grid: BinGrid) -> Self {
        let n = grid.len();
        let solver = PoissonSolver::new(
            grid.nx(),
            grid.ny(),
            design.die.width(),
            design.die.height(),
        );
        let bin_area = grid.bin_area();
        let map = DensityMap::new(grid, &design.netlist, placement);
        Self {
            map,
            solver,
            target_density: design.target_density,
            total_movable_area: design.netlist.total_movable_area(),
            rho: vec![0.0; n],
            psi: vec![0.0; n],
            ex: vec![0.0; n],
            ey: vec![0.0; n],
            bin_area,
            exec: None,
        }
    }

    /// Installs a parallel executor for gradient accumulation, splitting
    /// `netlist`'s movable cells into `parts` contiguous chunks with
    /// per-part reusable scratch. Results are bit-identical to the serial
    /// path (disjoint per-cell outputs, applied in a fixed order).
    pub fn set_executor(&mut self, exec: Arc<dyn ParallelExec>, parts: usize, netlist: &Netlist) {
        let parts = parts.max(1);
        // the spectral transforms dispatch row batches over the same pool
        self.solver.set_executor(Arc::clone(&exec), parts);
        let movable: Vec<u32> = netlist.movable_cells().map(|c| c.index() as u32).collect();
        let n = movable.len();
        let part_start = (0..=parts)
            .map(|k| (n as u64 * k as u64 / parts as u64) as u32)
            .collect();
        let cap = n.div_ceil(parts);
        let scratch = (0..parts)
            .map(|_| Mutex::new(Vec::with_capacity(cap)))
            .collect();
        self.exec = Some(ExecHook {
            exec,
            netlist_instance: netlist.instance_id(),
            movable,
            part_start,
            scratch,
        });
    }

    /// The bin grid in use.
    pub fn grid(&self) -> &BinGrid {
        self.map.grid()
    }

    /// Call count and cumulative wall time of the planned 2-D spectral
    /// transforms run by the Poisson solver.
    pub fn transform_stats(&self) -> crate::transform::TransformStats {
        self.solver.transform_stats()
    }

    /// Degrades the Poisson solver to the unplanned serial transform
    /// baseline (see [`PoissonSolver::degrade_to_unplanned`]); one-way.
    pub fn degrade_solver(&mut self) {
        self.solver.degrade_to_unplanned();
    }

    /// Whether the Poisson solver runs in degraded (unplanned) mode.
    pub fn solver_degraded(&self) -> bool {
        self.solver.is_degraded()
    }

    /// Rasterizes movable density and solves the field for `placement`.
    pub fn update(&mut self, netlist: &Netlist, placement: &Placement) -> DensityReport {
        self.map.update_movable(netlist, placement);
        self.map.total_into(&mut self.rho);
        // charge density (area per bin → dimensionless density)
        let inv = 1.0 / self.bin_area;
        for r in self.rho.iter_mut() {
            *r *= inv;
        }
        self.solver
            .solve(&self.rho, &mut self.psi, &mut self.ex, &mut self.ey);
        let energy = 0.5
            * self
                .rho
                .iter()
                .zip(&self.psi)
                .map(|(r, p)| r * p)
                .sum::<f64>()
            * self.bin_area;
        let overflow = self
            .map
            .overflow(self.target_density, self.total_movable_area);
        DensityReport { energy, overflow }
    }

    /// Density overflow of the last [`Electrostatics::update`].
    pub fn overflow(&self) -> f64 {
        self.map
            .overflow(self.target_density, self.total_movable_area)
    }

    /// Accumulates `∂D/∂x_i`, `∂D/∂y_i` for every movable cell into the
    /// gradient buffers (fixed cells untouched). Must be called after
    /// [`Electrostatics::update`].
    ///
    /// # Panics
    ///
    /// Panics if the buffers are shorter than the cell count.
    pub fn accumulate_gradient(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        grad_x: &mut [f64],
        grad_y: &mut [f64],
    ) {
        assert!(grad_x.len() >= netlist.num_cells());
        assert!(grad_y.len() >= netlist.num_cells());
        let grid = self.map.grid();
        if let Some(hook) = &self.exec {
            debug_assert_eq!(
                hook.netlist_instance,
                netlist.instance_id(),
                "executor installed for a different netlist"
            );
            if hook.movable.len() >= PARALLEL_CELL_THRESHOLD {
                let parts = hook.scratch.len();
                hook.exec.run(parts, &|p| {
                    let mut buf = hook.scratch[p].lock().expect("density scratch lock");
                    buf.clear();
                    let lo = hook.part_start[p] as usize;
                    let hi = hook.part_start[p + 1] as usize;
                    for &cell_idx in &hook.movable[lo..hi] {
                        let cell = CellId::from_usize(cell_idx as usize);
                        let (rect, _scale) = grid.smoothed_footprint(netlist, placement, cell);
                        let q = netlist.cell_area(cell);
                        buf.push((
                            cell_idx,
                            -q * grid.gather(&rect, &self.ex),
                            -q * grid.gather(&rect, &self.ey),
                        ));
                    }
                });
                // apply in part order = ascending cell order; each cell is
                // written by exactly one part, so this matches the serial loop
                for part in &hook.scratch {
                    for &(c, dx, dy) in part.lock().expect("density scratch lock").iter() {
                        grad_x[c as usize] += dx;
                        grad_y[c as usize] += dy;
                    }
                }
                return;
            }
        }
        for cell in netlist.movable_cells() {
            let (rect, _scale) = grid.smoothed_footprint(netlist, placement, cell);
            let q = netlist.cell_area(cell);
            // ∂D/∂x = −q·E_x  (the force is +qE; descending the objective
            // moves the cell along the force)
            grad_x[cell.index()] -= q * grid.gather(&rect, &self.ex);
            grad_y[cell.index()] -= q * grid.gather(&rect, &self.ey);
        }
    }

    /// The potential field of the last solve (bin-major, `iy * nx + ix`).
    pub fn potential(&self) -> &[f64] {
        &self.psi
    }

    /// Movable + fixed charge density of the last solve.
    pub fn density(&self) -> &[f64] {
        &self.rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::{synth, NetlistBuilder, Rect};

    fn two_cell_design(x0: f64, x1: f64) -> (Design, Placement) {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 2.0, 2.0, true).unwrap();
        b.add_cell("b", 2.0, 2.0, true).unwrap();
        let nl = b.build();
        let design =
            Design::with_uniform_rows("t", nl, Rect::new(0.0, 0.0, 32.0, 32.0), 1.0, 1.0, 1.0)
                .unwrap();
        let mut pl = Placement::zeros(2);
        pl.x[0] = x0;
        pl.y[0] = 15.0;
        pl.x[1] = x1;
        pl.y[1] = 15.0;
        (design, pl)
    }

    #[test]
    fn overlapping_cells_repel() {
        let (design, pl) = two_cell_design(15.0, 15.5);
        let grid = BinGrid::new(design.die, 32, 32);
        let mut es = Electrostatics::with_grid(&design, &pl, grid);
        es.update(&design.netlist, &pl);
        let mut gx = vec![0.0; 2];
        let mut gy = vec![0.0; 2];
        es.accumulate_gradient(&design.netlist, &pl, &mut gx, &mut gy);
        // descending −∇D must push cell a left and cell b right
        assert!(gx[0] > 0.0, "gx[0] = {}", gx[0]);
        assert!(gx[1] < 0.0, "gx[1] = {}", gx[1]);
    }

    #[test]
    fn energy_decreases_as_cells_separate() {
        let grid_energy = |sep: f64| {
            let (design, pl) = two_cell_design(15.0 - sep / 2.0, 15.0 + sep / 2.0);
            let grid = BinGrid::new(design.die, 32, 32);
            let mut es = Electrostatics::with_grid(&design, &pl, grid);
            es.update(&design.netlist, &pl).energy
        };
        let e0 = grid_energy(0.0);
        let e4 = grid_energy(4.0);
        let e10 = grid_energy(10.0);
        assert!(e0 > e4, "{e0} vs {e4}");
        assert!(e4 > e10, "{e4} vs {e10}");
    }

    #[test]
    fn gradient_matches_finite_difference_of_energy() {
        let (design, pl) = two_cell_design(12.0, 18.0);
        let grid = BinGrid::new(design.die, 32, 32);
        let mut es = Electrostatics::with_grid(&design, &pl, grid);
        es.update(&design.netlist, &pl);
        let mut gx = vec![0.0; 2];
        let mut gy = vec![0.0; 2];
        es.accumulate_gradient(&design.netlist, &pl, &mut gx, &mut gy);
        let h = 0.05;
        for cell in 0..2 {
            let mut plus = pl.clone();
            plus.x[cell] += h;
            let mut minus = pl.clone();
            minus.x[cell] -= h;
            let ep = es.update(&design.netlist, &plus).energy;
            let em = es.update(&design.netlist, &minus).energy;
            let fd = (ep - em) / (2.0 * h);
            es.update(&design.netlist, &pl);
            assert!(
                (fd - gx[cell]).abs() < 0.15 * fd.abs().max(0.05),
                "cell {cell}: fd {fd} vs analytic {}",
                gx[cell]
            );
        }
    }

    #[test]
    fn update_reports_sane_overflow() {
        let c = synth::generate(&synth::smoke_spec());
        let mut es = Electrostatics::new(&c.design, &c.placement);
        let report = es.update(&c.design.netlist, &c.placement);
        // everything starts piled at the die center: overflow near 1
        assert!(report.overflow > 0.5, "overflow {}", report.overflow);
        assert!(report.energy > 0.0);
    }

    #[test]
    fn executor_path_matches_serial_bitwise() {
        // enough movable cells to cross PARALLEL_CELL_THRESHOLD
        let mut b = NetlistBuilder::new();
        for i in 0..3000 {
            b.add_cell(format!("c{i}"), 1.0, 1.0, true).unwrap();
        }
        let nl = b.build();
        let design =
            Design::with_uniform_rows("t", nl, Rect::new(0.0, 0.0, 128.0, 128.0), 1.0, 1.0, 1.0)
                .unwrap();
        let mut pl = Placement::zeros(3000);
        for i in 0..3000 {
            pl.x[i] = 4.0 + 120.0 * ((i as f64 * 0.37).sin() * 0.5 + 0.5);
            pl.y[i] = 4.0 + 120.0 * ((i as f64 * 0.73).cos() * 0.5 + 0.5);
        }
        let nl = &design.netlist;
        let mut serial = Electrostatics::new(&design, &pl);
        serial.update(nl, &pl);
        let mut sx = vec![0.0; 3000];
        let mut sy = vec![0.0; 3000];
        serial.accumulate_gradient(nl, &pl, &mut sx, &mut sy);

        let mut hooked = Electrostatics::new(&design, &pl);
        hooked.set_executor(Arc::new(crate::exec::SerialExec), 4, nl);
        hooked.update(nl, &pl);
        let mut hx = vec![0.0; 3000];
        let mut hy = vec![0.0; 3000];
        hooked.accumulate_gradient(nl, &pl, &mut hx, &mut hy);

        for i in 0..3000 {
            assert_eq!(sx[i].to_bits(), hx[i].to_bits(), "gx[{i}]");
            assert_eq!(sy[i].to_bits(), hy[i].to_bits(), "gy[{i}]");
        }
        // scratch buffers are reused: a second call must not grow them
        let caps: Vec<usize> = hooked
            .exec
            .as_ref()
            .unwrap()
            .scratch
            .iter()
            .map(|m| m.lock().unwrap().capacity())
            .collect();
        hooked.accumulate_gradient(nl, &pl, &mut hx, &mut hy);
        for (p, m) in hooked.exec.as_ref().unwrap().scratch.iter().enumerate() {
            assert_eq!(
                m.lock().unwrap().capacity(),
                caps[p],
                "part {p} reallocated"
            );
        }
    }

    #[test]
    fn fixed_cells_get_no_density_gradient() {
        let c = synth::generate(&synth::smoke_spec());
        let nl = &c.design.netlist;
        let mut es = Electrostatics::new(&c.design, &c.placement);
        es.update(nl, &c.placement);
        let mut gx = vec![0.0; nl.num_cells()];
        let mut gy = vec![0.0; nl.num_cells()];
        es.accumulate_gradient(nl, &c.placement, &mut gx, &mut gy);
        for cell in nl.fixed_cells() {
            assert_eq!(gx[cell.index()], 0.0);
            assert_eq!(gy[cell.index()], 0.0);
        }
        // movable cells at the center pile must feel a force
        let moved = nl
            .movable_cells()
            .filter(|c| gx[c.index()].abs() + gy[c.index()].abs() > 0.0)
            .count();
        assert!(moved > nl.num_movable() / 2);
    }
}
