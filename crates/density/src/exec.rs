//! Pluggable parallel execution for density accumulation.
//!
//! The density crate must not depend on the wirelength crate (where the
//! persistent evaluation engine lives), so parallelism is injected through
//! the [`ParallelExec`] trait: the placer wraps its engine in an adapter
//! and installs it with [`crate::Electrostatics::set_executor`]. Without
//! an executor (or with [`SerialExec`]) everything runs serially on the
//! calling thread.

/// A deterministic part-dispatch primitive.
///
/// Implementations must execute `f(part)` exactly once for every part in
/// `0..parts` and return only after all parts completed. Thread and order
/// are unspecified; callers keep outputs per part and combine them in a
/// fixed order, which makes results independent of the implementation.
pub trait ParallelExec: Send + Sync + std::fmt::Debug {
    /// Executes `f` over `0..parts`.
    fn run(&self, parts: usize, f: &(dyn Fn(usize) + Sync));
}

/// The half-open item range `[lo, hi)` owned by `part` when `items` work
/// items are split into `parts` fixed contiguous chunks.
///
/// The split depends only on `(items, parts, part)` — never on thread
/// identity or timing — which is what lets callers promise bit-identical
/// results at any thread count. Sizes differ by at most one item.
pub fn part_bounds(items: usize, parts: usize, part: usize) -> (usize, usize) {
    debug_assert!(part < parts, "part {part} out of range 0..{parts}");
    let lo = (items as u128 * part as u128 / parts as u128) as usize;
    let hi = (items as u128 * (part as u128 + 1) / parts as u128) as usize;
    (lo, hi)
}

/// The trivial executor: ascending part order on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExec;

impl ParallelExec for SerialExec {
    fn run(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..parts {
            f(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_exec_covers_all_parts_in_order() {
        let order = std::sync::Mutex::new(Vec::new());
        SerialExec.run(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn part_bounds_cover_all_items_without_overlap() {
        for items in [0usize, 1, 5, 64, 1000, 1 << 20] {
            for parts in [1usize, 2, 3, 7, 8, 64] {
                let mut next = 0;
                for p in 0..parts {
                    let (lo, hi) = part_bounds(items, parts, p);
                    assert_eq!(lo, next, "items={items} parts={parts} part={p}");
                    assert!(hi >= lo);
                    assert!(hi - lo <= items / parts + 1);
                    next = hi;
                }
                assert_eq!(next, items, "items={items} parts={parts}");
            }
        }
    }
}
