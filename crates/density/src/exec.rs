//! Pluggable parallel execution for density accumulation.
//!
//! The density crate must not depend on the wirelength crate (where the
//! persistent evaluation engine lives), so parallelism is injected through
//! the [`ParallelExec`] trait: the placer wraps its engine in an adapter
//! and installs it with [`crate::Electrostatics::set_executor`]. Without
//! an executor (or with [`SerialExec`]) everything runs serially on the
//! calling thread.

/// A deterministic part-dispatch primitive.
///
/// Implementations must execute `f(part)` exactly once for every part in
/// `0..parts` and return only after all parts completed. Thread and order
/// are unspecified; callers keep outputs per part and combine them in a
/// fixed order, which makes results independent of the implementation.
pub trait ParallelExec: Send + Sync + std::fmt::Debug {
    /// Executes `f` over `0..parts`.
    fn run(&self, parts: usize, f: &(dyn Fn(usize) + Sync));
}

/// The trivial executor: ascending part order on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExec;

impl ParallelExec for SerialExec {
    fn run(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..parts {
            f(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_exec_covers_all_parts_in_order() {
        let order = std::sync::Mutex::new(Vec::new());
        SerialExec.run(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
