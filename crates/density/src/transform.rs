//! Trigonometric transforms (DCT-II / DCT-III / DST-III) built on the FFT.
//!
//! These are the kernels of the ePlace spectral Poisson solver. With the
//! half-sample cosine basis `cos(πu(i+½)/N)` (Neumann boundary):
//!
//! * [`dct2`]  — analysis:  `X_u = Σ_i x_i cos(πu(i+½)/N)`
//! * [`dct3`]  — synthesis: `y_i = X_0/2 + Σ_{u≥1} X_u cos(πu(i+½)/N)`
//! * [`dst3`]  — synthesis with sines: `y_i = Σ_{u≥1} X_u sin(πu(i+½)/N)`
//!   (what DREAMPlace calls IDXST; used for the electric field)
//!
//! The pair satisfies `x = (2/N)·dct3(dct2(x))`. Each 1-D transform costs
//! one complex FFT of length `2N`; the 2-D versions are separable.

use crate::fft::fft_in_place;

/// Scratch buffers for the FFT-based transforms (reused across calls).
#[derive(Debug, Clone, Default)]
pub struct TransformScratch {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl TransformScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n2: usize) {
        self.re.clear();
        self.re.resize(n2, 0.0);
        self.im.clear();
        self.im.resize(n2, 0.0);
    }
}

/// DCT-II: `out[u] = Σ_i x[i] cos(πu(i+½)/N)`.
///
/// Uses the even-mirror embedding into a length-`2N` FFT:
/// `W_u = 2 e^{jπu/2N} X_u`.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two or `out.len() != x.len()`.
pub fn dct2(x: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
    let n = x.len();
    assert_eq!(out.len(), n);
    if n == 0 {
        return;
    }
    scratch.prepare(2 * n);
    scratch.re[..n].copy_from_slice(x);
    for i in 0..n {
        scratch.re[2 * n - 1 - i] = x[i];
    }
    fft_in_place(&mut scratch.re, &mut scratch.im, false);
    for u in 0..n {
        let ang = -std::f64::consts::PI * u as f64 / (2.0 * n as f64);
        let (c, s) = (ang.cos(), ang.sin());
        out[u] = 0.5 * (scratch.re[u] * c - scratch.im[u] * s);
    }
}

/// DCT-III: `out[i] = X_0/2 + Σ_{u=1}^{N-1} X_u cos(πu(i+½)/N)`.
///
/// Together with [`dct2`]: `x = (2/N) · dct3(dct2(x))`.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two or `out.len() != x.len()`.
pub fn dct3(x: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
    synthesize(x, out, scratch, false)
}

/// DST-III-style synthesis: `out[i] = Σ_{u=1}^{N-1} X_u sin(πu(i+½)/N)`
/// (the `u = 0` slot of `x` is ignored since `sin 0 = 0`).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two or `out.len() != x.len()`.
pub fn dst3(x: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
    synthesize(x, out, scratch, true)
}

/// Shared synthesis core: `y_i = Σ_u c_u X_u e^{jπu(i+½)/N}` evaluated by a
/// zero-padded length-`2N` inverse FFT; real part → DCT-III, imaginary part
/// → DST-III.
fn synthesize(x: &[f64], out: &mut [f64], scratch: &mut TransformScratch, sine: bool) {
    let n = x.len();
    assert_eq!(out.len(), n);
    if n == 0 {
        return;
    }
    scratch.prepare(2 * n);
    for u in 0..n {
        let coeff = if u == 0 && !sine { 0.5 * x[0] } else { x[u] };
        let ang = std::f64::consts::PI * u as f64 / (2.0 * n as f64);
        scratch.re[u] = coeff * ang.cos();
        scratch.im[u] = coeff * ang.sin();
    }
    fft_in_place(&mut scratch.re, &mut scratch.im, true);
    if sine {
        out.copy_from_slice(&scratch.im[..n]);
    } else {
        out.copy_from_slice(&scratch.re[..n]);
    }
}

/// Naive references for the three transforms (tests and odd sizes).
pub mod naive {
    use std::f64::consts::PI;

    /// `O(N²)` DCT-II.
    pub fn dct2(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|u| {
                x.iter()
                    .enumerate()
                    .map(|(i, &xi)| xi * (PI * u as f64 * (i as f64 + 0.5) / n as f64).cos())
                    .sum()
            })
            .collect()
    }

    /// `O(N²)` DCT-III.
    pub fn dct3(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| {
                x[0] / 2.0
                    + (1..n)
                        .map(|u| x[u] * (PI * u as f64 * (i as f64 + 0.5) / n as f64).cos())
                        .sum::<f64>()
            })
            .collect()
    }

    /// `O(N²)` DST-III.
    pub fn dst3(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| {
                (1..n)
                    .map(|u| x[u] * (PI * u as f64 * (i as f64 + 0.5) / n as f64).sin())
                    .sum()
            })
            .collect()
    }
}

/// 2-D separable transform over a row-major `rows × cols` grid.
///
/// `kind_rows` is applied along each row (x-direction, i.e. over columns),
/// then `kind_cols` along each column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// DCT-II analysis.
    Dct2,
    /// DCT-III synthesis.
    Dct3,
    /// DST-III synthesis.
    Dst3,
}

fn apply_1d(kind: Kind, x: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
    match kind {
        Kind::Dct2 => dct2(x, out, scratch),
        Kind::Dct3 => dct3(x, out, scratch),
        Kind::Dst3 => dst3(x, out, scratch),
    }
}

/// Applies `kind_x` along rows then `kind_y` along columns of the row-major
/// `rows × cols` grid `data`, in place.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or a dimension is not a power of
/// two.
pub fn transform_2d(
    data: &mut [f64],
    rows: usize,
    cols: usize,
    kind_x: Kind,
    kind_y: Kind,
    scratch: &mut TransformScratch,
) {
    assert_eq!(data.len(), rows * cols, "grid shape mismatch");
    let mut line = vec![0.0; cols.max(rows)];
    let mut out = vec![0.0; cols.max(rows)];
    // rows (contiguous)
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        line[..cols].copy_from_slice(row);
        apply_1d(kind_x, &line[..cols], &mut out[..cols], scratch);
        row.copy_from_slice(&out[..cols]);
    }
    // columns (strided)
    for c in 0..cols {
        for r in 0..rows {
            line[r] = data[r * cols + c];
        }
        apply_1d(kind_y, &line[..rows], &mut out[..rows], scratch);
        for r in 0..rows {
            data[r * cols + c] = out[r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_seq(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn dct2_matches_naive() {
        for &n in &[2usize, 4, 16, 64] {
            let x = rand_seq(n, 1);
            let want = naive::dct2(&x);
            let mut got = vec![0.0; n];
            dct2(&x, &mut got, &mut TransformScratch::new());
            for i in 0..n {
                assert!((got[i] - want[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn dct3_matches_naive() {
        for &n in &[2usize, 8, 32] {
            let x = rand_seq(n, 2);
            let want = naive::dct3(&x);
            let mut got = vec![0.0; n];
            dct3(&x, &mut got, &mut TransformScratch::new());
            for i in 0..n {
                assert!((got[i] - want[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn dst3_matches_naive() {
        for &n in &[2usize, 8, 32, 128] {
            let x = rand_seq(n, 3);
            let want = naive::dst3(&x);
            let mut got = vec![0.0; n];
            dst3(&x, &mut got, &mut TransformScratch::new());
            for i in 0..n {
                assert!((got[i] - want[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn dct_round_trip() {
        let n = 64;
        let x = rand_seq(n, 4);
        let mut freq = vec![0.0; n];
        let mut back = vec![0.0; n];
        let mut s = TransformScratch::new();
        dct2(&x, &mut freq, &mut s);
        dct3(&freq, &mut back, &mut s);
        for i in 0..n {
            assert!((x[i] - 2.0 / n as f64 * back[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn transform_2d_round_trip() {
        let (rows, cols) = (8, 16);
        let x = rand_seq(rows * cols, 5);
        let mut data = x.clone();
        let mut s = TransformScratch::new();
        transform_2d(&mut data, rows, cols, Kind::Dct2, Kind::Dct2, &mut s);
        transform_2d(&mut data, rows, cols, Kind::Dct3, Kind::Dct3, &mut s);
        let scale = 2.0 / rows as f64 * 2.0 / cols as f64;
        for i in 0..x.len() {
            assert!((x[i] - scale * data[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn transform_2d_single_mode() {
        // a pure cosine mode concentrates in a single coefficient
        let (rows, cols) = (8usize, 8usize);
        let (u, v) = (3usize, 2usize);
        let mut data = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let cy = (std::f64::consts::PI * u as f64 * (r as f64 + 0.5) / rows as f64).cos();
                let cx = (std::f64::consts::PI * v as f64 * (c as f64 + 0.5) / cols as f64).cos();
                data[r * cols + c] = cy * cx;
            }
        }
        let mut s = TransformScratch::new();
        transform_2d(&mut data, rows, cols, Kind::Dct2, Kind::Dct2, &mut s);
        // expected magnitude N·M/4 in the (u, v) slot, ~0 elsewhere
        for r in 0..rows {
            for c in 0..cols {
                let want = if (r, c) == (u, v) {
                    rows as f64 * cols as f64 / 4.0
                } else {
                    0.0
                };
                assert!(
                    (data[r * cols + c] - want).abs() < 1e-9,
                    "({r},{c}) = {}",
                    data[r * cols + c]
                );
            }
        }
    }
}
