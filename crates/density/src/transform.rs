//! Trigonometric transforms (DCT-II / DCT-III / DST-III) built on the FFT.
//!
//! These are the kernels of the ePlace spectral Poisson solver. With the
//! half-sample cosine basis `cos(πu(i+½)/N)` (Neumann boundary):
//!
//! * [`dct2`]  — analysis:  `X_u = Σ_i x_i cos(πu(i+½)/N)`
//! * [`dct3`]  — synthesis: `y_i = X_0/2 + Σ_{u≥1} X_u cos(πu(i+½)/N)`
//! * [`dst3`]  — synthesis with sines: `y_i = Σ_{u≥1} X_u sin(πu(i+½)/N)`
//!   (what DREAMPlace calls IDXST; used for the electric field)
//!
//! The pair satisfies `x = (2/N)·dct3(dct2(x))`.
//!
//! Two generations of kernels coexist:
//!
//! * the original free functions ([`dct2`], [`dct3`], [`dst3`],
//!   [`transform_2d`]) embed each length-`N` transform into a length-`2N`
//!   **complex** FFT with trigonometry recomputed per call — kept as the
//!   unplanned baseline and for one-off use;
//! * [`DctPlan`] (1-D) and [`Spectral2d`] (2-D) are the planned hot-loop
//!   path: each length-`2N` transform collapses onto an `N`-point complex
//!   FFT through the real-input pack/unpack identities (the inputs are
//!   real, and the synthesis output of a real spectrum is mirror-conjugate,
//!   so half the butterflies vanish), every phase factor is a table lookup,
//!   the 2-D column pass runs on contiguous memory after a cache-blocked
//!   transpose, and row batches dispatch through a
//!   [`crate::exec::ParallelExec`] with a fixed row-to-part assignment —
//!   results are bit-identical at any thread count because every row is
//!   transformed by the same serial code regardless of which part runs it.

use crate::exec::{part_bounds, ParallelExec};
use crate::fft::{fft_in_place, FftPlan, LANES};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Scratch buffers for the FFT-based transforms (reused across calls).
#[derive(Debug, Clone, Default)]
pub struct TransformScratch {
    re: Vec<f64>,
    im: Vec<f64>,
    /// SoA buffers for the `*_lanes` kernels ([`LANES`] interleaved
    /// sequences). Grow-only, so alternating row/column sweeps of a
    /// rectangular grid never shrink-and-refill them.
    lre: Vec<f64>,
    lim: Vec<f64>,
    /// One gathered column for the scalar fallback of strided sweeps.
    line: Vec<f64>,
    /// Column-tile output of the parallel fused column pass (per part).
    colbuf: Vec<f64>,
}

impl TransformScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n2: usize) {
        self.re.clear();
        self.re.resize(n2, 0.0);
        self.im.clear();
        self.im.resize(n2, 0.0);
    }

    /// Sizes the buffers without zeroing them (planned kernels overwrite
    /// every slot before reading).
    fn ensure(&mut self, n: usize) {
        if self.re.len() != n {
            self.re.resize(n, 0.0);
            self.im.resize(n, 0.0);
        }
    }

    /// Grows (never shrinks) the lane buffers to `n · LANES` slots; the
    /// lane kernels overwrite every slot they read.
    fn ensure_lanes(&mut self, n: usize) {
        let need = n * LANES;
        if self.lre.len() < need {
            self.lre.resize(need, 0.0);
            self.lim.resize(need, 0.0);
        }
    }
}

/// Copies one [`LANES`]-wide group out of strided grid storage
/// (`src[at + l · lstep]`, `l = 0..LANES`). `lstep == 1` — the fused
/// column pass — is a straight 64-byte line copy.
#[inline]
fn load_group(src: &[f64], at: usize, lstep: usize, dst: &mut [f64]) {
    if lstep == 1 {
        dst.copy_from_slice(&src[at..at + LANES]);
    } else {
        for (l, d) in dst.iter_mut().enumerate() {
            *d = src[at + l * lstep];
        }
    }
}

/// Scatters one [`LANES`]-wide group back into strided grid storage;
/// mirror of [`load_group`].
#[inline]
fn store_group(dst: &mut [f64], at: usize, lstep: usize, src: &[f64]) {
    if lstep == 1 {
        dst[at..at + LANES].copy_from_slice(src);
    } else {
        for (l, &s) in src.iter().enumerate() {
            dst[at + l * lstep] = s;
        }
    }
}

/// DCT-II: `out[u] = Σ_i x[i] cos(πu(i+½)/N)`.
///
/// Uses the even-mirror embedding into a length-`2N` FFT:
/// `W_u = 2 e^{jπu/2N} X_u`.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two or `out.len() != x.len()`.
pub fn dct2(x: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
    let n = x.len();
    assert_eq!(out.len(), n);
    if n == 0 {
        return;
    }
    scratch.prepare(2 * n);
    scratch.re[..n].copy_from_slice(x);
    for i in 0..n {
        scratch.re[2 * n - 1 - i] = x[i];
    }
    fft_in_place(&mut scratch.re, &mut scratch.im, false);
    for u in 0..n {
        let ang = -std::f64::consts::PI * u as f64 / (2.0 * n as f64);
        let (c, s) = (ang.cos(), ang.sin());
        out[u] = 0.5 * (scratch.re[u] * c - scratch.im[u] * s);
    }
}

/// DCT-III: `out[i] = X_0/2 + Σ_{u=1}^{N-1} X_u cos(πu(i+½)/N)`.
///
/// Together with [`dct2`]: `x = (2/N) · dct3(dct2(x))`.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two or `out.len() != x.len()`.
pub fn dct3(x: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
    synthesize(x, out, scratch, false)
}

/// DST-III-style synthesis: `out[i] = Σ_{u=1}^{N-1} X_u sin(πu(i+½)/N)`
/// (the `u = 0` slot of `x` is ignored since `sin 0 = 0`).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two or `out.len() != x.len()`.
pub fn dst3(x: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
    synthesize(x, out, scratch, true)
}

/// Shared synthesis core: `y_i = Σ_u c_u X_u e^{jπu(i+½)/N}` evaluated by a
/// zero-padded length-`2N` inverse FFT; real part → DCT-III, imaginary part
/// → DST-III.
fn synthesize(x: &[f64], out: &mut [f64], scratch: &mut TransformScratch, sine: bool) {
    let n = x.len();
    assert_eq!(out.len(), n);
    if n == 0 {
        return;
    }
    scratch.prepare(2 * n);
    for u in 0..n {
        let coeff = if u == 0 && !sine { 0.5 * x[0] } else { x[u] };
        let ang = std::f64::consts::PI * u as f64 / (2.0 * n as f64);
        scratch.re[u] = coeff * ang.cos();
        scratch.im[u] = coeff * ang.sin();
    }
    fft_in_place(&mut scratch.re, &mut scratch.im, true);
    if sine {
        out.copy_from_slice(&scratch.im[..n]);
    } else {
        out.copy_from_slice(&scratch.re[..n]);
    }
}

/// Naive references for the three transforms (tests and odd sizes).
pub mod naive {
    use std::f64::consts::PI;

    /// `O(N²)` DCT-II.
    pub fn dct2(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|u| {
                x.iter()
                    .enumerate()
                    .map(|(i, &xi)| xi * (PI * u as f64 * (i as f64 + 0.5) / n as f64).cos())
                    .sum()
            })
            .collect()
    }

    /// `O(N²)` DCT-III.
    pub fn dct3(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| {
                x[0] / 2.0
                    + (1..n)
                        .map(|u| x[u] * (PI * u as f64 * (i as f64 + 0.5) / n as f64).cos())
                        .sum::<f64>()
            })
            .collect()
    }

    /// `O(N²)` DST-III.
    pub fn dst3(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| {
                (1..n)
                    .map(|u| x[u] * (PI * u as f64 * (i as f64 + 0.5) / n as f64).sin())
                    .sum()
            })
            .collect()
    }
}

/// 2-D separable transform over a row-major `rows × cols` grid.
///
/// `kind_rows` is applied along each row (x-direction, i.e. over columns),
/// then `kind_cols` along each column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// DCT-II analysis.
    Dct2,
    /// DCT-III synthesis.
    Dct3,
    /// DST-III synthesis.
    Dst3,
}

fn apply_1d(kind: Kind, x: &[f64], out: &mut [f64], scratch: &mut TransformScratch) {
    match kind {
        Kind::Dct2 => dct2(x, out, scratch),
        Kind::Dct3 => dct3(x, out, scratch),
        Kind::Dst3 => dst3(x, out, scratch),
    }
}

/// Applies `kind_x` along rows then `kind_y` along columns of the row-major
/// `rows × cols` grid `data`, in place.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or a dimension is not a power of
/// two.
pub fn transform_2d(
    data: &mut [f64],
    rows: usize,
    cols: usize,
    kind_x: Kind,
    kind_y: Kind,
    scratch: &mut TransformScratch,
) {
    assert_eq!(data.len(), rows * cols, "grid shape mismatch");
    let mut line = vec![0.0; cols.max(rows)];
    let mut out = vec![0.0; cols.max(rows)];
    // rows (contiguous)
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        line[..cols].copy_from_slice(row);
        apply_1d(kind_x, &line[..cols], &mut out[..cols], scratch);
        row.copy_from_slice(&out[..cols]);
    }
    // columns (strided)
    for c in 0..cols {
        for r in 0..rows {
            line[r] = data[r * cols + c];
        }
        apply_1d(kind_y, &line[..rows], &mut out[..rows], scratch);
        for r in 0..rows {
            data[r * cols + c] = out[r];
        }
    }
}

/// A reusable plan for the three length-`N` trigonometric transforms.
///
/// Holds an `N`-point [`FftPlan`] plus the two phase-factor tables the
/// real-input fast path needs, so [`DctPlan::apply`] performs **no**
/// trigonometry:
///
/// * **Analysis** ([`Kind::Dct2`]): the even-mirrored extension of the
///   input is a length-`2N` *real* sequence; its FFT is computed by packing
///   adjacent pairs into an `N`-point complex FFT and unpacking with the
///   conjugate-symmetry identity
///   `Y_u = (Z_u + Z̄_{N−u})/2 − (i/2)·e^{−iπu/N}(Z_u − Z̄_{N−u})`.
/// * **Synthesis** ([`Kind::Dct3`] / [`Kind::Dst3`]): the length-`2N`
///   half-spectrum inverse FFT `s_i = Σ_u c_u e^{iπu(i+½)/N}` of *real*
///   coefficients `c` satisfies `s_{2N−1−i} = s̄_i`, so its even-indexed
///   samples are exactly the `N`-point inverse FFT of
///   `d_u = c_u e^{iπu/2N}` and the odd-indexed samples are conjugated
///   mirror reads of the same array.
///
/// Either way a planned 1-D transform costs one `N`-point complex FFT and
/// two `O(N)` table passes — versus a `2N`-point FFT plus `O(N)` `cos`/`sin`
/// calls for the unplanned functions.
#[derive(Debug, Clone)]
pub struct DctPlan {
    n: usize,
    fft: FftPlan,
    /// `(cos, sin)` of `πu/2N`, `u = 0..N`: synthesis input rotation
    /// `e^{iπu/2N}`; its conjugate is the analysis output rotation.
    ph_re: Vec<f64>,
    ph_im: Vec<f64>,
    /// `(cos, sin)` of `πk/N`, `k = 0..N`: real-FFT unpack rotation
    /// (used conjugated, as `e^{−iπk/N}`).
    un_re: Vec<f64>,
    un_im: Vec<f64>,
}

impl DctPlan {
    /// Builds the plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "transform length {n} is not a power of two"
        );
        let half_angle = |u: usize, denom: f64| {
            let ang = std::f64::consts::PI * u as f64 / denom;
            (ang.cos(), ang.sin())
        };
        let mut ph_re = Vec::with_capacity(n);
        let mut ph_im = Vec::with_capacity(n);
        let mut un_re = Vec::with_capacity(n);
        let mut un_im = Vec::with_capacity(n);
        for u in 0..n {
            let (c, s) = half_angle(u, 2.0 * n as f64);
            ph_re.push(c);
            ph_im.push(s);
            let (c, s) = half_angle(u, n as f64);
            un_re.push(c);
            un_im.push(s);
        }
        Self {
            n,
            fft: FftPlan::new(n),
            ph_re,
            ph_im,
            un_re,
            un_im,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial length-0 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Applies `kind` to `inout` in place.
    ///
    /// # Panics
    ///
    /// Panics if `inout.len()` differs from the planned length.
    pub fn apply(&self, kind: Kind, inout: &mut [f64], scratch: &mut TransformScratch) {
        match kind {
            Kind::Dct2 => self.dct2(inout, scratch),
            Kind::Dct3 => self.dct3(inout, scratch),
            Kind::Dst3 => self.dst3(inout, scratch),
        }
    }

    /// In-place DCT-II (same math as the free [`dct2`]).
    pub fn dct2(&self, inout: &mut [f64], scratch: &mut TransformScratch) {
        let n = self.n;
        assert_eq!(inout.len(), n, "input length differs from planned length");
        if n <= 1 {
            return; // X_0 = x_0
        }
        scratch.ensure(n);
        // pack the even-mirrored sequence y (y_i = x_i, y_{2N−1−i} = x_i)
        // pairwise: z_j = y_{2j} + i·y_{2j+1}
        let half = n / 2;
        for j in 0..half {
            scratch.re[j] = inout[2 * j];
            scratch.im[j] = inout[2 * j + 1];
        }
        for j in half..n {
            scratch.re[j] = inout[2 * n - 1 - 2 * j];
            scratch.im[j] = inout[2 * n - 2 - 2 * j];
        }
        self.fft.process(&mut scratch.re, &mut scratch.im, false);
        // Unpack bins 0..N of the 2N-point real FFT and rotate into
        // DCT-II. Conjugate symmetry pairs bin u with N−u, so one walk
        // over mirror pairs shares the Z loads and halves the unpack
        // traffic; u = 0 and u = N/2 are their own mirrors. `rot` is
        // mirrored verbatim in `dct2_lanes` — keep the expression shapes
        // in lockstep or the fused/unfused bitwise contract breaks.
        let rot = |u: usize, zr_u: f64, zi_u: f64, zr_v: f64, zi_v: f64| -> f64 {
            let a_re = 0.5 * (zr_u + zr_v);
            let a_im = 0.5 * (zi_u - zi_v);
            let d_re = 0.5 * (zr_u - zr_v);
            let d_im = 0.5 * (zi_u + zi_v);
            // B = −i·D, then Y = A + e^{−iπu/N}·B
            let (b_re, b_im) = (d_im, -d_re);
            let y_re = f64::mul_add(self.un_im[u], b_im, f64::mul_add(self.un_re[u], b_re, a_re));
            let y_im = f64::mul_add(
                -self.un_im[u],
                b_re,
                f64::mul_add(self.un_re[u], b_im, a_im),
            );
            // X_u = ½·Re[Y_u e^{−iπu/2N}]
            0.5 * f64::mul_add(self.ph_im[u], y_im, y_re * self.ph_re[u])
        };
        inout[0] = rot(
            0,
            scratch.re[0],
            scratch.im[0],
            scratch.re[0],
            scratch.im[0],
        );
        inout[half] = rot(
            half,
            scratch.re[half],
            scratch.im[half],
            scratch.re[half],
            scratch.im[half],
        );
        for u in 1..half {
            let v = n - u;
            let (zr_u, zi_u) = (scratch.re[u], scratch.im[u]);
            let (zr_v, zi_v) = (scratch.re[v], scratch.im[v]);
            inout[u] = rot(u, zr_u, zi_u, zr_v, zi_v);
            inout[v] = rot(v, zr_v, zi_v, zr_u, zi_u);
        }
    }

    /// In-place DCT-III (same math as the free [`dct3`]).
    pub fn dct3(&self, inout: &mut [f64], scratch: &mut TransformScratch) {
        self.synthesize(inout, scratch, false)
    }

    /// In-place DST-III synthesis (same math as the free [`dst3`]).
    pub fn dst3(&self, inout: &mut [f64], scratch: &mut TransformScratch) {
        self.synthesize(inout, scratch, true)
    }

    fn synthesize(&self, inout: &mut [f64], scratch: &mut TransformScratch, sine: bool) {
        let n = self.n;
        assert_eq!(inout.len(), n, "input length differs from planned length");
        if n == 0 {
            return;
        }
        if n == 1 {
            inout[0] = if sine { 0.0 } else { 0.5 * inout[0] };
            return;
        }
        scratch.ensure(n);
        // d_u = c_u·e^{iπu/2N}; c_0 contributes only to the real (cosine)
        // output, so the sine path zeroes it
        let c0 = if sine { 0.0 } else { 0.5 * inout[0] };
        scratch.re[0] = c0;
        scratch.im[0] = 0.0;
        for u in 1..n {
            let c = inout[u];
            scratch.re[u] = c * self.ph_re[u];
            scratch.im[u] = c * self.ph_im[u];
        }
        self.fft.process(&mut scratch.re, &mut scratch.im, true);
        // s_{2m} = E_m, s_{2m+1} = conj(E_{N−1−m}); cosine output reads the
        // real parts, sine output the (sign-flipped on odd) imaginary parts
        let half = n / 2;
        if sine {
            for m in 0..half {
                inout[2 * m] = scratch.im[m];
                inout[2 * m + 1] = -scratch.im[n - 1 - m];
            }
        } else {
            for m in 0..half {
                inout[2 * m] = scratch.re[m];
                inout[2 * m + 1] = scratch.re[n - 1 - m];
            }
        }
    }

    /// Applies `kind` to [`LANES`] strided sequences of the grid `data`
    /// at once: element `u` of lane `l` lives at
    /// `data[base + u * estep + l * lstep]`.
    ///
    /// With `estep = 1, lstep = cols` this transforms eight adjacent grid
    /// rows; with `estep = cols, lstep = 1` eight adjacent grid columns
    /// in place — no transpose. Lane `l` of the result is bit-identical
    /// to [`DctPlan::apply`] on that sequence alone: the lane kernels
    /// mirror the scalar expressions one-for-one.
    ///
    /// # Panics
    ///
    /// Panics if any addressed element falls outside `data`.
    pub fn apply_lanes(
        &self,
        kind: Kind,
        data: &mut [f64],
        base: usize,
        estep: usize,
        lstep: usize,
        scratch: &mut TransformScratch,
    ) {
        match kind {
            Kind::Dct2 => self.dct2_lanes(data, base, estep, lstep, scratch),
            Kind::Dct3 => self.synthesize_lanes(data, base, estep, lstep, scratch, false),
            Kind::Dst3 => self.synthesize_lanes(data, base, estep, lstep, scratch, true),
        }
    }

    /// Lane variant of [`DctPlan::dct2`]; see [`DctPlan::apply_lanes`]
    /// for the addressing scheme and the bitwise-mirroring contract.
    pub fn dct2_lanes(
        &self,
        data: &mut [f64],
        base: usize,
        estep: usize,
        lstep: usize,
        scratch: &mut TransformScratch,
    ) {
        const W: usize = LANES;
        let n = self.n;
        if n <= 1 {
            return; // X_0 = x_0
        }
        scratch.ensure_lanes(n);
        let lre = &mut scratch.lre[..n * W];
        let lim = &mut scratch.lim[..n * W];
        // pairwise pack of the even-mirrored sequence, per lane
        let half = n / 2;
        for j in 0..half {
            let e0 = base + (2 * j) * estep;
            let e1 = base + (2 * j + 1) * estep;
            load_group(data, e0, lstep, &mut lre[j * W..j * W + W]);
            load_group(data, e1, lstep, &mut lim[j * W..j * W + W]);
        }
        for j in half..n {
            let e0 = base + (2 * n - 1 - 2 * j) * estep;
            let e1 = base + (2 * n - 2 - 2 * j) * estep;
            load_group(data, e0, lstep, &mut lre[j * W..j * W + W]);
            load_group(data, e1, lstep, &mut lim[j * W..j * W + W]);
        }
        self.fft.process_lanes(lre, lim, false);
        // mirror-pair unpack; `rot` mirrors `DctPlan::dct2` verbatim
        let rot = |u: usize, zr_u: f64, zi_u: f64, zr_v: f64, zi_v: f64| -> f64 {
            let a_re = 0.5 * (zr_u + zr_v);
            let a_im = 0.5 * (zi_u - zi_v);
            let d_re = 0.5 * (zr_u - zr_v);
            let d_im = 0.5 * (zi_u + zi_v);
            let (b_re, b_im) = (d_im, -d_re);
            let y_re = f64::mul_add(self.un_im[u], b_im, f64::mul_add(self.un_re[u], b_re, a_re));
            let y_im = f64::mul_add(
                -self.un_im[u],
                b_re,
                f64::mul_add(self.un_re[u], b_im, a_im),
            );
            0.5 * f64::mul_add(self.ph_im[u], y_im, y_re * self.ph_re[u])
        };
        let mut tmp = [0.0_f64; W];
        for (l, t) in tmp.iter_mut().enumerate() {
            *t = rot(0, lre[l], lim[l], lre[l], lim[l]);
        }
        store_group(data, base, lstep, &tmp);
        for (l, t) in tmp.iter_mut().enumerate() {
            let (zr, zi) = (lre[half * W + l], lim[half * W + l]);
            *t = rot(half, zr, zi, zr, zi);
        }
        store_group(data, base + half * estep, lstep, &tmp);
        let mut tmp_v = [0.0_f64; W];
        for u in 1..half {
            let v = n - u;
            for l in 0..W {
                let (zr_u, zi_u) = (lre[u * W + l], lim[u * W + l]);
                let (zr_v, zi_v) = (lre[v * W + l], lim[v * W + l]);
                tmp[l] = rot(u, zr_u, zi_u, zr_v, zi_v);
                tmp_v[l] = rot(v, zr_v, zi_v, zr_u, zi_u);
            }
            store_group(data, base + u * estep, lstep, &tmp);
            store_group(data, base + v * estep, lstep, &tmp_v);
        }
    }

    /// Lane variant of the synthesis core; mirrors
    /// [`DctPlan::synthesize`] expression-for-expression.
    fn synthesize_lanes(
        &self,
        data: &mut [f64],
        base: usize,
        estep: usize,
        lstep: usize,
        scratch: &mut TransformScratch,
        sine: bool,
    ) {
        const W: usize = LANES;
        let n = self.n;
        if n == 0 {
            return;
        }
        if n == 1 {
            for l in 0..W {
                let at = base + l * lstep;
                data[at] = if sine { 0.0 } else { 0.5 * data[at] };
            }
            return;
        }
        scratch.ensure_lanes(n);
        let lre = &mut scratch.lre[..n * W];
        let lim = &mut scratch.lim[..n * W];
        let mut tmp = [0.0_f64; W];
        load_group(data, base, lstep, &mut tmp);
        for l in 0..W {
            let c0 = if sine { 0.0 } else { 0.5 * tmp[l] };
            lre[l] = c0;
            lim[l] = 0.0;
        }
        for u in 1..n {
            let (pr, pi) = (self.ph_re[u], self.ph_im[u]);
            load_group(data, base + u * estep, lstep, &mut tmp);
            for l in 0..W {
                let c = tmp[l];
                lre[u * W + l] = c * pr;
                lim[u * W + l] = c * pi;
            }
        }
        self.fft.process_lanes(lre, lim, true);
        let half = n / 2;
        if sine {
            let mut odd = [0.0_f64; W];
            for m in 0..half {
                let src = &lim[m * W..m * W + W];
                store_group(data, base + (2 * m) * estep, lstep, src);
                for (l, o) in odd.iter_mut().enumerate() {
                    *o = -lim[(n - 1 - m) * W + l];
                }
                store_group(data, base + (2 * m + 1) * estep, lstep, &odd);
            }
        } else {
            for m in 0..half {
                let src = &lre[m * W..m * W + W];
                store_group(data, base + (2 * m) * estep, lstep, src);
                let mirror = &lre[(n - 1 - m) * W..(n - 1 - m) * W + W];
                store_group(data, base + (2 * m + 1) * estep, lstep, mirror);
            }
        }
    }
}

/// Process-wide [`DctPlan`] cache, keyed by transform length.
///
/// Plan construction is pure table precomputation — two plans for the
/// same length are element-for-element identical — so every
/// [`Spectral2d`] in the process shares one immutable plan per length
/// through an `Arc`. A long-lived multi-job driver (the `mep-serve`
/// daemon) pays the `O(N log N)` table build once per grid size ever
/// seen, not once per job, and concurrent jobs on same-sized grids share
/// the tables' cache footprint. Plans are read-only after construction,
/// so sharing cannot leak state between jobs.
fn plan_cache() -> &'static Mutex<std::collections::BTreeMap<usize, Arc<DctPlan>>> {
    static CACHE: std::sync::OnceLock<Mutex<std::collections::BTreeMap<usize, Arc<DctPlan>>>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(std::collections::BTreeMap::new()))
}

static PLAN_CACHE_HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static PLAN_CACHE_MISSES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Returns the process-wide shared plan for length `n`, building and
/// caching it on first use.
///
/// # Panics
///
/// Panics if `n` is not a power of two (same contract as
/// [`DctPlan::new`]); the failed build is not cached.
pub fn shared_dct_plan(n: usize) -> Arc<DctPlan> {
    let mut cache = match plan_cache().lock() {
        Ok(g) => g,
        // a panic inside DctPlan::new (non-power-of-two) poisons the
        // lock but never left a partial entry behind; keep serving
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(plan) = cache.get(&n) {
        PLAN_CACHE_HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        return Arc::clone(plan);
    }
    PLAN_CACHE_MISSES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let plan = Arc::new(DctPlan::new(n));
    cache.insert(n, Arc::clone(&plan));
    plan
}

/// `(hits, misses)` of [`shared_dct_plan`] since process start. A serving
/// process that has warmed up should see hits grow and misses stay flat.
pub fn plan_cache_stats() -> (u64, u64) {
    (
        PLAN_CACHE_HITS.load(std::sync::atomic::Ordering::Relaxed),
        PLAN_CACHE_MISSES.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// Call count, cumulative wall time, and per-kernel work counters of
/// planned 2-D transforms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformStats {
    /// Number of [`Spectral2d::execute`] / [`Spectral2d::execute_unfused`]
    /// calls.
    pub calls: u64,
    /// Cumulative wall time, nanoseconds.
    pub nanos: u64,
    /// [`LANES`]-wide row tiles transformed by the fused row pass.
    pub row_lane_tiles: u64,
    /// [`LANES`]-wide column tiles transformed by the fused column pass.
    pub col_lane_tiles: u64,
    /// Rows/columns that went through the scalar 1-D kernel instead of a
    /// lane tile (grid dimensions below [`LANES`], and every line of an
    /// unfused sweep).
    pub scalar_lines: u64,
    /// Full-grid transpose passes (unfused path only; the fused path
    /// performs none).
    pub transposes: u64,
}

impl TransformStats {
    /// Cumulative wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 * 1e-9
    }
}

/// Below this element count parallel row dispatch is not worth the
/// synchronization; [`Spectral2d`] stays serial even with an executor.
pub const PARALLEL_GRID_THRESHOLD: usize = 4096;

/// Planned separable 2-D transform engine for one fixed `rows × cols` grid.
///
/// Caches a [`DctPlan`] per axis and per-part FFT scratch, so the
/// placement hot loop performs no allocation and no trigonometry. The
/// default [`Spectral2d::execute`] path is **fused**: both passes run
/// through [`LANES`]-wide SIMD-friendly lane kernels, and the column pass
/// walks the grid in place with strided tiles — eight adjacent columns
/// per tile, so every row touch is one full cache line and the two
/// full-grid transposes of the unfused path disappear.
/// [`Spectral2d::execute_unfused`] keeps the original
/// transpose + scalar-sweep pipeline as the bitwise reference.
///
/// # Determinism
///
/// With an installed [`ParallelExec`], lane tiles are split into
/// contiguous ranges with a **fixed** tile-to-part assignment and each
/// part writes only its own tiles with its own scratch. Every lane runs
/// the same arithmetic as the scalar 1-D kernels whatever part (or
/// thread) executes it, so grids are bit-identical at any thread count
/// — and bit-identical between the fused and unfused paths.
#[derive(Debug)]
pub struct Spectral2d {
    rows: usize,
    cols: usize,
    /// Shared per-length plans from the process-wide [`shared_dct_plan`]
    /// cache (immutable tables; cloning the engine clones the `Arc`).
    row_plan: Arc<DctPlan>,
    col_plan: Arc<DctPlan>,
    /// `cols × rows` transpose buffer (unfused path only; grown lazily).
    tbuf: Vec<f64>,
    /// One FFT scratch per part (uncontended; each part index runs once).
    scratches: Vec<Mutex<TransformScratch>>,
    exec: Option<Arc<dyn ParallelExec>>,
    calls: u64,
    nanos: u64,
    row_lane_tiles: u64,
    col_lane_tiles: u64,
    scalar_lines: u64,
    transposes: u64,
}

impl Clone for Spectral2d {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            row_plan: self.row_plan.clone(),
            col_plan: self.col_plan.clone(),
            tbuf: self.tbuf.clone(),
            scratches: self
                .scratches
                .iter()
                .map(|m| {
                    // poison recovery: a scratch is plain buffer space, so a
                    // clone of a poisoned one is still well-formed
                    let guard = match m.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    Mutex::new(guard.clone())
                })
                .collect(),
            exec: self.exec.clone(),
            calls: self.calls,
            nanos: self.nanos,
            row_lane_tiles: self.row_lane_tiles,
            col_lane_tiles: self.col_lane_tiles,
            scalar_lines: self.scalar_lines,
            transposes: self.transposes,
        }
    }
}

impl Spectral2d {
    /// Builds the engine for a row-major `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is not a power of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_plan: shared_dct_plan(cols),
            col_plan: shared_dct_plan(rows),
            tbuf: Vec::new(),
            scratches: vec![Mutex::new(TransformScratch::new())],
            exec: None,
            calls: 0,
            nanos: 0,
            row_lane_tiles: 0,
            col_lane_tiles: 0,
            scalar_lines: 0,
            transposes: 0,
        }
    }

    /// Installs a parallel executor dispatching row batches over `parts`
    /// fixed contiguous chunks (per-part scratch is (re)built here, never
    /// in the hot loop).
    pub fn set_executor(&mut self, exec: Arc<dyn ParallelExec>, parts: usize) {
        let parts = parts.max(1);
        self.scratches = (0..parts)
            .map(|_| Mutex::new(TransformScratch::new()))
            .collect();
        self.exec = Some(exec);
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Instrumentation snapshot (calls, cumulative wall time, per-kernel
    /// work counters).
    pub fn stats(&self) -> TransformStats {
        TransformStats {
            calls: self.calls,
            nanos: self.nanos,
            row_lane_tiles: self.row_lane_tiles,
            col_lane_tiles: self.col_lane_tiles,
            scalar_lines: self.scalar_lines,
            transposes: self.transposes,
        }
    }

    /// Applies `kind_x` along rows then `kind_y` along columns of the
    /// row-major grid `data`, in place. Planned equivalent of
    /// [`transform_2d`].
    ///
    /// Fused path: both passes run [`LANES`]-wide lane kernels and the
    /// column pass is strided-in-place, so the grid is traversed twice
    /// per sweep instead of four times (no transposes). Bit-identical to
    /// [`Spectral2d::execute_unfused`] at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows · cols`.
    pub fn execute(&mut self, data: &mut [f64], kind_x: Kind, kind_y: Kind) {
        assert_eq!(data.len(), self.rows * self.cols, "grid shape mismatch");
        // lint:allow(determinism): TransformStats timing telemetry; durations never feed back into results
        let t0 = Instant::now();
        self.sweep_rows_fused(kind_x, data);
        self.sweep_cols_fused(kind_y, data);
        self.calls += 1;
        self.nanos += t0.elapsed().as_nanos() as u64;
    }

    /// The original transpose-based pipeline: scalar row sweep, blocked
    /// transpose, scalar row sweep of the transpose, transpose back.
    /// Kept as the bitwise reference for the fused path (and as a
    /// debugging fallback).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows · cols`.
    pub fn execute_unfused(&mut self, data: &mut [f64], kind_x: Kind, kind_y: Kind) {
        assert_eq!(data.len(), self.rows * self.cols, "grid shape mismatch");
        // lint:allow(determinism): TransformStats timing telemetry; durations never feed back into results
        let t0 = Instant::now();
        self.sweep(&self.row_plan, kind_x, data);
        let mut tbuf = std::mem::take(&mut self.tbuf);
        tbuf.resize(self.rows * self.cols, 0.0);
        transpose_blocked(data, &mut tbuf, self.rows, self.cols);
        self.sweep(&self.col_plan, kind_y, &mut tbuf);
        transpose_blocked(&tbuf, data, self.cols, self.rows);
        self.tbuf = tbuf;
        self.calls += 1;
        self.scalar_lines += (self.rows + self.cols) as u64;
        self.transposes += 2;
        self.nanos += t0.elapsed().as_nanos() as u64;
    }

    /// Fused row pass: [`LANES`] adjacent rows per tile, transformed by
    /// the lane kernels; leftover rows (dimensions below [`LANES`]) go
    /// through the scalar kernel. Tiles have a fixed contiguous
    /// assignment to parts.
    fn sweep_rows_fused(&mut self, kind: Kind, data: &mut [f64]) {
        const W: usize = LANES;
        let (rows, cols) = (self.rows, self.cols);
        if rows == 0 || cols == 0 {
            return;
        }
        let tiles = rows / W;
        let rem = rows % W; // nonzero only when rows < LANES (power of two)
        let parts = self.scratches.len();
        let parallel =
            self.exec.is_some() && parts > 1 && data.len() >= PARALLEL_GRID_THRESHOLD && tiles >= 2;
        if !parallel {
            let mut scratch = self.scratches[0].lock().expect("spectral scratch lock");
            for t in 0..tiles {
                self.row_plan
                    .apply_lanes(kind, data, t * W * cols, 1, cols, &mut scratch);
            }
            for r in tiles * W..rows {
                let row = &mut data[r * cols..(r + 1) * cols];
                self.row_plan.apply(kind, row, &mut scratch);
            }
        } else {
            debug_assert_eq!(rem, 0, "parallel row pass requires whole tiles");
            // fixed tile-to-part split: each part's rows are contiguous
            // lint:allow(no-alloc-hot): O(parts) ≤ 16 handle vector per parallel sweep, amortized over the whole grid pass
            let mut batches: Vec<Mutex<&mut [f64]>> = Vec::with_capacity(parts);
            let mut rest = &mut data[..tiles * W * cols];
            for p in 0..parts {
                let (lo, hi) = part_bounds(tiles, parts, p);
                let (head, tail) = rest.split_at_mut((hi - lo) * W * cols);
                // lint:allow(no-alloc-hot): push into the pre-capacitied O(parts) handle vector above
                batches.push(Mutex::new(head));
                rest = tail;
            }
            let exec = self.exec.as_ref().expect("executor checked above");
            let row_plan = &self.row_plan;
            exec.run(parts, &|p| {
                let mut batch = batches[p].lock().expect("spectral batch lock");
                let mut scratch = self.scratches[p].lock().expect("spectral scratch lock");
                let ntiles = batch.len() / (W * cols);
                for t in 0..ntiles {
                    row_plan.apply_lanes(kind, &mut batch, t * W * cols, 1, cols, &mut scratch);
                }
            });
        }
        self.row_lane_tiles += tiles as u64;
        self.scalar_lines += rem as u64;
    }

    /// Fused column pass: [`LANES`] adjacent columns per strided tile —
    /// every row touch is one cache line, and no transpose exists.
    /// Serially the tiles transform the grid in place; in parallel each
    /// part reads the grid immutably, transforms into its own scratch
    /// `colbuf`, and the results are scattered back in one serial pass
    /// (safe Rust cannot hand out disjoint strided `&mut` views of one
    /// grid). Both routes run identical per-column arithmetic.
    fn sweep_cols_fused(&mut self, kind: Kind, data: &mut [f64]) {
        const W: usize = LANES;
        let (rows, cols) = (self.rows, self.cols);
        if rows == 0 || cols == 0 {
            return;
        }
        let tiles = cols / W;
        let rem = cols % W; // nonzero only when cols < LANES (power of two)
        let parts = self.scratches.len();
        let parallel =
            self.exec.is_some() && parts > 1 && data.len() >= PARALLEL_GRID_THRESHOLD && tiles >= 2;
        if parallel {
            debug_assert_eq!(rem, 0, "parallel column pass requires whole tiles");
            let exec = self.exec.as_ref().expect("executor checked above");
            let col_plan = &self.col_plan;
            let data_ref: &[f64] = data;
            exec.run(parts, &|p| {
                let (lo, hi) = part_bounds(tiles, parts, p);
                if hi == lo {
                    return;
                }
                let mut scratch = self.scratches[p].lock().expect("spectral scratch lock");
                let mut colbuf = std::mem::take(&mut scratch.colbuf);
                let need = (hi - lo) * rows * W;
                if colbuf.len() < need {
                    colbuf.resize(need, 0.0);
                }
                for t in 0..hi - lo {
                    let c0 = (lo + t) * W;
                    let tbase = t * rows * W;
                    for u in 0..rows {
                        let at = tbase + u * W;
                        colbuf[at..at + W]
                            .copy_from_slice(&data_ref[u * cols + c0..u * cols + c0 + W]);
                    }
                    col_plan.apply_lanes(kind, &mut colbuf, tbase, W, 1, &mut scratch);
                }
                scratch.colbuf = colbuf;
            });
            // serial scatter of each part's finished columns
            for p in 0..parts {
                let (lo, hi) = part_bounds(tiles, parts, p);
                if hi == lo {
                    continue;
                }
                let scratch = self.scratches[p].lock().expect("spectral scratch lock");
                for t in 0..hi - lo {
                    let c0 = (lo + t) * W;
                    let tbase = t * rows * W;
                    for u in 0..rows {
                        let at = tbase + u * W;
                        data[u * cols + c0..u * cols + c0 + W]
                            .copy_from_slice(&scratch.colbuf[at..at + W]);
                    }
                }
            }
        } else {
            let mut scratch = self.scratches[0].lock().expect("spectral scratch lock");
            for t in 0..tiles {
                self.col_plan
                    .apply_lanes(kind, data, t * W, cols, 1, &mut scratch);
            }
            if rem > 0 {
                // gather-transform-scatter each leftover column through
                // the scalar kernel
                let mut line = std::mem::take(&mut scratch.line);
                line.resize(rows, 0.0);
                for c in tiles * W..cols {
                    for (r, slot) in line.iter_mut().enumerate() {
                        *slot = data[r * cols + c];
                    }
                    self.col_plan.apply(kind, &mut line, &mut scratch);
                    for (r, &val) in line.iter().enumerate() {
                        data[r * cols + c] = val;
                    }
                }
                scratch.line = line;
            }
        }
        self.col_lane_tiles += tiles as u64;
        self.scalar_lines += rem as u64;
    }

    /// Transforms every `plan.len()`-sized row of `buf` in place, serially
    /// or over the installed executor with fixed contiguous row batches.
    fn sweep(&self, plan: &DctPlan, kind: Kind, buf: &mut [f64]) {
        let rowlen = plan.len();
        let nrows = buf.len() / rowlen.max(1);
        let parts = self.scratches.len();
        let parallel =
            self.exec.is_some() && parts > 1 && buf.len() >= PARALLEL_GRID_THRESHOLD && nrows > 1;
        if !parallel {
            let mut scratch = self.scratches[0].lock().expect("spectral scratch lock");
            for row in buf.chunks_exact_mut(rowlen) {
                plan.apply(kind, row, &mut scratch);
            }
            return;
        }
        // fixed row-to-part split: part p owns rows part_bounds(nrows, parts, p)
        // lint:allow(no-alloc-hot): O(parts) ≤ 16 handle vector per parallel sweep, amortized over the whole grid pass
        let mut batches: Vec<Mutex<&mut [f64]>> = Vec::with_capacity(parts);
        let mut rest = buf;
        for p in 0..parts {
            let (lo, hi) = part_bounds(nrows, parts, p);
            let (head, tail) = rest.split_at_mut((hi - lo) * rowlen);
            // lint:allow(no-alloc-hot): push into the pre-capacitied O(parts) handle vector above
            batches.push(Mutex::new(head));
            rest = tail;
        }
        let exec = self.exec.as_ref().expect("executor checked above");
        exec.run(parts, &|p| {
            let mut rows = batches[p].lock().expect("spectral batch lock");
            let mut scratch = self.scratches[p].lock().expect("spectral scratch lock");
            for row in rows.chunks_exact_mut(rowlen) {
                plan.apply(kind, row, &mut scratch);
            }
        });
    }
}

/// Cache-blocked out-of-place transpose of a row-major `rows × cols`
/// matrix into a row-major `cols × rows` matrix.
///
/// # Panics
///
/// Panics if a slice length differs from `rows · cols`.
pub fn transpose_blocked(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "transpose source shape mismatch");
    assert_eq!(dst.len(), rows * cols, "transpose target shape mismatch");
    // 32×32 f64 tiles: two 8 KiB working sets, comfortably inside L1
    const B: usize = 32;
    for rb in (0..rows).step_by(B) {
        let r_hi = (rb + B).min(rows);
        for cb in (0..cols).step_by(B) {
            let c_hi = (cb + B).min(cols);
            for r in rb..r_hi {
                let base = r * cols;
                for c in cb..c_hi {
                    dst[c * rows + r] = src[base + c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_seq(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn dct2_matches_naive() {
        for &n in &[2usize, 4, 16, 64] {
            let x = rand_seq(n, 1);
            let want = naive::dct2(&x);
            let mut got = vec![0.0; n];
            dct2(&x, &mut got, &mut TransformScratch::new());
            for i in 0..n {
                assert!((got[i] - want[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn dct3_matches_naive() {
        for &n in &[2usize, 8, 32] {
            let x = rand_seq(n, 2);
            let want = naive::dct3(&x);
            let mut got = vec![0.0; n];
            dct3(&x, &mut got, &mut TransformScratch::new());
            for i in 0..n {
                assert!((got[i] - want[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn dst3_matches_naive() {
        for &n in &[2usize, 8, 32, 128] {
            let x = rand_seq(n, 3);
            let want = naive::dst3(&x);
            let mut got = vec![0.0; n];
            dst3(&x, &mut got, &mut TransformScratch::new());
            for i in 0..n {
                assert!((got[i] - want[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn dct_round_trip() {
        let n = 64;
        let x = rand_seq(n, 4);
        let mut freq = vec![0.0; n];
        let mut back = vec![0.0; n];
        let mut s = TransformScratch::new();
        dct2(&x, &mut freq, &mut s);
        dct3(&freq, &mut back, &mut s);
        for i in 0..n {
            assert!((x[i] - 2.0 / n as f64 * back[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn transform_2d_round_trip() {
        let (rows, cols) = (8, 16);
        let x = rand_seq(rows * cols, 5);
        let mut data = x.clone();
        let mut s = TransformScratch::new();
        transform_2d(&mut data, rows, cols, Kind::Dct2, Kind::Dct2, &mut s);
        transform_2d(&mut data, rows, cols, Kind::Dct3, Kind::Dct3, &mut s);
        let scale = 2.0 / rows as f64 * 2.0 / cols as f64;
        for i in 0..x.len() {
            assert!((x[i] - scale * data[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn transform_2d_single_mode() {
        // a pure cosine mode concentrates in a single coefficient
        let (rows, cols) = (8usize, 8usize);
        let (u, v) = (3usize, 2usize);
        let mut data = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let cy = (std::f64::consts::PI * u as f64 * (r as f64 + 0.5) / rows as f64).cos();
                let cx = (std::f64::consts::PI * v as f64 * (c as f64 + 0.5) / cols as f64).cos();
                data[r * cols + c] = cy * cx;
            }
        }
        let mut s = TransformScratch::new();
        transform_2d(&mut data, rows, cols, Kind::Dct2, Kind::Dct2, &mut s);
        // expected magnitude N·M/4 in the (u, v) slot, ~0 elsewhere
        for r in 0..rows {
            for c in 0..cols {
                let want = if (r, c) == (u, v) {
                    rows as f64 * cols as f64 / 4.0
                } else {
                    0.0
                };
                assert!(
                    (data[r * cols + c] - want).abs() < 1e-9,
                    "({r},{c}) = {}",
                    data[r * cols + c]
                );
            }
        }
    }

    #[test]
    fn dct_plan_matches_naive_all_kinds() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let plan = DctPlan::new(n);
            assert_eq!(plan.len(), n);
            let mut scratch = TransformScratch::new();
            for kind in [Kind::Dct2, Kind::Dct3, Kind::Dst3] {
                let x = rand_seq(n, 100 + n as u64);
                let want = match kind {
                    Kind::Dct2 => naive::dct2(&x),
                    Kind::Dct3 => naive::dct3(&x),
                    Kind::Dst3 => naive::dst3(&x),
                };
                let mut got = x.clone();
                plan.apply(kind, &mut got, &mut scratch);
                for i in 0..n {
                    assert!(
                        (got[i] - want[i]).abs() < 1e-9,
                        "n={n} kind={kind:?} i={i}: {} vs {}",
                        got[i],
                        want[i]
                    );
                }
            }
        }
    }

    #[test]
    fn shared_plan_cache_returns_one_instance_per_length() {
        let a = shared_dct_plan(32);
        let b = shared_dct_plan(32);
        assert!(Arc::ptr_eq(&a, &b), "same length shares one plan");
        assert_eq!(a.len(), 32);
        let c = shared_dct_plan(64);
        assert!(!Arc::ptr_eq(&a, &c));
        // two same-shape engines share both axis plans (cache counters
        // are process-global, so only pointer identity is asserted here)
        let (h0, _) = plan_cache_stats();
        let _e1 = Spectral2d::new(16, 32);
        let _e2 = Spectral2d::new(16, 32);
        let (h1, _) = plan_cache_stats();
        assert!(h1 >= h0 + 2, "second engine hits the cache for both axes");
    }

    #[test]
    fn dct_plan_is_deterministic_across_calls() {
        let n = 64;
        let plan = DctPlan::new(n);
        let x = rand_seq(n, 9);
        let mut scratch = TransformScratch::new();
        let mut first = x.clone();
        plan.dct2(&mut first, &mut scratch);
        for _ in 0..3 {
            let mut again = x.clone();
            plan.dct2(&mut again, &mut scratch);
            for i in 0..n {
                assert_eq!(again[i].to_bits(), first[i].to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "differs from planned length")]
    fn dct_plan_rejects_length_mismatch() {
        let plan = DctPlan::new(8);
        let mut x = vec![0.0; 4];
        plan.dct2(&mut x, &mut TransformScratch::new());
    }

    #[test]
    fn transpose_blocked_matches_direct() {
        for &(rows, cols) in &[(1usize, 1usize), (4, 8), (33, 65), (64, 64), (100, 7)] {
            let src = rand_seq(rows * cols, 6);
            let mut dst = vec![0.0; rows * cols];
            transpose_blocked(&src, &mut dst, rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(dst[c * rows + r].to_bits(), src[r * cols + c].to_bits());
                }
            }
        }
    }

    #[test]
    fn spectral2d_matches_transform_2d() {
        let (rows, cols) = (16usize, 32usize);
        let pairs = [
            (Kind::Dct2, Kind::Dct2),
            (Kind::Dct3, Kind::Dct3),
            (Kind::Dst3, Kind::Dct3),
            (Kind::Dct3, Kind::Dst3),
        ];
        let mut engine = Spectral2d::new(rows, cols);
        for (i, &(kx, ky)) in pairs.iter().enumerate() {
            let x = rand_seq(rows * cols, 40 + i as u64);
            let mut want = x.clone();
            transform_2d(&mut want, rows, cols, kx, ky, &mut TransformScratch::new());
            let mut got = x;
            engine.execute(&mut got, kx, ky);
            for j in 0..want.len() {
                assert!(
                    (got[j] - want[j]).abs() < 1e-9,
                    "pair {i} elem {j}: {} vs {}",
                    got[j],
                    want[j]
                );
            }
        }
        assert_eq!(engine.stats().calls, pairs.len() as u64);
    }

    #[test]
    fn fused_execute_bitwise_matches_unfused() {
        // includes dimensions below LANES (scalar fallback lines) and
        // rectangular grids in both aspect ratios
        let shapes = [
            (2usize, 2usize),
            (4, 32),
            (32, 4),
            (8, 8),
            (16, 64),
            (64, 16),
            (128, 128),
        ];
        let pairs = [
            (Kind::Dct2, Kind::Dct2),
            (Kind::Dct3, Kind::Dct3),
            (Kind::Dst3, Kind::Dct3),
            (Kind::Dct3, Kind::Dst3),
        ];
        for &(rows, cols) in &shapes {
            let mut fused = Spectral2d::new(rows, cols);
            let mut unfused = Spectral2d::new(rows, cols);
            for (i, &(kx, ky)) in pairs.iter().enumerate() {
                let x = rand_seq(rows * cols, 900 + i as u64);
                let mut a = x.clone();
                let mut b = x;
                fused.execute(&mut a, kx, ky);
                unfused.execute_unfused(&mut b, kx, ky);
                for j in 0..a.len() {
                    assert_eq!(
                        a[j].to_bits(),
                        b[j].to_bits(),
                        "{rows}x{cols} pair {i} elem {j}: {} vs {}",
                        a[j],
                        b[j]
                    );
                }
            }
            assert_eq!(fused.stats().transposes, 0);
            assert_eq!(unfused.stats().transposes, 2 * pairs.len() as u64);
        }
    }

    #[test]
    fn apply_lanes_bitwise_matches_scalar_apply() {
        for &n in &[2usize, 8, 16, 128] {
            let plan = DctPlan::new(n);
            let mut scratch = TransformScratch::new();
            for kind in [Kind::Dct2, Kind::Dct3, Kind::Dst3] {
                // strided layout: element u of lane l at u*LANES + l
                let cols = LANES;
                let mut grid = rand_seq(n * cols, 70 + n as u64);
                let mut want: Vec<Vec<f64>> = (0..cols)
                    .map(|l| (0..n).map(|u| grid[u * cols + l]).collect())
                    .collect();
                plan.apply_lanes(kind, &mut grid, 0, cols, 1, &mut scratch);
                for (l, col) in want.iter_mut().enumerate() {
                    plan.apply(kind, col, &mut scratch);
                    for u in 0..n {
                        assert_eq!(
                            grid[u * cols + l].to_bits(),
                            col[u].to_bits(),
                            "n={n} kind={kind:?} lane={l} elem={u}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn spectral2d_serial_executor_is_bitwise_identical() {
        let (rows, cols) = (64usize, 64usize); // 4096 elements: meets threshold
        let x = rand_seq(rows * cols, 77);
        let mut serial = Spectral2d::new(rows, cols);
        let mut dispatched = Spectral2d::new(rows, cols);
        dispatched.set_executor(Arc::new(crate::exec::SerialExec), 4);
        let mut a = x.clone();
        let mut b = x;
        serial.execute(&mut a, Kind::Dct2, Kind::Dct2);
        dispatched.execute(&mut b, Kind::Dct2, Kind::Dct2);
        for i in 0..a.len() {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "elem {i}");
        }
    }
}
