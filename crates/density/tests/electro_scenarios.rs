//! Scenario tests for the electrostatic system: symmetry, blockage
//! shadows, and force balance on constructed layouts.

use mep_density::electro::Electrostatics;
use mep_density::BinGrid;
use mep_netlist::{Design, NetlistBuilder, Placement, Rect};

fn design_with(cells: &[(&str, f64, f64, bool)], die: f64) -> Design {
    let mut b = NetlistBuilder::new();
    for &(name, w, h, movable) in cells {
        b.add_cell(name, w, h, movable).unwrap();
    }
    Design::with_uniform_rows("t", b.build(), Rect::new(0.0, 0.0, die, die), 1.0, 1.0, 1.0).unwrap()
}

#[test]
fn mirror_symmetric_layout_gives_mirror_symmetric_forces() {
    // two equal cells placed symmetrically about the vertical midline
    let design = design_with(&[("a", 2.0, 2.0, true), ("b", 2.0, 2.0, true)], 32.0);
    let mut pl = Placement::zeros(2);
    pl.x[0] = 13.0;
    pl.y[0] = 15.0;
    pl.x[1] = 17.0; // mirror of 13 about x = 16 (cell width 2)
    pl.y[1] = 15.0;
    let mut es = Electrostatics::with_grid(&design, &pl, BinGrid::new(design.die, 32, 32));
    es.update(&design.netlist, &pl);
    let mut gx = vec![0.0; 2];
    let mut gy = vec![0.0; 2];
    es.accumulate_gradient(&design.netlist, &pl, &mut gx, &mut gy);
    // mirror symmetry: gx antisymmetric, gy equal
    assert!(
        (gx[0] + gx[1]).abs() < 1e-9 * gx[0].abs().max(1e-9),
        "{gx:?}"
    );
    assert!((gy[0] - gy[1]).abs() < 1e-9 + 1e-9 * gy[0].abs(), "{gy:?}");
}

#[test]
fn cell_is_pushed_out_of_a_fixed_block_shadow() {
    // a movable cell overlapping the edge of a big fixed block must be
    // pushed away from the block, not into it
    let design = design_with(&[("m", 2.0, 2.0, true), ("blk", 10.0, 10.0, false)], 32.0);
    let mut pl = Placement::zeros(2);
    pl.x[1] = 4.0; // block occupies [4,14]×[10,20]
    pl.y[1] = 10.0;
    pl.x[0] = 13.0; // movable straddles the block's right edge
    pl.y[0] = 14.0;
    let mut es = Electrostatics::with_grid(&design, &pl, BinGrid::new(design.die, 32, 32));
    es.update(&design.netlist, &pl);
    let mut gx = vec![0.0; 2];
    let mut gy = vec![0.0; 2];
    es.accumulate_gradient(&design.netlist, &pl, &mut gx, &mut gy);
    // descending −∇D must move the cell right (away from the block mass)
    assert!(gx[0] < 0.0, "gx = {}", gx[0]);
}

#[test]
fn energy_scale_is_quadratic_in_charge() {
    // doubling all cell areas quadruples the electrostatic energy
    // (ρ doubles, ψ doubles, E = ½Σρψ quadruples)
    let small = design_with(&[("a", 2.0, 2.0, true), ("b", 2.0, 2.0, true)], 32.0);
    let big = design_with(&[("a", 2.0, 4.0, true), ("b", 4.0, 2.0, true)], 32.0);
    let mut pl = Placement::zeros(2);
    pl.x[0] = 10.0;
    pl.y[0] = 10.0;
    pl.x[1] = 20.0;
    pl.y[1] = 20.0;
    let grid = BinGrid::new(small.die, 32, 32);
    let mut es_small = Electrostatics::with_grid(&small, &pl, grid.clone());
    let e_small = es_small.update(&small.netlist, &pl).energy;
    let mut es_big = Electrostatics::with_grid(&big, &pl, grid);
    let e_big = es_big.update(&big.netlist, &pl).energy;
    // both "big" cells have area 8 = 2× the small area 4: expect ≈4×
    let ratio = e_big / e_small;
    assert!(
        (2.5..6.0).contains(&ratio),
        "energy ratio {ratio} not ~4 (shapes differ slightly)"
    );
}

#[test]
fn gradient_vanishes_for_a_uniform_sea_of_cells() {
    // a perfectly regular grid of identical cells has (near-)zero net
    // density force on interior cells
    let n = 8usize;
    let mut names = Vec::new();
    for i in 0..n * n {
        names.push(format!("c{i}"));
    }
    let mut b = NetlistBuilder::new();
    for name in &names {
        b.add_cell(name.clone(), 2.0, 2.0, true).unwrap();
    }
    let design = Design::with_uniform_rows(
        "sea",
        b.build(),
        Rect::new(0.0, 0.0, 16.0, 16.0),
        1.0,
        1.0,
        1.0,
    )
    .unwrap();
    let mut pl = Placement::zeros(n * n);
    for iy in 0..n {
        for ix in 0..n {
            pl.x[iy * n + ix] = ix as f64 * 2.0;
            pl.y[iy * n + ix] = iy as f64 * 2.0;
        }
    }
    let mut es = Electrostatics::with_grid(&design, &pl, BinGrid::new(design.die, 16, 16));
    es.update(&design.netlist, &pl);
    let mut gx = vec![0.0; n * n];
    let mut gy = vec![0.0; n * n];
    es.accumulate_gradient(&design.netlist, &pl, &mut gx, &mut gy);
    // interior cells (away from the boundary rows/cols) feel ~no force
    let mut max_interior: f64 = 0.0;
    for iy in 2..n - 2 {
        for ix in 2..n - 2 {
            let i = iy * n + ix;
            max_interior = max_interior.max(gx[i].abs()).max(gy[i].abs());
        }
    }
    // compare against the typical boundary force magnitude
    let boundary = gx[0].abs().max(gy[0].abs()).max(1e-12);
    assert!(
        max_interior < 0.2 * boundary,
        "interior {max_interior} vs boundary {boundary}"
    );
}
