//! Determinism contract of the planned 2-D spectral transforms: grids are
//! bit-identical (`to_bits`) between the serial path and parallel row-batch
//! execution at 1, 2, and 8 threads.
//!
//! Uses a test-local scoped-thread executor (the density crate must not
//! depend on the wirelength crate's engine; any [`ParallelExec`] must give
//! identical results, which is exactly what this test pins down).

use mep_density::transform::{Kind, Spectral2d};
use mep_density::{ParallelExec, PoissonSolver, SerialExec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A genuinely multi-threaded executor: `threads` scoped workers claim
/// parts dynamically from a shared counter, so part-to-thread assignment
/// varies run to run — which is the point: outputs must not depend on it.
#[derive(Debug)]
struct ThreadsExec {
    threads: usize,
}

impl ParallelExec for ThreadsExec {
    fn run(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(parts) {
                s.spawn(|| loop {
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= parts {
                        break;
                    }
                    f(p);
                });
            }
        });
    }
}

fn test_grid(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

#[test]
fn transform_2d_bit_identical_across_thread_counts() {
    // 128×128 = 16384 elements: well past PARALLEL_GRID_THRESHOLD
    let (rows, cols) = (128usize, 128usize);
    let pairs = [
        (Kind::Dct2, Kind::Dct2),
        (Kind::Dct3, Kind::Dct3),
        (Kind::Dst3, Kind::Dct3),
        (Kind::Dct3, Kind::Dst3),
    ];
    for (i, &(kx, ky)) in pairs.iter().enumerate() {
        let x = test_grid(rows, cols, 11 + i as u64);
        let mut reference = Spectral2d::new(rows, cols);
        let mut want = x.clone();
        reference.execute(&mut want, kx, ky);

        for threads in [1usize, 2, 8] {
            let mut engine = Spectral2d::new(rows, cols);
            engine.set_executor(Arc::new(ThreadsExec { threads }), threads.max(2));
            let mut got = x.clone();
            engine.execute(&mut got, kx, ky);
            for j in 0..want.len() {
                assert_eq!(
                    got[j].to_bits(),
                    want[j].to_bits(),
                    "pair {i} threads {threads} elem {j}: {} vs {}",
                    got[j],
                    want[j]
                );
            }
        }
    }
}

#[test]
fn transform_2d_bit_identical_on_rectangular_grids() {
    let (rows, cols) = (64usize, 256usize);
    let x = test_grid(rows, cols, 99);
    let mut reference = Spectral2d::new(rows, cols);
    let mut want = x.clone();
    reference.execute(&mut want, Kind::Dct2, Kind::Dct2);
    for threads in [2usize, 8] {
        let mut engine = Spectral2d::new(rows, cols);
        engine.set_executor(Arc::new(ThreadsExec { threads }), threads);
        let mut got = x.clone();
        engine.execute(&mut got, Kind::Dct2, Kind::Dct2);
        for j in 0..want.len() {
            assert_eq!(got[j].to_bits(), want[j].to_bits(), "threads {threads}");
        }
    }
}

/// Property test for the fused kernels: over random power-of-two grids
/// spanning 2..=1024 on a side, the fused transpose-free path is
/// bit-identical to the unfused transpose-based reference for every sweep
/// pair, at 1, 2, and 8 threads.
#[test]
fn fused_sweeps_bit_identical_to_unfused_across_sizes_and_threads() {
    // deterministic "random" size walk over the power-of-two lattice,
    // biased to cover both the scalar fallback (dims < 8) and big grids
    let shapes: &[(usize, usize)] = &[
        (2, 1024),
        (1024, 2),
        (4, 4),
        (8, 512),
        (512, 8),
        (16, 16),
        (64, 128),
        (256, 64),
        (1024, 32),
    ];
    let pairs = [
        (Kind::Dct2, Kind::Dct2),
        (Kind::Dct3, Kind::Dct3),
        (Kind::Dst3, Kind::Dct3),
        (Kind::Dct3, Kind::Dst3),
    ];
    for (si, &(rows, cols)) in shapes.iter().enumerate() {
        for (i, &(kx, ky)) in pairs.iter().enumerate() {
            let x = test_grid(rows, cols, 1000 + (si * 4 + i) as u64);
            let mut reference = Spectral2d::new(rows, cols);
            let mut want = x.clone();
            reference.execute_unfused(&mut want, kx, ky);
            for threads in [1usize, 2, 8] {
                let mut engine = Spectral2d::new(rows, cols);
                engine.set_executor(Arc::new(ThreadsExec { threads }), threads.max(2));
                let mut got = x.clone();
                engine.execute(&mut got, kx, ky);
                for j in 0..want.len() {
                    assert_eq!(
                        got[j].to_bits(),
                        want[j].to_bits(),
                        "{rows}x{cols} pair {i} threads {threads} elem {j}: {} vs {}",
                        got[j],
                        want[j]
                    );
                }
            }
        }
    }
}

/// The unfused reference itself must stay thread-count invariant too.
#[test]
fn unfused_sweeps_bit_identical_across_thread_counts() {
    let (rows, cols) = (128usize, 64usize);
    let x = test_grid(rows, cols, 55);
    let mut reference = Spectral2d::new(rows, cols);
    let mut want = x.clone();
    reference.execute_unfused(&mut want, Kind::Dct2, Kind::Dct2);
    for threads in [2usize, 8] {
        let mut engine = Spectral2d::new(rows, cols);
        engine.set_executor(Arc::new(ThreadsExec { threads }), threads);
        let mut got = x.clone();
        engine.execute_unfused(&mut got, Kind::Dct2, Kind::Dct2);
        for j in 0..want.len() {
            assert_eq!(got[j].to_bits(), want[j].to_bits(), "threads {threads}");
        }
    }
}

#[test]
fn poisson_solve_bit_identical_across_thread_counts() {
    let n = 128usize;
    let rho = test_grid(n, n, 7);
    let solve = |exec: Option<(Arc<dyn ParallelExec>, usize)>| {
        let mut solver = PoissonSolver::new(n, n, 2.0, 2.0);
        if let Some((e, parts)) = exec {
            solver.set_executor(e, parts);
        }
        let mut psi = vec![0.0; n * n];
        let mut ex = vec![0.0; n * n];
        let mut ey = vec![0.0; n * n];
        solver.solve(&rho, &mut psi, &mut ex, &mut ey);
        (psi, ex, ey)
    };
    let (psi0, ex0, ey0) = solve(None);
    let configs: Vec<(Arc<dyn ParallelExec>, usize)> = vec![
        (Arc::new(SerialExec), 4),
        (Arc::new(ThreadsExec { threads: 1 }), 4),
        (Arc::new(ThreadsExec { threads: 2 }), 4),
        (Arc::new(ThreadsExec { threads: 8 }), 8),
    ];
    for (k, cfg) in configs.into_iter().enumerate() {
        let (psi, ex, ey) = solve(Some(cfg));
        for i in 0..n * n {
            assert_eq!(psi[i].to_bits(), psi0[i].to_bits(), "cfg {k} psi[{i}]");
            assert_eq!(ex[i].to_bits(), ex0[i].to_bits(), "cfg {k} ex[{i}]");
            assert_eq!(ey[i].to_bits(), ey0[i].to_bits(), "cfg {k} ey[{i}]");
        }
    }
}
