//! Property-based tests for the density substrate: transform algebra,
//! rasterization conservation, and Poisson-solver physics on randomized
//! inputs.

use mep_density::fft::{dft_naive, fft_in_place, FftPlan};
use mep_density::grid::BinGrid;
use mep_density::poisson::PoissonSolver;
use mep_density::transform::{self, naive, DctPlan, Kind, TransformScratch};
use mep_netlist::Rect;
use proptest::prelude::*;

fn pow2_len() -> impl Strategy<Value = usize> {
    (1u32..8).prop_map(|k| 1usize << k)
}

/// Planned-path coverage spans every grid size the placer can pick
/// (`BinGrid::auto` caps at 1024).
fn pow2_len_wide() -> impl Strategy<Value = usize> {
    (1u32..11).prop_map(|k| 1usize << k)
}

proptest! {
    /// FFT matches the naive DFT on random signals of random power-of-two
    /// lengths.
    #[test]
    fn fft_matches_naive(n in pow2_len(), seed in 0u64..1000) {
        let re0: Vec<f64> = (0..n).map(|i| ((seed as f64 + i as f64) * 0.77).sin()).collect();
        let im0: Vec<f64> = (0..n).map(|i| ((seed as f64 - i as f64) * 0.39).cos()).collect();
        let (wr, wi) = dft_naive(&re0, &im0, false);
        let mut re = re0;
        let mut im = im0;
        fft_in_place(&mut re, &mut im, false);
        for i in 0..n {
            prop_assert!((re[i] - wr[i]).abs() < 1e-8);
            prop_assert!((im[i] - wi[i]).abs() < 1e-8);
        }
    }

    /// DCT-II/III and DST-III match their naive references.
    #[test]
    fn transforms_match_naive(n in pow2_len(), seed in 0u64..1000) {
        let x: Vec<f64> = (0..n).map(|i| ((seed as f64 * 1.3 + i as f64) * 0.53).sin()).collect();
        let mut scratch = TransformScratch::new();
        let mut got = vec![0.0; n];
        transform::dct2(&x, &mut got, &mut scratch);
        for (g, w) in got.iter().zip(naive::dct2(&x)) {
            prop_assert!((g - w).abs() < 1e-8);
        }
        transform::dct3(&x, &mut got, &mut scratch);
        for (g, w) in got.iter().zip(naive::dct3(&x)) {
            prop_assert!((g - w).abs() < 1e-8);
        }
        transform::dst3(&x, &mut got, &mut scratch);
        for (g, w) in got.iter().zip(naive::dst3(&x)) {
            prop_assert!((g - w).abs() < 1e-8);
        }
    }

    /// The planned FFT matches the naive DFT in both directions across
    /// sizes 2..=1024.
    #[test]
    fn planned_fft_matches_naive(n in pow2_len_wide(), seed in 0u64..500, dir in 0u32..2) {
        let inverse = dir == 1;
        let re0: Vec<f64> = (0..n).map(|i| ((seed as f64 + i as f64) * 0.83).sin()).collect();
        let im0: Vec<f64> = (0..n).map(|i| ((seed as f64 - i as f64) * 0.29).cos()).collect();
        let (wr, wi) = dft_naive(&re0, &im0, inverse);
        let plan = FftPlan::new(n);
        let mut re = re0;
        let mut im = im0;
        plan.process(&mut re, &mut im, inverse);
        // the naive reference itself drifts with n; scale the tolerance
        let tol = 1e-9 * n as f64;
        for i in 0..n {
            prop_assert!((re[i] - wr[i]).abs() < tol, "re[{i}]");
            prop_assert!((im[i] - wi[i]).abs() < tol, "im[{i}]");
        }
    }

    /// The planned real-FFT DCT/DST paths match the naive references
    /// across sizes 2..=1024.
    #[test]
    fn planned_dct_matches_naive(n in pow2_len_wide(), seed in 0u64..500) {
        let x: Vec<f64> = (0..n).map(|i| ((seed as f64 * 1.7 + i as f64) * 0.47).sin()).collect();
        let plan = DctPlan::new(n);
        let mut scratch = TransformScratch::new();
        let tol = 1e-9 * n as f64;
        for kind in [Kind::Dct2, Kind::Dct3, Kind::Dst3] {
            let want = match kind {
                Kind::Dct2 => naive::dct2(&x),
                Kind::Dct3 => naive::dct3(&x),
                Kind::Dst3 => naive::dst3(&x),
            };
            let mut got = x.clone();
            plan.apply(kind, &mut got, &mut scratch);
            for i in 0..n {
                prop_assert!((got[i] - want[i]).abs() < tol, "{kind:?}[{i}]");
            }
        }
    }

    /// The planned path agrees with the unplanned free functions exactly
    /// enough for the solver (and the plan itself is reusable).
    #[test]
    fn planned_matches_unplanned(n in pow2_len(), seed in 0u64..500) {
        let x: Vec<f64> = (0..n).map(|i| ((seed as f64 + i as f64) * 0.71).cos()).collect();
        let plan = DctPlan::new(n);
        let mut scratch = TransformScratch::new();
        let mut legacy = vec![0.0; n];
        transform::dct2(&x, &mut legacy, &mut scratch);
        let mut planned = x.clone();
        plan.dct2(&mut planned, &mut scratch);
        for i in 0..n {
            prop_assert!((planned[i] - legacy[i]).abs() < 1e-9 * n as f64);
        }
    }

    /// Rasterization conserves the splatted mass for arbitrary in-die
    /// rectangles and scales.
    #[test]
    fn splat_conserves_mass(
        xl in 0.0f64..8.0, yl in 0.0f64..8.0,
        w in 0.01f64..4.0, h in 0.01f64..4.0,
        scale in 0.1f64..3.0,
    ) {
        let die = Rect::new(0.0, 0.0, 12.0, 12.0);
        let grid = BinGrid::new(die, 16, 16);
        let rect = Rect::from_origin_size(xl, yl, w, h);
        let mut out = vec![0.0; grid.len()];
        grid.splat(&rect, scale, &mut out);
        let total: f64 = out.iter().sum();
        prop_assert!((total - scale * rect.area()).abs() < 1e-9 * (1.0 + rect.area()));
    }

    /// `gather` is the area-weighted adjoint of `splat`: for any field F
    /// and rect R, `gather(R, F) · area(R) = Σ_b F_b · overlap(R, b)`,
    /// hence gathering a constant field returns the constant.
    #[test]
    fn gather_adjoint_identity(
        xl in 0.0f64..8.0, yl in 0.0f64..8.0,
        w in 0.05f64..4.0, h in 0.05f64..4.0,
        c in -5.0f64..5.0,
    ) {
        let die = Rect::new(0.0, 0.0, 12.0, 12.0);
        let grid = BinGrid::new(die, 16, 16);
        let rect = Rect::from_origin_size(xl, yl, w, h);
        let field = vec![c; grid.len()];
        prop_assert!((grid.gather(&rect, &field) - c).abs() < 1e-9 * (1.0 + c.abs()));
    }

    /// Poisson solve is linear: solve(aρ1 + bρ2) = a·solve(ρ1) + b·solve(ρ2).
    #[test]
    fn poisson_is_linear(seed in 0u64..200, a in -2.0f64..2.0, b in -2.0f64..2.0) {
        let n = 16;
        let mk = |s: u64| -> Vec<f64> {
            (0..n * n).map(|i| ((s as f64 + i as f64) * 0.61).sin()).collect()
        };
        let r1 = mk(seed);
        let r2 = mk(seed + 7);
        let combo: Vec<f64> = r1.iter().zip(&r2).map(|(x, y)| a * x + b * y).collect();
        let mut solver = PoissonSolver::new(n, n, 1.0, 1.0);
        let buf = || (vec![0.0; n * n], vec![0.0; n * n], vec![0.0; n * n]);
        let (mut p1, mut e1x, mut e1y) = buf();
        let (mut p2, mut e2x, mut e2y) = buf();
        let (mut pc, mut ecx, mut ecy) = buf();
        solver.solve(&r1, &mut p1, &mut e1x, &mut e1y);
        solver.solve(&r2, &mut p2, &mut e2x, &mut e2y);
        solver.solve(&combo, &mut pc, &mut ecx, &mut ecy);
        for i in 0..n * n {
            prop_assert!((pc[i] - (a * p1[i] + b * p2[i])).abs() < 1e-8);
            prop_assert!((ecx[i] - (a * e1x[i] + b * e2x[i])).abs() < 1e-8);
            prop_assert!((ecy[i] - (a * e1y[i] + b * e2y[i])).abs() < 1e-8);
        }
    }

    /// The solver ignores the DC component: adding a constant to ρ changes
    /// nothing.
    #[test]
    fn poisson_ignores_dc(seed in 0u64..200, dc in -3.0f64..3.0) {
        let n = 16;
        let rho: Vec<f64> = (0..n * n).map(|i| ((seed as f64 + i as f64) * 0.43).cos()).collect();
        let shifted: Vec<f64> = rho.iter().map(|v| v + dc).collect();
        let mut solver = PoissonSolver::new(n, n, 1.0, 1.0);
        let (mut p1, mut ex1, mut ey1) = (vec![0.0; n * n], vec![0.0; n * n], vec![0.0; n * n]);
        let (mut p2, mut ex2, mut ey2) = (vec![0.0; n * n], vec![0.0; n * n], vec![0.0; n * n]);
        solver.solve(&rho, &mut p1, &mut ex1, &mut ey1);
        solver.solve(&shifted, &mut p2, &mut ex2, &mut ey2);
        for i in 0..n * n {
            prop_assert!((p1[i] - p2[i]).abs() < 1e-8);
            prop_assert!((ex1[i] - ex2[i]).abs() < 1e-8);
        }
    }

    /// Electrostatic energy is non-negative (ρ with zero mean ⇒ ½Σρψ ≥ 0,
    /// since the operator is positive semidefinite).
    #[test]
    fn energy_nonnegative(seed in 0u64..500) {
        let n = 16;
        let mut rho: Vec<f64> = (0..n * n).map(|i| ((seed as f64 * 2.1 + i as f64) * 0.37).sin()).collect();
        let mean = rho.iter().sum::<f64>() / rho.len() as f64;
        for v in rho.iter_mut() { *v -= mean; }
        let mut solver = PoissonSolver::new(n, n, 1.0, 1.0);
        let (mut p, mut ex, mut ey) = (vec![0.0; n * n], vec![0.0; n * n], vec![0.0; n * n]);
        solver.solve(&rho, &mut p, &mut ex, &mut ey);
        let energy: f64 = rho.iter().zip(&p).map(|(r, q)| r * q).sum::<f64>();
        prop_assert!(energy >= -1e-9);
    }
}
