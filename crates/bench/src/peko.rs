//! Shared plumbing for the known-optimum (PEKO) suboptimality harness.
//!
//! [`run_peko`] places one [`PekoSpec`] with one wirelength model × one
//! optimizer through the full GP → LG → DP pipeline on a caller-supplied
//! [`EvalEngine`], then measures the one thing ordinary benchmarks
//! cannot: the **suboptimality ratio** `final HPWL / optimal HPWL`
//! against the generator's constructively exact optimum. Every run also
//! gets a mandatory legality audit (pairwise overlap-free, in-die,
//! row/site aligned) — a placement that "wins" by escaping the die or
//! stacking cells is a bug, not a result.
//!
//! All `peko.*` quality metrics are merged into the run's [`RunReport`],
//! so the JSONL record carries the certificate next to the standard
//! telemetry (DESIGN.md §10/§15).

use mep_netlist::synth::peko::{generate_peko, PekoSpec};
use mep_obs::json::JsonObject;
use mep_obs::{Registry, RunReport};
use mep_placer::global::OptimizerKind;
use mep_placer::pipeline::{run_with_engine, PipelineConfig};
use mep_placer::{audit_legality, GlobalConfig, LegalityAudit, PlacerError};
use mep_wirelength::engine::EvalEngine;
use mep_wirelength::ModelKind;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Options controlling one harness run.
#[derive(Debug, Clone)]
pub struct PekoOptions {
    /// GP iteration cap. The guard rows must always use
    /// [`GUARD_ITERS`] so measured ratios are comparable to the
    /// committed baseline.
    pub max_iters: usize,
    /// Worker threads (results are bit-identical at any count).
    pub threads: usize,
}

/// Iteration cap used for the guarded Moreau rows and the committed
/// baseline — fixed so every future measurement is comparable.
pub const GUARD_ITERS: usize = 600;

impl Default for PekoOptions {
    fn default() -> Self {
        Self {
            max_iters: GUARD_ITERS,
            threads: mep_wirelength::engine::default_threads(),
        }
    }
}

/// Short stable label for an optimizer config (used in JSONL and CSV).
pub fn optimizer_label(optimizer: OptimizerKind) -> &'static str {
    match optimizer {
        OptimizerKind::Nesterov => "nesterov",
        OptimizerKind::Adam => "adam",
        OptimizerKind::ConjugateSubgradient => "cg",
    }
}

/// Result of one spec × model × optimizer run.
#[derive(Debug, Clone)]
pub struct PekoRow {
    /// Benchmark name (`peko_600`, …).
    pub bench: String,
    /// Wirelength model used.
    pub model: ModelKind,
    /// Optimizer used.
    pub optimizer: OptimizerKind,
    /// Movable cell count.
    pub movable: usize,
    /// The constructively exact optimal HPWL.
    pub optimal_hpwl: f64,
    /// HPWL after global placement (may dip below the optimum while
    /// cells still overlap — the optimum bounds *legal* placements).
    pub gpwl: f64,
    /// HPWL after legalization.
    pub lgwl: f64,
    /// HPWL after detailed placement.
    pub dpwl: f64,
    /// Suboptimality ratio `dpwl / optimal_hpwl` (≥ 1 up to float dust;
    /// the quality metric the guard tracks).
    pub ratio: f64,
    /// Total runtime, seconds.
    pub rt: f64,
    /// GP iterations executed.
    pub iterations: usize,
    /// Final density overflow after GP.
    pub overflow: f64,
    /// Legality audit of the final placement (must be clean).
    pub audit: LegalityAudit,
    /// Full run telemetry with `peko.*` metrics merged in.
    pub report: RunReport,
}

/// Runs one spec × model × optimizer through the full pipeline and
/// certifies the result against the known optimum.
///
/// # Errors
///
/// Propagates [`PlacerError`] from the pipeline (degenerate input,
/// unrecoverable numerical fault, legalization failure).
pub fn run_peko(
    spec: &PekoSpec,
    model: ModelKind,
    optimizer: OptimizerKind,
    opts: &PekoOptions,
    engine: Arc<EvalEngine>,
) -> Result<PekoRow, PlacerError> {
    let p = generate_peko(spec);
    let config = PipelineConfig {
        global: GlobalConfig {
            model,
            optimizer,
            max_iters: opts.max_iters,
            threads: opts.threads,
            ..GlobalConfig::default()
        },
        ..PipelineConfig::default()
    };
    let r = run_with_engine(&p.circuit, &config, engine)?;
    let audit = audit_legality(&p.circuit.design, &r.placement);
    let ratio = r.dpwl / p.optimal_hpwl;

    let mut report = r.report;
    let reg = Registry::new();
    reg.gauge("peko.optimal_hpwl").set(p.optimal_hpwl);
    reg.gauge("peko.ratio_gp").set(r.gpwl / p.optimal_hpwl);
    reg.gauge("peko.ratio_lg").set(r.lgwl / p.optimal_hpwl);
    reg.gauge("peko.ratio_dp").set(ratio);
    reg.counter("peko.audit.overlaps")
        .add(audit.overlaps as u64);
    reg.counter("peko.audit.outside_die")
        .add(audit.outside_die as u64);
    reg.counter("peko.audit.off_row").add(audit.off_row as u64);
    reg.counter("peko.audit.off_site")
        .add(audit.off_site as u64);
    reg.counter("peko.audit.outside_region")
        .add(audit.outside_region as u64);
    reg.label("peko.optimizer").set(optimizer_label(optimizer));
    report.merge_registry(&reg);

    Ok(PekoRow {
        bench: spec.name.clone(),
        model,
        optimizer,
        movable: spec.movable,
        optimal_hpwl: p.optimal_hpwl,
        gpwl: r.gpwl,
        lgwl: r.lgwl,
        dpwl: r.dpwl,
        ratio,
        rt: r.rt_gp + r.rt_lg + r.rt_dp,
        iterations: r.iterations,
        overflow: r.overflow,
        audit,
        report,
    })
}

/// Serializes a legality audit as a JSON object.
pub fn audit_json(audit: &LegalityAudit) -> String {
    let mut o = JsonObject::new();
    o.field_u64("overlaps", audit.overlaps as u64)
        .field_u64("outside_die", audit.outside_die as u64)
        .field_u64("off_row", audit.off_row as u64)
        .field_u64("off_site", audit.off_site as u64)
        .field_u64("outside_region", audit.outside_region as u64)
        .field_bool("clean", audit.is_clean());
    o.finish()
}

/// One JSONL line for a row: bench/model/optimizer, the certificate
/// numbers, the audit, and the full merged report.
pub fn row_json(row: &PekoRow) -> String {
    let mut o = JsonObject::new();
    o.field_str("bench", &row.bench)
        .field_str("model", row.model.label())
        .field_str("optimizer", optimizer_label(row.optimizer))
        .field_u64("movable", row.movable as u64)
        .field_f64("optimal_hpwl", row.optimal_hpwl)
        .field_f64("gpwl", row.gpwl)
        .field_f64("lgwl", row.lgwl)
        .field_f64("dpwl", row.dpwl)
        .field_f64("ratio", row.ratio)
        .field_f64("rt", row.rt)
        .field_u64("iterations", row.iterations as u64)
        .field_f64("overflow", row.overflow)
        .field_raw("audit", &audit_json(&row.audit))
        .field_raw("report", &row.report.to_json());
    o.finish()
}

/// Writes one JSON line per run into `path` (creating parent dirs).
///
/// # Errors
///
/// Returns the underlying I/O error if `path` cannot be written.
pub fn write_peko_jsonl(
    path: impl AsRef<Path>,
    rows: impl IntoIterator<Item = impl std::borrow::Borrow<PekoRow>>,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for row in rows {
        writeln!(out, "{}", row_json(row.borrow()))?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth::peko::peko_spec;

    #[test]
    fn run_peko_certifies_a_small_ladder_rung() {
        let spec = peko_spec(100, 5);
        let opts = PekoOptions {
            max_iters: 250,
            threads: 1,
        };
        let engine = Arc::new(EvalEngine::new(1));
        let row = run_peko(
            &spec,
            ModelKind::Moreau,
            OptimizerKind::Nesterov,
            &opts,
            engine,
        )
        .expect("peko flow");
        assert!(
            row.audit.is_clean(),
            "final placement must be legal: {}",
            row.audit
        );
        // a legal placement can never beat the certificate
        assert!(
            row.dpwl >= row.optimal_hpwl - 1e-6,
            "dpwl {} below the certified optimum {}",
            row.dpwl,
            row.optimal_hpwl
        );
        assert!(row.ratio >= 1.0 - 1e-9);
        assert!(row.ratio < 4.0, "suboptimality ratio {} absurd", row.ratio);
        // peko.* metrics merged into the standard report
        assert_eq!(row.report.gauge("peko.ratio_dp"), Some(row.ratio));
        assert_eq!(row.report.counter("peko.audit.overlaps"), Some(0));
        assert_eq!(row.report.label("peko.optimizer"), Some("nesterov"));
        // and the usual pipeline metrics are still there
        assert_eq!(row.report.gauge("dp.hpwl"), Some(row.dpwl));

        let line = row_json(&row);
        assert!(line.starts_with("{\"bench\":\"peko_100\",\"model\":\"Ours\""));
        assert!(line.contains("\"audit\":{\"overlaps\":0"));

        let path = std::env::temp_dir().join(format!("mep_peko_{}.jsonl", std::process::id()));
        write_peko_jsonl(&path, [&row]).expect("write jsonl");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let spec = peko_spec(64, 6);
        let opts = PekoOptions {
            max_iters: 120,
            threads: 1,
        };
        let a = run_peko(
            &spec,
            ModelKind::Wa,
            OptimizerKind::Nesterov,
            &opts,
            Arc::new(EvalEngine::new(1)),
        )
        .expect("peko flow");
        let b = run_peko(
            &spec,
            ModelKind::Wa,
            OptimizerKind::Nesterov,
            &opts,
            Arc::new(EvalEngine::new(1)),
        )
        .expect("peko flow");
        assert_eq!(a.dpwl, b.dpwl);
        assert_eq!(a.ratio, b.ratio);
    }
}
