//! Minimal SVG rendering: line plots for the figure harnesses and
//! placement snapshots for visual inspection. No dependencies — the
//! output is plain SVG 1.1 text.

use mep_netlist::{Design, Placement};
use std::fmt::Write as _;

/// A 2-D line plot with multiple named series.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    log_x: bool,
    log_y: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

/// Categorical colors for plot series (dark, print-friendly).
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

impl LinePlot {
    /// Creates an empty plot.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Log-scales the x axis (points with `x ≤ 0` are dropped).
    pub fn with_log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Log-scales the y axis (points with `y ≤ 0` are dropped).
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a named series.
    pub fn add_series(
        &mut self,
        label: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) {
        self.series
            .push((label.into(), points.into_iter().collect()));
    }

    /// Renders the SVG document.
    pub fn to_svg(&self) -> String {
        const W: f64 = 720.0;
        const H: f64 = 480.0;
        const ML: f64 = 70.0; // margins
        const MR: f64 = 20.0;
        const MT: f64 = 40.0;
        const MB: f64 = 55.0;
        let tx = |v: f64| if self.log_x { v.log10() } else { v };
        let ty = |v: f64| if self.log_y { v.log10() } else { v };
        let pts: Vec<(usize, Vec<(f64, f64)>)> = self
            .series
            .iter()
            .enumerate()
            .map(|(k, (_, pts))| {
                (
                    k,
                    pts.iter()
                        .filter(|(x, y)| (!self.log_x || *x > 0.0) && (!self.log_y || *y > 0.0))
                        .map(|&(x, y)| (tx(x), ty(y)))
                        .collect(),
                )
            })
            .collect();
        let all: Vec<(f64, f64)> = pts.iter().flat_map(|(_, p)| p.iter().copied()).collect();
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if all.is_empty() {
            x0 = 0.0;
            x1 = 1.0;
            y0 = 0.0;
            y1 = 1.0;
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let sx = |x: f64| ML + (x - x0) / (x1 - x0) * (W - ML - MR);
        let sy = |y: f64| H - MB - (y - y0) / (y1 - y0) * (H - MT - MB);

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
        );
        let _ = writeln!(out, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="22" font-family="sans-serif" font-size="15" text-anchor="middle">{}</text>"#,
            W / 2.0,
            xml_escape(&self.title)
        );
        // axes
        let _ = writeln!(
            out,
            r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            H - MB,
            W - MR,
            H - MB
        );
        let _ = writeln!(
            out,
            r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
            H - MB
        );
        // ticks (5 per axis)
        for k in 0..=4 {
            let fx = x0 + (x1 - x0) * k as f64 / 4.0;
            let fy = y0 + (y1 - y0) * k as f64 / 4.0;
            let label_x = fmt_sig(if self.log_x { 10f64.powf(fx) } else { fx });
            let label_y = fmt_sig(if self.log_y { 10f64.powf(fy) } else { fy });
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
                sx(fx),
                H - MB + 18.0,
                label_x
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{}</text>"#,
                ML - 6.0,
                sy(fy) + 4.0,
                label_y
            );
            let _ = writeln!(
                out,
                r##"<line x1="{}" y1="{MT}" x2="{}" y2="{}" stroke="#eeeeee"/>"##,
                sx(fx),
                sx(fx),
                H - MB
            );
        }
        // axis labels
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>"#,
            (ML + W - MR) / 2.0,
            H - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="16" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            xml_escape(&self.y_label)
        );
        // series
        for (k, series_pts) in &pts {
            if series_pts.is_empty() {
                continue;
            }
            let color = COLORS[k % COLORS.len()];
            let mut d = String::new();
            for (i, &(x, y)) in series_pts.iter().enumerate() {
                let _ = write!(
                    d,
                    "{}{:.2},{:.2} ",
                    if i == 0 { "M" } else { "L" },
                    sx(x),
                    sy(y)
                );
            }
            let _ = writeln!(
                out,
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                d.trim_end()
            );
            // legend
            let ly = MT + 8.0 + *k as f64 * 18.0;
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
                W - MR - 150.0,
                W - MR - 120.0
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
                W - MR - 112.0,
                ly + 4.0,
                xml_escape(&self.series[*k].0)
            );
        }
        out.push_str("</svg>\n");
        out
    }

    /// Writes the SVG to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_svg())
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// ~3-significant-digit tick label (Rust has no `%g` formatter).
fn fmt_sig(v: f64) -> String {
    // lint:allow(float-eq): exact-zero sentinel (skip empty value), not a tolerance check
    if v == 0.0 {
        return "0".to_string();
    }
    let mag = v.abs().log10().floor() as i32;
    if (-3..=5).contains(&mag) {
        let decimals = (2 - mag).max(0) as usize;
        let s = format!("{v:.decimals$}");
        // trim trailing zeros and a dangling dot
        let s = s.trim_end_matches('0').trim_end_matches('.').to_string();
        if s.is_empty() {
            "0".to_string()
        } else {
            s
        }
    } else {
        format!("{v:.2e}")
    }
}

/// Renders a placement snapshot: die outline, fixed cells (gray), movable
/// standard cells (blue), movable macros (navy).
pub fn placement_svg(design: &Design, placement: &Placement) -> String {
    let die = design.die;
    let scale = 900.0 / die.width().max(die.height());
    let w = die.width() * scale;
    let h = die.height() * scale;
    let row_h = design.rows.first().map(|r| r.height).unwrap_or(1.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.2} {:.2}">"#,
        w + 2.0,
        h + 2.0,
        w + 2.0,
        h + 2.0
    );
    let _ = writeln!(
        out,
        r##"<rect x="1" y="1" width="{w:.2}" height="{h:.2}" fill="#fafafa" stroke="black"/>"##
    );
    let nl = &design.netlist;
    for cell in nl.cells() {
        let r = placement.cell_rect(nl, cell);
        // lint:allow(float-eq): zero-area rects are exactly zero by construction
        if r.area() == 0.0 {
            continue;
        }
        let color = if !nl.is_movable(cell) {
            "#b0b0b0"
        } else if nl.cell_height(cell) > row_h + 1e-9 {
            "#1a3a6b"
        } else {
            "#5b8dd9"
        };
        // die y grows upward; SVG y grows downward
        let _ = writeln!(
            out,
            r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{color}" fill-opacity="0.75" stroke="none"/>"#,
            1.0 + (r.xl - die.xl) * scale,
            1.0 + (die.yh - r.yh) * scale,
            r.width() * scale,
            r.height() * scale,
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a per-bin scalar field (density, potential, overflow) as a
/// grayscale heatmap. `data` is row-major, `iy * nx + ix`, with `iy = 0`
/// at the die bottom.
pub fn heatmap_svg(data: &[f64], nx: usize, ny: usize) -> String {
    assert_eq!(data.len(), nx * ny, "grid shape mismatch");
    let cell = (900.0 / nx.max(ny) as f64).max(1.0);
    let (w, h) = (nx as f64 * cell, ny as f64 * cell);
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-30);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.2} {h:.2}">"#
    );
    for iy in 0..ny {
        for ix in 0..nx {
            let v = (data[iy * nx + ix] - lo) / span;
            let shade = (255.0 * (1.0 - v)) as u8;
            let _ = writeln!(
                out,
                r#"<rect x="{:.2}" y="{:.2}" width="{cell:.2}" height="{cell:.2}" fill="rgb({shade},{shade},{shade})"/>"#,
                ix as f64 * cell,
                (ny - 1 - iy) as f64 * cell, // flip y: SVG grows downward
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth;

    #[test]
    fn line_plot_contains_series_and_labels() {
        let mut p = LinePlot::new("t & test", "x", "y");
        p.add_series("a", vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]);
        p.add_series("b", vec![(0.0, 1.0), (2.0, 3.0)]);
        let svg = p.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("t &amp; test"));
        assert!(svg.contains(">a</text>"));
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let mut p = LinePlot::new("log", "x", "y").with_log_x().with_log_y();
        p.add_series(
            "s",
            vec![(0.0, 1.0), (1.0, 0.0), (10.0, 100.0), (100.0, 1.0)],
        );
        let svg = p.to_svg();
        // only two valid points survive → one path with one M and one L
        let path_line = svg.lines().find(|l| l.contains("<path")).unwrap();
        assert_eq!(path_line.matches('L').count(), 1);
    }

    #[test]
    fn empty_plot_is_still_valid_svg() {
        let p = LinePlot::new("empty", "x", "y");
        let svg = p.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn heatmap_has_one_rect_per_bin() {
        let data = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let svg = heatmap_svg(&data, 3, 2);
        assert_eq!(svg.matches("<rect").count(), 6);
        // extremes map to white (255) and black (0)
        assert!(svg.contains("rgb(255,255,255)"));
        assert!(svg.contains("rgb(0,0,0)"));
    }

    #[test]
    fn heatmap_of_constant_field_does_not_divide_by_zero() {
        let svg = heatmap_svg(&[2.0; 4], 2, 2);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn placement_svg_draws_every_sized_cell() {
        let c = synth::generate(&synth::smoke_spec());
        let svg = placement_svg(&c.design, &c.placement);
        let sized = c
            .design
            .netlist
            .cells()
            .filter(|&cell| c.design.netlist.cell_area(cell) > 0.0)
            .count();
        // +1 for the die outline rect
        assert_eq!(svg.matches("<rect").count(), sized + 1);
        assert!(svg.contains("#5b8dd9")); // movable std cells present
    }
}
