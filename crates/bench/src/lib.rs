//! Shared experiment-harness utilities: table formatting, CSV export, and
//! the run-one-benchmark flow used by the Table II/III binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod peko;
pub mod svg;
pub mod table;

pub use flow::{run_benchmark, write_reports_jsonl, BenchmarkRow, FlowOptions};
pub use peko::{run_peko, write_peko_jsonl, PekoOptions, PekoRow};
pub use table::Table;
