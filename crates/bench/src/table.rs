//! Minimal aligned-table + CSV writer for experiment outputs.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table that can also serialize to CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The data rows (stringified cells).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a column-aligned text table (also valid Markdown).
    pub fn to_text(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(width) {
                let _ = write!(out, " {c:>w$} |", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &width, &mut out);
        out.push('|');
        for w in &width {
            let _ = write!(out, "{:-<w$}|", "", w = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }

    /// Serializes to CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with engineering-friendly precision for tables.
pub fn fmt_wl(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.4e}", v)
    } else {
        format!("{v:.1}")
    }
}

/// Arithmetic mean of `a[i] / b[i]` — the paper's "Avg. Ratio" rows.
pub fn avg_ratio(num: &[f64], den: &[f64]) -> f64 {
    assert_eq!(num.len(), den.len());
    assert!(!num.is_empty());
    num.iter().zip(den).map(|(n, d)| n / d).sum::<f64>() / num.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new(["name", "value"]);
        t.push(["a", "1"]);
        t.push(["long-name", "12345"]);
        let s = t.to_text();
        assert!(s.contains("| long-name |"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(["x", "y"]);
        t.push(["1", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,2\n");
    }

    #[test]
    fn avg_ratio_matches_hand_computation() {
        assert!((avg_ratio(&[2.0, 4.0], &[1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((avg_ratio(&[1.0, 3.0], &[2.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }
}
