//! The run-one-benchmark flow shared by the Table II / Table III binaries.

use mep_netlist::synth::SynthSpec;
use mep_obs::json::JsonObject;
use mep_obs::RunReport;
use mep_placer::pipeline::{run, PipelineConfig};
use mep_placer::GlobalConfig;
use mep_wirelength::ModelKind;
use std::io::Write as _;
use std::path::Path;

/// Options controlling a table run.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Shrink every benchmark by this factor (1 = full scale). The
    /// `--fast` CLI flag of the table binaries sets 10 for smoke-level
    /// turnaround.
    pub shrink: usize,
    /// GP iteration cap.
    pub max_iters: usize,
    /// Worker threads.
    pub threads: usize,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            shrink: 1,
            max_iters: 800,
            threads: mep_wirelength::engine::default_threads(),
        }
    }
}

impl FlowOptions {
    /// Parses `--fast` / `--shrink N` from CLI args.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            match a.as_str() {
                "--fast" => opts.shrink = 10,
                "--shrink" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.shrink = v;
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// Applies the shrink factor to a spec.
    pub fn shrink_spec(&self, spec: &SynthSpec) -> SynthSpec {
        if self.shrink <= 1 {
            return spec.clone();
        }
        let s = self.shrink;
        SynthSpec {
            movable: (spec.movable / s).max(64),
            fixed: (spec.fixed / s).max(if spec.fixed == 0 { 0 } else { 2 }),
            nets: (spec.nets / s).max(64),
            pins: (spec.pins / s).max(256),
            movable_macros: (spec.movable_macros / s).min(spec.movable_macros),
            ..spec.clone()
        }
    }
}

/// Result of one benchmark × one model run — one table cell group.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub bench: String,
    /// Wirelength model used.
    pub model: ModelKind,
    /// HPWL after legalization.
    pub lgwl: f64,
    /// HPWL after detailed placement.
    pub dpwl: f64,
    /// Total runtime in seconds.
    pub rt: f64,
    /// GP iterations.
    pub iterations: usize,
    /// Final overflow.
    pub overflow: f64,
    /// Legality violations (must be 0).
    pub violations: usize,
    /// Full machine-readable telemetry of the run (DESIGN.md §10).
    pub report: RunReport,
}

/// Writes one JSON line per benchmark × model run:
/// `{"bench":…,"model":…,"report":{…}}`, so table binaries leave a
/// machine-readable record next to their CSVs.
///
/// # Errors
///
/// Returns the underlying I/O error if `path` cannot be written.
pub fn write_reports_jsonl(
    path: impl AsRef<Path>,
    rows: impl IntoIterator<Item = impl std::borrow::Borrow<BenchmarkRow>>,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for row in rows {
        let row = row.borrow();
        let mut o = JsonObject::new();
        o.field_str("bench", &row.bench)
            .field_str("model", row.model.label())
            .field_raw("report", &row.report.to_json());
        writeln!(out, "{}", o.finish())?;
    }
    out.flush()
}

/// Runs the full pipeline for one spec × model.
pub fn run_benchmark(spec: &SynthSpec, model: ModelKind, opts: &FlowOptions) -> BenchmarkRow {
    let spec = opts.shrink_spec(spec);
    let circuit = mep_netlist::synth::generate(&spec);
    let config = PipelineConfig {
        global: GlobalConfig {
            model,
            max_iters: opts.max_iters,
            threads: opts.threads,
            ..GlobalConfig::default()
        },
        ..PipelineConfig::default()
    };
    let r = run(&circuit, &config).expect("placement flow");
    BenchmarkRow {
        bench: spec.name.clone(),
        model,
        lgwl: r.lgwl,
        dpwl: r.dpwl,
        rt: r.rt_total(),
        iterations: r.iterations,
        overflow: r.overflow,
        violations: r.violations,
        report: r.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mep_netlist::synth;

    #[test]
    fn shrink_reduces_counts() {
        let spec = synth::spec_by_name("newblue7").unwrap();
        let opts = FlowOptions {
            shrink: 10,
            ..FlowOptions::default()
        };
        let small = opts.shrink_spec(&spec);
        assert_eq!(small.movable, spec.movable / 10);
        assert_eq!(small.name, spec.name);
    }

    #[test]
    fn run_benchmark_produces_legal_result() {
        let spec = synth::smoke_spec();
        let opts = FlowOptions {
            max_iters: 300,
            threads: 1,
            ..FlowOptions::default()
        };
        let row = run_benchmark(&spec, ModelKind::Moreau, &opts);
        assert_eq!(row.violations, 0);
        assert!(row.dpwl <= row.lgwl + 1e-9);
        assert!(row.rt > 0.0);
        // the run's telemetry rides along and serializes
        assert_eq!(row.report.gauge("dp.hpwl"), Some(row.dpwl));

        let path = std::env::temp_dir().join(format!("mep_reports_{}.jsonl", std::process::id()));
        write_reports_jsonl(&path, [&row]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("{\"bench\":\"smoke\",\"model\":\"Ours\",\"report\":{"));
        std::fs::remove_file(&path).ok();
    }
}
