//! **Ablation** (beyond the paper's tables): the paper's tangent
//! `t`-schedule (Eq. (14)) versus reusing ePlace's decade schedule for
//! `t`, and a sweep over the `t0` coefficient — quantifying the §III-C
//! design choices.
//!
//! ```text
//! cargo run -p mep-bench --release --bin ablation_tschedule [--fast]
//! ```
//!
//! Writes `results/ablation_tschedule.csv`.

use mep_bench::{FlowOptions, Table};
use mep_netlist::synth;
use mep_placer::global::MoreauSchedule;
use mep_placer::pipeline::{run, PipelineConfig};
use mep_placer::GlobalConfig;
use mep_wirelength::ModelKind;

fn main() {
    let opts = FlowOptions::from_args();
    let benches = ["newblue1", "newblue2", "ispd19_test5"];
    let variants: [(&str, MoreauSchedule, f64); 4] = [
        ("tangent_t0=4 (paper)", MoreauSchedule::Tangent, 4.0),
        ("tangent_t0=1", MoreauSchedule::Tangent, 1.0),
        ("tangent_t0=16", MoreauSchedule::Tangent, 16.0),
        ("decade", MoreauSchedule::Decade, 4.0),
    ];

    let mut table = Table::new(["bench", "variant", "DPWL", "LGWL", "iters", "RT(s)"]);
    for bench in benches {
        let spec = opts.shrink_spec(&synth::spec_by_name(bench).expect("Table I name"));
        let circuit = synth::generate(&spec);
        let mut base: Option<f64> = None;
        for (name, schedule, t0) in variants {
            eprintln!("[ablation] {bench} × {name} …");
            let config = PipelineConfig {
                global: GlobalConfig {
                    model: ModelKind::Moreau,
                    moreau_schedule: schedule,
                    t0,
                    max_iters: opts.max_iters,
                    threads: opts.threads,
                    ..GlobalConfig::default()
                },
                ..PipelineConfig::default()
            };
            let r = run(&circuit, &config).expect("placement flow");
            if base.is_none() {
                base = Some(r.dpwl);
            }
            println!(
                "{bench:<14} {name:<22} DPWL {:.4e} ({:+.2}% vs paper cfg)  iters {}  RT {:.1}s",
                r.dpwl,
                100.0 * (r.dpwl / base.expect("set above") - 1.0),
                r.iterations,
                r.rt_total()
            );
            table.push([
                bench.to_string(),
                name.to_string(),
                format!("{:.4e}", r.dpwl),
                format!("{:.4e}", r.lgwl),
                r.iterations.to_string(),
                format!("{:.1}", r.rt_total()),
            ]);
        }
    }
    if let Err(e) = table.write_csv("results/ablation_tschedule.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!("\nwrote results/ablation_tschedule.csv");
    }
}
