//! Regenerates **Fig. 1(b)**: average approximation error of LSE, WA, and
//! the Moreau envelope versus the smoothing parameter, for random 4-pin
//! nets with fixed span Δx = 200 (3000 trials per point, as in the paper).
//!
//! ```text
//! cargo run -p mep-bench --release --bin fig1b_approx_error
//! ```
//!
//! Writes `results/fig1b_approx_error.csv`.

use mep_bench::Table;
use mep_wirelength::model::{ModelKind, NetModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TRIALS: usize = 3000;
const SPAN: f64 = 200.0;

fn main() {
    let mut table = Table::new(["param", "LSE", "WA", "Moreau"]);
    // log-spaced smoothing parameters, 0.1 … 100
    let points = 25;
    let mut rng = StdRng::seed_from_u64(20230712);
    // pre-draw the random nets once so every model sees the same workload
    let nets: Vec<[f64; 4]> = (0..TRIALS)
        .map(|_| {
            [
                0.0,
                rng.gen_range(0.0..SPAN),
                rng.gen_range(0.0..SPAN),
                SPAN,
            ]
        })
        .collect();

    println!("Fig. 1(b) — mean |error| vs smoothing parameter (Δx = {SPAN}, {TRIALS} trials)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "param", "LSE", "WA", "Moreau"
    );
    for i in 0..points {
        let p = 10f64.powf(-1.0 + 3.0 * i as f64 / (points - 1) as f64);
        let mut lse = ModelKind::Lse.instantiate(p);
        let mut wa = ModelKind::Wa.instantiate(p);
        let mut me = ModelKind::Moreau.instantiate(p);
        let (mut el, mut ew, mut em) = (0.0, 0.0, 0.0);
        for net in &nets {
            el += (lse.value_axis(net) - SPAN).abs();
            ew += (wa.value_axis(net) - SPAN).abs();
            em += (me.value_axis(net) - SPAN).abs();
        }
        let n = TRIALS as f64;
        let (el, ew, em) = (el / n, ew / n, em / n);
        println!("{p:>10.4} {el:>12.5} {ew:>12.5} {em:>12.5}");
        table.push([
            format!("{p:.6}"),
            format!("{el:.6}"),
            format!("{ew:.6}"),
            format!("{em:.6}"),
        ]);
    }
    println!("\n(the Moreau curve sits well below both exponential models, as in the paper)");
    if let Err(e) = table.write_csv("results/fig1b_approx_error.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!("wrote results/fig1b_approx_error.csv");
    }

    // the figure itself (log-log, as in the paper)
    let mut plot = mep_bench::svg::LinePlot::new(
        "Fig. 1(b): mean |error| vs smoothing parameter (4-pin nets, Δx=200)",
        "smoothing parameter γ / t",
        "mean |error|",
    )
    .with_log_x()
    .with_log_y();
    for (col, label) in [(1usize, "LSE"), (2, "WA"), (3, "Moreau")] {
        plot.add_series(
            label,
            table.rows().iter().map(|r| {
                (
                    r[0].parse::<f64>().expect("param cell"),
                    r[col].parse::<f64>().expect("error cell"),
                )
            }),
        );
    }
    if plot.write("results/fig1b_approx_error.svg").is_ok() {
        println!("wrote results/fig1b_approx_error.svg");
    }
}
