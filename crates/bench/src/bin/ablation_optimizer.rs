//! **Ablation** (beyond the paper's tables): optimizer choice for the
//! Moreau model — ePlace Nesterov versus Adam versus the PRP conjugate
//! subgradient method the related work \[23\] uses to optimize non-smooth
//! wirelength directly. Also runs PRP-CG on *exact HPWL* (the non-smooth
//! baseline the paper's §I discusses: "may encounter slow and poor
//! convergence").
//!
//! ```text
//! cargo run -p mep-bench --release --bin ablation_optimizer [--fast]
//! ```
//!
//! Writes `results/ablation_optimizer.csv`.

use mep_bench::{FlowOptions, Table};
use mep_netlist::synth;
use mep_placer::global::OptimizerKind;
use mep_placer::pipeline::{run, PipelineConfig};
use mep_placer::GlobalConfig;
use mep_wirelength::ModelKind;

fn main() {
    let opts = FlowOptions::from_args();
    let benches = ["newblue1", "ispd19_test5"];
    let variants: [(&str, ModelKind, OptimizerKind); 4] = [
        (
            "Moreau+Nesterov (paper)",
            ModelKind::Moreau,
            OptimizerKind::Nesterov,
        ),
        ("Moreau+Adam", ModelKind::Moreau, OptimizerKind::Adam),
        (
            "Moreau+PRP-CG",
            ModelKind::Moreau,
            OptimizerKind::ConjugateSubgradient,
        ),
        (
            "HPWL+PRP-CG (non-smooth)",
            ModelKind::Hpwl,
            OptimizerKind::ConjugateSubgradient,
        ),
    ];
    let mut table = Table::new(["bench", "variant", "DPWL", "overflow", "iters", "RT(s)"]);
    for bench in benches {
        let spec = opts.shrink_spec(&synth::spec_by_name(bench).expect("Table I name"));
        let circuit = synth::generate(&spec);
        let mut base: Option<f64> = None;
        for (name, model, optimizer) in variants {
            eprintln!("[ablation] {bench} × {name} …");
            let config = PipelineConfig {
                global: GlobalConfig {
                    model,
                    optimizer,
                    max_iters: opts.max_iters,
                    threads: opts.threads,
                    ..GlobalConfig::default()
                },
                ..PipelineConfig::default()
            };
            let r = run(&circuit, &config).expect("placement flow");
            if base.is_none() {
                base = Some(r.dpwl);
            }
            println!(
                "{bench:<14} {name:<26} DPWL {:.4e} ({:+.2}%)  φ={:.3}  iters {}  RT {:.1}s",
                r.dpwl,
                100.0 * (r.dpwl / base.expect("set above") - 1.0),
                r.overflow,
                r.iterations,
                r.rt_total()
            );
            table.push([
                bench.to_string(),
                name.to_string(),
                format!("{:.4e}", r.dpwl),
                format!("{:.4}", r.overflow),
                r.iterations.to_string(),
                format!("{:.1}", r.rt_total()),
            ]);
        }
    }
    if let Err(e) = table.write_csv("results/ablation_optimizer.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!("\nwrote results/ablation_optimizer.csv");
    }
}
