//! **Multilevel scaling** (DESIGN.md §12): on a seeded ≥100k-cell
//! hierarchical synthetic design, the 2-level warm-started flow must reach
//! the cold-start final quality (±1%) in measurably less wall-clock and
//! fewer finest-level iterations — plus an incremental (ECO) re-placement
//! of a ~10% dirty window, which must finish in a small fraction of a full
//! solve with every frozen coordinate bit-identical.
//!
//! ```text
//! cargo run -p mep-bench --release --bin multilevel_scaling [--fast]
//! ```
//!
//! Writes `results/multilevel_reports.jsonl` (one JSON line per variant:
//! `cold`, `warm2`, `eco`; the `warm2` report carries `ml.cmp.*`
//! comparison metrics, the `eco` report `eco.cmp.*`).

use mep_bench::{write_reports_jsonl, BenchmarkRow, FlowOptions};
use mep_netlist::bookshelf::BookshelfCircuit;
use mep_netlist::{synth, Rect};
use mep_obs::Registry;
use mep_placer::flow::{replace_region, run_multilevel, EcoConfig, MultilevelConfig};
use mep_placer::pipeline::{run, PipelineConfig};
use mep_placer::GlobalConfig;
use mep_wirelength::ModelKind;
use std::time::Instant;

fn main() {
    let opts = FlowOptions::from_args();
    // --fast / --shrink scale the 100k-cell headline design down for
    // smoke-level turnaround (the CI job runs --fast).
    let movable = (100_000 / opts.shrink.max(1)).max(4_000);
    let spec = synth::scaled_clustered_spec(movable, 7);
    eprintln!(
        "[ml-scale] generating `{}` ({} movable cells, seed {}) …",
        spec.name, spec.movable, spec.seed
    );
    let circuit = synth::generate(&spec);
    let config = PipelineConfig {
        global: GlobalConfig {
            model: ModelKind::Moreau,
            max_iters: opts.max_iters,
            threads: opts.threads,
            ..GlobalConfig::default()
        },
        ..PipelineConfig::default()
    };

    // ---- cold start: the flat flow from the center pile ----
    eprintln!("[ml-scale] cold flat flow …");
    let t0 = Instant::now();
    let cold = run(&circuit, &config).expect("cold placement flow");
    let cold_rt = t0.elapsed().as_secs_f64();
    eprintln!(
        "[ml-scale] cold: DPWL {:.4e}  {} iters  {:.1}s",
        cold.dpwl, cold.iterations, cold_rt
    );

    // ---- warm start: 2-level coarsen + LB/UB alternation ----
    eprintln!("[ml-scale] 2-level warm-started flow …");
    let t1 = Instant::now();
    let warm = run_multilevel(
        &circuit,
        &MultilevelConfig {
            levels: 2,
            pipeline: config.clone(),
            ..MultilevelConfig::default()
        },
    )
    .expect("warm multilevel flow");
    let warm_rt = t1.elapsed().as_secs_f64();
    for s in &warm.level_stats {
        eprintln!(
            "[ml-scale]   level {}: {} movable  {} iters  HPWL {:.4e}  {:.2}s",
            s.level, s.movable, s.iterations, s.hpwl, s.rt_seconds
        );
    }
    let dpwl_ratio = warm.result.dpwl / cold.dpwl;
    let speedup = cold_rt / warm_rt;
    eprintln!(
        "[ml-scale] warm2: DPWL {:.4e} ({:+.3}% vs cold)  {} finest iters \
         (cold {})  {:.1}s  speedup {:.2}x",
        warm.result.dpwl,
        100.0 * (dpwl_ratio - 1.0),
        warm.result.iterations,
        cold.iterations,
        warm_rt,
        speedup
    );

    // comparison metrics ride on the warm row's report
    let mut warm_report = warm.result.report.clone();
    {
        let cmp = Registry::new();
        cmp.gauge("ml.cmp.cold_dpwl").set(cold.dpwl);
        cmp.gauge("ml.cmp.warm_dpwl").set(warm.result.dpwl);
        cmp.gauge("ml.cmp.dpwl_ratio").set(dpwl_ratio);
        cmp.gauge("ml.cmp.cold_rt_seconds").set(cold_rt);
        cmp.gauge("ml.cmp.warm_rt_seconds").set(warm_rt);
        cmp.gauge("ml.cmp.speedup").set(speedup);
        cmp.counter("ml.cmp.cold_iterations")
            .add(cold.iterations as u64);
        cmp.counter("ml.cmp.warm_finest_iterations")
            .add(warm.result.iterations as u64);
        warm_report.merge_registry(&cmp);
    }

    // ---- ECO: re-place a ~10%-area dirty window of the warm result ----
    let die = circuit.design.die;
    let frac = 0.316; // ~10% of the die area
    let window = Rect::new(
        die.xl,
        die.yl,
        die.xl + frac * die.width(),
        die.yl + frac * die.height(),
    );
    let placed = BookshelfCircuit {
        design: circuit.design.clone(),
        placement: warm.result.placement.clone(),
    };
    eprintln!("[ml-scale] ECO re-placement within {window} …");
    let eco = replace_region(
        &placed,
        window,
        &EcoConfig {
            pipeline: config.clone(),
        },
    )
    .expect("ECO flow");
    // hard check: every frozen coordinate bit-identical
    let nl = &circuit.design.netlist;
    for cell in nl.movable_cells() {
        if !placed.placement.cell_rect(nl, cell).intersects(&window) {
            assert_eq!(
                eco.placement.x[cell.index()].to_bits(),
                placed.placement.x[cell.index()].to_bits(),
                "frozen cell moved"
            );
            assert_eq!(
                eco.placement.y[cell.index()].to_bits(),
                placed.placement.y[cell.index()].to_bits(),
                "frozen cell moved"
            );
        }
    }
    let eco_fraction = eco.rt_seconds / cold_rt;
    eprintln!(
        "[ml-scale] eco: {} replaced / {} frozen (bit-identical)  HPWL {:.4e} -> {:.4e}  \
         {:.1}s = {:.1}% of a full cold solve",
        eco.replaced,
        eco.frozen,
        eco.hpwl_before,
        eco.hpwl_after,
        eco.rt_seconds,
        100.0 * eco_fraction
    );
    let mut eco_report = eco.report.clone();
    {
        let cmp = Registry::new();
        cmp.gauge("eco.cmp.rt_seconds").set(eco.rt_seconds);
        cmp.gauge("eco.cmp.full_solve_rt_seconds").set(cold_rt);
        cmp.gauge("eco.cmp.rt_fraction").set(eco_fraction);
        cmp.counter("eco.cmp.frozen_bit_identical")
            .add(eco.frozen as u64);
        eco_report.merge_registry(&cmp);
    }

    let rows = [
        BenchmarkRow {
            bench: format!("{}/cold", spec.name),
            model: ModelKind::Moreau,
            lgwl: cold.lgwl,
            dpwl: cold.dpwl,
            rt: cold_rt,
            iterations: cold.iterations,
            overflow: cold.overflow,
            violations: cold.violations,
            report: cold.report.clone(),
        },
        BenchmarkRow {
            bench: format!("{}/warm2", spec.name),
            model: ModelKind::Moreau,
            lgwl: warm.result.lgwl,
            dpwl: warm.result.dpwl,
            rt: warm_rt,
            iterations: warm.result.iterations,
            overflow: warm.result.overflow,
            violations: warm.result.violations,
            report: warm_report,
        },
        BenchmarkRow {
            bench: format!("{}/eco", spec.name),
            model: ModelKind::Moreau,
            lgwl: eco.hpwl_after,
            dpwl: eco.hpwl_after,
            rt: eco.rt_seconds,
            iterations: eco.iterations,
            overflow: 0.0,
            violations: eco.violations,
            report: eco_report,
        },
    ];
    match write_reports_jsonl("results/multilevel_reports.jsonl", &rows) {
        Ok(()) => println!(
            "wrote results/multilevel_reports.jsonl ({} rows)",
            rows.len()
        ),
        Err(e) => {
            eprintln!("could not write results/multilevel_reports.jsonl: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "cold  DPWL {:.4e}  iters {:<5}  RT {:.1}s",
        cold.dpwl, cold.iterations, cold_rt
    );
    println!(
        "warm2 DPWL {:.4e}  iters {:<5}  RT {:.1}s  ({:+.3}% quality, {:.2}x speedup)",
        warm.result.dpwl,
        warm.result.iterations,
        warm_rt,
        100.0 * (dpwl_ratio - 1.0),
        speedup
    );
    println!(
        "eco   HPWL {:.4e}  iters {:<5}  RT {:.1}s  ({:.1}% of full solve)",
        eco.hpwl_after,
        eco.iterations,
        eco.rt_seconds,
        100.0 * eco_fraction
    );
    if dpwl_ratio > 1.01 {
        eprintln!(
            "warning: warm-started DPWL {:.3}% worse than cold start (budget: 1%)",
            100.0 * (dpwl_ratio - 1.0)
        );
        std::process::exit(1);
    }
}
