//! Renders before/after placement snapshots of one benchmark as SVG.
//!
//! ```text
//! cargo run -p mep-bench --release --bin render_placement [benchmark]
//! ```
//!
//! Writes `results/<bench>_initial.svg`, `results/<bench>_global.svg`,
//! and `results/<bench>_final.svg`.

use mep_bench::svg::placement_svg;
use mep_netlist::synth;
use mep_placer::pipeline::{run, PipelineConfig};
use mep_wirelength::ModelKind;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "smoke".to_string());
    let spec = if name == "smoke" {
        synth::smoke_spec()
    } else {
        synth::spec_by_name(&name).unwrap_or_else(|| {
            eprintln!("unknown benchmark `{name}`");
            std::process::exit(2);
        })
    };
    let circuit = synth::generate(&spec);
    std::fs::create_dir_all("results").ok();

    let write = |tag: &str, svg: String| {
        let path = format!("results/{}_{tag}.svg", spec.name);
        match std::fs::write(&path, svg) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    };
    write(
        "initial",
        placement_svg(&circuit.design, &circuit.placement),
    );

    let config = PipelineConfig {
        global: mep_placer::GlobalConfig {
            model: ModelKind::Moreau,
            ..mep_placer::GlobalConfig::default()
        },
        ..PipelineConfig::default()
    };
    // capture the GP stage separately for the middle snapshot
    let gp = mep_placer::global::place(&circuit, &config.global).expect("placement flow");
    write("global", placement_svg(&circuit.design, &gp.placement));

    let result = run(&circuit, &config).expect("placement flow");
    write("final", placement_svg(&circuit.design, &result.placement));

    // density heatmap of the final placement
    let mut es = mep_density::Electrostatics::new(&circuit.design, &result.placement);
    es.update(&circuit.design.netlist, &result.placement);
    let grid = es.grid();
    let (nx, ny) = (grid.nx(), grid.ny());
    write("density", mep_bench::svg::heatmap_svg(es.density(), nx, ny));

    println!(
        "{}: GPWL {:.4e} → DPWL {:.4e}, {} violations",
        spec.name, result.gpwl, result.dpwl, result.violations
    );
}
