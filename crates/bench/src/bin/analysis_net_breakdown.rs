//! **Analysis** (beyond the paper's tables): where does the Moreau model
//! win? Breaks final DPWL down by net-degree class for WA vs Ours on the
//! macro-heavy `newblue1` — the paper attributes its largest gain (5.4%)
//! to that circuit, and this view shows which nets pay for it.
//!
//! ```text
//! cargo run -p mep-bench --release --bin analysis_net_breakdown [--fast]
//! ```
//!
//! Writes `results/analysis_net_breakdown.csv`.

use mep_bench::{FlowOptions, Table};
use mep_netlist::{net_hpwl, synth};
use mep_placer::pipeline::{run, PipelineConfig};
use mep_placer::GlobalConfig;
use mep_wirelength::ModelKind;

const CLASSES: [(usize, usize, &str); 5] = [
    (2, 2, "2-pin"),
    (3, 3, "3-pin"),
    (4, 7, "4-7 pin"),
    (8, 15, "8-15 pin"),
    (16, usize::MAX, "16+ pin"),
];

fn main() {
    let opts = FlowOptions::from_args();
    let spec = opts.shrink_spec(&synth::spec_by_name("newblue1").expect("Table I name"));
    let circuit = synth::generate(&spec);
    let nl = &circuit.design.netlist;

    let mut by_model: Vec<(ModelKind, Vec<f64>)> = Vec::new();
    for model in [ModelKind::Wa, ModelKind::Moreau] {
        eprintln!("[analysis] newblue1 × {} …", model.label());
        let config = PipelineConfig {
            global: GlobalConfig {
                model,
                max_iters: opts.max_iters,
                threads: opts.threads,
                ..GlobalConfig::default()
            },
            ..PipelineConfig::default()
        };
        let r = run(&circuit, &config).expect("placement flow");
        // per-class HPWL totals of the final placement
        let mut class_wl = vec![0.0; CLASSES.len()];
        for net in nl.nets() {
            let d = nl.net_degree(net);
            let Some(k) = CLASSES.iter().position(|&(lo, hi, _)| d >= lo && d <= hi) else {
                continue; // 0/1-pin nets
            };
            class_wl[k] += net_hpwl(nl, &r.placement, net);
        }
        by_model.push((model, class_wl));
    }

    let mut table = Table::new(["class", "#nets", "WA HPWL", "Ours HPWL", "Ours/WA"]);
    println!("\nnewblue1 — final DPWL by net-degree class (WA vs Ours):\n");
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>9}",
        "class", "#nets", "WA", "Ours", "Ours/WA"
    );
    let (wa, ours) = (&by_model[0].1, &by_model[1].1);
    for (k, &(lo, hi, label)) in CLASSES.iter().enumerate() {
        let count = nl
            .nets()
            .filter(|&n| {
                let d = nl.net_degree(n);
                d >= lo && d <= hi
            })
            .count();
        let ratio = if wa[k] > 0.0 { ours[k] / wa[k] } else { 1.0 };
        println!(
            "{label:<10} {count:>7} {:>12.4e} {:>12.4e} {ratio:>9.4}",
            wa[k], ours[k]
        );
        table.push([
            label.to_string(),
            count.to_string(),
            format!("{:.6e}", wa[k]),
            format!("{:.6e}", ours[k]),
            format!("{ratio:.4}"),
        ]);
    }
    let (tw, to): (f64, f64) = (wa.iter().sum(), ours.iter().sum());
    println!(
        "{:<10} {:>7} {tw:>12.4e} {to:>12.4e} {:>9.4}",
        "total",
        nl.num_nets(),
        to / tw
    );
    table.push([
        "total".to_string(),
        nl.num_nets().to_string(),
        format!("{tw:.6e}"),
        format!("{to:.6e}"),
        format!("{:.4}", to / tw),
    ]);
    if let Err(e) = table.write_csv("results/analysis_net_breakdown.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!("\nwrote results/analysis_net_breakdown.csv");
    }
}
