//! **Ablation** (beyond the paper's tables): initial-placement choice for
//! the nonlinear global placer — the ePlace default (cells piled at the
//! die center) versus a B2B quadratic warm start (the classic
//! quadratic-then-nonlinear flow of the paper's §I taxonomy).
//!
//! ```text
//! cargo run -p mep-bench --release --bin ablation_init [--fast]
//! ```
//!
//! Writes `results/ablation_init.csv`.

use mep_bench::{FlowOptions, Table};
use mep_netlist::bookshelf::BookshelfCircuit;
use mep_netlist::synth;
use mep_placer::pipeline::{run, PipelineConfig};
use mep_placer::quadratic::{place_b2b, B2bConfig};
use mep_placer::GlobalConfig;
use mep_wirelength::ModelKind;

fn main() {
    let opts = FlowOptions::from_args();
    let mut table = Table::new(["bench", "init", "DPWL", "GP iters", "RT(s)"]);
    for bench in ["newblue2", "ispd19_test5"] {
        let spec = opts.shrink_spec(&synth::spec_by_name(bench).expect("Table I name"));
        let circuit = synth::generate(&spec);
        let config = PipelineConfig {
            global: GlobalConfig {
                model: ModelKind::Moreau,
                max_iters: opts.max_iters,
                threads: opts.threads,
                ..GlobalConfig::default()
            },
            ..PipelineConfig::default()
        };
        // center init (default)
        eprintln!("[ablation] {bench} × center-init …");
        let center = run(&circuit, &config).expect("placement flow");
        // B2B warm start
        eprintln!("[ablation] {bench} × quadratic-init …");
        let t0 = std::time::Instant::now();
        let (qp, qreport) = place_b2b(&circuit, &B2bConfig::default()).expect("placeable circuit");
        let qp_time = t0.elapsed().as_secs_f64();
        let warm_circuit = BookshelfCircuit {
            design: circuit.design.clone(),
            placement: qp,
        };
        let warm = run(&warm_circuit, &config).expect("placement flow");
        for (name, r, extra) in [("center", &center, 0.0), ("quadratic(B2B)", &warm, qp_time)] {
            println!(
                "{bench:<14} {name:<16} DPWL {:.4e}  iters {}  RT {:.1}s",
                r.dpwl,
                r.iterations,
                r.rt_total() + extra
            );
            table.push([
                bench.to_string(),
                name.to_string(),
                format!("{:.4e}", r.dpwl),
                r.iterations.to_string(),
                format!("{:.1}", r.rt_total() + extra),
            ]);
        }
        println!(
            "  (B2B warm start itself: HPWL {:.4e} after {} rounds, {:.2}s)",
            qreport.hpwl, qreport.rounds, qp_time
        );
    }
    if let Err(e) = table.write_csv("results/ablation_init.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!("\nwrote results/ablation_init.csv");
    }
}
