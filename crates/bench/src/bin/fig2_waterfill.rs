//! Regenerates **Fig. 2**: the water-filling illustration on a 4-pin net.
//!
//! For the paper's bar-graph example, sweeps the water amount `t` and
//! reports the level `τ1` (and the mirrored `τ2`), the index `k` of the
//! gap containing the level (Eq. (13)), and the residual of the defining
//! equation — numerically zero everywhere.
//!
//! ```text
//! cargo run -p mep-bench --release --bin fig2_waterfill
//! ```
//!
//! Writes `results/fig2_waterfill.csv`.

use mep_bench::Table;
use mep_wirelength::waterfill;

fn main() {
    // the paper's 4-bar reservoir (sorted)
    let x = [1.0, 2.0, 4.0, 7.0];
    println!("Fig. 2 — water-filling on the 4-pin reservoir {x:?}\n");
    // Abel breakpoints: water needed to reach each sorted coordinate
    let mut breakpoints = vec![0.0];
    let mut acc = 0.0;
    for k in 1..x.len() {
        acc += k as f64 * (x[k] - x[k - 1]);
        breakpoints.push(acc);
    }
    println!("breakpoints Σ k·gap (Eq. 13): {breakpoints:?}\n");

    let mut table = Table::new([
        "t",
        "tau1",
        "k",
        "residual1",
        "tau2",
        "residual2",
        "collapsed",
    ]);
    println!(
        "{:>8} {:>9} {:>3} {:>11} {:>9} {:>11} {:>9}",
        "t", "tau1", "k", "residual1", "tau2", "residual2", "collapsed"
    );
    for i in 0..=40 {
        let t = 0.25 * (i as f64 + 1.0);
        let tau1 = waterfill::solve_lower(&x, t);
        let tau2 = waterfill::solve_upper(&x, t);
        let k = x.iter().filter(|&&xi| xi < tau1).count();
        let r1 = waterfill::lower_residual(&x, tau1, t);
        let r2 = waterfill::upper_residual(&x, tau2, t);
        let collapsed = tau1 > tau2;
        println!("{t:>8.2} {tau1:>9.4} {k:>3} {r1:>11.2e} {tau2:>9.4} {r2:>11.2e} {collapsed:>9}");
        table.push([
            format!("{t}"),
            format!("{tau1:.6}"),
            k.to_string(),
            format!("{r1:.3e}"),
            format!("{tau2:.6}"),
            format!("{r2:.3e}"),
            collapsed.to_string(),
        ]);
    }
    if let Err(e) = table.write_csv("results/fig2_waterfill.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!("\nwrote results/fig2_waterfill.csv");
    }
}
