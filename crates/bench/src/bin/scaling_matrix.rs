//! **Multi-thread scaling matrix** (DESIGN.md §13): wall-clock medians for
//! the three placement hot paths — whole-netlist wirelength evaluation,
//! the spectral density transform (the four 2-D sweeps of one Poisson
//! solve), and a full global-placement iteration — at 1/2/4/8 worker
//! threads, plus the serial fused-vs-unfused spectral comparison that
//! backs the ISSUE 7 acceptance criterion.
//!
//! ```text
//! cargo run -p mep-bench --release --bin scaling_matrix [--fast] [--out PATH]
//! cargo run -p mep-bench --release --bin scaling_matrix --guard [BASELINE]
//! ```
//!
//! The default mode writes `BENCH_scaling.json` (or `--out PATH`).
//! `--guard` is the CI perf-regression mode: it re-measures only the
//! serial fused 512×512 density step and exits non-zero if it is more
//! than `MEP_PERF_GUARD_TOLERANCE` (default 0.10 = 10%) slower than the
//! committed baseline JSON. Thread counts can be pinned externally via
//! `MEP_THREADS` (see `mep_wirelength::engine::default_threads`), but
//! this binary always sweeps its own explicit 1/2/4/8 matrix.

use mep_density::transform::{Kind, Spectral2d};
use mep_density::ParallelExec;
use mep_obs::json::JsonObject;
use mep_placer::global::place;
use mep_placer::GlobalConfig;
use mep_wirelength::engine::EvalEngine;
use mep_wirelength::{ModelKind, NetlistEvaluator, WirelengthGrad};
use std::sync::Arc;
use std::time::Instant;

/// The four sweeps of one spectral Poisson solve.
const SWEEPS: [(Kind, Kind); 4] = [
    (Kind::Dct2, Kind::Dct2),
    (Kind::Dct3, Kind::Dct3),
    (Kind::Dst3, Kind::Dct3),
    (Kind::Dct3, Kind::Dst3),
];

/// Thread counts of the scaling matrix.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Adapter exposing the persistent worker pool to the density crate (same
/// shape as the placer's private adapter).
#[derive(Debug)]
struct EngineExec(Arc<EvalEngine>);

impl ParallelExec for EngineExec {
    fn run(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        self.0.run(parts, f);
    }
}

/// Median wall-clock of `reps` timed runs (after one warmup), in ms.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: touch caches, fault pages, build plans
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Deterministic pseudo-random grid (the same LCG the spectral tests use).
fn test_grid(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// One density step (four sweeps) on a prepared engine, in ms.
fn density_step_ms(n: usize, reps: usize, engine: &mut Spectral2d, rho: &[f64]) -> f64 {
    let mut buf = vec![0.0; n * n];
    median_ms(reps, || {
        for &(kx, ky) in &SWEEPS {
            buf.copy_from_slice(rho);
            engine.execute(&mut buf, kx, ky);
        }
        std::hint::black_box(buf[0]);
    })
}

/// Serial unfused reference density step, in ms.
fn density_step_unfused_ms(n: usize, reps: usize, rho: &[f64]) -> f64 {
    let mut engine = Spectral2d::new(n, n);
    let mut buf = vec![0.0; n * n];
    median_ms(reps, || {
        for &(kx, ky) in &SWEEPS {
            buf.copy_from_slice(rho);
            engine.execute_unfused(&mut buf, kx, ky);
        }
        std::hint::black_box(buf[0]);
    })
}

fn speedup_field(o: &mut JsonObject, name: &str, ms_by_threads: &[(usize, f64)]) {
    let base = ms_by_threads
        .iter()
        .find(|&&(t, _)| t == 1)
        .map(|&(_, ms)| ms)
        .unwrap_or(f64::NAN);
    let mut s = JsonObject::new();
    for &(t, ms) in ms_by_threads {
        s.field_f64(&format!("{t}"), round3(base / ms));
    }
    o.field_raw(name, &s.finish());
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let guard = args.iter().any(|a| a == "--guard");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());

    if guard {
        run_guard(&args);
        return;
    }

    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reps = if fast { 3 } else { 7 };
    eprintln!("[scaling] available_parallelism = {avail}, reps = {reps}, fast = {fast}");

    // ---- density transform: serial fused vs unfused, then thread sweep ----
    let sizes: &[usize] = if fast { &[256, 512] } else { &[256, 512, 1024] };
    let mut density_json = JsonObject::new();
    let mut fused_512_serial = f64::NAN;
    for &n in sizes {
        let rho = test_grid(n * n, 17 + n as u64);
        let unfused = density_step_unfused_ms(n, reps, &rho);
        let mut per_size = JsonObject::new();
        per_size.field_f64("serial_unfused", round3(unfused));
        let mut by_threads = Vec::new();
        for &t in &THREADS {
            let mut engine = Spectral2d::new(n, n);
            if t > 1 {
                let pool = Arc::new(EvalEngine::new(t));
                engine.set_executor(Arc::new(EngineExec(pool)), t);
            }
            let ms = density_step_ms(n, reps, &mut engine, &rho);
            per_size.field_f64(&format!("fused_{t}t"), round3(ms));
            by_threads.push((t, ms));
            eprintln!("[scaling] density {n}x{n} fused {t}t: {ms:.2} ms (unfused {unfused:.2} ms)");
        }
        if n == 512 {
            fused_512_serial = by_threads[0].1;
        }
        per_size.field_f64(
            "fused_serial_speedup_vs_unfused",
            round3(unfused / by_threads[0].1),
        );
        speedup_field(&mut per_size, "thread_speedup", &by_threads);
        density_json.field_raw(&format!("{n}"), &per_size.finish());
    }

    // ---- engine eval: whole-netlist wirelength value + gradient ----
    let movable = if fast { 20_000 } else { 60_000 };
    let spec = mep_netlist::synth::scaled_clustered_spec(movable, 7);
    eprintln!("[scaling] generating `{}` ({movable} movable) …", spec.name);
    let circuit = mep_netlist::synth::generate(&spec);
    let nl = &circuit.design.netlist;
    let mut engine_rows = Vec::new();
    for &t in &THREADS {
        let mut eval = NetlistEvaluator::new(
            ModelKind::Moreau.instantiate(2.0),
            Arc::new(EvalEngine::new(t)),
        );
        let mut out = WirelengthGrad::zeros(nl.num_cells());
        let ms = median_ms(reps, || {
            eval.evaluate(nl, &circuit.placement, &mut out);
            std::hint::black_box(out.value);
        });
        eprintln!("[scaling] engine eval {t}t: {ms:.2} ms");
        engine_rows.push((t, ms));
    }
    let mut engine_json = JsonObject::new();
    engine_json
        .field_u64("movable_cells", movable as u64)
        .field_u64("nets", nl.num_nets() as u64)
        .field_u64("pins", nl.num_pins() as u64);
    for &(t, ms) in &engine_rows {
        engine_json.field_f64(&format!("eval_{t}t"), round3(ms));
    }
    speedup_field(&mut engine_json, "thread_speedup", &engine_rows);

    // ---- full GP iteration: fixed-iteration global placement ----
    let gp_movable = if fast { 8_000 } else { 20_000 };
    let gp_iters = if fast { 15 } else { 30 };
    let gp_spec = mep_netlist::synth::scaled_clustered_spec(gp_movable, 11);
    let gp_circuit = mep_netlist::synth::generate(&gp_spec);
    let mut gp_rows = Vec::new();
    for &t in &THREADS {
        let config = GlobalConfig {
            model: ModelKind::Moreau,
            max_iters: gp_iters,
            min_iters: gp_iters,
            threads: t,
            ..GlobalConfig::default()
        };
        let t0 = Instant::now();
        let r = place(&gp_circuit, &config).expect("global placement");
        let ms_per_iter = t0.elapsed().as_secs_f64() * 1e3 / r.iterations.max(1) as f64;
        eprintln!(
            "[scaling] gp iteration {t}t: {ms_per_iter:.2} ms/iter over {} iters",
            r.iterations
        );
        gp_rows.push((t, ms_per_iter));
    }
    let mut gp_json = JsonObject::new();
    gp_json
        .field_u64("movable_cells", gp_movable as u64)
        .field_u64("iterations", gp_iters as u64);
    for &(t, ms) in &gp_rows {
        gp_json.field_f64(&format!("iter_{t}t"), round3(ms));
    }
    speedup_field(&mut gp_json, "thread_speedup", &gp_rows);

    // ---- assemble the artifact ----
    let mut root = JsonObject::new();
    root.field_str("bench", "scaling_matrix")
        .field_str(
            "description",
            "Wall-clock medians for the three placement hot paths at 1/2/4/8 worker \
             threads. density_transform_ms: one spectral density step = the four 2-D \
             sweeps of a Poisson solve on the fused transpose-free Spectral2d path, \
             with the unfused transpose-based path as the serial reference. \
             engine_eval_ms: whole-netlist Moreau wirelength value+gradient on the \
             persistent EvalEngine. gp_iteration_ms: per-iteration wall clock of a \
             fixed-iteration global placement run (wirelength + density + optimizer).",
        )
        .field_str(
            "determinism_note",
            "All configurations produce bit-identical grids and gradients at every \
             thread count (crates/density/tests/spectral_plans.rs, \
             crates/wirelength src tests); the matrix measures wall clock only.",
        )
        .field_u64("available_parallelism", avail as u64)
        .field_opt_str(
            "mep_threads_env",
            std::env::var("MEP_THREADS").ok().as_deref(),
        )
        .field_u64_array("threads_tested", &[1, 2, 4, 8])
        .field_bool("fast_mode", fast)
        .field_str("timer", &format!("median of {reps} runs after one warmup"));
    root.field_raw("density_transform_ms", &density_json.finish());
    root.field_raw("engine_eval_ms", &engine_json.finish());
    root.field_raw("gp_iteration_ms", &gp_json.finish());
    let mut guard_json = JsonObject::new();
    guard_json
        .field_f64("density_512_serial_fused_ms", round3(fused_512_serial))
        .field_f64("tolerance", 0.10);
    root.field_raw("guard_baseline", &guard_json.finish());

    let text = root.finish();
    match std::fs::write(&out_path, format!("{text}\n")) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}

/// CI perf-regression guard: re-measure the serial fused 512×512 density
/// step and fail if it regressed more than the tolerance vs the committed
/// baseline. Tolerance can be widened for noisy runners via
/// `MEP_PERF_GUARD_TOLERANCE` (fraction, e.g. `0.25`).
fn run_guard(args: &[String]) {
    let baseline_path = args
        .iter()
        .position(|a| a == "--guard")
        .and_then(|i| args.get(i + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[guard] cannot read baseline {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    // minimal field scrape (no JSON dependency): the artifact is generated
    // by this same binary, so the field layout is known
    let baseline_ms = scrape_f64(&text, "density_512_serial_fused_ms");
    let tolerance = std::env::var("MEP_PERF_GUARD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .or_else(|| scrape_f64(&text, "tolerance"))
        .unwrap_or(0.10);
    let Some(baseline_ms) = baseline_ms else {
        eprintln!("[guard] baseline {baseline_path} has no density_512_serial_fused_ms");
        std::process::exit(1);
    };
    let n = 512usize;
    let rho = test_grid(n * n, 17 + n as u64);
    let mut engine = Spectral2d::new(n, n);
    let ms = density_step_ms(n, 7, &mut engine, &rho);
    let ratio = ms / baseline_ms;
    println!(
        "[guard] serial fused 512x512 density step: {ms:.2} ms vs baseline \
         {baseline_ms:.2} ms (ratio {ratio:.3}, tolerance +{:.0}%)",
        tolerance * 100.0
    );
    if ratio > 1.0 + tolerance {
        eprintln!("[guard] FAIL: serial 512x512 density step regressed beyond tolerance");
        std::process::exit(1);
    }
    println!("[guard] OK");
}

/// Extracts `"name": <number>` from a flat JSON text.
fn scrape_f64(text: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let at = text.find(&key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
