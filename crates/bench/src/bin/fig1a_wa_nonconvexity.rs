//! Regenerates **Fig. 1(a)**: the non-convexity of the WA model on a
//! 3-pin net.
//!
//! Sweeps the middle pin `x` of the net `(0, x, 100)` and emits the WA
//! curve `W_WA^γ` for several γ, plus the (always convex) Moreau-envelope
//! curve at matching smoothing for contrast.
//!
//! ```text
//! cargo run -p mep-bench --release --bin fig1a_wa_nonconvexity
//! ```
//!
//! Writes `results/fig1a_wa_nonconvexity.csv` (one row per sample, one
//! column per curve) and prints a midpoint-convexity violation summary.

use mep_bench::Table;
use mep_wirelength::model::{ModelKind, NetModel};

const GAMMAS: [f64; 4] = [5.0, 10.0, 20.0, 40.0];
const SAMPLES: usize = 512;

fn main() {
    let mut header = vec!["x".to_string()];
    for g in GAMMAS {
        header.push(format!("WA_g{g}"));
    }
    for g in GAMMAS {
        header.push(format!("Moreau_t{g}"));
    }
    let mut table = Table::new(header);

    let mut wa: Vec<_> = GAMMAS
        .iter()
        .map(|&g| ModelKind::Wa.instantiate(g))
        .collect();
    let mut me: Vec<_> = GAMMAS
        .iter()
        .map(|&g| ModelKind::Moreau.instantiate(g))
        .collect();

    let mut curves: Vec<Vec<f64>> = vec![Vec::with_capacity(SAMPLES + 1); 2 * GAMMAS.len()];
    for i in 0..=SAMPLES {
        let x = i as f64 / SAMPLES as f64 * 100.0;
        let net = [0.0, x, 100.0];
        let mut cells = vec![format!("{x:.4}")];
        for (k, m) in wa.iter_mut().enumerate() {
            let v = m.value_axis(&net);
            curves[k].push(v);
            cells.push(format!("{v:.6}"));
        }
        for (k, m) in me.iter_mut().enumerate() {
            let v = m.value_axis(&net);
            curves[GAMMAS.len() + k].push(v);
            cells.push(format!("{v:.6}"));
        }
        table.push(cells);
    }

    println!("Fig. 1(a) — WA non-convexity on the 3-pin net (0, x, 100)\n");
    println!("midpoint-convexity violations per curve ({SAMPLES} samples):");
    for (k, curve) in curves.iter().enumerate() {
        let violations = curve
            .windows(3)
            .filter(|w| w[1] > 0.5 * (w[0] + w[2]) + 1e-9)
            .count();
        let label = if k < GAMMAS.len() {
            format!("WA     γ={}", GAMMAS[k])
        } else {
            format!("Moreau t={}", GAMMAS[k - GAMMAS.len()])
        };
        println!("  {label:<14} {violations:>5} violations");
    }
    println!("\n(WA curves bend non-convexly; the Moreau envelope never does — §II-D.2)");

    if let Err(e) = table.write_csv("results/fig1a_wa_nonconvexity.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!(
            "wrote results/fig1a_wa_nonconvexity.csv ({} rows)",
            table.len()
        );
    }

    // the figure itself
    let mut plot = mep_bench::svg::LinePlot::new(
        "Fig. 1(a): WA vs Moreau on the 3-pin net (0, x, 100)",
        "middle pin x",
        "model value",
    );
    for (k, g) in GAMMAS.iter().enumerate() {
        plot.add_series(
            format!("WA γ={g}"),
            (0..=SAMPLES).map(|i| (i as f64 / SAMPLES as f64 * 100.0, curves[k][i])),
        );
    }
    plot.add_series(
        format!("Moreau t={}", GAMMAS[1]),
        (0..=SAMPLES).map(|i| {
            (
                i as f64 / SAMPLES as f64 * 100.0,
                curves[GAMMAS.len() + 1][i],
            )
        }),
    );
    if plot.write("results/fig1a_wa_nonconvexity.svg").is_ok() {
        println!("wrote results/fig1a_wa_nonconvexity.svg");
    }
}
