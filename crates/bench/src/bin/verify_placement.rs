//! Contest-evaluator-style checker: loads a placed Bookshelf circuit,
//! verifies legality, and reports (weighted) HPWL — the role NTUPlace3's
//! evaluator plays in the paper's Table II ("evaluated by NTUPlace3 for a
//! fair comparison").
//!
//! ```text
//! cargo run -p mep-bench --release --bin verify_placement -- <circuit.aux> [target_density]
//! ```
//!
//! Exit code 0 iff the placement is legal.

use mep_netlist::bookshelf;
use mep_netlist::placement::{total_hpwl, total_weighted_hpwl};
use mep_placer::legalize::check_legal;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(aux) = args.next() else {
        eprintln!("usage: verify_placement <circuit.aux> [target_density]");
        return ExitCode::from(2);
    };
    let density: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let circuit = match bookshelf::read_aux(&aux, density) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error reading {aux}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nl = &circuit.design.netlist;
    println!("circuit  : {}", circuit.design.name);
    println!(
        "cells    : {} movable + {} fixed",
        nl.num_movable(),
        nl.num_fixed()
    );
    println!("nets/pins: {} / {}", nl.num_nets(), nl.num_pins());
    let hpwl = total_hpwl(nl, &circuit.placement);
    let whpwl = total_weighted_hpwl(nl, &circuit.placement);
    println!("HPWL     : {hpwl:.6e}");
    if (whpwl - hpwl).abs() > 1e-9 * hpwl.max(1.0) {
        println!("weighted : {whpwl:.6e}");
    }
    let violations = check_legal(&circuit.design, &circuit.placement);
    if violations.is_empty() {
        println!("legality : OK");
        ExitCode::SUCCESS
    } else {
        println!("legality : {} violations", violations.len());
        for v in violations.iter().take(10) {
            println!("  {v:?}");
        }
        ExitCode::FAILURE
    }
}
