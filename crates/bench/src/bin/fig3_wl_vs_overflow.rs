//! Regenerates **Fig. 3**: the HPWL-vs-density-overflow trajectory during
//! global placement, WA versus the Moreau model ("Ours"), on
//! (a) `newblue1` (ISPD2006) and (b) `ispd19_test10` (ISPD2019).
//!
//! ```text
//! cargo run -p mep-bench --release --bin fig3_wl_vs_overflow [--fast]
//! ```
//!
//! Writes `results/fig3_trajectories.csv` in long format
//! (`bench,model,iter,overflow,hpwl`) — plot HPWL against overflow with
//! the x-axis reversed to reproduce the figure.

use mep_bench::{FlowOptions, Table};
use mep_netlist::synth;
use mep_placer::global::{place, GlobalConfig};
use mep_wirelength::ModelKind;

fn main() {
    let opts = FlowOptions::from_args();
    let mut table = Table::new(["bench", "model", "iter", "overflow", "hpwl"]);
    for bench in ["newblue1", "ispd19_test10"] {
        let spec = opts.shrink_spec(&synth::spec_by_name(bench).expect("Table I name"));
        let circuit = synth::generate(&spec);
        let mut finals = Vec::new();
        for model in [ModelKind::Wa, ModelKind::Moreau] {
            eprintln!("[fig3] {bench} × {} …", model.label());
            let cfg = GlobalConfig {
                model,
                max_iters: opts.max_iters,
                threads: opts.threads,
                record_trajectory: true,
                ..GlobalConfig::default()
            };
            let r = place(&circuit, &cfg).expect("placement flow");
            for p in &r.trajectory {
                table.push([
                    bench.to_string(),
                    model.label().to_string(),
                    p.iter.to_string(),
                    format!("{:.6}", p.overflow),
                    format!("{:.2}", p.hpwl),
                ]);
            }
            finals.push((model, r.hpwl, r.overflow));
        }
        println!("\nFig. 3 — {bench}: final GP HPWL at matched overflow");
        for (model, hpwl, phi) in &finals {
            println!(
                "  {:<8} HPWL {hpwl:.4e} at overflow {phi:.3}",
                model.label()
            );
        }
        if let [(_, wa, _), (_, ours, _)] = finals[..] {
            println!("  Ours/WA at GP end: {:.4}", ours / wa);
        }
        // the figure's key read-out: HPWL at matched overflow levels
        println!("  HPWL at matched overflow levels (lower is better):");
        for target in [0.8, 0.6, 0.4, 0.2, 0.1] {
            let pick = |model: &str| -> Option<f64> {
                // last trajectory point with overflow >= target (overflow decreases)
                table_rows_for(&table, bench, model)
                    .into_iter()
                    .rfind(|(phi, _)| *phi >= target)
                    .map(|(_, h)| h)
            };
            if let (Some(wa), Some(ours)) = (pick("WA"), pick("Ours")) {
                println!(
                    "    φ≈{target:.1}: WA {wa:.4e}  Ours {ours:.4e}  ratio {:.4}",
                    ours / wa
                );
            }
        }
    }
    if let Err(e) = table.write_csv("results/fig3_trajectories.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!(
            "\nwrote results/fig3_trajectories.csv ({} points)",
            table.len()
        );
    }

    // the figures themselves: HPWL against overflow, x reversed by
    // plotting −overflow (the run proceeds right-to-left in the paper)
    for bench in ["newblue1", "ispd19_test10"] {
        let mut plot = mep_bench::svg::LinePlot::new(
            format!("Fig. 3: wirelength vs density overflow — {bench}"),
            "density overflow φ (negated: run proceeds left to right)",
            "HPWL",
        );
        for model in ["WA", "Ours"] {
            plot.add_series(
                model,
                table_rows_for(&table, bench, model)
                    .into_iter()
                    .map(|(phi, h)| (-phi, h)),
            );
        }
        let path = format!("results/fig3_{bench}.svg");
        if plot.write(&path).is_ok() {
            println!("wrote {path}");
        }
    }
}

/// Extracts `(overflow, hpwl)` points of one curve from the long table.
fn table_rows_for(table: &Table, bench: &str, model: &str) -> Vec<(f64, f64)> {
    table
        .rows()
        .iter()
        .filter(|r| r[0] == bench && r[1] == model)
        .map(|r| {
            (
                r[3].parse().expect("overflow cell"),
                r[4].parse().expect("hpwl cell"),
            )
        })
        .collect()
}
