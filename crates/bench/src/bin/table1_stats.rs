//! Regenerates **Table I**: statistics of the (synthetic) ISPD2006 and
//! ISPD2019 benchmark suites.
//!
//! ```text
//! cargo run -p mep-bench --release --bin table1_stats
//! ```
//!
//! Prints #Movable / #Fixed / #Nets / #Pins for every circuit, as
//! generated (the paper's counts divided by the documented scale factors),
//! and writes `results/table1_stats.csv`.

use mep_bench::Table;
use mep_netlist::synth;

fn main() {
    let mut table = Table::new(["Suite", "Benchmark", "#Movable", "#Fixed", "#Nets", "#Pins"]);
    for (suite, specs) in [
        ("ISPD2006/100", synth::ispd2006_suite()),
        ("ISPD2019/40", synth::ispd2019_suite()),
    ] {
        for spec in specs {
            let c = synth::generate(&spec);
            let nl = &c.design.netlist;
            table.push([
                suite.to_string(),
                spec.name.clone(),
                nl.num_movable().to_string(),
                nl.num_fixed().to_string(),
                nl.num_nets().to_string(),
                nl.num_pins().to_string(),
            ]);
        }
    }
    println!("Table I — benchmark statistics (scaled synthetic stand-ins)\n");
    print!("{}", table.to_text());
    if let Err(e) = table.write_csv("results/table1_stats.csv") {
        eprintln!("could not write CSV: {e}");
    } else {
        println!("\nwrote results/table1_stats.csv");
    }
}
